"""The FP-exception event stream.

Every flag-raise the environment layer observes becomes an
:class:`FPExceptionEvent` — a FlowFPX-style *exception coordinate*
carrying the operation, the raised flags, a monotonically increasing
sequence number, and (when tracing is active) the span path at which
it occurred.  An :class:`ExceptionStream` fans events out to any
number of subscriber *sinks* (plain callables), so one run can feed a
bounded in-memory log, a JSONL file, and a live counter at once.

:class:`BoundedEventLog` is the standard retention sink: a
``collections.deque(maxlen=capacity)`` ring (O(1) eviction — the
original ``TracingEnv`` used ``list.pop(0)``, quadratic at capacity)
plus guaranteed retention of the *first* occurrence of each distinct
flag, the piece of evidence a debugger wants most.

This module deliberately does not import :mod:`repro.fpenv`: flags are
handled as generic :class:`enum.Flag` values (single-bit members are
decomposed structurally), which keeps the dependency arrow pointing
from the environment layer into telemetry and never back.
"""

from __future__ import annotations

import collections
import dataclasses
import enum
from typing import Any, Callable, Iterable

__all__ = [
    "FPExceptionEvent",
    "ExceptionStream",
    "BoundedEventLog",
    "single_flags",
]


#: Memoized single-bit decompositions, keyed by the flag value itself
#: (``enum.Flag`` composites are canonicalized singletons, so instance
#: identity is a safe key and avoids any per-call allocation).  Flag
#: raises are the hottest telemetry path — a conformance sweep emits
#: one per raising operation — and the set of distinct flag
#: combinations per run is tiny, so iterating the enum once per
#: combination (instead of once per raise) is nearly free.
_DECOMPOSED: dict[enum.Flag, tuple[enum.Flag, ...]] = {}


def _decompose(flags: enum.Flag) -> tuple[enum.Flag, ...]:
    members = _DECOMPOSED.get(flags)
    if members is None:
        members = _DECOMPOSED[flags] = tuple(
            member for member in type(flags)
            if member.value and not (member.value & (member.value - 1))
            and member in flags
        )
    return members


def single_flags(flags: enum.Flag) -> Iterable[enum.Flag]:
    """The single-bit members set in ``flags`` (composites skipped)."""
    return iter(_decompose(flags))


#: Memoized exported-name lists (see ``_DECOMPOSED`` for why caching
#: per flag combination pays: every event export calls this).
_FLAG_NAMES: dict[enum.Flag, list[str]] = {}


def _flag_names(flags: enum.Flag) -> list[str]:
    names = _FLAG_NAMES.get(flags)
    if names is None:
        names = _FLAG_NAMES[flags] = sorted(
            (member.name or "?").lower() for member in _decompose(flags)
        )
    return list(names)


@dataclasses.dataclass(slots=True)
class FPExceptionEvent:
    """One flag-raise, as an attributable coordinate.

    The first three fields match the legacy ``TraceEvent`` layout so
    existing positional constructions keep working.  Treat instances
    as immutable: they are constructed on the hottest instrumented
    path (one per raising operation), where a ``frozen`` dataclass's
    ``object.__setattr__``-per-field construction cost is measurable.
    """

    sequence: int
    operation: str
    flags: enum.Flag
    fmt: str | None = None
    span_path: str | None = None

    def render(self) -> str:
        names = ",".join(_flag_names(self.flags))
        return f"#{self.sequence} {self.operation}: {names}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "fp_event",
            "sequence": self.sequence,
            "operation": self.operation,
            "flags": _flag_names(self.flags),
            "fmt": self.fmt,
            "span": self.span_path,
        }


class ExceptionStream:
    """Assigns sequence numbers and fans events out to subscribers."""

    def __init__(self) -> None:
        self._sequence = 0
        self._sinks: list[Callable[[FPExceptionEvent], None]] = []

    def subscribe(self, sink: Callable[[FPExceptionEvent], None]) -> None:
        """Register ``sink`` (called with every future event)."""
        self._sinks.append(sink)

    def unsubscribe(self, sink: Callable[[FPExceptionEvent], None]) -> None:
        self._sinks.remove(sink)

    @property
    def subscriber_count(self) -> int:
        return len(self._sinks)

    @property
    def emitted(self) -> int:
        """Total events emitted (independent of any sink's retention)."""
        return self._sequence

    def record(
        self,
        operation: str,
        flags: enum.Flag,
        *,
        fmt: str | None = None,
        span_path: str | None = None,
    ) -> FPExceptionEvent:
        """Build the next event and deliver it to every subscriber."""
        self._sequence += 1
        event = FPExceptionEvent(
            self._sequence, operation, flags, fmt=fmt, span_path=span_path
        )
        for sink in self._sinks:
            sink(event)
        return event


class BoundedEventLog:
    """Ring-buffer sink with first-occurrence-per-flag retention."""

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: collections.deque[FPExceptionEvent] = collections.deque(
            maxlen=capacity
        )
        self._first_by_flag: dict[enum.Flag, FPExceptionEvent] = {}

    def __call__(self, event: FPExceptionEvent) -> None:
        self._events.append(event)
        first = self._first_by_flag
        for member in _decompose(event.flags):
            if member not in first:
                first[member] = event

    @property
    def events(self) -> tuple[FPExceptionEvent, ...]:
        """Retained events, oldest first (bounded by capacity)."""
        return tuple(self._events)

    def first_occurrence(self, flag: enum.Flag) -> FPExceptionEvent | None:
        """The first event that raised ``flag`` (never evicted)."""
        return self._first_by_flag.get(flag)

    def count(self, flag: enum.Flag) -> int:
        """Number of retained events that raised ``flag``."""
        return sum(1 for event in self._events if flag & event.flags)

    def render(self, limit: int = 20) -> str:
        """The first occurrences plus the most recent events."""
        lines = ["first occurrences:"]
        for flag, event in sorted(
            self._first_by_flag.items(), key=lambda kv: kv[1].sequence
        ):
            name = (flag.name or "?").lower()
            lines.append(f"  {name:<16} {event.render()}")
        if not self._first_by_flag:
            lines.append("  (none)")
        recent = list(self._events)[-limit:]
        lines.append(f"most recent {len(recent)} event(s):")
        lines.extend(f"  {event.render()}" for event in recent)
        return "\n".join(lines)
