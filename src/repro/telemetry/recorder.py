"""The bridge between the environment layer and telemetry.

:class:`TelemetryRecorder` is what an :class:`~repro.fpenv.FPEnv`
holds in its ``recorder`` slot while a telemetry session is active.
The environment layer calls exactly two hooks:

- :meth:`record_op` — once per softfloat operation entry (this is why
  ``softfloat.ops_total`` counters exist without any per-op branching
  inside the arithmetic: the op functions test one env attribute);
- :meth:`record_flags` — from ``FPEnv.raise_flags`` whenever sticky
  flags are set, which both bumps per-flag counters and emits an
  :class:`~repro.telemetry.events.FPExceptionEvent` tagged with the
  current span path.
"""

from __future__ import annotations

import enum

from repro.telemetry.events import ExceptionStream, single_flags
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import Tracer

__all__ = ["TelemetryRecorder"]


class TelemetryRecorder:
    """Routes env-layer hooks into a metrics registry and event stream.

    Both hooks sit on the per-operation hot path of an instrumented
    run, so the registry lookups (labels dict -> sorted key tuple ->
    instrument) are memoized per recorder: the distinct (op, format)
    and flag-combination populations of a run are tiny, and a cached
    hook is a dict probe plus an increment instead of a fresh
    registry resolution per softfloat operation.
    """

    __slots__ = ("metrics", "stream", "tracer",
                 "_op_counters", "_flag_counters")

    def __init__(
        self,
        metrics: MetricsRegistry,
        stream: ExceptionStream,
        tracer: Tracer | None = None,
    ) -> None:
        self.metrics = metrics
        self.stream = stream
        self.tracer = tracer
        self._op_counters: dict[tuple[str, str], object] = {}
        self._flag_counters: dict[object, tuple] = {}

    def record_op(self, operation: str, fmt_name: str) -> None:
        """One softfloat operation executed."""
        key = (operation, fmt_name)
        counter = self._op_counters.get(key)
        if counter is None:
            counter = self._op_counters[key] = self.metrics.counter(
                "softfloat.ops_total", op=operation, format=fmt_name
            )
        counter.inc()

    def record_flags(self, operation: str, flags: enum.Flag) -> None:
        """Sticky flags were raised by ``operation``."""
        tracer = self.tracer
        span_path = tracer.current_path() if tracer is not None else None
        self.stream.record(operation, flags, span_path=span_path or None)
        counters = self._flag_counters.get(flags)
        if counters is None:
            counters = self._flag_counters[flags] = tuple(
                self.metrics.counter(
                    "fpenv.exceptions_total",
                    flag=(member.name or "?").lower(),
                )
                for member in single_flags(flags)
            )
        for counter in counters:
            counter.inc()
