"""The bridge between the environment layer and telemetry.

:class:`TelemetryRecorder` is what an :class:`~repro.fpenv.FPEnv`
holds in its ``recorder`` slot while a telemetry session is active.
The environment layer calls exactly two hooks:

- :meth:`record_op` — once per softfloat operation entry (this is why
  ``softfloat.ops_total`` counters exist without any per-op branching
  inside the arithmetic: the op functions test one env attribute);
- :meth:`record_flags` — from ``FPEnv.raise_flags`` whenever sticky
  flags are set, which both bumps per-flag counters and emits an
  :class:`~repro.telemetry.events.FPExceptionEvent` tagged with the
  current span path.
"""

from __future__ import annotations

import enum

from repro.telemetry.events import ExceptionStream, single_flags
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import Tracer

__all__ = ["TelemetryRecorder"]


class TelemetryRecorder:
    """Routes env-layer hooks into a metrics registry and event stream."""

    __slots__ = ("metrics", "stream", "tracer")

    def __init__(
        self,
        metrics: MetricsRegistry,
        stream: ExceptionStream,
        tracer: Tracer | None = None,
    ) -> None:
        self.metrics = metrics
        self.stream = stream
        self.tracer = tracer

    def record_op(self, operation: str, fmt_name: str) -> None:
        """One softfloat operation executed."""
        self.metrics.counter(
            "softfloat.ops_total", op=operation, format=fmt_name
        ).inc()

    def record_flags(self, operation: str, flags: enum.Flag) -> None:
        """Sticky flags were raised by ``operation``."""
        span_path = self.tracer.current_path() if self.tracer else None
        self.stream.record(operation, flags, span_path=span_path or None)
        counter = self.metrics.counter
        for member in single_flags(flags):
            counter(
                "fpenv.exceptions_total", flag=(member.name or "?").lower()
            ).inc()
