"""Trace context: the identity that crosses process boundaries.

A :class:`TraceContext` names a position in a distributed trace — the
trace it belongs to (``trace_id``, 32 hex chars) and the span under
which new work should parent (``span_id``, the parent tracer's integer
span id).  It serializes to a W3C-traceparent-shaped string::

    00-<trace_id>-<span_id as 16 hex chars>-01

so the engine can ship it to workers as one opaque scalar and the
service can accept it from clients that already live in a trace.

The span id stays an integer because span ids are tracer-local: a
worker never uses the parent span id directly (its spans are re-homed
under a synthetic shard span at merge time, see
:mod:`repro.telemetry.merge`); the id rides along so the payload is
self-describing.
"""

from __future__ import annotations

import dataclasses
import uuid

__all__ = [
    "TraceContext",
    "new_trace_id",
    "format_traceparent",
    "parse_traceparent",
]

_VERSION = "00"


def new_trace_id() -> str:
    """A fresh 128-bit trace id as 32 lowercase hex chars."""
    return uuid.uuid4().hex


@dataclasses.dataclass(frozen=True)
class TraceContext:
    """Where in which trace new spans should attach."""

    trace_id: str
    span_id: int = 0

    def to_traceparent(self) -> str:
        return format_traceparent(self)


def format_traceparent(context: TraceContext) -> str:
    """``00-<trace_id>-<span_id:016x>-01`` (W3C-shaped)."""
    return f"{_VERSION}-{context.trace_id}-{context.span_id & ((1 << 64) - 1):016x}-01"


def parse_traceparent(value: str) -> TraceContext | None:
    """Parse a traceparent string; ``None`` on anything malformed.

    Lenient by design — a bad incoming header must never fail a
    request, it just starts a fresh trace.
    """
    if not isinstance(value, str):
        return None
    parts = value.strip().split("-")
    if len(parts) != 4:
        return None
    _version, trace_id, span_hex, _flags = parts
    if len(trace_id) != 32:
        return None
    try:
        int(trace_id, 16)
        span_id = int(span_hex, 16)
    except ValueError:
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id)
