"""Cross-process telemetry merge: harvest worker deltas into one forest.

The engine's workers (and the service's per-request sessions) each run
a private :class:`~repro.telemetry.runtime.Telemetry` session; results
ride the result channel unchanged, and the session's observations ride
*separately* as a compact, picklable payload dict:

- :func:`capture_payload` — worker side: snapshot a finished session
  (span dicts, a metrics delta, FP-exception event dicts) tagged with
  the trace id the worker adopted;
- :func:`merge_payload` — parent side: import the spans under a given
  local span id (see :meth:`Tracer.import_spans` for the id remap),
  fold the metrics delta into the parent registry, and replay the
  events through the parent's exception stream (renumbered by the
  parent's sequence, so merge order — shard-index order in the engine —
  fully determines the merged ordering).

Counters and mergeable log histograms fold exactly; gauges are
last-write-wins; legacy decimating histograms fold via
:meth:`Histogram.absorb_summary` (counts exact, quantiles
approximate).  Nothing here touches result values or cache keys —
telemetry must never influence either.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.telemetry.runtime import Telemetry

__all__ = [
    "PAYLOAD_VERSION",
    "capture_payload",
    "merge_metric",
    "merge_payload",
]

PAYLOAD_VERSION = 1


def capture_payload(session: Telemetry, *, wall: float = 0.0,
                    cpu: float = 0.0) -> dict[str, Any]:
    """Snapshot one finished session as a picklable payload dict."""
    metrics: list[list[Any]] = []
    for (name, labels), metric in session.metrics:
        metrics.append([name, dict(labels), metric.to_dict()])
    return {
        "v": PAYLOAD_VERSION,
        "trace_id": session.tracer.trace_id,
        "wall": wall,
        "cpu": cpu,
        "spans": [record.to_dict() for record in session.tracer.spans],
        "dropped_spans": session.tracer.dropped,
        "metrics": metrics,
        "events": [
            event.to_dict()
            for event in (session.events.events if session.events else ())
        ],
    }


def merge_metric(registry, name: str, labels: dict[str, str],
                 data: dict[str, Any]) -> None:
    """Fold one exported instrument into ``registry``."""
    kind = data.get("type")
    if kind == "counter":
        registry.counter(name, **labels).inc(int(data.get("value") or 0))
    elif kind == "gauge":
        registry.gauge(name, **labels).set(float(data.get("value") or 0.0))
    elif kind == "log_histogram":
        registry.log_histogram(name, **labels).merge_dict(data)
    elif kind == "histogram":
        registry.histogram(name, **labels).absorb_summary(data)
    # unknown kinds are dropped: a newer worker must not crash an
    # older parent over an instrument it cannot represent


#: Memoized name-tuple -> composite reconstructions: a harvested shard
#: replays hundreds of events whose flag lists repeat from a tiny set,
#: so the enum arithmetic runs once per distinct combination.
_FLAGS_FROM_NAMES: dict[tuple[str, ...], Any] = {}


def _flags_from_names(names: list[str]) -> enum.Flag | None:
    """Reconstruct an FPFlag composite from exported flag names.

    Lazy import keeps :mod:`repro.telemetry` dependency-free for every
    path that never merges; events whose names match no known FP flag
    (e.g. engine fault flags replayed through a worker) are skipped by
    the caller.
    """
    key = tuple(names)
    if key in _FLAGS_FROM_NAMES:
        return _FLAGS_FROM_NAMES[key]
    try:
        from repro.fpenv.flags import FPFlag
    except ImportError:  # pragma: no cover - fpenv always present here
        return None
    combined = FPFlag(0)
    for name in names:
        member = FPFlag.__members__.get(str(name).upper())
        if member is not None:
            combined |= member
    result = combined if combined else None
    _FLAGS_FROM_NAMES[key] = result
    return result


def merge_payload(parent: Telemetry, payload: dict[str, Any], *,
                  under_span_id: int = 0, path_prefix: str = "") -> None:
    """Fold one worker payload into the parent session."""
    if not parent.enabled:
        return
    parent.tracer.import_spans(
        payload.get("spans") or (),
        under=under_span_id, path_prefix=path_prefix,
    )
    dropped = payload.get("dropped_spans") or 0
    if dropped:
        parent.metrics.counter("telemetry.dropped_spans_total").inc(dropped)
    for entry in payload.get("metrics") or ():
        name, labels, data = entry
        merge_metric(parent.metrics, name, labels, data)
    for event in payload.get("events") or ():
        flags = _flags_from_names(event.get("flags") or [])
        if flags is None:
            continue
        parent.stream.record(
            event.get("operation", "?"), flags,
            fmt=event.get("fmt"),
            span_path=event.get("span"),
        )
