"""Span tracing: nested, timed scopes with attributes.

A :class:`Tracer` records a tree of *spans* — named scopes with wall
and CPU time plus arbitrary attributes — via a context-manager API
(``with tracer.span("oracle.run", format="binary32"):``) or a
decorator (``@tracer.traced()``).  Finished spans accumulate as
:class:`SpanRecord` values that the exporters in
:mod:`repro.telemetry.export` dump to JSONL and render as a tree.

Disabled tracing must cost nothing: :class:`NullTracer` exposes the
same surface but ``span()`` returns a shared no-op context manager, so
an instrumented call site pays one attribute lookup and one trivial
call when telemetry is off.
"""

from __future__ import annotations

import dataclasses
import functools
import threading
import time
from typing import Any, Callable, Iterable

from repro.telemetry.context import TraceContext, new_trace_id

__all__ = ["SpanRecord", "Span", "Tracer", "NullTracer", "NULL_TRACER"]

_DEFAULT_MAX_SPANS = 100_000


@dataclasses.dataclass(frozen=True)
class SpanRecord:
    """One finished span.

    ``start`` is seconds since the tracer's epoch (its creation), so
    records from one tracer are mutually comparable; ``parent_id`` is 0
    for roots.
    """

    span_id: int
    parent_id: int
    name: str
    path: str
    start: float
    wall: float
    cpu: float
    attrs: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "path": self.path,
            "start": round(self.start, 9),
            "wall": round(self.wall, 9),
            "cpu": round(self.cpu, 9),
            "attrs": self.attrs,
        }


class Span:
    """An in-flight span; also its own context manager."""

    __slots__ = ("_tracer", "name", "attrs", "_id", "_parent_id",
                 "_path", "_start", "_cpu0")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def set(self, key: str, value: Any) -> None:
        """Attach/overwrite one attribute on the open span."""
        self.attrs[key] = value

    @property
    def span_id(self) -> int:
        """This span's id (0 before ``__enter__``)."""
        return getattr(self, "_id", 0)

    @property
    def path(self) -> str:
        """Slash-joined path of this span ('' before ``__enter__``)."""
        return getattr(self, "_path", "")

    def __enter__(self) -> "Span":
        tracer = self._tracer
        stack = tracer._stack()
        self._parent_id = stack[-1]._id if stack else 0
        self._id = tracer._next_id()
        parent_path = stack[-1]._path if stack else ""
        self._path = f"{parent_path}/{self.name}" if parent_path else self.name
        stack.append(self)
        self._start = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        wall = time.perf_counter() - self._start
        cpu = time.process_time() - self._cpu0
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(SpanRecord(
            span_id=self._id,
            parent_id=self._parent_id,
            name=self.name,
            path=self._path,
            start=self._start - self._tracer._epoch,
            wall=wall,
            cpu=cpu,
            attrs=self.attrs,
        ))


class Tracer:
    """Collects a bounded list of finished spans (oldest kept).

    Every tracer belongs to exactly one *trace*: ``trace_id`` is
    generated at construction unless a parent's id is adopted (the
    cross-process propagation path — engine workers and service
    request sessions join the trace that dispatched them).
    """

    def __init__(self, max_spans: int = _DEFAULT_MAX_SPANS, *,
                 trace_id: str | None = None) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be positive")
        self._max_spans = max_spans
        self.trace_id = trace_id or new_trace_id()
        self._records: list[SpanRecord] = []
        self._dropped = 0
        self._epoch = time.perf_counter()
        self._counter = 0
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- internals -----------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> int:
        with self._lock:
            self._counter += 1
            return self._counter

    def _finish(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._records) < self._max_spans:
                self._records.append(record)
            else:
                self._dropped += 1

    # -- public API ----------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        """A context manager timing the enclosed block as a span."""
        return Span(self, name, attrs)

    def traced(self, name: str | None = None,
               **attrs: Any) -> Callable[[Callable], Callable]:
        """Decorator form: the function body becomes a span."""
        def decorate(fn: Callable) -> Callable:
            span_name = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(span_name, **attrs):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    def current_path(self) -> str:
        """Slash-joined names of the open spans ('' outside any span)."""
        stack = self._stack()
        return stack[-1]._path if stack else ""

    def current_context(self) -> TraceContext:
        """This trace's id plus the innermost open span's id — what a
        dispatcher serializes (as a traceparent) for remote work."""
        stack = self._stack()
        return TraceContext(
            trace_id=self.trace_id,
            span_id=stack[-1]._id if stack else 0,
        )

    def add_record(self, name: str, *, parent_id: int = 0,
                   path: str | None = None, wall: float = 0.0,
                   cpu: float = 0.0, attrs: dict[str, Any] | None = None,
                   ) -> int:
        """Append a synthetic finished span and return its id.

        This is the merge path's tool: the parent manufactures one
        ``engine.shard`` span per harvested worker payload so imported
        worker spans have a local span to parent under.  ``start`` is
        stamped from the tracer's own clock, so records added in shard
        order render in shard order.
        """
        span_id = self._next_id()
        self._finish(SpanRecord(
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            path=path or name,
            start=time.perf_counter() - self._epoch,
            wall=wall,
            cpu=cpu,
            attrs=dict(attrs) if attrs else {},
        ))
        return span_id

    def import_spans(self, records: Iterable[dict[str, Any]], *,
                     under: int = 0, path_prefix: str = "") -> int:
        """Adopt finished span dicts from another tracer's dump.

        Worker span ids are tracer-local integers, so they are remapped
        into this tracer's id space; intra-payload parent links are
        preserved, and roots (or spans whose parent is missing from the
        payload) are re-homed under span ``under``.  Returns how many
        spans were imported.  ``start`` values keep the source tracer's
        epoch — mutually comparable within one payload, not across.
        """
        records = list(records)
        mapping: dict[int, int] = {}
        for record in records:
            span_id = record.get("id")
            if isinstance(span_id, int):
                mapping[span_id] = self._next_id()
        imported = 0
        for record in records:
            span_id = record.get("id")
            if not isinstance(span_id, int):
                continue
            local_path = record.get("path") or record.get("name", "?")
            self._finish(SpanRecord(
                span_id=mapping[span_id],
                parent_id=mapping.get(record.get("parent", 0), under),
                name=record.get("name", "?"),
                path=(f"{path_prefix}/{local_path}" if path_prefix
                      else local_path),
                start=float(record.get("start", 0.0)),
                wall=float(record.get("wall", 0.0)),
                cpu=float(record.get("cpu", 0.0)),
                attrs=dict(record.get("attrs") or {}),
            ))
            imported += 1
        return imported

    @property
    def spans(self) -> tuple[SpanRecord, ...]:
        """Finished spans, in completion order."""
        return tuple(self._records)

    @property
    def dropped(self) -> int:
        """Spans discarded after ``max_spans`` was reached."""
        return self._dropped

    def render_tree(self) -> str:
        """Indented tree of finished spans with wall/CPU times."""
        from repro.telemetry.export import render_span_tree

        return render_span_tree([r.to_dict() for r in self._records])


class _NullSpan:
    """Shared do-nothing span."""

    __slots__ = ()

    span_id = 0
    path = ""

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: same surface, no recording, no timing."""

    trace_id: str | None = None

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def traced(self, name: str | None = None,
               **attrs: Any) -> Callable[[Callable], Callable]:
        def decorate(fn: Callable) -> Callable:
            return fn

        return decorate

    def current_path(self) -> str:
        return ""

    def current_context(self) -> None:
        return None

    def add_record(self, name: str, **kwargs: Any) -> int:
        return 0

    def import_spans(self, records: Iterable[dict[str, Any]],
                     **kwargs: Any) -> int:
        return 0

    @property
    def spans(self) -> tuple[SpanRecord, ...]:
        return ()

    @property
    def dropped(self) -> int:
        return 0

    def render_tree(self) -> str:
        return "(tracing disabled)"


#: Shared disabled tracer (stateless, safe to reuse everywhere).
NULL_TRACER = NullTracer()
