"""Unified observability: span tracing, metrics, FP-exception events.

The paper's thesis is that exceptional conditions go unnoticed because
nothing surfaces them; this package is the reproduction's answer for
its *own* runtime.  Three pillars, zero dependencies:

- **Span tracing** (:mod:`~repro.telemetry.tracer`): nested, timed
  scopes with attributes; :class:`NullTracer` makes disabled tracing
  cost one attribute lookup.
- **Metrics** (:mod:`~repro.telemetry.metrics`): labelled counters,
  gauges, and bounded histograms with p50/p95/p99 summaries.
- **FP-exception events** (:mod:`~repro.telemetry.events`): every
  flag-raise becomes a streamable coordinate (operation, flags, span
  path) fanned out to pluggable sinks; the environment layer's
  ``TracingEnv`` is a compatibility shim over this stream.

Enable with :func:`telemetry_session`; export with
:mod:`~repro.telemetry.export`; or use the CLI
(``python -m repro telemetry``, and ``--trace``/``--metrics-out`` on
``study``, ``oracle run``, and ``optsim``).
"""

from repro.telemetry.context import (
    TraceContext,
    format_traceparent,
    new_trace_id,
    parse_traceparent,
)
from repro.telemetry.events import (
    BoundedEventLog,
    ExceptionStream,
    FPExceptionEvent,
    single_flags,
)
from repro.telemetry.merge import (
    capture_payload,
    merge_metric,
    merge_payload,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    LogHistogram,
    MetricsRegistry,
    NullMetrics,
    NULL_METRICS,
)
from repro.telemetry.prometheus import (
    parse_exposition,
    render_prometheus,
)
from repro.telemetry.recorder import TelemetryRecorder
from repro.telemetry.runtime import (
    NULL_TELEMETRY,
    Telemetry,
    active_recorder,
    get_telemetry,
    reset_for_process,
    set_telemetry,
    telemetry_session,
)
from repro.telemetry.tracer import (
    NullTracer,
    NULL_TRACER,
    Span,
    SpanRecord,
    Tracer,
)

__all__ = [
    "BoundedEventLog",
    "Counter",
    "ExceptionStream",
    "FPExceptionEvent",
    "Gauge",
    "Histogram",
    "LogHistogram",
    "MetricsRegistry",
    "NullMetrics",
    "NullTracer",
    "NULL_METRICS",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "Span",
    "SpanRecord",
    "Telemetry",
    "TelemetryRecorder",
    "TraceContext",
    "Tracer",
    "active_recorder",
    "capture_payload",
    "format_traceparent",
    "get_telemetry",
    "merge_metric",
    "merge_payload",
    "new_trace_id",
    "parse_exposition",
    "parse_traceparent",
    "render_prometheus",
    "reset_for_process",
    "set_telemetry",
    "single_flags",
    "telemetry_session",
]
