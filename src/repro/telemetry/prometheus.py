"""Prometheus/OpenMetrics text exposition for a metrics registry.

:func:`render_prometheus` walks a :class:`MetricsRegistry` and emits
the standard text format:

- counters and gauges become single samples;
- :class:`LogHistogram` becomes a Prometheus *histogram* family —
  cumulative ``_bucket{le=...}`` samples (upper bounds are the
  log-bucket boundaries), ``_sum`` and ``_count``;
- the legacy decimating :class:`Histogram` becomes a *summary* family
  (``{quantile="..."}`` samples plus ``_sum``/``_count``);
- *exemplars* (OpenMetrics ``# {trace_id="..."} value`` suffixes)
  attach to counter samples and histogram ``+Inf`` buckets, keyed by
  the registry's canonical ``name{label=value,...}`` spelling — this
  is how a per-flag FP-exception count points back at the trace that
  raised it.

:func:`parse_exposition` is the matching format checker used by tests
and CI: it validates line shapes and returns the parsed samples, so a
scrape pipeline drift (bad name, bad label escaping, non-numeric
value) fails loudly rather than silently dropping series.
"""

from __future__ import annotations

import math
import re
from typing import Any

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    LogHistogram,
    format_metric_name,
)

__all__ = ["render_prometheus", "parse_exposition", "sanitize_name"]

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[+-]?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?|Inf|NaN))"
    r"(?P<exemplar> # \{[^{}]*\} [^ ]+( [0-9.eE+-]+)?)?$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def sanitize_name(name: str) -> str:
    """Map a dotted metric name onto the Prometheus charset."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not _NAME_OK.match(cleaned):
        cleaned = f"_{cleaned}"
    return cleaned


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r'\"')
        .replace("\n", r"\n")
    )


def _labels_text(labels: tuple[tuple[str, str], ...],
                 extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [
        f'{sanitize_name(key)}="{_escape(value)}"'
        for key, value in (*labels, *extra)
    ]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _number(value: float | None) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def _exemplar_suffix(exemplar: tuple[str, float] | None) -> str:
    if exemplar is None:
        return ""
    trace_id, value = exemplar
    return f' # {{trace_id="{_escape(trace_id)}"}} {_number(value)}'


def render_prometheus(
    registry,
    *,
    exemplars: dict[str, tuple[str, float]] | None = None,
) -> str:
    """The registry as Prometheus text format (one trailing newline).

    ``exemplars`` maps the canonical ``name{label=value,...}`` spelling
    (:func:`format_metric_name`) to ``(trace_id, value)``.
    """
    exemplars = exemplars or {}
    families: dict[str, list[str]] = {}
    types: dict[str, str] = {}
    for (name, labels), metric in registry:
        base = sanitize_name(name)
        canonical = format_metric_name(name, labels)
        exemplar = exemplars.get(canonical)
        lines = families.setdefault(base, [])
        if isinstance(metric, Counter):
            types[base] = "counter"
            lines.append(
                f"{base}{_labels_text(labels)} {_number(metric.value)}"
                f"{_exemplar_suffix(exemplar)}"
            )
        elif isinstance(metric, Gauge):
            types[base] = "gauge"
            lines.append(
                f"{base}{_labels_text(labels)} {_number(metric.value)}"
            )
        elif isinstance(metric, LogHistogram):
            types[base] = "histogram"
            for upper, cumulative in metric.bucket_bounds():
                lines.append(
                    f"{base}_bucket"
                    f"{_labels_text(labels, (('le', _number(upper)),))}"
                    f" {cumulative}"
                )
            lines.append(
                f"{base}_bucket{_labels_text(labels, (('le', '+Inf'),))}"
                f" {metric.count}{_exemplar_suffix(exemplar)}"
            )
            lines.append(
                f"{base}_sum{_labels_text(labels)} {_number(metric.total)}"
            )
            lines.append(
                f"{base}_count{_labels_text(labels)} {metric.count}"
            )
        elif isinstance(metric, Histogram):
            types[base] = "summary"
            for q in (0.5, 0.95, 0.99):
                lines.append(
                    f"{base}"
                    f"{_labels_text(labels, (('quantile', str(q)),))}"
                    f" {_number(metric.quantile(q))}"
                )
            lines.append(
                f"{base}_sum{_labels_text(labels)} {_number(metric.total)}"
            )
            lines.append(
                f"{base}_count{_labels_text(labels)} {metric.count}"
            )
    out: list[str] = []
    for base in sorted(families):
        out.append(f"# TYPE {base} {types[base]}")
        out.extend(families[base])
    return "\n".join(out) + "\n" if out else "\n"


def parse_exposition(text: str) -> dict[str, Any]:
    """Validate Prometheus text format; raises ``ValueError`` on drift.

    Returns ``{"types": {family: type}, "samples": {sample_key: value},
    "exemplars": {sample_key: trace_id}}`` where ``sample_key`` is the
    exposition spelling ``name{label="value",...}``.
    """
    types: dict[str, str] = {}
    samples: dict[str, float] = {}
    found_exemplars: dict[str, str] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"line {number}: malformed TYPE line")
            _, _, family, kind = parts
            if not _NAME_OK.match(family):
                raise ValueError(
                    f"line {number}: bad family name {family!r}"
                )
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                raise ValueError(f"line {number}: bad type {kind!r}")
            types[family] = kind
            continue
        if line.startswith("#"):
            continue  # HELP/comments
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {number}: malformed sample: {line!r}")
        labels_text = match.group("labels") or ""
        if labels_text:
            body = labels_text[1:-1]
            stripped = _LABEL.sub("", body)
            if stripped.strip(", "):
                raise ValueError(
                    f"line {number}: malformed labels: {labels_text!r}"
                )
        key = match.group("name") + labels_text
        raw = match.group("value")
        value = float(raw.replace("Inf", "inf"))
        samples[key] = value
        exemplar = match.group("exemplar")
        if exemplar:
            trace_match = re.search(r'trace_id="([^"]*)"', exemplar)
            if trace_match:
                found_exemplars[key] = trace_match.group(1)
    return {
        "types": types,
        "samples": samples,
        "exemplars": found_exemplars,
    }
