"""Metrics registry: counters, gauges, and bounded histograms.

Metrics are named and optionally labelled —
``registry.counter("softfloat.ops_total", op="add", format="binary64")``
— and each (name, labels) pair maps to one instrument for the life of
the registry.  Histograms keep a bounded, deterministically decimated
sample set, so quantile summaries (p50/p95/p99) stay exact up to the
capacity and degrade gracefully (every second order statistic) beyond
it; ``count``/``sum``/``min``/``max`` are always exact.

:class:`NullMetrics` is the disabled registry: instrument lookups
return shared no-op instances so instrumented code pays one call and
no allocation when telemetry is off.
"""

from __future__ import annotations

from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "format_metric_name",
]

_DEFAULT_HISTOGRAM_CAPACITY = 2048


def format_metric_name(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    """Canonical ``name{k=v,...}`` spelling used in exports."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def to_dict(self) -> dict[str, Any]:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def to_dict(self) -> dict[str, Any]:
        return {"type": self.kind, "value": self.value}


class Histogram:
    """Bounded distribution summary with quantile estimates.

    Observations beyond ``capacity`` trigger a deterministic decimation:
    the retained (sorted) samples are thinned to every second one and
    the sampling stride doubles, so memory stays bounded while the
    retained set remains an even spread of the order statistics.
    """

    __slots__ = ("capacity", "count", "total", "min", "max",
                 "_samples", "_stride", "_pending")
    kind = "histogram"

    def __init__(self, capacity: int = _DEFAULT_HISTOGRAM_CAPACITY) -> None:
        if capacity < 2:
            raise ValueError("histogram capacity must be at least 2")
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._samples: list[float] = []
        self._stride = 1
        self._pending = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._pending += 1
        if self._pending >= self._stride:
            self._pending = 0
            self._samples.append(value)
            if len(self._samples) >= self.capacity:
                self._samples.sort()
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> float | None:
        """Linear-interpolated quantile of the retained samples
        (``None`` when nothing has been observed)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        position = q * (len(ordered) - 1)
        lo = int(position)
        hi = min(lo + 1, len(ordered) - 1)
        fraction = position - lo
        return ordered[lo] * (1.0 - fraction) + ordered[hi] * fraction

    def summary(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def to_dict(self) -> dict[str, Any]:
        return {"type": self.kind, **self.summary()}


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Creates instruments on demand and snapshots them for export."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], Any] = {}

    def _get(self, kind: str, name: str, labels: dict[str, Any],
             **kwargs: Any) -> Any:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = _KINDS[kind](**kwargs)
        elif metric.kind != kind:
            raise TypeError(
                f"metric {format_metric_name(*key)!r} already registered"
                f" as a {metric.kind}, not a {kind}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, *, capacity: int | None = None,
                  **labels: Any) -> Histogram:
        kwargs = {} if capacity is None else {"capacity": capacity}
        return self._get("histogram", name, labels, **kwargs)

    def __iter__(self) -> Iterable:
        return iter(sorted(self._metrics.items()))

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view: ``{"name{labels}": {...}}``, sorted."""
        return {
            format_metric_name(name, labels): metric.to_dict()
            for (name, labels), metric in sorted(self._metrics.items())
        }

    def render(self) -> str:
        """Human-readable table of every instrument."""
        from repro.telemetry.export import render_metrics

        return render_metrics(self.snapshot())


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetrics:
    """The disabled registry: shared no-op instruments, empty snapshot."""

    enabled = False

    def counter(self, name: str, **labels: Any) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str, *, capacity: int | None = None,
                  **labels: Any) -> Histogram:
        return _NULL_HISTOGRAM

    def __iter__(self):
        return iter(())

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> dict[str, Any]:
        return {}

    def render(self) -> str:
        return "(metrics disabled)"


#: Shared disabled registry.
NULL_METRICS = NullMetrics()
