"""Metrics registry: counters, gauges, and bounded histograms.

Metrics are named and optionally labelled —
``registry.counter("softfloat.ops_total", op="add", format="binary64")``
— and each (name, labels) pair maps to one instrument for the life of
the registry.  Histograms keep a bounded, deterministically decimated
sample set, so quantile summaries (p50/p95/p99) stay exact up to the
capacity and degrade gracefully (every second order statistic) beyond
it; ``count``/``sum``/``min``/``max`` are always exact.

:class:`NullMetrics` is the disabled registry: instrument lookups
return shared no-op instances so instrumented code pays one call and
no allocation when telemetry is off.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LogHistogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "format_metric_name",
]

_DEFAULT_HISTOGRAM_CAPACITY = 2048


def format_metric_name(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    """Canonical ``name{k=v,...}`` spelling used in exports."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def to_dict(self) -> dict[str, Any]:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def to_dict(self) -> dict[str, Any]:
        return {"type": self.kind, "value": self.value}


class Histogram:
    """Bounded distribution summary with quantile estimates.

    Observations beyond ``capacity`` trigger a deterministic decimation:
    the retained (sorted) samples are thinned to every second one and
    the sampling stride doubles, so memory stays bounded while the
    retained set remains an even spread of the order statistics.
    """

    __slots__ = ("capacity", "count", "total", "min", "max",
                 "_samples", "_stride", "_pending")
    kind = "histogram"

    def __init__(self, capacity: int = _DEFAULT_HISTOGRAM_CAPACITY) -> None:
        if capacity < 2:
            raise ValueError("histogram capacity must be at least 2")
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._samples: list[float] = []
        self._stride = 1
        self._pending = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._pending += 1
        if self._pending >= self._stride:
            self._pending = 0
            self._samples.append(value)
            if len(self._samples) >= self.capacity:
                self._samples.sort()
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> float | None:
        """Linear-interpolated quantile of the retained samples
        (``None`` when nothing has been observed)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        position = q * (len(ordered) - 1)
        lo = int(position)
        hi = min(lo + 1, len(ordered) - 1)
        fraction = position - lo
        return ordered[lo] * (1.0 - fraction) + ordered[hi] * fraction

    def summary(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def to_dict(self) -> dict[str, Any]:
        return {"type": self.kind, **self.summary()}

    def absorb_summary(self, summary: dict[str, Any]) -> None:
        """Fold another histogram's exported summary into this one.

        ``count``/``sum``/``min``/``max`` merge exactly; the sample set
        only gains the summary's quantile points, so merged quantiles
        are approximate.  Shard-quality merging is what
        :class:`LogHistogram` is for — this keeps legacy decimating
        histograms from silently vanishing in a cross-process merge.
        """
        extra = int(summary.get("count") or 0)
        if extra <= 0:
            return
        self.count += extra
        self.total += float(summary.get("sum") or 0.0)
        for bound in (summary.get("min"), summary.get("max")):
            if bound is None:
                continue
            bound = float(bound)
            if self.min is None or bound < self.min:
                self.min = bound
            if self.max is None or bound > self.max:
                self.max = bound
        for key in ("min", "p50", "p95", "p99", "max"):
            value = summary.get(key)
            if value is not None:
                self._samples.append(float(value))


#: Per-bucket growth factor: 2**(1/8) bounds the relative quantile
#: error at (gamma-1)/(gamma+1) ~= 4.4% while keeping bucket counts
#: small (one decade of values spans ~27 buckets).
_LOG_GAMMA = 2.0 ** 0.125
_LN_GAMMA = math.log(_LOG_GAMMA)


class LogHistogram:
    """Mergeable log-bucketed histogram (DDSketch-style).

    Values map to geometric buckets ``(gamma**(i-1), gamma**i]`` with
    ``gamma = 2**(1/8)``; a bucket is just an integer count, so two
    histograms merge by *adding bucket counts* — exactly associative
    and commutative, which is what lets worker-shard deltas aggregate
    in any arrival order with parent quantiles independent of that
    order.  ``count``/``min``/``max`` merge exactly too; ``sum`` is a
    float accumulation and may differ in the last ulp under regrouping.

    Quantiles return the geometric midpoint of the covering bucket,
    clamped to the observed ``[min, max]`` — so a single observation
    reports itself exactly, and the relative error is bounded by
    ``(gamma-1)/(gamma+1)`` (~4.4%) everywhere else.
    """

    __slots__ = ("count", "total", "min", "max",
                 "_buckets", "_neg_buckets", "_zero")
    kind = "log_histogram"

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._buckets: dict[int, int] = {}
        self._neg_buckets: dict[int, int] = {}
        self._zero = 0

    @staticmethod
    def _index(magnitude: float) -> int:
        return math.ceil(math.log(magnitude) / _LN_GAMMA)

    def observe(self, value: float, _log=math.log, _ceil=math.ceil,
                _ln_gamma=_LN_GAMMA) -> None:
        # Hot path (one call per timed operation): the bucket index is
        # computed inline rather than via _index so a single call frame
        # covers the whole observation.
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value > 0.0:
            index = _ceil(_log(value) / _ln_gamma)
            buckets = self._buckets
            buckets[index] = buckets.get(index, 0) + 1
        elif value == 0.0:
            self._zero += 1
        else:
            index = _ceil(_log(-value) / _ln_gamma)
            buckets = self._neg_buckets
            buckets[index] = buckets.get(index, 0) + 1

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold ``other`` into this histogram (returns self)."""
        self.count += other.count
        self.total += other.total
        for bound in (other.min, other.max):
            if bound is None:
                continue
            if self.min is None or bound < self.min:
                self.min = bound
            if self.max is None or bound > self.max:
                self.max = bound
        for index, n in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + n
        for index, n in other._neg_buckets.items():
            self._neg_buckets[index] = self._neg_buckets.get(index, 0) + n
        self._zero += other._zero
        return self

    def merge_dict(self, data: dict[str, Any]) -> "LogHistogram":
        """Fold an exported ``to_dict()`` payload into this histogram."""
        other = LogHistogram.from_dict(data)
        return self.merge(other)

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "LogHistogram":
        hist = LogHistogram()
        hist.count = int(data.get("count") or 0)
        hist.total = float(data.get("sum") or 0.0)
        hist.min = data.get("min")
        hist.max = data.get("max")
        hist._zero = int(data.get("zero") or 0)
        hist._buckets = {
            int(k): int(v) for k, v in (data.get("buckets") or {}).items()
        }
        hist._neg_buckets = {
            int(k): int(v)
            for k, v in (data.get("neg_buckets") or {}).items()
        }
        return hist

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    @staticmethod
    def _representative(index: int) -> float:
        # geometric midpoint of (gamma**(i-1), gamma**i]
        return 2.0 * (_LOG_GAMMA ** index) / (1.0 + _LOG_GAMMA)

    def _ranked(self) -> Iterable[tuple[float, int]]:
        """(representative, count) in ascending value order."""
        for index in sorted(self._neg_buckets, reverse=True):
            yield -self._representative(index), self._neg_buckets[index]
        if self._zero:
            yield 0.0, self._zero
        for index in sorted(self._buckets):
            yield self._representative(index), self._buckets[index]

    def quantile(self, q: float) -> float | None:
        """Bucket-midpoint quantile, clamped to ``[min, max]``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.count:
            return None
        rank = min(self.count, max(1, math.ceil(q * self.count)))
        seen = 0
        value = self.min
        for representative, n in self._ranked():
            seen += n
            if seen >= rank:
                value = representative
                break
        if self.min is not None:
            value = max(value, self.min)
        if self.max is not None:
            value = min(value, self.max)
        return value

    def bucket_bounds(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs for Prometheus-
        style exposition (positive buckets; zero/negatives fold into
        the first bound)."""
        pairs: list[tuple[float, int]] = []
        cumulative = self._zero + sum(self._neg_buckets.values())
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            pairs.append((_LOG_GAMMA ** index, cumulative))
        return pairs

    def summary(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def to_dict(self) -> dict[str, Any]:
        payload = {"type": self.kind, **self.summary()}
        payload["buckets"] = {
            str(index): n for index, n in sorted(self._buckets.items())
        }
        if self._neg_buckets:
            payload["neg_buckets"] = {
                str(index): n
                for index, n in sorted(self._neg_buckets.items())
            }
        if self._zero:
            payload["zero"] = self._zero
        return payload


_KINDS = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
    "log_histogram": LogHistogram,
}


class MetricsRegistry:
    """Creates instruments on demand and snapshots them for export."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], Any] = {}

    def _get(self, kind: str, name: str, labels: dict[str, Any],
             **kwargs: Any) -> Any:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = _KINDS[kind](**kwargs)
        elif metric.kind != kind:
            raise TypeError(
                f"metric {format_metric_name(*key)!r} already registered"
                f" as a {metric.kind}, not a {kind}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, *, capacity: int | None = None,
                  **labels: Any) -> Histogram:
        kwargs = {} if capacity is None else {"capacity": capacity}
        return self._get("histogram", name, labels, **kwargs)

    def log_histogram(self, name: str, **labels: Any) -> LogHistogram:
        """The mergeable histogram — use for anything that must
        aggregate across processes (shard deltas, request sessions)."""
        return self._get("log_histogram", name, labels)

    def __iter__(self) -> Iterable:
        return iter(sorted(self._metrics.items()))

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view: ``{"name{labels}": {...}}``, sorted."""
        return {
            format_metric_name(name, labels): metric.to_dict()
            for (name, labels), metric in sorted(self._metrics.items())
        }

    def render(self) -> str:
        """Human-readable table of every instrument."""
        from repro.telemetry.export import render_metrics

        return render_metrics(self.snapshot())


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class _NullLogHistogram(LogHistogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_LOG_HISTOGRAM = _NullLogHistogram()


class NullMetrics:
    """The disabled registry: shared no-op instruments, empty snapshot."""

    enabled = False

    def counter(self, name: str, **labels: Any) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str, *, capacity: int | None = None,
                  **labels: Any) -> Histogram:
        return _NULL_HISTOGRAM

    def log_histogram(self, name: str, **labels: Any) -> LogHistogram:
        return _NULL_LOG_HISTOGRAM

    def __iter__(self):
        return iter(())

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> dict[str, Any]:
        return {}

    def render(self) -> str:
        return "(metrics disabled)"


#: Shared disabled registry.
NULL_METRICS = NullMetrics()
