"""Exporters: JSONL traces, metrics JSON, and human-readable renders.

The trace format is line-delimited JSON, one record per line, each
self-describing via a ``"type"`` field — streamable, greppable, and
diffable.  Version 2 (this writer) opens the file with one ``meta``
record carrying the schema version and the session's ``trace_id``, and
stamps the trace id on every span and event record so a merged
cross-process trace is greppable by trace id alone; version 1 files
(no meta line, no trace ids) still load.  Metrics snapshots are a
single JSON object keyed by the canonical ``name{label=value,...}``
spelling.  Both formats round-trip: :func:`load_trace` and
:func:`load_metrics_json` parse back exactly what the writers emit.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.telemetry.runtime import Telemetry

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "trace_records",
    "write_trace_jsonl",
    "load_trace",
    "load_trace_jsonl",
    "render_span_tree",
    "metrics_snapshot",
    "write_metrics_json",
    "load_metrics_json",
    "render_metrics",
]

TRACE_SCHEMA_VERSION = 2


# -- traces ------------------------------------------------------------


def trace_records(telemetry: Telemetry) -> list[dict[str, Any]]:
    """Every span and FP-exception event of a session, as dicts.

    Spans come first (completion order), then retained events — each
    record self-describes via ``"type"`` and carries the session's
    ``trace_id`` (when the tracer has one).
    """
    trace_id = getattr(telemetry.tracer, "trace_id", None)
    records: list[dict[str, Any]] = [
        span.to_dict() for span in telemetry.tracer.spans
    ]
    if telemetry.events is not None:
        records.extend(event.to_dict() for event in telemetry.events.events)
    if trace_id is not None:
        for record in records:
            record.setdefault("trace_id", trace_id)
    return records


def write_trace_jsonl(path: str, telemetry: Telemetry) -> int:
    """Dump a session's trace to ``path``; returns the record count.

    The leading ``meta`` line is schema framing, not a record — it is
    excluded from the returned count.
    """
    records = trace_records(telemetry)
    meta = {
        "type": "meta",
        "version": TRACE_SCHEMA_VERSION,
        "trace_id": getattr(telemetry.tracer, "trace_id", None),
        "dropped_spans": telemetry.tracer.dropped,
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(meta, sort_keys=True))
        handle.write("\n")
        for record in records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
    return len(records)


def load_trace(path: str) -> dict[str, Any]:
    """Parse a trace dump into ``{"meta", "spans", "events"}``.

    Version 1 files (no meta line) load with a synthesized
    ``{"version": 1}`` meta.  Raises ``ValueError`` on lines that are
    not JSON objects or have an unknown type, so a truncated or
    foreign file fails loudly.
    """
    meta: dict[str, Any] = {"version": 1}
    spans: list[dict[str, Any]] = []
    events: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError(f"line {number}: not a JSON object")
            kind = record.get("type")
            if kind == "span":
                spans.append(record)
            elif kind == "fp_event":
                events.append(record)
            elif kind == "meta":
                meta = {k: v for k, v in record.items() if k != "type"}
            else:
                raise ValueError(
                    f"line {number}: unknown record type {kind!r}"
                )
    return {"meta": meta, "spans": spans, "events": events}


def load_trace_jsonl(
    path: str,
) -> tuple[list[dict[str, Any]], list[dict[str, Any]]]:
    """Parse a trace dump back into ``(spans, fp_events)``.

    The v1-era accessor; meta framing (v2) is parsed and discarded.
    """
    trace = load_trace(path)
    return trace["spans"], trace["events"]


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def render_span_tree(spans: Iterable[dict[str, Any]]) -> str:
    """Indented tree of span dicts (as produced by the JSONL dump)."""
    spans = list(spans)
    if not spans:
        return "(no spans)"
    children: dict[int, list[dict[str, Any]]] = {}
    for span in spans:
        children.setdefault(span.get("parent", 0), []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: s.get("start", 0.0))

    lines: list[str] = []

    def emit(span: dict[str, Any], depth: int) -> None:
        attrs = span.get("attrs") or {}
        shown = "".join(f" {k}={v}" for k, v in sorted(attrs.items()))
        lines.append(
            f"{'  ' * depth}{span.get('name', '?')}"
            f"  wall={_format_seconds(float(span.get('wall', 0.0)))}"
            f" cpu={_format_seconds(float(span.get('cpu', 0.0)))}{shown}"
        )
        for child in children.get(span.get("id", -1), ()):
            emit(child, depth + 1)

    for root in children.get(0, ()):
        emit(root, 0)
    return "\n".join(lines)


# -- metrics -----------------------------------------------------------


def metrics_snapshot(telemetry: Telemetry) -> dict[str, Any]:
    """A session's metrics as a JSON-ready dict."""
    return telemetry.metrics.snapshot()


def write_metrics_json(path: str, snapshot: dict[str, Any]) -> None:
    """Write a metrics snapshot (from ``registry.snapshot()``)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_metrics_json(path: str) -> dict[str, Any]:
    """Parse a metrics dump; raises ``ValueError`` if not an object."""
    with open(path, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)
    if not isinstance(snapshot, dict):
        raise ValueError("metrics file does not contain a JSON object")
    return snapshot


def render_metrics(snapshot: dict[str, Any]) -> str:
    """One line per instrument; histograms show their summary."""
    if not snapshot:
        return "(no metrics)"
    lines = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry.get("type", "?")
        if kind in ("histogram", "log_histogram"):
            parts = []
            for key in ("count", "mean", "p50", "p95", "p99", "max"):
                value = entry.get(key)
                if isinstance(value, float):
                    parts.append(f"{key}={value:.3g}")
                else:
                    parts.append(f"{key}={value}")
            lines.append(f"{name}  {' '.join(parts)}")
        else:
            lines.append(f"{name}  {entry.get('value')}")
    return "\n".join(lines)
