"""The ambient telemetry session.

One :class:`Telemetry` object bundles the three pillars — tracer,
metrics registry, FP-exception stream — plus the recorder that plugs
them into the environment layer.  The active instance is thread-local
(mirroring :mod:`repro.fpenv.env`); :data:`NULL_TELEMETRY` is the
default and makes every instrumented call site a no-op.

Usage::

    with telemetry_session() as tel:
        run_conformance(...)
    print(tel.tracer.render_tree())
    print(tel.metrics.render())

New :class:`~repro.fpenv.FPEnv` instances pick up the active
recorder automatically (see ``FPEnv.__post_init__``), so code that
creates fresh environments deep inside a run — the oracle's
differential loop, ``env_context`` blocks — is observed without any
parameter threading.

Processes, not just threads
---------------------------

A ``fork()``-ed worker inherits the forking thread's thread-local
state, including an *enabled* ambient session whose spans, metrics,
and event sinks all live in the parent — recording into them from the
child is silent data loss (the objects are copies the parent never
sees).  The session is therefore pinned to the PID that installed it:
:func:`get_telemetry` and :func:`active_recorder` detect that the
current process is not the installing process and reset the ambient
session to :data:`NULL_TELEMETRY`.  Worker processes that *want*
telemetry must re-initialize their own recorder explicitly —
:func:`reset_for_process` is the bootstrap hook the execution engine's
workers call before touching any instrumented code.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import threading
from collections.abc import Iterator

from repro.telemetry.events import BoundedEventLog, ExceptionStream
from repro.telemetry.metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from repro.telemetry.recorder import TelemetryRecorder
from repro.telemetry.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "get_telemetry",
    "set_telemetry",
    "telemetry_session",
    "active_recorder",
    "reset_for_process",
]

_DEFAULT_EVENT_CAPACITY = 10_000


@dataclasses.dataclass(frozen=True)
class Telemetry:
    """One observability session: tracer + metrics + exception stream."""

    tracer: Tracer | NullTracer
    metrics: MetricsRegistry | NullMetrics
    stream: ExceptionStream
    events: BoundedEventLog | None
    recorder: TelemetryRecorder | None
    enabled: bool

    @staticmethod
    def create(
        *,
        event_capacity: int = _DEFAULT_EVENT_CAPACITY,
        max_spans: int | None = None,
    ) -> "Telemetry":
        """A fully enabled session with an in-memory retention sink."""
        tracer = Tracer() if max_spans is None else Tracer(max_spans)
        metrics = MetricsRegistry()
        stream = ExceptionStream()
        events = BoundedEventLog(event_capacity)
        stream.subscribe(events)
        recorder = TelemetryRecorder(metrics, stream, tracer)
        return Telemetry(
            tracer=tracer,
            metrics=metrics,
            stream=stream,
            events=events,
            recorder=recorder,
            enabled=True,
        )


#: The default, disabled session: every hook is a no-op.
NULL_TELEMETRY = Telemetry(
    tracer=NULL_TRACER,
    metrics=NULL_METRICS,
    stream=ExceptionStream(),
    events=None,
    recorder=None,
    enabled=False,
)


class _TelemetryState(threading.local):
    def __init__(self) -> None:
        self.current: Telemetry = NULL_TELEMETRY
        self.pid: int = os.getpid()


_STATE = _TelemetryState()


def get_telemetry() -> Telemetry:
    """The thread's active telemetry session (NULL_TELEMETRY when off).

    Sessions are per-process: if the installing process forked, the
    inherited session belongs to the parent and is dropped here (see
    the module docstring).  The PID check only runs while a session is
    enabled, so the disabled-telemetry hot path stays one attribute
    chase.
    """
    state = _STATE
    if state.current is not NULL_TELEMETRY and state.pid != os.getpid():
        state.current = NULL_TELEMETRY
    return state.current


def set_telemetry(telemetry: Telemetry) -> Telemetry:
    """Install ``telemetry`` as active; returns the previous session."""
    previous = _STATE.current
    _STATE.current = telemetry
    _STATE.pid = os.getpid()
    return previous


def reset_for_process() -> None:
    """Drop any inherited ambient session in a (possibly forked) child.

    Idempotent; worker bootstraps call this before any instrumented
    code so that recording starts from an explicit, process-local
    state instead of a dead copy of the parent's session.
    """
    _STATE.current = NULL_TELEMETRY
    _STATE.pid = os.getpid()


def active_recorder() -> TelemetryRecorder | None:
    """The active session's env-layer recorder (``None`` when off).

    This is the hot accessor ``FPEnv.__post_init__`` uses; keep it a
    plain attribute chase (plus the same fork guard as
    :func:`get_telemetry`, paid only while telemetry is on).
    """
    state = _STATE
    if state.current is not NULL_TELEMETRY and state.pid != os.getpid():
        state.current = NULL_TELEMETRY
    return state.current.recorder


@contextlib.contextmanager
def telemetry_session(
    telemetry: Telemetry | None = None,
    *,
    event_capacity: int = _DEFAULT_EVENT_CAPACITY,
) -> Iterator[Telemetry]:
    """Run a block under an enabled telemetry session.

    The session object outlives the block, so callers can export its
    spans/metrics/events after the work finishes.  The previous
    session (usually :data:`NULL_TELEMETRY`) is restored on exit.
    """
    session = telemetry or Telemetry.create(event_capacity=event_capacity)
    previous = set_telemetry(session)
    try:
        yield session
    finally:
        set_telemetry(previous)
