"""The ambient telemetry session.

One :class:`Telemetry` object bundles the three pillars — tracer,
metrics registry, FP-exception stream — plus the recorder that plugs
them into the environment layer.  The active instance is **task-local**
(a :mod:`contextvars` variable), with the legacy thread-local slot kept
as a fallback; :data:`NULL_TELEMETRY` is the default and makes every
instrumented call site a no-op.

Usage::

    with telemetry_session() as tel:
        run_conformance(...)
    print(tel.tracer.render_tree())
    print(tel.metrics.render())

New :class:`~repro.fpenv.FPEnv` instances pick up the active
recorder automatically (see ``FPEnv.__post_init__``), so code that
creates fresh environments deep inside a run — the oracle's
differential loop, ``env_context`` blocks — is observed without any
parameter threading.

Tasks, not just threads
-----------------------

The session used to be thread-local, which was correct for the
process/thread substrate but wrong for ``asyncio``: every task on the
event loop shares one thread, so two concurrent request handlers that
each opened a session would clobber each other's spans and metrics.
The primary slot is therefore a :class:`contextvars.ContextVar` —
``asyncio`` snapshots the context at task creation, so a session
installed inside one task is invisible to its siblings, and
``asyncio.to_thread`` carries it into worker threads.  Plain threads
(which start from an empty context) fall back to the old thread-local
slot, writable via ``set_telemetry(..., scope="thread")`` for code
that manages threads directly.

Processes, not just tasks
-------------------------

A ``fork()``-ed worker inherits the forking thread's context and
thread-local state, including an *enabled* ambient session whose
spans, metrics, and event sinks all live in the parent — recording
into them from the child is silent data loss (the objects are copies
the parent never sees).  The session is therefore pinned to the PID
that installed it: :func:`get_telemetry` and :func:`active_recorder`
detect that the current process is not the installing process and
reset the ambient session to :data:`NULL_TELEMETRY`.  Worker processes
that *want* telemetry must re-initialize their own recorder explicitly
— :func:`reset_for_process` is the bootstrap hook the execution
engine's workers call before touching any instrumented code.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import os
import threading
from collections.abc import Iterator

from repro.telemetry.events import BoundedEventLog, ExceptionStream
from repro.telemetry.metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from repro.telemetry.recorder import TelemetryRecorder
from repro.telemetry.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "get_telemetry",
    "set_telemetry",
    "telemetry_session",
    "active_recorder",
    "reset_for_process",
]

_DEFAULT_EVENT_CAPACITY = 10_000


@dataclasses.dataclass(frozen=True)
class Telemetry:
    """One observability session: tracer + metrics + exception stream."""

    tracer: Tracer | NullTracer
    metrics: MetricsRegistry | NullMetrics
    stream: ExceptionStream
    events: BoundedEventLog | None
    recorder: TelemetryRecorder | None
    enabled: bool

    @property
    def trace_id(self) -> str | None:
        """The session's trace id (``None`` for the null session)."""
        return self.tracer.trace_id

    @staticmethod
    def create(
        *,
        event_capacity: int = _DEFAULT_EVENT_CAPACITY,
        max_spans: int | None = None,
        trace_id: str | None = None,
    ) -> "Telemetry":
        """A fully enabled session with an in-memory retention sink.

        ``trace_id`` joins an existing trace (the cross-process
        propagation path); omitted, the tracer mints a fresh one.
        """
        tracer = (Tracer(trace_id=trace_id) if max_spans is None
                  else Tracer(max_spans, trace_id=trace_id))
        metrics = MetricsRegistry()
        stream = ExceptionStream()
        events = BoundedEventLog(event_capacity)
        stream.subscribe(events)
        recorder = TelemetryRecorder(metrics, stream, tracer)
        return Telemetry(
            tracer=tracer,
            metrics=metrics,
            stream=stream,
            events=events,
            recorder=recorder,
            enabled=True,
        )


#: The default, disabled session: every hook is a no-op.
NULL_TELEMETRY = Telemetry(
    tracer=NULL_TRACER,
    metrics=NULL_METRICS,
    stream=ExceptionStream(),
    events=None,
    recorder=None,
    enabled=False,
)


class _Ambient:
    """One installed session plus the PID that installed it.

    Installation always allocates a *new* entry (never mutates the old
    one in place) so that a session installed inside an asyncio task
    stays invisible to sibling tasks whose contexts still reference the
    previous entry.  The one sanctioned in-place mutation is the fork
    guard's sticky drop: every context in a forked child references a
    dead copy, so nulling it for all of them at once is exactly right.
    """

    __slots__ = ("current", "pid")

    def __init__(self, current: Telemetry, pid: int) -> None:
        self.current = current
        self.pid = pid


_AMBIENT: contextvars.ContextVar[_Ambient | None] = contextvars.ContextVar(
    "repro_telemetry_ambient", default=None
)


class _TelemetryState(threading.local):
    """The legacy thread-local slot, kept as the fallback tier."""

    def __init__(self) -> None:
        self.current: Telemetry = NULL_TELEMETRY
        self.pid: int = os.getpid()


_STATE = _TelemetryState()


def get_telemetry() -> Telemetry:
    """The task's active telemetry session (NULL_TELEMETRY when off).

    Lookup is two-tier: the task-local context variable first, then
    the thread-local fallback (for threads started outside any
    context, or code using ``scope="thread"``).  Sessions are
    per-process: if the installing process forked, the inherited
    session belongs to the parent and is dropped here (see the module
    docstring).  The PID check only runs while a session is enabled,
    so the disabled-telemetry hot path stays one attribute chase.
    """
    ambient = _AMBIENT.get()
    if ambient is not None:
        if ambient.current is not NULL_TELEMETRY:
            if ambient.pid != os.getpid():
                ambient.current = NULL_TELEMETRY
            else:
                return ambient.current
        # A context entry holding NULL means "nothing context-scoped
        # installed here" — fall through to the thread tier rather
        # than shadow it forever.
    state = _STATE
    if state.current is not NULL_TELEMETRY and state.pid != os.getpid():
        state.current = NULL_TELEMETRY
    return state.current


def set_telemetry(telemetry: Telemetry, *, scope: str = "context") -> Telemetry:
    """Install ``telemetry`` as active; returns the previous session.

    ``scope="context"`` (the default) installs into the task-local
    context variable — correct for asyncio handlers and for ordinary
    synchronous code alike.  ``scope="thread"`` writes the legacy
    thread-local fallback slot instead, for code that hands sessions
    across threads it manages itself; a context-scoped session, where
    present, still takes precedence over it.
    """
    if scope == "thread":
        state = _STATE
        previous = state.current
        state.current = telemetry
        state.pid = os.getpid()
        return previous
    if scope != "context":
        raise ValueError(f"unknown telemetry scope {scope!r}")
    previous = get_telemetry()
    _AMBIENT.set(_Ambient(telemetry, os.getpid()))
    return previous


def reset_for_process() -> None:
    """Drop any inherited ambient session in a (possibly forked) child.

    Idempotent; worker bootstraps call this before any instrumented
    code so that recording starts from an explicit, process-local
    state instead of a dead copy of the parent's session.  Both tiers
    are cleared.
    """
    ambient = _AMBIENT.get()
    if ambient is not None:
        ambient.current = NULL_TELEMETRY
        _AMBIENT.set(None)
    _STATE.current = NULL_TELEMETRY
    _STATE.pid = os.getpid()


def active_recorder() -> TelemetryRecorder | None:
    """The active session's env-layer recorder (``None`` when off).

    This is the hot accessor ``FPEnv.__post_init__`` uses; keep it a
    plain attribute chase (plus the same fork guard as
    :func:`get_telemetry`, paid only while telemetry is on).
    """
    ambient = _AMBIENT.get()
    if ambient is not None:
        if ambient.current is not NULL_TELEMETRY:
            if ambient.pid != os.getpid():
                ambient.current = NULL_TELEMETRY
            else:
                return ambient.current.recorder
    state = _STATE
    if state.current is not NULL_TELEMETRY and state.pid != os.getpid():
        state.current = NULL_TELEMETRY
    return state.current.recorder


@contextlib.contextmanager
def telemetry_session(
    telemetry: Telemetry | None = None,
    *,
    event_capacity: int = _DEFAULT_EVENT_CAPACITY,
) -> Iterator[Telemetry]:
    """Run a block under an enabled telemetry session.

    The session object outlives the block, so callers can export its
    spans/metrics/events after the work finishes.  The previous
    session (usually :data:`NULL_TELEMETRY`) is restored on exit.
    Task-local: concurrent asyncio tasks can each hold their own
    session without cross-contamination.
    """
    session = telemetry or Telemetry.create(event_capacity=event_capacity)
    previous = set_telemetry(session)
    try:
        yield session
    finally:
        set_telemetry(previous)
