"""Interval arithmetic over the softfloat engine.

An extension in the spirit of the paper's conclusions: a developer who
distrusts rounding can run a computation on *intervals* — every
operation rounds the lower endpoint toward −inf and the upper endpoint
toward +inf, so the true real-arithmetic result is always enclosed.
Wide output intervals are the rounding-sensitivity signal the suspicion
quiz asks about, delivered per-value instead of per-run.

This is also the natural consumer of the directed rounding modes the
softfloat engine implements (most developers never touch them — one
more thing the survey suggests they couldn't describe).

>>> from repro.interval import Interval
>>> x = Interval.from_value(0.1)      # the double nearest 0.1, exactly
>>> total = x + x + x
>>> total.contains_value(0.30000000000000004)
True
>>> total.width_ulps() <= 4
True
"""

from repro.interval.interval import Interval, IntervalError
from repro.interval.evaluate import interval_evaluate

__all__ = ["Interval", "IntervalError", "interval_evaluate"]
