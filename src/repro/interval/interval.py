"""Closed-interval arithmetic with outward (directed) rounding.

Endpoints are SoftFloats in a common format.  Every operation computes
the mathematically correct endpoint candidates, rounding the lower one
under roundTowardNegative and the upper under roundTowardPositive, so
the fundamental containment theorem holds::

    x in X and y in Y  =>  x op y in (X op Y)

NaN endpoints are rejected (intervals model real quantities); division
by an interval containing zero and even-roots of sign-crossing
intervals raise :class:`IntervalError` rather than silently widening to
the whole line.
"""

from __future__ import annotations

import dataclasses
from fractions import Fraction

from repro.errors import ReproError
from repro.fpenv.env import FPEnv
from repro.softfloat import (
    BINARY64,
    SoftFloat,
    fp_add,
    fp_div,
    fp_le,
    fp_lt,
    fp_mul,
    fp_sqrt,
    fp_sub,
    sf,
)
from repro.softfloat.directed import down_env, up_env
from repro.softfloat.formats import FloatFormat

__all__ = ["Interval", "IntervalError"]


class IntervalError(ReproError, ValueError):
    """Ill-formed interval or undefined interval operation."""


def _down(fmt: FloatFormat) -> FPEnv:
    return down_env()


def _up(fmt: FloatFormat) -> FPEnv:
    return up_env()


@dataclasses.dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` of softfloat endpoints."""

    lo: SoftFloat
    hi: SoftFloat

    def __post_init__(self) -> None:
        if self.lo.fmt != self.hi.fmt:
            raise IntervalError("endpoints must share a format")
        if self.lo.is_nan or self.hi.is_nan:
            raise IntervalError("NaN endpoint")
        if not fp_le(self.lo, self.hi, FPEnv()):
            raise IntervalError(
                f"empty interval: lo={self.lo!s} > hi={self.hi!s}"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_value(
        cls, value: object, fmt: FloatFormat = BINARY64
    ) -> "Interval":
        """Degenerate interval from an exactly-representable value."""
        point = sf(value, fmt)
        return cls(point, point)

    @classmethod
    def from_decimal(
        cls, text: str, fmt: FloatFormat = BINARY64
    ) -> "Interval":
        """Tightest interval enclosing a decimal literal (the two
        correctly rounded directed conversions)."""
        from repro.softfloat.parse import parse_softfloat

        lo = parse_softfloat(text, fmt, _down(fmt))
        hi = parse_softfloat(text, fmt, _up(fmt))
        return cls(lo, hi)

    @classmethod
    def from_bounds(
        cls, lo: object, hi: object, fmt: FloatFormat = BINARY64
    ) -> "Interval":
        """Interval from two endpoint values."""
        return cls(sf(lo, fmt), sf(hi, fmt))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def fmt(self) -> FloatFormat:
        """Endpoint format."""
        return self.lo.fmt

    @property
    def is_point(self) -> bool:
        """True for a degenerate (zero-width) interval."""
        return self.lo.same_bits(self.hi) or (
            self.lo.is_zero and self.hi.is_zero
        )

    def contains(self, value: SoftFloat) -> bool:
        """Is the (non-NaN) value inside the interval?"""
        if value.is_nan:
            return False
        env = FPEnv()
        return fp_le(self.lo, value, env) and fp_le(value, self.hi, env)

    def contains_value(self, value: object) -> bool:
        """Convenience: membership of a plain number."""
        return self.contains(sf(value, self.fmt))

    def contains_fraction(self, value: Fraction) -> bool:
        """Exact membership of a rational (endpoints compared exactly)."""
        if self.lo.is_inf and self.lo.sign:
            lo_ok = True
        else:
            lo_ok = self.lo.to_fraction() <= value
        if self.hi.is_inf and not self.hi.sign:
            hi_ok = True
        else:
            hi_ok = value <= self.hi.to_fraction()
        return lo_ok and hi_ok

    def width(self) -> SoftFloat:
        """Upper-rounded endpoint difference."""
        return fp_sub(self.hi, self.lo, _up(self.fmt))

    def width_ulps(self) -> float:
        """Width in units of the last place at the interval's magnitude
        (inf for unbounded intervals)."""
        if self.lo.is_inf or self.hi.is_inf:
            return float("inf")
        from repro.softfloat.functions import ulp

        bigger = self.hi if fp_le(abs(self.lo), abs(self.hi), FPEnv()) \
            else self.lo
        gap = ulp(bigger).to_fraction()
        span = self.hi.to_fraction() - self.lo.to_fraction()
        try:
            return float(span / gap)
        except OverflowError:
            return float("inf")

    def midpoint(self) -> SoftFloat:
        """A representative value inside the interval."""
        half = fp_mul(
            fp_add(self.lo, self.hi, FPEnv()), sf(0.5, self.fmt), FPEnv()
        )
        if self.contains(half):
            return half
        return self.lo  # inf-endpoint corner: fall back to an endpoint

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "Interval") -> "Interval":
        other = self._coerce(other)
        return Interval(
            fp_add(self.lo, other.lo, _down(self.fmt)),
            fp_add(self.hi, other.hi, _up(self.fmt)),
        )

    def __sub__(self, other: "Interval") -> "Interval":
        other = self._coerce(other)
        return Interval(
            fp_sub(self.lo, other.hi, _down(self.fmt)),
            fp_sub(self.hi, other.lo, _up(self.fmt)),
        )

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def __mul__(self, other: "Interval") -> "Interval":
        other = self._coerce(other)
        down, up = _down(self.fmt), _up(self.fmt)
        los = []
        his = []
        for a in (self.lo, self.hi):
            for b in (other.lo, other.hi):
                los.append(self._mul_endpoint(a, b, down))
                his.append(self._mul_endpoint(a, b, up))
        return Interval(self._min(los), self._max(his))

    def __truediv__(self, other: "Interval") -> "Interval":
        other = self._coerce(other)
        zero = SoftFloat.zero(self.fmt)
        if other.contains(zero):
            raise IntervalError(
                f"division by an interval containing zero: {other}"
            )
        down, up = _down(self.fmt), _up(self.fmt)
        los = []
        his = []
        for a in (self.lo, self.hi):
            for b in (other.lo, other.hi):
                los.append(fp_div(a, b, down))
                his.append(fp_div(a, b, up))
        return Interval(self._min(los), self._max(his))

    def sqrt(self) -> "Interval":
        """Interval square root (requires a non-negative interval)."""
        if self.lo.is_negative and not self.lo.is_zero:
            raise IntervalError(f"sqrt of sign-crossing interval {self}")
        return Interval(
            fp_sqrt(self.lo, _down(self.fmt)),
            fp_sqrt(self.hi, _up(self.fmt)),
        )

    def abs(self) -> "Interval":
        """Interval absolute value."""
        zero = SoftFloat.zero(self.fmt)
        if self.contains(zero):
            return Interval(zero, self._max([abs(self.lo), abs(self.hi)]))
        if self.hi.is_negative or self.hi.is_zero:
            return Interval(abs(self.hi), abs(self.lo))
        return self

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both."""
        other = self._coerce(other)
        return Interval(
            self._min([self.lo, other.lo]), self._max([self.hi, other.hi])
        )

    def intersect(self, other: "Interval") -> "Interval":
        """Intersection; raises IntervalError when disjoint."""
        other = self._coerce(other)
        lo = self._max([self.lo, other.lo])
        hi = self._min([self.hi, other.hi])
        if fp_lt(hi, lo, FPEnv()):
            raise IntervalError(f"disjoint intervals {self} and {other}")
        return Interval(lo, hi)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _coerce(self, other: object) -> "Interval":
        if isinstance(other, Interval):
            if other.fmt != self.fmt:
                raise IntervalError("mixed-format interval arithmetic")
            return other
        return Interval.from_value(other, self.fmt)  # type: ignore[arg-type]

    def _mul_endpoint(self, a: SoftFloat, b: SoftFloat, env: FPEnv):
        # inf * 0 inside interval multiplication is conventionally 0
        # (the zero endpoint dominates; IEEE would say NaN).
        if (a.is_inf and b.is_zero) or (a.is_zero and b.is_inf):
            return SoftFloat.zero(self.fmt)
        return fp_mul(a, b, env)

    @staticmethod
    def _min(values):
        best = values[0]
        env = FPEnv()
        for candidate in values[1:]:
            if fp_lt(candidate, best, env):
                best = candidate
        return best

    @staticmethod
    def _max(values):
        best = values[0]
        env = FPEnv()
        for candidate in values[1:]:
            if fp_lt(best, candidate, env):
                best = candidate
        return best

    __radd__ = __add__
    __rmul__ = __mul__

    def __rsub__(self, other: object) -> "Interval":
        return self._coerce(other) - self

    def __rtruediv__(self, other: object) -> "Interval":
        return self._coerce(other) / self

    def __str__(self) -> str:
        return f"[{self.lo!s}, {self.hi!s}]"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interval({self.lo!s}, {self.hi!s})"
