"""Interval evaluation of optsim expressions.

Bridges the expression IR and the interval substrate: run any parsed
expression with interval inputs and get a rigorous enclosure of every
real result the input boxes could produce — the "paranoid developer"
mode the paper's conclusions wish for, applied to whole expressions.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import OptimizationError
from repro.interval.interval import Interval, IntervalError
from repro.optsim.ast import FMA, Binary, BinOp, Const, Expr, Unary, UnOp, Var
from repro.softfloat.formats import BINARY64, FloatFormat

__all__ = ["interval_evaluate"]


def interval_evaluate(
    expr: Expr,
    bindings: Mapping[str, Interval | float | int],
    fmt: FloatFormat = BINARY64,
) -> Interval:
    """Evaluate ``expr`` over interval inputs with outward rounding.

    Plain numbers in ``bindings`` become point intervals.  Constants in
    the tree become the tightest enclosure of their literal (so ``0.1``
    contributes its real value, not just the nearest double).
    ``min``/``max``/``rem`` are not supported (``IntervalError``).
    """
    boxed = {
        name: value if isinstance(value, Interval)
        else Interval.from_value(value, fmt)
        for name, value in bindings.items()
    }
    return _eval(expr, boxed, fmt)


def _eval(
    expr: Expr, bindings: Mapping[str, Interval], fmt: FloatFormat
) -> Interval:
    if isinstance(expr, Const):
        return Interval.from_decimal(expr.literal, fmt)
    if isinstance(expr, Var):
        try:
            return bindings[expr.name]
        except KeyError:
            raise OptimizationError(f"unbound variable {expr.name!r}")
    if isinstance(expr, Unary):
        operand = _eval(expr.operand, bindings, fmt)
        if expr.op is UnOp.NEG:
            return -operand
        if expr.op is UnOp.ABS:
            return operand.abs()
        if expr.op is UnOp.SQRT:
            return operand.sqrt()
        raise AssertionError(f"unhandled unary {expr.op}")  # pragma: no cover
    if isinstance(expr, Binary):
        left = _eval(expr.left, bindings, fmt)
        right = _eval(expr.right, bindings, fmt)
        if expr.op is BinOp.ADD:
            return left + right
        if expr.op is BinOp.SUB:
            return left - right
        if expr.op is BinOp.MUL:
            return left * right
        if expr.op is BinOp.DIV:
            return left / right
        raise IntervalError(
            f"operator {expr.op.value!r} has no interval extension here"
        )
    if isinstance(expr, FMA):
        a = _eval(expr.a, bindings, fmt)
        b = _eval(expr.b, bindings, fmt)
        c = _eval(expr.c, bindings, fmt)
        return a * b + c
    raise OptimizationError(f"cannot evaluate {type(expr).__name__}")
