"""Condition numbers: how hard is this data, independent of algorithm?

The suspicion quiz's "not a problem given appropriate numeric algorithm
design" has a quantitative core: an algorithm's achievable accuracy is
bounded by the *conditioning* of the problem instance.  For summation
and dot products the standard condition number is::

    kappa = sum(|x_i|) / |sum(x_i)|

(kappa = 1: benign; kappa = 1e16: even a perfect binary64 algorithm
returns garbage).  The benches use these to label their test data, and
the compensated algorithms' error bounds are stated in terms of them.
"""

from __future__ import annotations

from collections.abc import Sequence
from fractions import Fraction

from repro.softfloat import SoftFloat

__all__ = ["sum_condition", "dot_condition"]


def sum_condition(values: Sequence[SoftFloat]) -> float:
    """Condition number of summing ``values`` (inf for a zero sum)."""
    if not values:
        raise ValueError("cannot condition an empty sum")
    total = Fraction(0)
    magnitude = Fraction(0)
    for value in values:
        exact = value.to_fraction()
        total += exact
        magnitude += abs(exact)
    if total == 0:
        return float("inf")
    try:
        return float(magnitude / abs(total))
    except OverflowError:
        return float("inf")


def dot_condition(
    xs: Sequence[SoftFloat], ys: Sequence[SoftFloat]
) -> float:
    """Condition number of the dot product ``xs . ys``."""
    if len(xs) != len(ys) or not xs:
        raise ValueError("need equal-length non-empty vectors")
    total = Fraction(0)
    magnitude = Fraction(0)
    for x, y in zip(xs, ys):
        term = x.to_fraction() * y.to_fraction()
        total += term
        magnitude += abs(term)
    if total == 0:
        return float("inf")
    try:
        return float(magnitude / abs(total))
    except OverflowError:
        return float("inf")
