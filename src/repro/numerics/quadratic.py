"""The quadratic formula: the canonical cancellation case study.

For ``b*b >> 4*a*c`` the textbook formula computes one root as the
difference of two nearly equal quantities (``-b + sqrt(b^2-4ac)``) and
loses most of its digits — catastrophic cancellation, the practical
face of the *Ordering*/*Operation Precision* questions.  The stable
variant computes the well-conditioned root first and recovers the
other from the product identity ``x1 * x2 = c/a``.
"""

from __future__ import annotations

from repro.fpenv.env import FPEnv, get_env
from repro.softfloat import (
    SoftFloat,
    fp_add,
    fp_div,
    fp_fma,
    fp_mul,
    fp_sqrt,
    fp_sub,
    sf,
)

__all__ = ["quadratic_roots_textbook", "quadratic_roots_stable"]


def _discriminant_sqrt(
    a: SoftFloat, b: SoftFloat, c: SoftFloat, env: FPEnv
) -> SoftFloat:
    # fma keeps b*b - 4ac to one rounding: cancellation inside the
    # discriminant itself is a separate classic, mitigated here so the
    # comparison isolates the root-combination step.
    four_ac = fp_mul(sf(4.0, a.fmt), fp_mul(a, c, env), env)
    discriminant = fp_fma(b, b, -four_ac, env)
    return fp_sqrt(discriminant, env)


def quadratic_roots_textbook(
    a: SoftFloat, b: SoftFloat, c: SoftFloat, env: FPEnv | None = None
) -> tuple[SoftFloat, SoftFloat]:
    """``(-b ± sqrt(b² − 4ac)) / 2a`` exactly as the textbook writes it.

    One of the two roots subtracts nearly equal quantities when
    ``|b| >> |4ac|`` and comes back with few correct digits (or as an
    outright zero)."""
    env = env or get_env()
    root = _discriminant_sqrt(a, b, c, env)
    two_a = fp_mul(sf(2.0, a.fmt), a, env)
    plus = fp_div(fp_add(-b, root, env), two_a, env)
    minus = fp_div(fp_sub(-b, root, env), two_a, env)
    return plus, minus


def quadratic_roots_stable(
    a: SoftFloat, b: SoftFloat, c: SoftFloat, env: FPEnv | None = None
) -> tuple[SoftFloat, SoftFloat]:
    """Cancellation-free: compute ``q = -(b + sign(b)*sqrt(D))/2`` (an
    addition of same-signed quantities), then ``x1 = q/a, x2 = c/q``.

    Returns roots in the same (plus, minus) order as the textbook
    variant for comparison."""
    env = env or get_env()
    root = _discriminant_sqrt(a, b, c, env)
    half = sf(-0.5, a.fmt)
    if b.is_negative:
        q = fp_mul(half, fp_sub(b, root, env), env)
    else:
        q = fp_mul(half, fp_add(b, root, env), env)
    first = fp_div(q, a, env)
    second = fp_div(c, q, env)
    # Match the textbook's (plus, minus) ordering: the root computed
    # with -b + root is the larger one when b < 0, the smaller when
    # b > 0.
    if b.is_negative:
        return first, second
    return second, first
