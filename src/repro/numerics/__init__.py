"""Numerically careful algorithms — what the specialist would write.

The suspicion quiz's answer key keeps saying "not a problem if the
numeric behavior of the algorithm has been designed correctly", and
the factor analysis found the strongest scores among people who "did
numerical correctness".  This package is that design practice in code,
built on the softfloat engine so every accuracy claim is checkable
against exact rationals:

- summation: naive, pairwise, Kahan, and Neumaier compensated
  summation, plus the exact rational reference;
- dot products: naive vs FMA-based vs compensated (Ogita-Rump-Oishi
  style first-order);
- polynomial evaluation: naive powers vs Horner;
- the quadratic formula: textbook vs cancellation-free.

Each pair (naive vs careful) is the executable version of a quiz
gotcha: associativity, cancellation, absorption.
"""

from repro.numerics.summation import (
    exact_sum,
    kahan_sum,
    naive_sum,
    neumaier_sum,
    pairwise_sum,
    sum_error_ulps,
)
from repro.numerics.conditioning import dot_condition, sum_condition
from repro.numerics.dot import compensated_dot, exact_dot, fma_dot, naive_dot
from repro.numerics.poly import horner, naive_poly
from repro.numerics.quadratic import (
    quadratic_roots_stable,
    quadratic_roots_textbook,
)

__all__ = [
    "naive_sum",
    "pairwise_sum",
    "kahan_sum",
    "neumaier_sum",
    "exact_sum",
    "sum_error_ulps",
    "naive_dot",
    "fma_dot",
    "compensated_dot",
    "exact_dot",
    "naive_poly",
    "horner",
    "quadratic_roots_textbook",
    "quadratic_roots_stable",
    "sum_condition",
    "dot_condition",
]
