"""Polynomial evaluation: naive powers vs Horner's rule."""

from __future__ import annotations

from collections.abc import Sequence
from fractions import Fraction

from repro.fpenv.env import FPEnv, get_env
from repro.softfloat import SoftFloat, fp_add, fp_mul, fp_powi

__all__ = ["naive_poly", "horner", "exact_poly"]


def _check(coefficients: Sequence[SoftFloat]) -> None:
    if not coefficients:
        raise ValueError("polynomial needs at least one coefficient")


def naive_poly(
    coefficients: Sequence[SoftFloat], x: SoftFloat,
    env: FPEnv | None = None,
) -> SoftFloat:
    """Sum of ``c_i * x**i`` with explicit powers (coefficients in
    ascending degree).  More roundings, and the powers can overflow
    early."""
    env = env or get_env()
    _check(coefficients)
    total = SoftFloat.zero(x.fmt)
    for degree, coefficient in enumerate(coefficients):
        term = (
            coefficient
            if degree == 0
            else fp_mul(coefficient, fp_powi(x, degree, env), env)
        )
        total = fp_add(total, term, env)
    return total


def horner(
    coefficients: Sequence[SoftFloat], x: SoftFloat,
    env: FPEnv | None = None,
) -> SoftFloat:
    """Horner's rule: ``(...(c_n x + c_{n-1}) x + ...) x + c_0`` — the
    minimum-operation, numerically preferred scheme (coefficients in
    ascending degree)."""
    env = env or get_env()
    _check(coefficients)
    total = coefficients[-1]
    for coefficient in reversed(coefficients[:-1]):
        total = fp_add(fp_mul(total, x, env), coefficient, env)
    return total


def exact_poly(
    coefficients: Sequence[SoftFloat], x: SoftFloat
) -> Fraction:
    """Exact rational evaluation (the reference)."""
    _check(coefficients)
    point = x.to_fraction()
    return sum(
        (c.to_fraction() * point**degree
         for degree, c in enumerate(coefficients)),
        Fraction(0),
    )
