"""Dot products: naive, FMA-based, and compensated.

The MADD question's practical payoff: an FMA-based dot product halves
the roundings; a compensated one (TwoProduct/TwoSum building blocks à
la Ogita–Rump–Oishi) gets within an ulp or two of exact even on
ill-conditioned data.
"""

from __future__ import annotations

from collections.abc import Sequence
from fractions import Fraction

from repro.fpenv.env import FPEnv, get_env
from repro.softfloat import SoftFloat, fp_add, fp_fma, fp_mul, fp_sub

__all__ = ["naive_dot", "fma_dot", "compensated_dot", "exact_dot"]


def _check(xs: Sequence[SoftFloat], ys: Sequence[SoftFloat]) -> None:
    if len(xs) != len(ys):
        raise ValueError("dot product needs equal-length vectors")
    if not xs:
        raise ValueError("cannot dot empty vectors")


def naive_dot(
    xs: Sequence[SoftFloat], ys: Sequence[SoftFloat],
    env: FPEnv | None = None,
) -> SoftFloat:
    """Two roundings per term: multiply, then accumulate."""
    env = env or get_env()
    _check(xs, ys)
    total = SoftFloat.zero(xs[0].fmt)
    for x, y in zip(xs, ys):
        total = fp_add(total, fp_mul(x, y, env), env)
    return total


def fma_dot(
    xs: Sequence[SoftFloat], ys: Sequence[SoftFloat],
    env: FPEnv | None = None,
) -> SoftFloat:
    """One rounding per term via fused multiply-add (what contraction
    gives you — usually better, but *different* from naive_dot)."""
    env = env or get_env()
    _check(xs, ys)
    total = SoftFloat.zero(xs[0].fmt)
    for x, y in zip(xs, ys):
        total = fp_fma(x, y, total, env)
    return total


def _two_sum(
    a: SoftFloat, b: SoftFloat, env: FPEnv
) -> tuple[SoftFloat, SoftFloat]:
    """Knuth TwoSum: s + e == a + b exactly, s = fl(a + b)."""
    s = fp_add(a, b, env)
    b_virtual = fp_sub(s, a, env)
    a_virtual = fp_sub(s, b_virtual, env)
    b_round = fp_sub(b, b_virtual, env)
    a_round = fp_sub(a, a_virtual, env)
    return s, fp_add(a_round, b_round, env)


def _two_product(
    a: SoftFloat, b: SoftFloat, env: FPEnv
) -> tuple[SoftFloat, SoftFloat]:
    """FMA TwoProduct: p + e == a * b exactly, p = fl(a * b)."""
    p = fp_mul(a, b, env)
    e = fp_fma(a, b, -p, env)
    return p, e


def compensated_dot(
    xs: Sequence[SoftFloat], ys: Sequence[SoftFloat],
    env: FPEnv | None = None,
) -> SoftFloat:
    """Ogita-Rump-Oishi Dot2: compensates both the products' and the
    sums' rounding errors; as accurate as computing in doubled
    precision and rounding once, for reasonably conditioned data."""
    env = env or get_env()
    _check(xs, ys)
    total, error = _two_product(xs[0], ys[0], env)
    for x, y in zip(xs[1:], ys[1:]):
        product, product_error = _two_product(x, y, env)
        total, sum_error = _two_sum(total, product, env)
        error = fp_add(error, fp_add(product_error, sum_error, env), env)
    return fp_add(total, error, env)


def exact_dot(
    xs: Sequence[SoftFloat], ys: Sequence[SoftFloat]
) -> Fraction:
    """The exact rational dot product."""
    _check(xs, ys)
    return sum(
        (x.to_fraction() * y.to_fraction() for x, y in zip(xs, ys)),
        Fraction(0),
    )
