"""Summation algorithms, from fragile to compensated.

The *Associativity* and *Saturation* quiz questions are really about
sums: a left-to-right reduction loses the small addends.  These
implementations run on the softfloat engine against an exact-rational
reference, so the error of each strategy is measurable to the ulp.
"""

from __future__ import annotations

from collections.abc import Sequence
from fractions import Fraction

from repro.fpenv.env import FPEnv, get_env
from repro.softfloat import SoftFloat, fp_add, fp_sub
from repro.softfloat.functions import ulp

__all__ = [
    "naive_sum",
    "pairwise_sum",
    "kahan_sum",
    "neumaier_sum",
    "exact_sum",
    "sum_error_ulps",
]


def _zero(values: Sequence[SoftFloat]) -> SoftFloat:
    if not values:
        raise ValueError("cannot sum an empty sequence")
    return SoftFloat.zero(values[0].fmt)


def naive_sum(
    values: Sequence[SoftFloat], env: FPEnv | None = None
) -> SoftFloat:
    """Left-to-right reduction: one rounding per element; error grows
    like O(n) and small addends are absorbed by large partials."""
    env = env or get_env()
    total = _zero(values)
    for value in values:
        total = fp_add(total, value, env)
    return total


def pairwise_sum(
    values: Sequence[SoftFloat], env: FPEnv | None = None
) -> SoftFloat:
    """Balanced-tree reduction: O(log n) error growth — exactly the
    shape the reassociation pass produces, used here on purpose."""
    env = env or get_env()
    if not values:
        raise ValueError("cannot sum an empty sequence")
    if len(values) == 1:
        return values[0]
    mid = len(values) // 2
    return fp_add(
        pairwise_sum(values[:mid], env),
        pairwise_sum(values[mid:], env),
        env,
    )


def kahan_sum(
    values: Sequence[SoftFloat], env: FPEnv | None = None
) -> SoftFloat:
    """Kahan compensated summation: tracks the rounding error of each
    addition in a running compensation term; error is O(1) in n.

    Note: a fast-math compiler destroys this algorithm — the
    compensation ``(t - total) - value`` is algebraically zero, and
    ``-fassociative-math`` happily simplifies it away.  (See the
    corresponding test.)
    """
    env = env or get_env()
    total = _zero(values)
    compensation = _zero(values)
    for value in values:
        adjusted = fp_sub(value, compensation, env)
        new_total = fp_add(total, adjusted, env)
        # (new_total - total) is the part of `adjusted` that made it in;
        # subtracting recovers (negated) what was rounded away.
        compensation = fp_sub(
            fp_sub(new_total, total, env), adjusted, env
        )
        total = new_total
    return total


def neumaier_sum(
    values: Sequence[SoftFloat], env: FPEnv | None = None
) -> SoftFloat:
    """Neumaier's improvement on Kahan: also correct when an addend is
    larger than the running total (where Kahan's compensation fails)."""
    from repro.softfloat import fp_ge

    env = env or get_env()
    total = _zero(values)
    compensation = _zero(values)
    for value in values:
        new_total = fp_add(total, value, env)
        if fp_ge(abs(total), abs(value), env):
            lost = fp_add(
                fp_sub(total, new_total, env), value, env
            )
        else:
            lost = fp_add(
                fp_sub(value, new_total, env), total, env
            )
        compensation = fp_add(compensation, lost, env)
        total = new_total
    return fp_add(total, compensation, env)


def exact_sum(values: Sequence[SoftFloat]) -> Fraction:
    """The exact rational sum (the reference everything is judged by)."""
    if not values:
        raise ValueError("cannot sum an empty sequence")
    return sum((value.to_fraction() for value in values), Fraction(0))


def sum_error_ulps(result: SoftFloat, exact: Fraction) -> float:
    """Error of a finite summation result in ulps of the result."""
    if not result.is_finite:
        return float("inf")
    gap = ulp(result).to_fraction()
    try:
        return float(abs(result.to_fraction() - exact) / gap)
    except OverflowError:
        return float("inf")
