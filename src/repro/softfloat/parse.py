"""Correctly rounded parsing of decimal and hexadecimal literals.

Decimal parsing goes through an exact rational, so every literal is
converted with a *single* correct rounding — the same guarantee a
conforming ``strtod`` provides.  C99 hex-float literals (``0x1.8p3``)
and the special spellings ``inf``/``infinity``/``nan``/``snan`` (with
optional sign and NaN payload in parentheses) are also accepted.
"""

from __future__ import annotations

import re
from fractions import Fraction

from repro.errors import ParseError
from repro.fpenv.env import FPEnv
from repro.softfloat.convert import softfloat_from_fraction
from repro.softfloat.formats import BINARY64, FloatFormat
from repro.softfloat.value import SoftFloat

__all__ = ["parse_softfloat"]

_DECIMAL_RE = re.compile(
    r"""^(?P<sign>[+-]?)
        (?P<int>\d*)
        (?:\.(?P<frac>\d*))?
        (?:[eE](?P<exp>[+-]?\d+))?$""",
    re.VERBOSE,
)

_HEX_RE = re.compile(
    r"""^(?P<sign>[+-]?)0[xX]
        (?P<int>[0-9a-fA-F]*)
        (?:\.(?P<frac>[0-9a-fA-F]*))?
        (?:[pP](?P<exp>[+-]?\d+))?$""",
    re.VERBOSE,
)

_NAN_RE = re.compile(
    r"^(?P<sign>[+-]?)(?P<kind>s?nan)(?:\((?P<payload>\d+|0[xX][0-9a-fA-F]+)\))?$",
    re.IGNORECASE,
)


def parse_softfloat(
    text: str, fmt: FloatFormat = BINARY64, env: FPEnv | None = None
) -> SoftFloat:
    """Parse ``text`` into a correctly rounded SoftFloat.

    Raises :class:`repro.errors.ParseError` on malformed input.
    Flags (inexact, overflow, underflow) are raised on ``env`` when
    provided; without one, parsing is quiet — building constants in
    tests should not perturb sticky state.
    """
    stripped = text.strip()
    if not stripped:
        raise ParseError("empty string is not a floating point literal")
    lowered = stripped.lower()

    sign = 0
    body = lowered
    if body and body[0] in "+-":
        sign = 1 if body[0] == "-" else 0
        body = body[1:]
    if body in ("inf", "infinity"):
        return SoftFloat.inf(fmt, sign)

    nan_match = _NAN_RE.match(stripped)
    if nan_match is not None:
        nsign = 1 if nan_match.group("sign") == "-" else 0
        payload_text = nan_match.group("payload")
        payload = int(payload_text, 0) if payload_text else 0
        if nan_match.group("kind").lower() == "snan":
            if payload == 0:
                payload = 1
            return SoftFloat.signaling_nan(fmt, nsign, payload)
        return SoftFloat.nan(fmt, nsign, payload & (fmt.quiet_bit - 1))

    value = _parse_exact(stripped)
    quiet_env = env if env is not None else FPEnv()
    result = softfloat_from_fraction(abs(value), fmt, quiet_env)
    if value < 0 or (value == 0 and stripped.lstrip().startswith("-")):
        result = -result
    return result


def _parse_exact(text: str) -> Fraction:
    """Parse a decimal or hex literal into an exact rational."""
    hex_match = _HEX_RE.match(text)
    if hex_match is not None:
        return _exact_from_match(hex_match, base=16, exp_base=2)
    dec_match = _DECIMAL_RE.match(text)
    if dec_match is not None:
        if not (dec_match.group("int") or dec_match.group("frac")):
            raise ParseError(f"{text!r} has no digits")
        return _exact_from_match(dec_match, base=10, exp_base=10)
    raise ParseError(f"{text!r} is not a floating point literal")


def _exact_from_match(match: re.Match[str], base: int, exp_base: int) -> Fraction:
    sign = -1 if match.group("sign") == "-" else 1
    int_part = match.group("int") or ""
    frac_part = match.group("frac") or ""
    if not (int_part or frac_part):
        raise ParseError("literal has no digits")
    digits = int(int_part + frac_part, base) if (int_part + frac_part) else 0
    scale = -len(frac_part)
    exponent = int(match.group("exp") or "0")
    value = Fraction(digits)
    value *= Fraction(base) ** scale
    value *= Fraction(exp_base) ** exponent
    return sign * value
