"""Softfloat evaluation backends: one protocol, interchangeable engines.

Every hot consumer in the repo (the oracle runner, divergence search,
the quiz demonstration sweeps) bottoms out in the scalar shifted-mantissa
ops in this package.  A *backend* packages those semantics behind a batch
interface — arrays of packed encodings in, arrays of packed encodings
plus per-lane sticky flags out — so consumers can amortize Python
interpreter overhead across thousands of lanes without changing what a
single lane means.

Three implementations ship:

- :class:`ScalarBackend` — drives the existing per-value ops in a loop.
  Supports everything; the semantic reference.
- ``"batch"`` (:mod:`repro.softfloat.batch`) — numpy integer
  bit-twiddling over ``uint64`` lanes, vectorizing the round-and-pack
  pipeline for every rounding mode and FTZ/DAZ combination.
- ``"native"`` (:mod:`repro.softfloat.nativefast`) — host hardware
  floats, used only where a machine probe proves the host semantics
  match (see GOTCHAS.md on double rounding); falls back lane-wise to
  scalar for special values.

Backends are **contractually bit-identical**: for every supported
``(op, fmt, mode, ftz, daz)`` the packed result bits *and* the raised
flag byte must match :class:`ScalarBackend` lane for lane.  The
differential harness in ``tests/softfloat/test_backends.py`` enforces
this against the exact-rational oracle; a backend that cannot guarantee
identity for a combination must return ``False`` from
:meth:`SoftFloatBackend.supports` for it.
"""

from __future__ import annotations

import abc
import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.fpenv.env import FPEnv
from repro.fpenv.rounding import RoundingMode
from repro.softfloat.arith import SCALAR_KERNELS as _ARITH_KERNELS
from repro.softfloat.compare import compare_code
from repro.softfloat.convert import convert_bits
from repro.softfloat.fma import SCALAR_KERNELS as _FMA_KERNELS
from repro.softfloat.formats import FloatFormat
from repro.softfloat.sqrt import SCALAR_KERNELS as _SQRT_KERNELS
from repro.softfloat.value import SoftFloat

__all__ = [
    "BACKEND_OPS",
    "BACKEND_OP_ARITY",
    "ORD_LESS",
    "ORD_EQUAL",
    "ORD_GREATER",
    "ORD_UNORDERED",
    "BatchResult",
    "SoftFloatBackend",
    "ScalarBackend",
    "AutoBackend",
    "available_backends",
    "get_backend",
]

#: Operations every backend may be asked about.  ``compare_*`` return
#: ordering codes (below) instead of encodings; ``convert`` takes a
#: destination format.
BACKEND_OPS: tuple[str, ...] = (
    "add",
    "sub",
    "mul",
    "div",
    "fma",
    "sqrt",
    "compare_quiet",
    "compare_signaling",
    "convert",
)

BACKEND_OP_ARITY: dict[str, int] = {
    "add": 2,
    "sub": 2,
    "mul": 2,
    "div": 2,
    "fma": 3,
    "sqrt": 1,
    "compare_quiet": 2,
    "compare_signaling": 2,
    "convert": 1,
}

#: Lane codes delivered by the ``compare_*`` operations (dense unsigned
#: values, unlike :class:`repro.softfloat.compare.Ordering` whose
#: ``UNORDERED`` is ``None``).
ORD_LESS, ORD_EQUAL, ORD_GREATER, ORD_UNORDERED = 0, 1, 2, 3

_SCALAR_KERNELS = {**_ARITH_KERNELS, **_FMA_KERNELS, **_SQRT_KERNELS}


@dataclasses.dataclass(frozen=True)
class BatchResult:
    """One batched evaluation: per-lane packed bits and flag bytes.

    ``bits[i]`` is the packed encoding of lane ``i``'s result (or an
    ordering code for the compare operations); ``flags[i]`` is the
    ``FPFlag`` value the lane raised on a fresh environment.
    """

    bits: np.ndarray
    flags: np.ndarray

    def __post_init__(self) -> None:
        if self.bits.shape != self.flags.shape:
            raise ValueError("bits and flags must have identical shapes")

    def __len__(self) -> int:
        return int(self.bits.shape[0])


class SoftFloatBackend(abc.ABC):
    """Batched evaluation engine for the softfloat operations.

    Implementations must be *bit-identical* to :class:`ScalarBackend`
    for every combination they claim to support, both in packed result
    bits and in the per-lane flag byte.
    """

    #: Registry / display name.
    name: str = "<abstract>"

    @abc.abstractmethod
    def supports(
        self,
        op: str,
        fmt: FloatFormat,
        mode: RoundingMode,
        ftz: bool,
        daz: bool,
        dst_fmt: FloatFormat | None = None,
    ) -> bool:
        """True when :meth:`run_packed` can evaluate this combination
        with guaranteed scalar-identical semantics."""

    @abc.abstractmethod
    def run_packed(
        self,
        op: str,
        fmt: FloatFormat,
        operands: Sequence[np.ndarray],
        mode: RoundingMode,
        ftz: bool,
        daz: bool,
        dst_fmt: FloatFormat | None = None,
    ) -> BatchResult:
        """Evaluate ``op`` lane-wise over arrays of packed encodings.

        ``operands`` holds one ``uint64`` array per operand (lengths
        equal); each lane is evaluated as if on a fresh environment with
        the given mode and FTZ/DAZ bits, and its sticky flags are
        delivered as a ``uint8`` lane in the result.
        """

    # Convenience shared by implementations and tests -----------------
    @staticmethod
    def as_lanes(values: Sequence[int]) -> np.ndarray:
        """Pack a sequence of Python ints into a ``uint64`` lane array."""
        return np.asarray(list(values), dtype=np.uint64)


class ScalarBackend(SoftFloatBackend):
    """Reference backend: the existing per-value ops, looped.

    Supports every operation and format; other backends are tested (and
    defined) against it.
    """

    name = "scalar"

    def supports(
        self,
        op: str,
        fmt: FloatFormat,
        mode: RoundingMode,
        ftz: bool,
        daz: bool,
        dst_fmt: FloatFormat | None = None,
    ) -> bool:
        if op == "convert":
            return dst_fmt is not None
        return op in BACKEND_OPS

    def run_packed(
        self,
        op: str,
        fmt: FloatFormat,
        operands: Sequence[np.ndarray],
        mode: RoundingMode,
        ftz: bool,
        daz: bool,
        dst_fmt: FloatFormat | None = None,
    ) -> BatchResult:
        arrays = [np.asarray(o, dtype=np.uint64) for o in operands]
        if len(arrays) != BACKEND_OP_ARITY.get(op, -1):
            raise ValueError(f"{op} expects {BACKEND_OP_ARITY.get(op)} operands")
        n = int(arrays[0].shape[0])
        bits_out = np.zeros(n, dtype=np.uint64)
        flags_out = np.zeros(n, dtype=np.uint8)

        if op in ("compare_quiet", "compare_signaling"):
            signaling = op == "compare_signaling"
            for i in range(n):
                env = FPEnv(rounding=mode, ftz=ftz, daz=daz)
                a = SoftFloat(fmt, int(arrays[0][i]))
                b = SoftFloat(fmt, int(arrays[1][i]))
                bits_out[i] = compare_code(a, b, env, signaling=signaling)
                flags_out[i] = env.flags.value
            return BatchResult(bits_out, flags_out)

        if op == "convert":
            if dst_fmt is None:
                raise ValueError("convert requires dst_fmt")
            for i in range(n):
                env = FPEnv(rounding=mode, ftz=ftz, daz=daz)
                bits_out[i] = convert_bits(int(arrays[0][i]), fmt, dst_fmt, env)
                flags_out[i] = env.flags.value
            return BatchResult(bits_out, flags_out)

        kernel = _SCALAR_KERNELS[op]
        for i in range(n):
            env = FPEnv(rounding=mode, ftz=ftz, daz=daz)
            args = [SoftFloat(fmt, int(a[i])) for a in arrays]
            bits_out[i] = kernel(*args, env).bits
            flags_out[i] = env.flags.value
        return BatchResult(bits_out, flags_out)


class AutoBackend(SoftFloatBackend):
    """Per-call dispatch: native where provably safe, else batch, else
    the scalar reference.  Always supports everything the scalar does."""

    name = "auto"

    def __init__(self) -> None:
        self._chain: list[SoftFloatBackend] = [
            get_backend("native"),
            get_backend("batch"),
            get_backend("scalar"),
        ]

    def select(
        self,
        op: str,
        fmt: FloatFormat,
        mode: RoundingMode,
        ftz: bool,
        daz: bool,
        dst_fmt: FloatFormat | None = None,
    ) -> SoftFloatBackend:
        """The backend this combination will actually run on."""
        for backend in self._chain:
            if backend.supports(op, fmt, mode, ftz, daz, dst_fmt):
                return backend
        return self._chain[-1]

    def supports(
        self,
        op: str,
        fmt: FloatFormat,
        mode: RoundingMode,
        ftz: bool,
        daz: bool,
        dst_fmt: FloatFormat | None = None,
    ) -> bool:
        return self._chain[-1].supports(op, fmt, mode, ftz, daz, dst_fmt)

    def run_packed(
        self,
        op: str,
        fmt: FloatFormat,
        operands: Sequence[np.ndarray],
        mode: RoundingMode,
        ftz: bool,
        daz: bool,
        dst_fmt: FloatFormat | None = None,
    ) -> BatchResult:
        backend = self.select(op, fmt, mode, ftz, daz, dst_fmt)
        return backend.run_packed(op, fmt, operands, mode, ftz, daz, dst_fmt)


_INSTANCES: dict[str, SoftFloatBackend] = {}


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`get_backend`."""
    return ("scalar", "batch", "native", "auto")


def get_backend(spec: str | SoftFloatBackend) -> SoftFloatBackend:
    """Resolve a backend by name (``scalar``, ``batch``, ``native``,
    ``auto``) or pass an instance through.  Instances are cached — the
    backends are stateless."""
    if isinstance(spec, SoftFloatBackend):
        return spec
    if spec in _INSTANCES:
        return _INSTANCES[spec]
    if spec == "scalar":
        backend: SoftFloatBackend = ScalarBackend()
    elif spec == "batch":
        from repro.softfloat.batch import BatchBackend

        backend = BatchBackend()
    elif spec == "native":
        from repro.softfloat.nativefast import NativeBackend

        backend = NativeBackend()
    elif spec == "auto":
        backend = AutoBackend()
    else:
        raise ValueError(
            f"unknown backend {spec!r}; expected one of {available_backends()}"
        )
    _INSTANCES[spec] = backend
    return backend
