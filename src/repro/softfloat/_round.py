"""Internal round-and-pack machinery shared by every softfloat operation.

Operations compute an *exact* (or exactly-characterized) intermediate
result in the form ``(-1)**sign * mant * 2**exp2`` with an optional
sticky marker meaning "plus some nonzero amount strictly smaller than
``2**exp2``".  :func:`round_and_pack` turns that into a correctly rounded
encoding of the destination format, raising the appropriate sticky flags
(inexact, overflow, underflow, denormal-result) on the environment.

Tininess is detected **before rounding** (the x86/SSE choice, permitted
by IEEE 754), and underflow is flagged only when the result is both tiny
and inexact (the default non-trapping semantics).
"""

from __future__ import annotations

from repro.fpenv.env import FPEnv
from repro.fpenv.flags import FPFlag
from repro.fpenv.rounding import RoundingMode
from repro.softfloat.formats import FloatFormat

__all__ = ["round_and_pack", "split_mantissa", "overflow_result_bits"]


def split_mantissa(mant: int, shift: int, sticky: int) -> tuple[int, int, int]:
    """Split ``mant`` into (kept, round_bit, sticky') after shifting right
    by ``shift`` bits.  Negative shifts shift left (exact).

    ``sticky`` is an incoming sticky marker for value already discarded
    below ``mant``'s least significant bit.
    """
    if shift <= 0:
        return mant << (-shift), 0, 1 if sticky else 0
    round_bit = (mant >> (shift - 1)) & 1
    low_mask = (1 << (shift - 1)) - 1
    stk = 1 if (sticky or (mant & low_mask)) else 0
    return mant >> shift, round_bit, stk


def overflow_result_bits(fmt: FloatFormat, mode: RoundingMode, sign: int) -> int:
    """Encoding delivered on overflow under the given rounding direction.

    Round-to-nearest saturates to infinity; directed modes deliver the
    largest finite value when the infinity lies on the far side.
    """
    if mode.is_nearest:
        return fmt.inf_bits(sign)
    if mode is RoundingMode.TOWARD_ZERO:
        return fmt.max_finite_bits(sign)
    if mode is RoundingMode.TOWARD_POSITIVE:
        return fmt.inf_bits(0) if sign == 0 else fmt.max_finite_bits(1)
    if mode is RoundingMode.TOWARD_NEGATIVE:
        return fmt.inf_bits(1) if sign == 1 else fmt.max_finite_bits(0)
    raise AssertionError(f"unhandled rounding mode {mode!r}")


def round_and_pack(
    fmt: FloatFormat,
    env: FPEnv,
    sign: int,
    mant: int,
    exp2: int,
    sticky: int = 0,
    operation: str = "<op>",
) -> int:
    """Round the exact value ``(-1)**sign * (mant * 2**exp2 + tiny)`` to
    ``fmt`` and return its encoding, raising flags on ``env``.

    ``mant`` must be positive (callers special-case exact zeros, whose
    sign rules depend on the operation).  ``sticky`` nonzero marks an
    additional discarded amount in ``(0, 2**exp2)``.
    """
    if mant <= 0:
        raise AssertionError("round_and_pack requires a positive mantissa")

    precision = fmt.precision
    mode = env.rounding
    msb_exp = exp2 + mant.bit_length() - 1  # unbiased exponent of the MSB

    # Tininess before rounding: the exact value lies below the smallest
    # normal magnitude.  (Exactly the smallest normal is not tiny.)
    tiny = msb_exp < fmt.emin

    # Granularity of the destination's least significant kept bit.
    if tiny:
        lsb_exp = fmt.emin - (precision - 1)
    else:
        lsb_exp = msb_exp - (precision - 1)

    kept, round_bit, stk = split_mantissa(mant, lsb_exp - exp2, sticky)
    inexact = bool(round_bit or stk)

    if mode.rounds_away(sign, kept & 1, round_bit, stk):
        kept += 1
        if kept.bit_length() > precision:
            # Carry out of the significand: 0b111..1 + 1 -> 0b1000..0.
            kept >>= 1
            lsb_exp += 1

    flags = FPFlag.NONE
    if inexact:
        flags |= FPFlag.INEXACT
        if tiny:
            flags |= FPFlag.UNDERFLOW

    if kept == 0:
        # The tiny value rounded down to zero.
        env.raise_flags(flags, operation)
        return fmt.zero_bits(sign)

    rounded_msb_exp = lsb_exp + kept.bit_length() - 1
    if rounded_msb_exp > fmt.emax:
        env.raise_flags(flags | FPFlag.OVERFLOW | FPFlag.INEXACT, operation)
        return overflow_result_bits(fmt, mode, sign)

    if kept.bit_length() == precision:
        # Normal result.
        biased = rounded_msb_exp + fmt.bias
        frac = kept & fmt.sig_mask
        env.raise_flags(flags, operation)
        return fmt.pack(sign, biased, frac)

    # Subnormal result (fewer than `precision` significant bits).
    if lsb_exp != fmt.emin - (precision - 1):  # pragma: no cover - invariant
        raise AssertionError("subnormal result at the wrong granularity")
    if env.ftz:
        env.raise_flags(
            flags | FPFlag.UNDERFLOW | FPFlag.INEXACT, operation
        )
        return fmt.zero_bits(sign)
    env.raise_flags(flags | FPFlag.DENORMAL_RESULT, operation)
    return fmt.pack(sign, 0, kept)
