"""Auxiliary IEEE 754 operations: neighbors, min/max, scaling, ULPs.

These are the §5.3/§5.7 recommended operations the quiz demonstrations
lean on: ``nextafter`` walks the number line one representable value at
a time (used to exhibit denormal precision loss), ``ulp`` measures local
granularity (used for the *Operation Precision* and *Saturation*
witnesses), and ``scalb``/``ilogb`` manipulate exponents exactly.
"""

from __future__ import annotations

from repro.errors import FormatError
from repro.fpenv.env import FPEnv, get_env
from repro.fpenv.flags import FPFlag
from repro.softfloat.arith import propagate_nan
from repro.softfloat._round import round_and_pack
from repro.softfloat.value import SoftFloat

__all__ = [
    "next_up",
    "next_down",
    "next_after",
    "fp_min",
    "fp_max",
    "fp_minimum",
    "fp_maximum",
    "fp_min_magnitude",
    "fp_max_magnitude",
    "fp_scalb",
    "fp_ilogb",
    "ulp",
    "significant_bits",
]


def next_up(x: SoftFloat, env: FPEnv | None = None) -> SoftFloat:
    """The least value that compares greater than ``x`` (IEEE
    ``nextUp``).  ``nextUp(-0) = nextUp(+0)`` = smallest subnormal;
    ``nextUp(+inf) = +inf``; NaNs propagate."""
    env = env or get_env()
    if x.is_nan:
        return propagate_nan(env, "nextUp", x)
    fmt = x.fmt
    if x.is_zero:
        return SoftFloat(fmt, fmt.min_subnormal_bits(0))
    if x.sign == 0:
        if x.is_inf:
            return x
        return SoftFloat(fmt, x.bits + 1)
    # Negative: decreasing magnitude moves up.
    if x.bits == fmt.pack(1, 0, 1):  # -min_subnormal -> -0
        return SoftFloat.zero(fmt, 1)
    return SoftFloat(fmt, x.bits - 1)


def next_down(x: SoftFloat, env: FPEnv | None = None) -> SoftFloat:
    """The greatest value that compares less than ``x`` (``nextDown``)."""
    env = env or get_env()
    if x.is_nan:
        return propagate_nan(env, "nextDown", x)
    return -next_up(-x, env)


def next_after(x: SoftFloat, y: SoftFloat, env: FPEnv | None = None) -> SoftFloat:
    """C's ``nextafter``: the neighbor of ``x`` in the direction of
    ``y``; returns ``y``'s value when they compare equal."""
    env = env or get_env()
    if x.is_nan or y.is_nan:
        return propagate_nan(env, "nextafter", x, y)
    from repro.softfloat.compare import Ordering, fp_compare_quiet

    order = fp_compare_quiet(x, y, env)
    if order is Ordering.EQUAL:
        return y
    if order is Ordering.LESS:
        return next_up(x, env)
    return next_down(x, env)


def fp_min(a: SoftFloat, b: SoftFloat, env: FPEnv | None = None) -> SoftFloat:
    """754-2008 ``minNum``: the smaller value; a single quiet NaN is
    ignored in favor of the number; signaling NaNs raise *invalid*."""
    env = env or get_env()
    if a.is_nan or b.is_nan:
        if a.is_signaling_nan or b.is_signaling_nan:
            return propagate_nan(env, "min", a, b)
        if a.is_nan and b.is_nan:
            return propagate_nan(env, "min", a, b)
        return b if a.is_nan else a
    from repro.softfloat.compare import Ordering, fp_compare_quiet

    if a.is_zero and b.is_zero:
        return a if a.sign else b  # prefer -0 as the minimum
    return a if fp_compare_quiet(a, b, env) is Ordering.LESS else b


def fp_max(a: SoftFloat, b: SoftFloat, env: FPEnv | None = None) -> SoftFloat:
    """754-2008 ``maxNum`` (mirror of :func:`fp_min`)."""
    env = env or get_env()
    if a.is_nan or b.is_nan:
        if a.is_signaling_nan or b.is_signaling_nan:
            return propagate_nan(env, "max", a, b)
        if a.is_nan and b.is_nan:
            return propagate_nan(env, "max", a, b)
        return b if a.is_nan else a
    from repro.softfloat.compare import Ordering, fp_compare_quiet

    if a.is_zero and b.is_zero:
        return b if a.sign else a  # prefer +0 as the maximum
    return a if fp_compare_quiet(a, b, env) is Ordering.GREATER else b


def fp_scalb(x: SoftFloat, n: int, env: FPEnv | None = None) -> SoftFloat:
    """``scaleB(x, n) = x * 2**n`` with a single rounding."""
    env = env or get_env()
    if x.is_nan:
        return propagate_nan(env, "scalb", x)
    if x.is_inf or x.is_zero:
        return x
    mant, exp2 = x.significand_value()
    bits = round_and_pack(x.fmt, env, x.sign, mant, exp2 + n, 0, "scalb")
    return SoftFloat(x.fmt, bits)


def fp_ilogb(x: SoftFloat, env: FPEnv | None = None) -> int:
    """``logB(x)``: the unbiased exponent of ``x`` as an integer.

    Subnormals report their true (below ``emin``) exponent.  Zeros,
    infinities, and NaNs raise *invalid* plus :class:`FormatError`.
    """
    env = env or get_env()
    if x.is_nan or x.is_inf or x.is_zero:
        env.raise_flags(FPFlag.INVALID, "ilogb")
        raise FormatError(f"ilogb of {x!s} is undefined")
    mant, exp2 = x.significand_value()
    return exp2 + mant.bit_length() - 1


def ulp(x: SoftFloat) -> SoftFloat:
    """The unit in the last place of ``x``: the gap between consecutive
    representable values at ``x``'s magnitude (quiet; NaN for NaN,
    +inf for infinities)."""
    fmt = x.fmt
    if x.is_nan:
        return SoftFloat.nan(fmt)
    if x.is_inf:
        return SoftFloat.inf(fmt)
    if x.is_zero or x.is_subnormal:
        return SoftFloat(fmt, fmt.min_subnormal_bits(0))
    exponent = x.biased_exp - fmt.bias
    lsb_exp = exponent - fmt.frac_bits
    scratch = FPEnv()
    bits = round_and_pack(fmt, scratch, 0, 1, lsb_exp, 0, "ulp")
    return SoftFloat(fmt, bits)


def significant_bits(x: SoftFloat) -> int:
    """Number of significant bits actually carried by ``x``.

    Normals always carry the full precision; subnormals carry fewer —
    the quantitative content of the *Denormal Precision* question.
    Zero carries none.
    """
    if not x.is_finite:
        raise FormatError(f"{x!s} has no significand")
    if x.is_zero:
        return 0
    if x.is_subnormal:
        return x.frac.bit_length()
    return x.fmt.precision


def fp_minimum(a: SoftFloat, b: SoftFloat, env: FPEnv | None = None) -> SoftFloat:
    """754-*2019* ``minimum``: NaN-propagating, and -0 < +0.

    The 2019 revision *replaced* 2008's ``minNum`` (see :func:`fp_min`)
    after it was found non-associative in the presence of NaNs: minNum
    ignores a single quiet NaN, minimum propagates it.  Two standards,
    two answers — one more way "IEEE floating point" is a moving
    target.
    """
    env = env or get_env()
    if a.is_nan or b.is_nan:
        return propagate_nan(env, "minimum", a, b)
    if a.is_zero and b.is_zero:
        return a if a.sign else b  # -0 is the minimum
    from repro.softfloat.compare import Ordering, fp_compare_quiet

    return a if fp_compare_quiet(a, b, env) is Ordering.LESS else b


def fp_maximum(a: SoftFloat, b: SoftFloat, env: FPEnv | None = None) -> SoftFloat:
    """754-2019 ``maximum`` (NaN-propagating mirror of
    :func:`fp_minimum`; +0 > -0)."""
    env = env or get_env()
    if a.is_nan or b.is_nan:
        return propagate_nan(env, "maximum", a, b)
    if a.is_zero and b.is_zero:
        return b if a.sign else a  # +0 is the maximum
    from repro.softfloat.compare import Ordering, fp_compare_quiet

    return a if fp_compare_quiet(a, b, env) is Ordering.GREATER else b


def fp_min_magnitude(
    a: SoftFloat, b: SoftFloat, env: FPEnv | None = None
) -> SoftFloat:
    """754-2019 ``minimumMagnitude``: smaller absolute value wins
    (ties by :func:`fp_minimum`); NaN-propagating."""
    env = env or get_env()
    if a.is_nan or b.is_nan:
        return propagate_nan(env, "minimumMagnitude", a, b)
    from repro.softfloat.compare import Ordering, fp_compare_quiet

    order = fp_compare_quiet(abs(a), abs(b), env)
    if order is Ordering.LESS:
        return a
    if order is Ordering.GREATER:
        return b
    return fp_minimum(a, b, env)


def fp_max_magnitude(
    a: SoftFloat, b: SoftFloat, env: FPEnv | None = None
) -> SoftFloat:
    """754-2019 ``maximumMagnitude`` (mirror of
    :func:`fp_min_magnitude`)."""
    env = env or get_env()
    if a.is_nan or b.is_nan:
        return propagate_nan(env, "maximumMagnitude", a, b)
    from repro.softfloat.compare import Ordering, fp_compare_quiet

    order = fp_compare_quiet(abs(a), abs(b), env)
    if order is Ordering.GREATER:
        return a
    if order is Ordering.LESS:
        return b
    return fp_maximum(a, b, env)
