"""IEEE 754 comparison predicates.

Two families, per the standard (§5.6.1 / §5.11):

- *quiet* predicates (``fp_eq``, ``fp_ne``, :func:`fp_compare_quiet`)
  raise *invalid* only for signaling NaN operands;
- *signaling* predicates (``fp_lt``, ``fp_le``, ``fp_gt``, ``fp_ge``)
  raise *invalid* for **any** NaN operand, because an ordered comparison
  of unordered values is meaningless.

Both families return ``False`` from every ordered predicate when a NaN
is involved — which is exactly why ``a == a`` can be false (*Identity*)
— and treat ``-0`` and ``+0`` as equal (*Negative Zero*).
"""

from __future__ import annotations

import enum

from repro.fpenv.env import FPEnv, get_env
from repro.fpenv.flags import FPFlag
from repro.softfloat.value import SoftFloat

__all__ = [
    "Ordering",
    "ORDERING_CODES",
    "compare_code",
    "fp_compare_quiet",
    "fp_compare_signaling",
    "fp_eq",
    "fp_ne",
    "fp_lt",
    "fp_le",
    "fp_gt",
    "fp_ge",
    "fp_unordered",
    "total_order_key",
    "fp_total_order",
]


class Ordering(enum.Enum):
    """Four-way comparison result."""

    LESS = -1
    EQUAL = 0
    GREATER = 1
    UNORDERED = None


def _magnitude_key(x: SoftFloat) -> tuple[int, int]:
    """Monotone key for finite/infinite magnitudes within one format.

    The IEEE encodings are ordered as unsigned integers within a sign,
    so the key is simply (biased exponent, fraction).
    """
    return (x.biased_exp, x.frac)


def _ordered_compare(a: SoftFloat, b: SoftFloat) -> Ordering:
    """Compare two non-NaN values."""
    if a.is_zero and b.is_zero:
        return Ordering.EQUAL  # +0 == -0
    if a.sign != b.sign:
        return Ordering.LESS if a.sign else Ordering.GREATER
    ka, kb = _magnitude_key(a), _magnitude_key(b)
    if ka == kb:
        return Ordering.EQUAL
    smaller_mag = ka < kb
    if a.sign:  # both negative: larger magnitude is smaller
        return Ordering.GREATER if smaller_mag else Ordering.LESS
    return Ordering.LESS if smaller_mag else Ordering.GREATER


def fp_compare_quiet(
    a: SoftFloat, b: SoftFloat, env: FPEnv | None = None
) -> Ordering:
    """Quiet four-way comparison; NaNs yield ``UNORDERED`` and raise
    *invalid* only when signaling."""
    env = env or get_env()
    if a.is_signaling_nan or b.is_signaling_nan:
        env.raise_flags(FPFlag.INVALID, "compare")
        return Ordering.UNORDERED
    if a.is_nan or b.is_nan:
        return Ordering.UNORDERED
    return _ordered_compare(a, b)


def fp_compare_signaling(
    a: SoftFloat, b: SoftFloat, env: FPEnv | None = None
) -> Ordering:
    """Signaling four-way comparison; any NaN raises *invalid*."""
    env = env or get_env()
    if a.is_nan or b.is_nan:
        env.raise_flags(FPFlag.INVALID, "compare")
        return Ordering.UNORDERED
    return _ordered_compare(a, b)


#: Dense unsigned lane codes for the four-way comparison result, shared
#: with the batched backends (``Ordering.UNORDERED`` is ``None`` and so
#: cannot ride in an integer lane).
ORDERING_CODES: dict[Ordering, int] = {
    Ordering.LESS: 0,
    Ordering.EQUAL: 1,
    Ordering.GREATER: 2,
    Ordering.UNORDERED: 3,
}


def compare_code(
    a: SoftFloat,
    b: SoftFloat,
    env: FPEnv | None = None,
    *,
    signaling: bool = False,
) -> int:
    """Four-way comparison delivered as a dense integer code (see
    :data:`ORDERING_CODES`); the backend-protocol form of the compare
    predicates."""
    if signaling:
        return ORDERING_CODES[fp_compare_signaling(a, b, env)]
    return ORDERING_CODES[fp_compare_quiet(a, b, env)]


def fp_eq(a: SoftFloat, b: SoftFloat, env: FPEnv | None = None) -> bool:
    """Quiet equality: ``compareQuietEqual``.  NaN != anything."""
    return fp_compare_quiet(a, b, env) is Ordering.EQUAL


def fp_ne(a: SoftFloat, b: SoftFloat, env: FPEnv | None = None) -> bool:
    """Quiet inequality (true when unordered)."""
    return fp_compare_quiet(a, b, env) is not Ordering.EQUAL


def fp_lt(a: SoftFloat, b: SoftFloat, env: FPEnv | None = None) -> bool:
    """Signaling less-than."""
    return fp_compare_signaling(a, b, env) is Ordering.LESS


def fp_le(a: SoftFloat, b: SoftFloat, env: FPEnv | None = None) -> bool:
    """Signaling less-or-equal."""
    return fp_compare_signaling(a, b, env) in (Ordering.LESS, Ordering.EQUAL)


def fp_gt(a: SoftFloat, b: SoftFloat, env: FPEnv | None = None) -> bool:
    """Signaling greater-than."""
    return fp_compare_signaling(a, b, env) is Ordering.GREATER


def fp_ge(a: SoftFloat, b: SoftFloat, env: FPEnv | None = None) -> bool:
    """Signaling greater-or-equal."""
    return fp_compare_signaling(a, b, env) in (Ordering.GREATER, Ordering.EQUAL)


def fp_unordered(a: SoftFloat, b: SoftFloat, env: FPEnv | None = None) -> bool:
    """True when the operands do not compare (at least one NaN)."""
    return fp_compare_quiet(a, b, env) is Ordering.UNORDERED


def total_order_key(x: SoftFloat) -> int:
    """Monotone integer key realizing IEEE 754 ``totalOrder``.

    Orders ``-NaN < -inf < ... < -0 < +0 < ... < +inf < +NaN`` with NaNs
    ordered by payload.  Never raises flags.
    """
    if x.sign:
        return -x.bits
    return x.bits + 1  # keep +0 strictly above -0


def fp_total_order(a: SoftFloat, b: SoftFloat) -> bool:
    """IEEE 754 ``totalOrder(a, b)``: true iff ``a`` precedes-or-equals
    ``b`` in the total ordering."""
    return total_order_key(a) <= total_order_key(b)
