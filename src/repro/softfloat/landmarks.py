"""The boundary-value operand corpus every search and test suite shares.

One deduplicated, order-stable list of the encodings where IEEE-754
behavior changes character: signed zeros and ones, ``1 + ulp``, both
subnormal extremes, the subnormal/normal threshold, the overflow
threshold, infinities, and the NaN family (quiet, payload-carrying,
signaling).  The differential test harness (``tests/strategies.py``),
the divergence search corner tier
(:func:`repro.optsim.compliance.corner_values`), and the guided
witness engine's landmark tier all draw from here, so "the corners"
mean the same thing everywhere.
"""

from __future__ import annotations

from repro.softfloat.formats import FloatFormat
from repro.softfloat.value import SoftFloat

__all__ = ["special_values", "special_bits", "special_pairs"]


def special_values(fmt: FloatFormat) -> list[SoftFloat]:
    """The boundary-value corpus for one format, as softfloats.

    Signed zeros and ones, infinities, quiet NaNs with and without
    payload, a signaling NaN, both subnormal extremes, the subnormal/
    normal threshold, the overflow threshold, and the rounding-sensitive
    ``1 + ulp`` — deduplicated, order-stable.
    """
    payload = min(3, fmt.quiet_bit - 1) if fmt.quiet_bit > 1 else 0
    landmarks = [
        SoftFloat.zero(fmt, 0),
        SoftFloat.zero(fmt, 1),
        SoftFloat.one(fmt, 0),
        SoftFloat.one(fmt, 1),
        SoftFloat(fmt, fmt.one_bits(0) | 1),       # 1 + ulp
        SoftFloat.min_subnormal(fmt, 0),
        SoftFloat.min_subnormal(fmt, 1),
        SoftFloat(fmt, fmt.pack(0, 0, fmt.sig_mask)),  # max subnormal
        SoftFloat.min_normal(fmt, 0),
        SoftFloat.min_normal(fmt, 1),
        SoftFloat.max_finite(fmt, 0),
        SoftFloat.max_finite(fmt, 1),
        SoftFloat.inf(fmt, 0),
        SoftFloat.inf(fmt, 1),
        SoftFloat.nan(fmt),
        SoftFloat(fmt, fmt.quiet_nan_bits(1, payload)),
        SoftFloat.signaling_nan(fmt),
    ]
    seen: set[int] = set()
    out: list[SoftFloat] = []
    for x in landmarks:
        if x.bits not in seen:
            seen.add(x.bits)
            out.append(x)
    return out


def special_bits(fmt: FloatFormat) -> list[int]:
    """:func:`special_values` as packed encodings."""
    return [x.bits for x in special_values(fmt)]


def special_pairs(fmt: FloatFormat) -> list[tuple[int, int]]:
    """All ordered pairs of the boundary corpus (the two-operand sweep
    every differential suite drives)."""
    corpus = special_bits(fmt)
    return [(a, b) for a in corpus for b in corpus]
