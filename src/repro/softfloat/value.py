"""The :class:`SoftFloat` value type.

A ``SoftFloat`` is an immutable bit pattern in a given
:class:`~repro.softfloat.formats.FloatFormat`.  All arithmetic is
performed by pure-Python integer algorithms with correct rounding and
full IEEE exception semantics (see :mod:`repro.softfloat.arith` and
friends); the operators on this class simply dispatch there using the
thread's active :class:`~repro.fpenv.FPEnv`.

Comparison semantics follow IEEE 754, not Python conventions: ``==`` is
the quiet equality predicate, so a NaN compares unequal to itself — the
subject of the paper's *Identity* question — and ``-0.0 == 0.0`` is true
(*Negative Zero*).  Use :meth:`same_bits` for representation identity.
"""

from __future__ import annotations

import enum
from fractions import Fraction
from typing import TYPE_CHECKING, Union

from repro.errors import FormatError
from repro.softfloat.formats import BINARY64, FloatFormat

if TYPE_CHECKING:  # pragma: no cover
    from repro.fpenv.env import FPEnv

__all__ = ["SoftFloat", "FPClass"]


class FPClass(enum.Enum):
    """IEEE 754 ``class()`` operation result."""

    SIGNALING_NAN = "signalingNaN"
    QUIET_NAN = "quietNaN"
    NEGATIVE_INFINITY = "negativeInfinity"
    NEGATIVE_NORMAL = "negativeNormal"
    NEGATIVE_SUBNORMAL = "negativeSubnormal"
    NEGATIVE_ZERO = "negativeZero"
    POSITIVE_ZERO = "positiveZero"
    POSITIVE_SUBNORMAL = "positiveSubnormal"
    POSITIVE_NORMAL = "positiveNormal"
    POSITIVE_INFINITY = "positiveInfinity"


Operand = Union["SoftFloat", int, float]


class SoftFloat:
    """An immutable IEEE-754 binary floating point value.

    Construct via the classmethods (:meth:`from_bits`, :meth:`from_float`,
    :meth:`from_int`, :meth:`from_fraction`, :meth:`from_str`) or the
    convenience wrappers in :mod:`repro.softfloat`.
    """

    __slots__ = ("_fmt", "_bits")

    def __init__(self, fmt: FloatFormat, bits: int) -> None:
        if not 0 <= bits < (1 << fmt.width):
            raise FormatError(f"bit pattern 0x{bits:x} out of range for {fmt}")
        object.__setattr__(self, "_fmt", fmt)
        object.__setattr__(self, "_bits", bits)

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("SoftFloat is immutable")

    # ------------------------------------------------------------------
    # Raw accessors
    # ------------------------------------------------------------------
    @property
    def fmt(self) -> FloatFormat:
        """The value's format."""
        return self._fmt

    @property
    def bits(self) -> int:
        """The raw encoding as an unsigned integer."""
        return self._bits

    @property
    def sign(self) -> int:
        """Sign bit: 0 positive, 1 negative (NaNs carry a sign too)."""
        return self._bits >> (self._fmt.width - 1)

    @property
    def biased_exp(self) -> int:
        """Raw biased exponent field."""
        return (self._bits >> self._fmt.frac_bits) & self._fmt.max_biased_exp

    @property
    def frac(self) -> int:
        """Raw trailing significand field."""
        return self._bits & self._fmt.sig_mask

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    @property
    def is_nan(self) -> bool:
        """True for quiet and signaling NaNs."""
        return self.biased_exp == self._fmt.max_biased_exp and self.frac != 0

    @property
    def is_quiet_nan(self) -> bool:
        """True for quiet NaNs (quiet bit set)."""
        return self.is_nan and bool(self.frac & self._fmt.quiet_bit)

    @property
    def is_signaling_nan(self) -> bool:
        """True for signaling NaNs (quiet bit clear, payload nonzero)."""
        return self.is_nan and not (self.frac & self._fmt.quiet_bit)

    @property
    def is_inf(self) -> bool:
        """True for ±infinity."""
        return self.biased_exp == self._fmt.max_biased_exp and self.frac == 0

    @property
    def is_zero(self) -> bool:
        """True for ±0."""
        return self.biased_exp == 0 and self.frac == 0

    @property
    def is_subnormal(self) -> bool:
        """True for nonzero subnormals (the 'denormalized numbers')."""
        return self.biased_exp == 0 and self.frac != 0

    @property
    def is_normal(self) -> bool:
        """True for normal finite nonzero values."""
        return 0 < self.biased_exp < self._fmt.max_biased_exp

    @property
    def is_finite(self) -> bool:
        """True for zeros, subnormals, and normals."""
        return self.biased_exp < self._fmt.max_biased_exp

    @property
    def is_negative(self) -> bool:
        """True when the sign bit is set (including -0 and -NaN)."""
        return self.sign == 1

    def classify(self) -> FPClass:
        """IEEE 754 ``class()``: the ten-way classification."""
        if self.is_signaling_nan:
            return FPClass.SIGNALING_NAN
        if self.is_nan:
            return FPClass.QUIET_NAN
        if self.is_inf:
            return (
                FPClass.NEGATIVE_INFINITY if self.sign else FPClass.POSITIVE_INFINITY
            )
        if self.is_zero:
            return FPClass.NEGATIVE_ZERO if self.sign else FPClass.POSITIVE_ZERO
        if self.is_subnormal:
            return (
                FPClass.NEGATIVE_SUBNORMAL if self.sign else FPClass.POSITIVE_SUBNORMAL
            )
        return FPClass.NEGATIVE_NORMAL if self.sign else FPClass.POSITIVE_NORMAL

    # ------------------------------------------------------------------
    # Exact value access
    # ------------------------------------------------------------------
    def significand_value(self) -> tuple[int, int]:
        """Finite value as ``(mantissa, exp2)``: magnitude = mant * 2**exp2.

        Zeros return ``(0, 0)``.  Raises :class:`FormatError` for
        non-finite values.
        """
        if not self.is_finite:
            raise FormatError(f"{self!r} has no finite value")
        fmt = self._fmt
        if self.biased_exp == 0:
            return self.frac, fmt.emin - fmt.frac_bits
        mant = self.frac | fmt.hidden_bit
        return mant, self.biased_exp - fmt.bias - fmt.frac_bits

    def to_fraction(self) -> Fraction:
        """Exact rational value of a finite SoftFloat."""
        mant, exp2 = self.significand_value()
        if self.sign:
            mant = -mant
        if exp2 >= 0:
            return Fraction(mant * (1 << exp2))
        return Fraction(mant, 1 << (-exp2))

    def to_float(self) -> float:
        """Convert to the host's binary64 ``float``.

        Exact for binary64 and narrower standard formats; wider formats
        are correctly rounded (flags are *not* raised — this is an
        observation, not an operation).
        """
        from repro.softfloat.convert import softfloat_to_float

        return softfloat_to_float(self)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_bits(cls, fmt: FloatFormat, bits: int) -> "SoftFloat":
        """Reinterpret a raw encoding."""
        return cls(fmt, bits)

    @classmethod
    def from_float(cls, value: float, fmt: FloatFormat = BINARY64) -> "SoftFloat":
        """Correctly rounded conversion from a host ``float``."""
        from repro.softfloat.convert import softfloat_from_float

        return softfloat_from_float(value, fmt)

    @classmethod
    def from_int(
        cls, value: int, fmt: FloatFormat = BINARY64, env: "FPEnv | None" = None
    ) -> "SoftFloat":
        """Correctly rounded conversion from an integer."""
        from repro.softfloat.convert import softfloat_from_int

        return softfloat_from_int(value, fmt, env=env)

    @classmethod
    def from_fraction(
        cls,
        value: Fraction,
        fmt: FloatFormat = BINARY64,
        env: "FPEnv | None" = None,
    ) -> "SoftFloat":
        """Correctly rounded conversion from an exact rational."""
        from repro.softfloat.convert import softfloat_from_fraction

        return softfloat_from_fraction(value, fmt, env=env)

    @classmethod
    def from_str(
        cls, text: str, fmt: FloatFormat = BINARY64, env: "FPEnv | None" = None
    ) -> "SoftFloat":
        """Correctly rounded conversion from a decimal or hex literal."""
        from repro.softfloat.parse import parse_softfloat

        return parse_softfloat(text, fmt, env=env)

    @classmethod
    def zero(cls, fmt: FloatFormat = BINARY64, sign: int = 0) -> "SoftFloat":
        """±0 in the given format."""
        return cls(fmt, fmt.zero_bits(sign))

    @classmethod
    def one(cls, fmt: FloatFormat = BINARY64, sign: int = 0) -> "SoftFloat":
        """±1 in the given format."""
        return cls(fmt, fmt.one_bits(sign))

    @classmethod
    def inf(cls, fmt: FloatFormat = BINARY64, sign: int = 0) -> "SoftFloat":
        """±infinity in the given format."""
        return cls(fmt, fmt.inf_bits(sign))

    @classmethod
    def nan(
        cls, fmt: FloatFormat = BINARY64, sign: int = 0, payload: int = 0
    ) -> "SoftFloat":
        """A quiet NaN."""
        return cls(fmt, fmt.quiet_nan_bits(sign, payload))

    @classmethod
    def signaling_nan(
        cls, fmt: FloatFormat = BINARY64, sign: int = 0, payload: int = 1
    ) -> "SoftFloat":
        """A signaling NaN (payload must be nonzero)."""
        return cls(fmt, fmt.signaling_nan_bits(sign, payload))

    @classmethod
    def max_finite(cls, fmt: FloatFormat = BINARY64, sign: int = 0) -> "SoftFloat":
        """Largest finite magnitude."""
        return cls(fmt, fmt.max_finite_bits(sign))

    @classmethod
    def min_normal(cls, fmt: FloatFormat = BINARY64, sign: int = 0) -> "SoftFloat":
        """Smallest positive normal magnitude."""
        return cls(fmt, fmt.min_normal_bits(sign))

    @classmethod
    def min_subnormal(cls, fmt: FloatFormat = BINARY64, sign: int = 0) -> "SoftFloat":
        """Smallest positive subnormal magnitude."""
        return cls(fmt, fmt.min_subnormal_bits(sign))

    # ------------------------------------------------------------------
    # Sign-bit operations (quiet: never raise flags, per IEEE 5.5.1)
    # ------------------------------------------------------------------
    def __neg__(self) -> "SoftFloat":
        return SoftFloat(self._fmt, self._bits ^ (1 << (self._fmt.width - 1)))

    def __abs__(self) -> "SoftFloat":
        return SoftFloat(self._fmt, self._bits & ~(1 << (self._fmt.width - 1)))

    def __pos__(self) -> "SoftFloat":
        return self

    def copysign(self, other: "SoftFloat") -> "SoftFloat":
        """This magnitude with ``other``'s sign (quiet)."""
        mag = self._bits & ~(1 << (self._fmt.width - 1))
        return SoftFloat(self._fmt, mag | (other.sign << (self._fmt.width - 1)))

    # ------------------------------------------------------------------
    # Arithmetic operators (dispatch through the active environment)
    # ------------------------------------------------------------------
    def _coerce(self, other: Operand) -> "SoftFloat":
        if isinstance(other, SoftFloat):
            if other._fmt != self._fmt:
                raise FormatError(
                    f"mixed formats {self._fmt} and {other._fmt}; convert explicitly"
                )
            return other
        if isinstance(other, bool):
            raise TypeError("refusing to coerce bool to SoftFloat")
        if isinstance(other, int):
            return SoftFloat.from_int(other, self._fmt)
        if isinstance(other, float):
            return SoftFloat.from_float(other, self._fmt)
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other: Operand) -> "SoftFloat":
        from repro.softfloat import arith

        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return arith.fp_add(self, rhs)

    def __radd__(self, other: Operand) -> "SoftFloat":
        lhs = self._coerce(other)
        if lhs is NotImplemented:
            return NotImplemented
        return lhs + self

    def __sub__(self, other: Operand) -> "SoftFloat":
        from repro.softfloat import arith

        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return arith.fp_sub(self, rhs)

    def __rsub__(self, other: Operand) -> "SoftFloat":
        lhs = self._coerce(other)
        if lhs is NotImplemented:
            return NotImplemented
        return lhs - self

    def __mul__(self, other: Operand) -> "SoftFloat":
        from repro.softfloat import arith

        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return arith.fp_mul(self, rhs)

    def __rmul__(self, other: Operand) -> "SoftFloat":
        lhs = self._coerce(other)
        if lhs is NotImplemented:
            return NotImplemented
        return lhs * self

    def __truediv__(self, other: Operand) -> "SoftFloat":
        from repro.softfloat import arith

        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return arith.fp_div(self, rhs)

    def __rtruediv__(self, other: Operand) -> "SoftFloat":
        lhs = self._coerce(other)
        if lhs is NotImplemented:
            return NotImplemented
        return lhs / self

    # ------------------------------------------------------------------
    # Comparisons (IEEE semantics, not Python identity semantics)
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:  # type: ignore[override]
        from repro.softfloat import compare

        if not isinstance(other, (SoftFloat, int, float)):
            return NotImplemented
        rhs = self._coerce(other)
        return compare.fp_eq(self, rhs)

    def __ne__(self, other: object) -> bool:  # type: ignore[override]
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __lt__(self, other: Operand) -> bool:
        from repro.softfloat import compare

        return compare.fp_lt(self, self._coerce(other))

    def __le__(self, other: Operand) -> bool:
        from repro.softfloat import compare

        return compare.fp_le(self, self._coerce(other))

    def __gt__(self, other: Operand) -> bool:
        from repro.softfloat import compare

        return compare.fp_gt(self, self._coerce(other))

    def __ge__(self, other: Operand) -> bool:
        from repro.softfloat import compare

        return compare.fp_ge(self, self._coerce(other))

    def __hash__(self) -> int:
        # Hash by representation; fine even though == is IEEE equality
        # (equal values ±0 hash differently is *not* allowed, so fold -0).
        if self.is_zero:
            return hash((self._fmt.name, "zero"))
        return hash((self._fmt.name, self._bits))

    def same_bits(self, other: "SoftFloat") -> bool:
        """Representation identity: same format and same bit pattern.

        Unlike ``==`` this distinguishes +0 from -0 and holds for NaNs.
        """
        return self._fmt == other._fmt and self._bits == other._bits

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        from repro.softfloat.printing import format_softfloat

        return f"SoftFloat({self._fmt.name}, {format_softfloat(self)})"

    def __str__(self) -> str:
        from repro.softfloat.printing import format_softfloat

        return format_softfloat(self)

    def hex(self) -> str:
        """C99 ``%a``-style hexadecimal-significand form."""
        from repro.softfloat.printing import format_hex

        return format_hex(self)
