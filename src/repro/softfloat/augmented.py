"""IEEE 754-2019 augmented operations.

``augmentedAddition`` and ``augmentedMultiplication`` return the
rounded result *and the exact rounding error*, such that
``head + tail == a op b`` exactly.  They were added to the 2019
standard precisely to support the compensated algorithms in
:mod:`repro.numerics` without the multi-operation TwoSum dance (and
without the fragility fast-math introduces there).

Deviations/notes: the standard specifies round-to-nearest *ties toward
zero* for these operations; this implementation follows the softfloat
engine's exact-intermediate design instead — the head is the
round-to-nearest-even result and the tail is its exact complement,
which satisfies the same head+tail identity (and matches TwoSum).  The
difference is observable only on ties.
"""

from __future__ import annotations

from repro.fpenv.env import FPEnv, get_env
from repro.fpenv.flags import FPFlag
from repro.softfloat._round import round_and_pack
from repro.softfloat.arith import fp_add, fp_mul, propagate_nan
from repro.softfloat.value import SoftFloat

__all__ = ["augmented_addition", "augmented_multiplication"]


def _exact_tail(
    head: SoftFloat, exact_mant: int, exact_exp: int, env: FPEnv
) -> SoftFloat:
    """The exact remainder ``(exact) - head`` as a SoftFloat (it is
    always representable when no over/underflow intervened)."""
    fmt = head.fmt
    head_mant, head_exp = head.significand_value()
    if head.sign:
        head_mant = -head_mant
    if head_mant:
        e = min(exact_exp, head_exp)
        tail_value = (exact_mant << (exact_exp - e)) - (
            head_mant << (head_exp - e)
        )
    else:
        # head rounded to zero: the tail is the exact value itself
        # (head_exp is zero's storage exponent and may exceed e).
        e = exact_exp
        tail_value = exact_mant
    if tail_value == 0:
        return SoftFloat.zero(fmt)
    sign = 1 if tail_value < 0 else 0
    bits = round_and_pack(fmt, env, sign, abs(tail_value), e, 0, "augmented")
    return SoftFloat(fmt, bits)


def augmented_addition(
    a: SoftFloat, b: SoftFloat, env: FPEnv | None = None
) -> tuple[SoftFloat, SoftFloat]:
    """``(head, tail)`` with ``head = fl(a + b)`` and
    ``head + tail == a + b`` exactly.

    Exceptional cases return ``(result, NaN-or-0)``: NaN operands and
    infinities have no meaningful tail; on overflow of the head the
    tail is NaN (the exact error is not representable).
    """
    env = env or get_env()
    fmt = a.fmt
    if a.is_nan or b.is_nan:
        nan = propagate_nan(env, "augmentedAddition", a, b)
        return nan, SoftFloat.nan(fmt)
    head = fp_add(a, b, env)
    if not head.is_finite:
        return head, SoftFloat.nan(fmt)
    if a.is_inf or b.is_inf:  # pragma: no cover - head would be inf
        return head, SoftFloat.nan(fmt)
    if a.is_zero and b.is_zero:
        return head, SoftFloat.zero(fmt)
    ma, ea = (0, 0) if a.is_zero else a.significand_value()
    mb, eb = (0, 0) if b.is_zero else b.significand_value()
    if a.sign:
        ma = -ma
    if b.sign:
        mb = -mb
    e = min(ea, eb)
    exact = (ma << (ea - e)) + (mb << (eb - e))
    scratch = FPEnv()
    tail = _exact_tail(head, exact, e, scratch)
    if scratch.any_flag(FPFlag.INEXACT):  # pragma: no cover - invariant
        raise AssertionError("augmented addition tail was not exact")
    return head, tail


def augmented_multiplication(
    a: SoftFloat, b: SoftFloat, env: FPEnv | None = None
) -> tuple[SoftFloat, SoftFloat]:
    """``(head, tail)`` with ``head = fl(a * b)`` and
    ``head + tail == a * b`` exactly (NaN tail when not representable,
    e.g. overflow or subnormal-range heads whose error underflows)."""
    env = env or get_env()
    fmt = a.fmt
    if a.is_nan or b.is_nan:
        nan = propagate_nan(env, "augmentedMultiplication", a, b)
        return nan, SoftFloat.nan(fmt)
    head = fp_mul(a, b, env)
    if not head.is_finite:
        return head, SoftFloat.nan(fmt)
    if a.is_zero or b.is_zero or a.is_inf or b.is_inf:
        return head, SoftFloat.zero(fmt)
    ma, ea = a.significand_value()
    mb, eb = b.significand_value()
    exact = ma * mb * (1 if a.sign == b.sign else -1)
    scratch = FPEnv()
    tail = _exact_tail(head, exact, ea + eb, scratch)
    if scratch.any_flag(FPFlag.INEXACT):
        # The exact error is below the subnormal range: per the
        # standard, deliver NaN (inexact tails are worse than none).
        return head, SoftFloat.nan(fmt)
    return head, tail
