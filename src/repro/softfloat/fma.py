"""Fused multiply-add: ``a*b + c`` with a single rounding.

FMA is the subject of the paper's *MADD* optimization question: it was
added in IEEE 754-2008 (it is not in 754-1985), and because it rounds
once rather than twice it can compute a *different* result from
``round(round(a*b) + c)``.  :mod:`repro.optsim` uses this operation to
exhibit witnesses for that divergence.
"""

from __future__ import annotations

from repro.fpenv.env import FPEnv, get_env
from repro.fpenv.flags import FPFlag
from repro.softfloat._round import round_and_pack
from repro.softfloat.arith import _apply_daz, _exact_zero_sign, propagate_nan
from repro.softfloat.value import SoftFloat

__all__ = ["fp_fma", "SCALAR_KERNELS"]


def fp_fma(
    a: SoftFloat, b: SoftFloat, c: SoftFloat, env: FPEnv | None = None
) -> SoftFloat:
    """Compute ``fusedMultiplyAdd(a, b, c)`` with correct single rounding.

    Special-case policy (documented implementation choices where IEEE
    754-2008 leaves latitude): ``fma(0, inf, c)`` and ``fma(inf, 0, c)``
    raise *invalid* and return the default NaN even when ``c`` is a quiet
    NaN, matching x86 FMA3 behavior.
    """
    env = env or get_env()
    if env.recorder is not None:
        env.recorder.record_op("fma", a.fmt.name)
    fmt = a.fmt

    # Invalid 0*inf is detected before NaN propagation of `c` (x86 rule),
    # but a signaling NaN anywhere always takes the NaN path.
    if a.is_signaling_nan or b.is_signaling_nan or c.is_signaling_nan:
        return propagate_nan(env, "fma", a, b, c)
    product_invalid = (a.is_inf and b.is_zero) or (a.is_zero and b.is_inf)
    if product_invalid and not (a.is_nan or b.is_nan):
        env.raise_flags(FPFlag.INVALID, "fma")
        return SoftFloat(fmt, fmt.quiet_nan_bits())
    if a.is_nan or b.is_nan or c.is_nan:
        return propagate_nan(env, "fma", a, b, c)

    a, b, c = _apply_daz(env, a), _apply_daz(env, b), _apply_daz(env, c)
    psign = a.sign ^ b.sign

    if a.is_inf or b.is_inf:
        if c.is_inf and c.sign != psign:
            env.raise_flags(FPFlag.INVALID, "fma")
            return SoftFloat(fmt, fmt.quiet_nan_bits())
        return SoftFloat.inf(fmt, psign)
    if c.is_inf:
        return c

    if a.is_zero or b.is_zero:
        # Exact product of zero: result is c, except that 0 + (-0)
        # follows the addition sign rules.
        if c.is_zero:
            if psign == c.sign:
                return SoftFloat.zero(fmt, psign)
            return SoftFloat.zero(fmt, _exact_zero_sign(env))
        return c

    m1, e1 = a.significand_value()
    m2, e2 = b.significand_value()
    product = m1 * m2 * (-1 if psign else 1)
    pe = e1 + e2

    if c.is_zero:
        total, e = product, pe
    else:
        m3, e3 = c.significand_value()
        v3 = m3 * (-1 if c.sign else 1)
        e = min(pe, e3)
        total = (product << (pe - e)) + (v3 << (e3 - e))

    if total == 0:
        return SoftFloat.zero(fmt, _exact_zero_sign(env))
    sign = 1 if total < 0 else 0
    bits = round_and_pack(fmt, env, sign, abs(total), e, 0, "fma")
    return SoftFloat(fmt, bits)


#: Backend kernel table (see :mod:`repro.softfloat.backend`).
SCALAR_KERNELS = {"fma": fp_fma}
