"""Numpy batch backend: vectorized integer bit-twiddling over uint64 lanes.

This backend re-implements the scalar round-and-pack pipeline
(:mod:`repro.softfloat._round`) with numpy array operations so that
thousands of packed encodings are evaluated per Python bytecode
dispatch.  It is **bit-identical** to the scalar ops — same packed
results, same per-lane sticky flags — for every combination it claims
via :meth:`BatchBackend.supports`; the differential suite in
``tests/softfloat/test_backends.py`` pins this against the exact
oracle.

Width bounds (why ``supports`` gates on precision)
--------------------------------------------------
All lane arithmetic runs in ``uint64``/``int64``, so every intermediate
must fit in 63 bits with its round/sticky structure intact:

- *add/sub* (``precision <= 53``): operands are aligned into a shared
  granularity window ``g = max(min(e1, e2), M - 57)`` where ``M`` is the
  larger operand's MSB exponent.  Each aligned magnitude then spans at
  most 58 bits and the signed sum fits ``int64``.  Discarding below the
  window is sound: bits are only lost when the granularities differ by
  more than 57, in which case the non-dominant operand is below
  ``2**(M-4)``, the sum keeps its MSB at ``M`` or ``M-1``, and the
  result's round bit sits at least 3 bits above the window floor — the
  discarded amount is pure sticky.  A lost amount on the side opposite
  the result's sign turns into a borrow (``mag -= 1``) plus sticky.
- *mul* (``precision <= 28``): the full significand product spans at
  most ``2p <= 56`` bits — exact.
- *div/fma* (``precision <= 27``): the scaled quotient spans at most
  ``2p + 3 <= 57`` bits; the fma product at most ``2p <= 54`` bits and
  then rides the add/sub window machinery.
- *sqrt* (``precision <= 24``): the scaled radicand spans at most
  ``2p + 5 <= 53`` bits, so ``float64`` square root plus a two-step
  integer fix-up recovers the exact integer root.

The vectorized :func:`_round_pack` mirrors ``round_and_pack`` branch for
branch (tininess before rounding, underflow only when tiny *and*
inexact, FTZ flushing, per-mode overflow saturation), with dead lanes
masked via safe substitute values.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.fpenv.flags import FPFlag
from repro.fpenv.rounding import RoundingMode
from repro.softfloat.backend import (
    ORD_EQUAL,
    ORD_GREATER,
    ORD_LESS,
    ORD_UNORDERED,
    BatchResult,
    SoftFloatBackend,
)
from repro.softfloat.formats import FloatFormat

__all__ = ["BatchBackend"]

U64 = np.uint64
I64 = np.int64

F_INVALID = np.uint8(FPFlag.INVALID.value)
F_DIVZERO = np.uint8(FPFlag.DIV_BY_ZERO.value)
F_OVERFLOW = np.uint8(FPFlag.OVERFLOW.value)
F_UNDERFLOW = np.uint8(FPFlag.UNDERFLOW.value)
F_INEXACT = np.uint8(FPFlag.INEXACT.value)
F_DENORMAL = np.uint8(FPFlag.DENORMAL_RESULT.value)


# ----------------------------------------------------------------------
# Integer lane primitives
# ----------------------------------------------------------------------
def _bit_length(x: np.ndarray) -> np.ndarray:
    """Per-lane ``int.bit_length`` for uint64 values below ``2**63``.

    Exact by construction: each 32-bit half converts to float64 without
    rounding, and ``frexp``'s exponent *is* the bit length.
    """
    hi = (x >> 32).astype(np.float64)
    lo = (x & U64(0xFFFFFFFF)).astype(np.float64)
    _, ehi = np.frexp(hi)
    _, elo = np.frexp(lo)
    return np.where(hi > 0, ehi.astype(I64) + 32, elo.astype(I64))


def _shl(x: np.ndarray, k: np.ndarray) -> np.ndarray:
    """``x << k`` with ``k`` clamped into [0, 63] (callers bound live
    lanes; dead lanes may wrap harmlessly)."""
    return x << np.clip(k, 0, 63).astype(U64)


def _shr_sticky(x: np.ndarray, k: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(x >> k, any bits lost)`` — exact for ``x < 2**62`` with the
    shift clamped at 62 (a clamped lane keeps all of ``x`` as sticky)."""
    kc = np.clip(k, 0, 62).astype(U64)
    kept = x >> kc
    lost = (x & ((U64(1) << kc) - U64(1))) != 0
    return kept, lost


def _rounds_away(
    mode: RoundingMode,
    sign: np.ndarray,
    lsb: np.ndarray,
    round_bit: np.ndarray,
    sticky: np.ndarray,
) -> np.ndarray:
    """Vectorized :meth:`RoundingMode.rounds_away` (sign/lsb/round_bit
    are uint64 0-or-more lanes, sticky is boolean)."""
    rb = round_bit != 0
    inexact = rb | sticky
    if mode is RoundingMode.NEAREST_EVEN:
        return rb & (sticky | (lsb != 0))
    if mode is RoundingMode.NEAREST_AWAY:
        return rb
    if mode is RoundingMode.TOWARD_ZERO:
        return np.zeros_like(rb)
    if mode is RoundingMode.TOWARD_POSITIVE:
        return inexact & (sign == 0)
    if mode is RoundingMode.TOWARD_NEGATIVE:
        return inexact & (sign == 1)
    raise AssertionError(f"unhandled rounding mode {mode!r}")


def _round_pack(
    fmt: FloatFormat,
    mode: RoundingMode,
    ftz: bool,
    sign: np.ndarray,
    mant: np.ndarray,
    exp2: np.ndarray,
    sticky_in: np.ndarray,
    live: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized ``round_and_pack``: round ``(-1)**sign * mant * 2**exp2
    (+ sticky)`` into ``fmt``, delivering (bits, flag bytes).

    ``mant`` must be positive and below ``2**61`` on live lanes; dead
    lanes produce zeros in both outputs.
    """
    n = mant.shape[0]
    p = fmt.precision
    mant = np.where(live & (mant > 0), mant, U64(1))
    sticky_in = sticky_in & live

    bl = _bit_length(mant)
    msb_exp = exp2 + bl - 1
    tiny = msb_exp < fmt.emin
    lsb_exp = np.where(tiny, I64(fmt.emin - (p - 1)), msb_exp - (p - 1))

    shift = lsb_exp - exp2
    left = shift <= 0
    kept_l = _shl(mant, -shift)
    kept_r, rb_r, stk_r = (
        mant >> np.clip(shift, 1, 62).astype(U64),
        (mant >> np.clip(shift - 1, 0, 61).astype(U64)) & U64(1),
        sticky_in
        | ((mant & ((U64(1) << np.clip(shift - 1, 0, 61).astype(U64)) - U64(1))) != 0),
    )
    kept = np.where(left, kept_l, kept_r)
    round_bit = np.where(left, U64(0), rb_r)
    stk = np.where(left, sticky_in, stk_r)
    inexact = (round_bit != 0) | stk

    away = _rounds_away(mode, sign, kept & U64(1), round_bit, stk)
    kept = kept + away.astype(U64)
    kbl = _bit_length(kept)
    carry = kbl > p
    kept = np.where(carry, kept >> U64(1), kept)
    lsb_exp = lsb_exp + carry.astype(I64)
    kbl = kbl - carry.astype(I64)

    flags = np.zeros(n, dtype=np.uint8)
    flags[inexact] |= F_INEXACT
    flags[inexact & tiny] |= F_UNDERFLOW

    is_zero = kept == 0
    rounded_msb = lsb_exp + kbl - 1
    overflow = (~is_zero) & (rounded_msb > fmt.emax)
    normal = (~is_zero) & (~overflow) & (kbl == p)
    subnormal = (~is_zero) & (~overflow) & (kbl < p)

    signbit = sign << U64(fmt.width - 1)
    if mode.is_nearest:
        ovf_bits = signbit | U64(fmt.inf_bits(0))
    elif mode is RoundingMode.TOWARD_ZERO:
        ovf_bits = signbit | U64(fmt.max_finite_bits(0))
    elif mode is RoundingMode.TOWARD_POSITIVE:
        ovf_bits = np.where(
            sign == 0, U64(fmt.inf_bits(0)), U64(fmt.max_finite_bits(1))
        )
    else:  # TOWARD_NEGATIVE
        ovf_bits = np.where(
            sign == 1, U64(fmt.inf_bits(1)), U64(fmt.max_finite_bits(0))
        )
    flags[overflow & live] |= F_OVERFLOW | F_INEXACT

    biased = np.clip(rounded_msb + fmt.bias, 0, fmt.max_biased_exp).astype(U64)
    normal_bits = signbit | (biased << U64(fmt.frac_bits)) | (kept & U64(fmt.sig_mask))

    if ftz:
        flags[subnormal & live] |= F_UNDERFLOW | F_INEXACT
        sub_bits = signbit
    else:
        flags[subnormal & live] |= F_DENORMAL
        sub_bits = signbit | kept

    bits = np.where(
        is_zero,
        signbit,
        np.where(overflow, ovf_bits, np.where(normal, normal_bits, sub_bits)),
    )
    bits = np.where(live, bits, U64(0))
    flags = np.where(live, flags, np.uint8(0))
    return bits, flags


# ----------------------------------------------------------------------
# Operand decomposition
# ----------------------------------------------------------------------
class _Lanes:
    """Unpacked fields and class masks of one packed-operand array."""

    __slots__ = ("bits", "sign", "bexp", "frac", "nan", "snan", "inf", "zero", "sub")

    def __init__(self, fmt: FloatFormat, bits: np.ndarray) -> None:
        self.bits = bits
        self.sign = (bits >> U64(fmt.width - 1)) & U64(1)
        self.bexp = (bits >> U64(fmt.frac_bits)) & U64(fmt.max_biased_exp)
        self.frac = bits & U64(fmt.sig_mask)
        max_be = self.bexp == fmt.max_biased_exp
        self.nan = max_be & (self.frac != 0)
        self.snan = self.nan & ((self.frac & U64(fmt.quiet_bit)) == 0)
        self.inf = max_be & (self.frac == 0)
        self.zero = (self.bexp == 0) & (self.frac == 0)
        self.sub = (self.bexp == 0) & (self.frac != 0)


def _daz(fmt: FloatFormat, lanes: _Lanes) -> _Lanes:
    """Denormals-are-zero: flush subnormal lanes to signed zero."""
    bits = np.where(lanes.sub, lanes.sign << U64(fmt.width - 1), lanes.bits)
    return _Lanes(fmt, bits)


def _sig_value(fmt: FloatFormat, lanes: _Lanes) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized ``SoftFloat.significand_value``: (mant, exp2) lanes."""
    is_normal = lanes.bexp > 0
    mant = np.where(is_normal, lanes.frac | U64(fmt.hidden_bit), lanes.frac)
    exp2 = np.where(
        is_normal,
        lanes.bexp.astype(I64) - (fmt.bias + fmt.frac_bits),
        I64(fmt.emin - fmt.frac_bits),
    )
    return mant, exp2


def _nan_propagation(
    fmt: FloatFormat, operands: Sequence[_Lanes]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """IEEE NaN propagation lanes: (any-NaN mask, first NaN quieted,
    invalid mask for signaling NaNs)."""
    any_nan = operands[0].nan.copy()
    any_snan = operands[0].snan.copy()
    for ln in operands[1:]:
        any_nan |= ln.nan
        any_snan |= ln.snan
    quiet = U64(fmt.quiet_bit)
    result = np.zeros_like(operands[0].bits)
    remaining = any_nan.copy()
    for ln in operands:
        take = remaining & ln.nan
        result = np.where(take, ln.bits | quiet, result)
        remaining &= ~ln.nan
    return any_nan, result, any_snan


def _signed_sum(
    m1: np.ndarray,
    e1: np.ndarray,
    s1: np.ndarray,
    m2: np.ndarray,
    e2: np.ndarray,
    s2: np.ndarray,
    live: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Windowed exact signed sum of two (mant, exp2, sign) lane triples.

    Returns ``(is_zero, sign, mag, exp, sticky)``.  ``m1`` must be
    positive on live lanes; ``m2`` may be zero (the lane then reduces to
    operand 1).  See the module docstring for the window bound.
    """
    m1 = np.where(live, m1, U64(1))
    has2 = live & (m2 > 0)
    m2s = np.where(has2, m2, U64(1))

    bl1 = _bit_length(m1)
    bl2 = _bit_length(m2s)
    msb1 = e1 + bl1 - 1
    msb2 = np.where(has2, e2 + bl2 - 1, I64(-(1 << 40)))
    big = np.maximum(msb1, msb2)
    floor_exp = np.where(has2, np.minimum(e1, e2), e1)
    g = np.maximum(floor_exp, big - 57)

    sh1 = e1 - g
    a1_r, lost1_r = _shr_sticky(m1, -sh1)
    a1 = np.where(sh1 >= 0, _shl(m1, sh1), a1_r)
    lost1 = np.where(sh1 >= 0, False, lost1_r)

    sh2 = e2 - g
    a2_r, lost2_r = _shr_sticky(m2s, -sh2)
    a2 = np.where(sh2 >= 0, _shl(m2s, sh2), a2_r)
    lost2 = np.where(sh2 >= 0, False, lost2_r)
    a2 = np.where(has2, a2, U64(0))
    lost2 = np.where(has2, lost2, False)

    v1 = a1.astype(I64) * np.where(s1 != 0, -1, 1)
    v2 = a2.astype(I64) * np.where(s2 != 0, -1, 1)
    total = v1 + v2
    lost = lost1 | lost2
    s_lost = np.where(lost1, s1, s2)  # at most one side can lose bits

    is_zero = (total == 0) & live  # only reachable when nothing was lost
    sign = (total < 0).astype(U64)
    mag = np.abs(total).astype(U64)
    # A lost amount on the side opposite the result's sign is a borrow:
    # |total*2^g - d| = (|total|-1)*2^g + (2^g - d), both parts sticky.
    mag = mag - (lost & (s_lost != sign)).astype(U64)
    return is_zero, sign, mag, g, lost


# ----------------------------------------------------------------------
# Batched operations
# ----------------------------------------------------------------------
def _batch_addsub(fmt, a, b, mode, ftz, daz, negate_b):
    n = a.shape[0]
    lanes_a = _Lanes(fmt, a)
    lanes_b = _Lanes(fmt, b)
    # NaN propagation sees the *original* operands (fp_sub semantics).
    nan_mask, nan_bits, any_snan = _nan_propagation(fmt, [lanes_a, lanes_b])
    flags = np.zeros(n, dtype=np.uint8)
    flags[any_snan] |= F_INVALID
    if negate_b:
        lanes_b = _Lanes(fmt, b ^ (U64(1) << U64(fmt.width - 1)))
    if daz:
        lanes_a = _daz(fmt, lanes_a)
        lanes_b = _daz(fmt, lanes_b)
    A, B = lanes_a, lanes_b

    ezs_bits = U64(fmt.zero_bits(1 if mode is RoundingMode.TOWARD_NEGATIVE else 0))
    default_nan = U64(fmt.quiet_nan_bits())

    inf_any = A.inf | B.inf
    inf_invalid = A.inf & B.inf & (A.sign != B.sign)
    flags[inf_invalid] |= F_INVALID
    inf_bits = np.where(A.inf, A.bits, B.bits)

    both_zero = A.zero & B.zero
    both_zero_bits = np.where(A.sign == B.sign, A.bits, ezs_bits)
    a_zero_only = A.zero & ~B.zero
    b_zero_only = B.zero & ~A.zero

    generic = ~nan_mask & ~inf_any & ~A.zero & ~B.zero
    m1, e1 = _sig_value(fmt, A)
    m2, e2 = _sig_value(fmt, B)
    is_zero, sign, mag, g, stk = _signed_sum(m1, e1, A.sign, m2, e2, B.sign, generic)
    rbits, rflags = _round_pack(fmt, mode, ftz, sign, mag, g, stk, generic & ~is_zero)
    flags |= rflags

    bits = np.select(
        [nan_mask, inf_invalid, inf_any, both_zero, a_zero_only, b_zero_only, is_zero],
        [nan_bits, default_nan, inf_bits, both_zero_bits, B.bits, A.bits, ezs_bits],
        default=rbits,
    )
    return bits, flags


def _batch_mul(fmt, a, b, mode, ftz, daz):
    n = a.shape[0]
    A = _Lanes(fmt, a)
    B = _Lanes(fmt, b)
    nan_mask, nan_bits, any_snan = _nan_propagation(fmt, [A, B])
    flags = np.zeros(n, dtype=np.uint8)
    flags[any_snan] |= F_INVALID
    if daz:
        A, B = _daz(fmt, A), _daz(fmt, B)
    sign = A.sign ^ B.sign
    signbit = sign << U64(fmt.width - 1)
    default_nan = U64(fmt.quiet_nan_bits())

    inf_any = A.inf | B.inf
    mul_invalid = inf_any & (A.zero | B.zero)  # 0 * inf
    flags[mul_invalid & ~nan_mask] |= F_INVALID
    zero_res = (A.zero | B.zero) & ~inf_any

    generic = ~nan_mask & ~inf_any & ~A.zero & ~B.zero
    m1, e1 = _sig_value(fmt, A)
    m2, e2 = _sig_value(fmt, B)
    product = m1 * m2  # <= 2**(2p) <= 2**56 for the supported precisions
    rbits, rflags = _round_pack(
        fmt, mode, ftz, sign, product, e1 + e2, np.zeros(n, dtype=bool), generic
    )
    flags |= rflags

    bits = np.select(
        [nan_mask, mul_invalid, inf_any, zero_res],
        [nan_bits, default_nan, signbit | U64(fmt.inf_bits(0)), signbit],
        default=rbits,
    )
    return bits, flags


def _batch_div(fmt, a, b, mode, ftz, daz):
    n = a.shape[0]
    A = _Lanes(fmt, a)
    B = _Lanes(fmt, b)
    nan_mask, nan_bits, any_snan = _nan_propagation(fmt, [A, B])
    flags = np.zeros(n, dtype=np.uint8)
    flags[any_snan] |= F_INVALID
    if daz:
        A, B = _daz(fmt, A), _daz(fmt, B)
    sign = A.sign ^ B.sign
    signbit = sign << U64(fmt.width - 1)
    default_nan = U64(fmt.quiet_nan_bits())

    div_invalid = (A.inf & B.inf) | (A.zero & B.zero)
    div_by_zero = B.zero & ~A.zero & ~A.inf  # finite nonzero / 0
    flags[div_invalid & ~nan_mask] |= F_INVALID
    flags[div_by_zero & ~nan_mask] |= F_DIVZERO
    inf_res = (A.inf & ~B.inf) | div_by_zero
    zero_res = (B.inf & ~A.inf) | (A.zero & ~B.zero & ~B.inf)

    generic = ~nan_mask & ~A.inf & ~B.inf & ~A.zero & ~B.zero
    m1, e1 = _sig_value(fmt, A)
    m2, e2 = _sig_value(fmt, B)
    m1s = np.where(generic, m1, U64(1))
    m2s = np.where(generic, m2, U64(1))
    bl1 = _bit_length(m1s)
    bl2 = _bit_length(m2s)
    # Scale the numerator so the quotient carries `precision + 3` bits.
    extra = np.maximum(fmt.precision + 3 + (bl2 - bl1), 0)
    num = _shl(m1s, extra)
    quotient = num // m2s
    sticky = (num - quotient * m2s) != 0
    rbits, rflags = _round_pack(
        fmt, mode, ftz, sign, quotient, e1 - e2 - extra, sticky, generic
    )
    flags |= rflags

    bits = np.select(
        [nan_mask, div_invalid, inf_res, zero_res],
        [nan_bits, default_nan, signbit | U64(fmt.inf_bits(0)), signbit],
        default=rbits,
    )
    return bits, flags


def _batch_fma(fmt, a, b, c, mode, ftz, daz):
    n = a.shape[0]
    A0 = _Lanes(fmt, a)
    B0 = _Lanes(fmt, b)
    C0 = _Lanes(fmt, c)
    flags = np.zeros(n, dtype=np.uint8)
    default_nan = U64(fmt.quiet_nan_bits())

    # x86 FMA3 ordering: a signaling NaN anywhere wins; otherwise an
    # invalid 0*inf product beats even a quiet NaN in c.
    snan_any = A0.snan | B0.snan | C0.snan
    product_invalid = (A0.inf & B0.zero) | (A0.zero & B0.inf)
    nan_any = A0.nan | B0.nan | C0.nan
    _, nan_bits, _ = _nan_propagation(fmt, [A0, B0, C0])
    pinv_path = product_invalid & ~snan_any
    qnan_path = nan_any & ~snan_any & ~pinv_path
    nan_like = snan_any | pinv_path | qnan_path
    flags[snan_any] |= F_INVALID
    flags[pinv_path] |= F_INVALID

    A, B, C = A0, B0, C0
    if daz:
        A, B, C = _daz(fmt, A), _daz(fmt, B), _daz(fmt, C)
    psign = A.sign ^ B.sign
    psignbit = psign << U64(fmt.width - 1)
    ezs_bits = U64(fmt.zero_bits(1 if mode is RoundingMode.TOWARD_NEGATIVE else 0))

    ab_inf = (A.inf | B.inf) & ~nan_like
    inf_c_invalid = ab_inf & C.inf & (C.sign != psign)
    flags[inf_c_invalid] |= F_INVALID
    c_inf = C.inf & ~ab_inf & ~nan_like

    prod_zero = (A.zero | B.zero) & ~ab_inf & ~nan_like
    pz_c_zero = prod_zero & C.zero
    pz_c_zero_bits = np.where(psign == C.sign, psignbit, ezs_bits)
    pz_c = prod_zero & ~C.zero

    generic = ~nan_like & ~ab_inf & ~C.inf & ~prod_zero
    m1, e1 = _sig_value(fmt, A)
    m2, e2 = _sig_value(fmt, B)
    m3, e3 = _sig_value(fmt, C)
    product = m1 * m2  # <= 2**(2p) <= 2**54
    is_zero, sign, mag, g, stk = _signed_sum(
        product, e1 + e2, psign, m3, e3, C.sign, generic
    )
    rbits, rflags = _round_pack(fmt, mode, ftz, sign, mag, g, stk, generic & ~is_zero)
    flags |= rflags

    bits = np.select(
        [
            snan_any,
            pinv_path,
            qnan_path,
            inf_c_invalid,
            ab_inf,
            c_inf,
            pz_c_zero,
            pz_c,
            is_zero,
        ],
        [
            nan_bits,
            default_nan,
            nan_bits,
            default_nan,
            psignbit | U64(fmt.inf_bits(0)),
            C.bits,
            pz_c_zero_bits,
            C.bits,
            ezs_bits,
        ],
        default=rbits,
    )
    return bits, flags


def _batch_sqrt(fmt, a, mode, ftz, daz):
    n = a.shape[0]
    A = _Lanes(fmt, a)
    nan_mask, nan_bits, any_snan = _nan_propagation(fmt, [A])
    flags = np.zeros(n, dtype=np.uint8)
    flags[any_snan] |= F_INVALID
    if daz:
        A = _daz(fmt, A)
    default_nan = U64(fmt.quiet_nan_bits())

    negative = ~nan_mask & ~A.zero & (A.sign == 1)  # includes -inf
    flags[negative] |= F_INVALID
    pos_inf = A.inf & (A.sign == 0)
    generic = ~nan_mask & ~A.zero & ~negative & ~pos_inf

    mant, exp2 = _sig_value(fmt, A)
    mant_s = np.where(generic, mant, U64(1))
    bl = _bit_length(mant_s)
    # Scale to `2*(precision+2)` bits with an even exponent, then take
    # the exact integer root: float64 sqrt plus a two-step fix-up (the
    # scaled radicand stays below 2**53, so the float path is exact).
    shift = 2 * (fmt.precision + 2) - bl
    shift = np.where(((exp2 - shift) & 1) != 0, shift + 1, shift)
    scaled = _shl(mant_s, shift)
    root = np.sqrt(scaled.astype(np.float64)).astype(U64)
    root = np.where(root * root > scaled, root - U64(1), root)
    root = np.where(root * root > scaled, root - U64(1), root)
    up = root + U64(1)
    root = np.where(up * up <= scaled, up, root)
    up = root + U64(1)
    root = np.where(up * up <= scaled, up, root)
    sticky = (root * root) != scaled
    rbits, rflags = _round_pack(
        fmt, mode, ftz, np.zeros(n, dtype=U64), root, (exp2 - shift) >> 1, sticky,
        generic,
    )
    flags |= rflags

    bits = np.select(
        [nan_mask, A.zero, negative, pos_inf],
        [nan_bits, A.bits, default_nan, A.bits],
        default=rbits,
    )
    return bits, flags


def _batch_compare(fmt, a, b, signaling):
    n = a.shape[0]
    A = _Lanes(fmt, a)
    B = _Lanes(fmt, b)
    flags = np.zeros(n, dtype=np.uint8)
    any_nan = A.nan | B.nan
    flags[any_nan if signaling else (A.snan | B.snan)] |= F_INVALID

    mag_mask = U64((1 << (fmt.width - 1)) - 1)
    mag_a = a & mag_mask
    mag_b = b & mag_mask
    eq_mag = mag_a == mag_b
    lt_mag = mag_a < mag_b
    pos = np.where(eq_mag, ORD_EQUAL, np.where(lt_mag, ORD_LESS, ORD_GREATER))
    neg = np.where(eq_mag, ORD_EQUAL, np.where(lt_mag, ORD_GREATER, ORD_LESS))
    same_sign = np.where(A.sign == 1, neg, pos)
    diff_sign = np.where(A.sign == 1, ORD_LESS, ORD_GREATER)
    ordered = np.where(
        A.zero & B.zero,
        ORD_EQUAL,
        np.where(A.sign != B.sign, diff_sign, same_sign),
    )
    code = np.where(any_nan, ORD_UNORDERED, ordered).astype(U64)
    return code, flags


def _batch_convert(src, dst, a, mode, ftz):
    n = a.shape[0]
    A = _Lanes(src, a)
    flags = np.zeros(n, dtype=np.uint8)
    flags[A.snan] |= F_INVALID
    if src == dst:
        bits = np.where(A.snan, a | U64(src.quiet_bit), a)
        return bits, flags

    dst_signbit = A.sign << U64(dst.width - 1)
    # NaN payloads move across, truncating from the low end if needed.
    payload = A.frac & ~U64(src.quiet_bit)
    shift = dst.frac_bits - src.frac_bits
    payload = payload << U64(shift) if shift >= 0 else payload >> U64(-shift)
    payload &= U64(dst.quiet_bit - 1)
    nan_bits = dst_signbit | U64(dst.quiet_nan_bits(0, 0)) | payload

    generic = ~A.nan & ~A.inf & ~A.zero
    mant, exp2 = _sig_value(src, A)
    rbits, rflags = _round_pack(
        dst, mode, ftz, A.sign, mant, exp2, np.zeros(n, dtype=bool), generic
    )
    flags |= rflags

    bits = np.select(
        [A.nan, A.inf, A.zero],
        [nan_bits, dst_signbit | U64(dst.inf_bits(0)), dst_signbit],
        default=rbits,
    )
    return bits, flags


# ----------------------------------------------------------------------
# The backend
# ----------------------------------------------------------------------
class BatchBackend(SoftFloatBackend):
    """Vectorized integer backend over uint64 lanes (see module docs)."""

    name = "batch"

    def supports(
        self,
        op: str,
        fmt: FloatFormat,
        mode: RoundingMode,
        ftz: bool,
        daz: bool,
        dst_fmt: FloatFormat | None = None,
    ) -> bool:
        if fmt.width > 64:
            return False
        if op in ("compare_quiet", "compare_signaling"):
            return True
        if op == "convert":
            return (
                dst_fmt is not None
                and dst_fmt.width <= 64
                and fmt.precision <= 53
                and dst_fmt.precision <= 53
            )
        if op in ("add", "sub"):
            return fmt.precision <= 53
        if op == "mul":
            return fmt.precision <= 28
        if op in ("div", "fma"):
            return fmt.precision <= 27
        if op == "sqrt":
            return fmt.precision <= 24
        return False

    def run_packed(
        self,
        op: str,
        fmt: FloatFormat,
        operands: Sequence[np.ndarray],
        mode: RoundingMode,
        ftz: bool,
        daz: bool,
        dst_fmt: FloatFormat | None = None,
    ) -> BatchResult:
        if not self.supports(op, fmt, mode, ftz, daz, dst_fmt):
            raise ValueError(f"batch backend does not support {op} on {fmt.name}")
        mask = U64((1 << fmt.width) - 1) if fmt.width < 64 else U64(2**64 - 1)
        arrays = [np.asarray(o, dtype=U64) & mask for o in operands]
        if op in ("add", "sub"):
            bits, flags = _batch_addsub(
                fmt, arrays[0], arrays[1], mode, ftz, daz, op == "sub"
            )
        elif op == "mul":
            bits, flags = _batch_mul(fmt, arrays[0], arrays[1], mode, ftz, daz)
        elif op == "div":
            bits, flags = _batch_div(fmt, arrays[0], arrays[1], mode, ftz, daz)
        elif op == "fma":
            bits, flags = _batch_fma(
                fmt, arrays[0], arrays[1], arrays[2], mode, ftz, daz
            )
        elif op == "sqrt":
            bits, flags = _batch_sqrt(fmt, arrays[0], mode, ftz, daz)
        elif op in ("compare_quiet", "compare_signaling"):
            bits, flags = _batch_compare(
                fmt, arrays[0], arrays[1], op == "compare_signaling"
            )
        else:  # convert
            assert dst_fmt is not None
            bits, flags = _batch_convert(fmt, dst_fmt, arrays[0], mode, ftz)
        return BatchResult(bits.astype(U64), flags)
