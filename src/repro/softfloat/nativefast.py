"""Native fast path: host hardware floats where provably scalar-identical.

Monniaux's catalog of verification pitfalls (double rounding, x87
extended intermediates, FTZ/DAZ mode leakage) is exactly the list of
ways "just use the hardware" silently diverges from IEEE semantics, so
this backend is deliberately narrow:

- **binary32** add/sub/mul/div/sqrt, computed in ``float64`` and rounded
  once to ``float32``.  This is sound because ``53 >= 2*24 + 2``: by the
  classic double-rounding bound (Figueroa), rounding the correctly
  rounded binary64 result to binary32 equals rounding the exact result
  directly.  Sticky flags are reconstructed from *exact* float64
  identities (the 48-bit significand product, ``q*b == a``,
  ``r*r == a``), never from the hardware status word.
- **binary64** add/sub, with exactness detected by a branch-free Knuth
  TwoSum (no spurious overflow when the sum itself does not overflow).

Everything else — other formats, directed rounding, FTZ/DAZ, and any
lane holding a NaN, infinity, or zero — goes to the scalar reference,
so NaN payload propagation never depends on host NaN semantics.

The backend refuses to run at all unless :func:`host_fastpath_report`
proves the host: no x87-style double rounding on a discriminating
witness, FTZ and DAZ both off, and round-to-nearest-even in effect.
See GOTCHAS.md ("Double rounding and the x87") for the failure modes
each probe detects.
"""

from __future__ import annotations

import functools
from collections.abc import Sequence

import numpy as np

from repro.fpenv.flags import FPFlag
from repro.fpenv.rounding import RoundingMode
from repro.softfloat.backend import BatchResult, ScalarBackend, SoftFloatBackend
from repro.softfloat.formats import BINARY32, BINARY64, FloatFormat

__all__ = ["NativeBackend", "host_fastpath_report", "host_fastpath_ok"]

F_OVERFLOW = np.uint8(FPFlag.OVERFLOW.value)
F_UNDERFLOW = np.uint8(FPFlag.UNDERFLOW.value)
F_INEXACT = np.uint8(FPFlag.INEXACT.value)
F_DENORMAL = np.uint8(FPFlag.DENORMAL_RESULT.value)


@functools.lru_cache(maxsize=1)
def host_fastpath_report() -> dict[str, bool]:
    """Probe the host float pipeline for the hazards that would make the
    native fast path diverge from correctly rounded IEEE semantics.

    - ``double_rounding_free``: ``1 + (2^-53 + 2^-77)`` must round up to
      ``1 + 2^-52``.  An x87-style pipeline that first rounds to 64-bit
      extended precision lands on a tie and breaks it to even — ``1.0``
      — so this single witness discriminates extended intermediates.
    - ``ftz_off`` / ``daz_off``: subnormal results and operands must
      survive arithmetic (MXCSR FTZ/DAZ bits would flush them).
    - ``rne_default``: three directed-mode witnesses that only
      round-to-nearest-even satisfies simultaneously.
    """
    with np.errstate(all="ignore"):
        dr_free = bool(
            np.float64(1.0) + np.float64(2.0**-53 + 2.0**-77)
            == np.float64(1.0 + 2.0**-52)
        )
        ftz_result = np.float32(2.0**-126) * np.float32(0.5)
        ftz_off = float(ftz_result) == 2.0**-127
        tiny32 = np.float32(1.0e-45)  # smallest positive binary32 subnormal
        daz_off = bool(tiny32 * np.float32(1.0) == tiny32) and float(tiny32) != 0.0
        rne = (
            bool(np.float64(1.0) + np.float64(2.0**-53) == np.float64(1.0))
            and bool(np.float64(-1.0) - np.float64(2.0**-60) == np.float64(-1.0))
            and bool(
                np.float64(1.0 + 2.0**-52) + np.float64(2.0**-53)
                == np.float64(1.0 + 2.0**-51)
            )
        )
    report = {
        "double_rounding_free": dr_free,
        "ftz_off": ftz_off,
        "daz_off": daz_off,
        "rne_default": rne,
    }
    report["ok"] = all(report.values())
    return report


def host_fastpath_ok() -> bool:
    """True when every host probe passed (cached)."""
    return host_fastpath_report()["ok"]


def _two_sum(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Branch-free Knuth TwoSum: ``s + err == a + b`` exactly (for lanes
    whose sum does not overflow)."""
    s = a + b
    bp = s - a
    ap = s - bp
    eb = b - bp
    ea = a - ap
    return s, ea + eb


def _subnormal32(r: np.ndarray) -> np.ndarray:
    bits = r.view(np.uint32)
    return (((bits >> 23) & np.uint32(0xFF)) == 0) & ((bits & np.uint32(0x7FFFFF)) != 0)


def _subnormal64(r: np.ndarray) -> np.ndarray:
    bits = r.view(np.uint64)
    return (((bits >> np.uint64(52)) & np.uint64(0x7FF)) == 0) & (
        (bits & np.uint64((1 << 52) - 1)) != 0
    )


class NativeBackend(SoftFloatBackend):
    """Hardware floats on provably safe lanes, scalar everywhere else."""

    name = "native"

    def __init__(self) -> None:
        self._scalar = ScalarBackend()

    def supports(
        self,
        op: str,
        fmt: FloatFormat,
        mode: RoundingMode,
        ftz: bool,
        daz: bool,
        dst_fmt: FloatFormat | None = None,
    ) -> bool:
        if mode is not RoundingMode.NEAREST_EVEN or ftz or daz:
            return False
        if not host_fastpath_ok():
            return False
        if fmt == BINARY32:
            return op in ("add", "sub", "mul", "div", "sqrt")
        if fmt == BINARY64:
            return op in ("add", "sub")
        return False

    def run_packed(
        self,
        op: str,
        fmt: FloatFormat,
        operands: Sequence[np.ndarray],
        mode: RoundingMode,
        ftz: bool,
        daz: bool,
        dst_fmt: FloatFormat | None = None,
    ) -> BatchResult:
        if not self.supports(op, fmt, mode, ftz, daz, dst_fmt):
            raise ValueError(f"native backend does not support {op} on {fmt.name}")
        arrays = [np.asarray(o, dtype=np.uint64) for o in operands]
        n = int(arrays[0].shape[0])
        bits_out = np.zeros(n, dtype=np.uint64)
        flags_out = np.zeros(n, dtype=np.uint8)

        # Hardware only touches "generic" lanes: every operand finite and
        # nonzero (and strictly positive for sqrt).  NaN payloads, signed
        # zeros, infinities, and the invalid/div-by-zero special cases
        # all take the scalar reference path.
        if fmt == BINARY32:
            vals = [a.astype(np.uint32).view(np.float32) for a in arrays]
            finite_nonzero = np.ones(n, dtype=bool)
            for v in vals:
                finite_nonzero &= np.isfinite(v) & (v != 0)
            if op == "sqrt":
                finite_nonzero &= vals[0] > 0
            generic = finite_nonzero
            if generic.any():
                g_bits, g_flags = self._run32(op, [v[generic] for v in vals])
                bits_out[generic] = g_bits
                flags_out[generic] = g_flags
        else:  # BINARY64 add/sub
            vals = [a.view(np.float64) for a in arrays]
            generic = (
                np.isfinite(vals[0])
                & (vals[0] != 0)
                & np.isfinite(vals[1])
                & (vals[1] != 0)
            )
            if generic.any():
                g_bits, g_flags = self._run64(op, [v[generic] for v in vals])
                bits_out[generic] = g_bits
                flags_out[generic] = g_flags

        special = ~generic
        if special.any():
            sub = self._scalar.run_packed(
                op, fmt, [a[special] for a in arrays], mode, ftz, daz, dst_fmt
            )
            bits_out[special] = sub.bits
            flags_out[special] = sub.flags
        return BatchResult(bits_out, flags_out)

    # ------------------------------------------------------------------
    def _run32(self, op: str, vals: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
        with np.errstate(all="ignore"):
            wide = [v.astype(np.float64) for v in vals]
            m = vals[0].shape[0]
            flags = np.zeros(m, dtype=np.uint8)
            if op in ("add", "sub"):
                a64, b64 = wide[0], (wide[1] if op == "add" else -wide[1])
                s, err = _two_sum(a64, b64)
                r32 = s.astype(np.float32)
                inexact = np.isinf(r32) | (r32.astype(np.float64) != s) | (err != 0)
                overflow = np.isinf(r32)
                # Hauser: a float addition that underflows is exact, so
                # tiny results never raise inexact/underflow here.
            elif op == "mul":
                p64 = wide[0] * wide[1]  # exact: 24+24 significand bits
                r32 = p64.astype(np.float32)
                inexact = r32.astype(np.float64) != p64
                overflow = np.isinf(r32)
                tiny = np.abs(p64) < 2.0**-126
                flags[tiny & inexact] |= F_UNDERFLOW
            elif op == "div":
                q64 = wide[0] / wide[1]
                r32 = q64.astype(np.float32)
                # Exact iff the widened quotient reconstructs the
                # dividend; r*b is a 48-bit product, exact in float64.
                inexact = r32.astype(np.float64) * wide[1] != wide[0]
                overflow = np.isinf(r32)
                tiny = np.abs(wide[0]) < np.abs(wide[1]) * 2.0**-126
                flags[tiny & inexact] |= F_UNDERFLOW
            else:  # sqrt
                r64 = np.sqrt(wide[0])
                r32 = r64.astype(np.float32)
                w = r32.astype(np.float64)
                inexact = w * w != wide[0]  # 48-bit square, exact in float64
                overflow = np.zeros(m, dtype=bool)
            flags[inexact] |= F_INEXACT
            flags[overflow] |= F_OVERFLOW | F_INEXACT
            flags[_subnormal32(r32)] |= F_DENORMAL
            return r32.view(np.uint32).astype(np.uint64), flags

    def _run64(self, op: str, vals: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
        with np.errstate(all="ignore"):
            a, b = vals[0], (vals[1] if op == "add" else -vals[1])
            m = a.shape[0]
            flags = np.zeros(m, dtype=np.uint8)
            s, err = _two_sum(a, b)
            overflow = np.isinf(s)
            inexact = overflow | (err != 0)
            flags[inexact] |= F_INEXACT
            flags[overflow] |= F_OVERFLOW | F_INEXACT
            flags[_subnormal64(s)] |= F_DENORMAL
            return s.view(np.uint64).copy(), flags
