"""Correctly rounded add, subtract, multiply, divide, and remainder.

Every operation follows the same shape: handle NaNs and the special
operand classes first (raising ``invalid`` / ``divide-by-zero`` where
IEEE 754 requires), then compute an *exact* integer intermediate and let
:func:`repro.softfloat._round.round_and_pack` produce the correctly
rounded encoding and the remaining flags.

The exact intermediates use Python's arbitrary precision integers, so
addition aligns operands exactly rather than with guard/round/sticky
registers — slower than hardware technique, trivially correct.

Telemetry: each public operation notifies ``env.recorder`` once on
entry (the hook state lives on the environment — see
:mod:`repro.telemetry.recorder`), so op counters exist without any
branching inside the arithmetic; when telemetry is off the cost is a
single attribute test.
"""

from __future__ import annotations

from repro.fpenv.env import FPEnv, get_env
from repro.fpenv.flags import FPFlag
from repro.fpenv.rounding import RoundingMode
from repro.softfloat._round import round_and_pack
from repro.softfloat.value import SoftFloat

__all__ = ["fp_add", "fp_sub", "fp_mul", "fp_div", "fp_remainder", "SCALAR_KERNELS"]


def _quiet(x: SoftFloat) -> SoftFloat:
    """Return ``x`` with its NaN quiet bit set (payload preserved)."""
    return SoftFloat(x.fmt, x.bits | x.fmt.quiet_bit)


def propagate_nan(
    env: FPEnv, operation: str, *operands: SoftFloat
) -> SoftFloat:
    """IEEE NaN propagation: raise ``invalid`` if any operand is a
    signaling NaN, then return the first NaN operand, quieted."""
    if any(x.is_signaling_nan for x in operands):
        env.raise_flags(FPFlag.INVALID, operation)
    for x in operands:
        if x.is_nan:
            return _quiet(x)
    raise AssertionError("propagate_nan called without a NaN operand")


def _invalid_nan(env: FPEnv, operation: str, fmt) -> SoftFloat:
    """Raise ``invalid`` and return the default quiet NaN."""
    env.raise_flags(FPFlag.INVALID, operation)
    return SoftFloat(fmt, fmt.quiet_nan_bits())


def _apply_daz(env: FPEnv, x: SoftFloat) -> SoftFloat:
    """Denormals-are-zero: squash subnormal inputs to signed zero."""
    if env.daz and x.is_subnormal:
        return SoftFloat.zero(x.fmt, x.sign)
    return x


def _exact_zero_sign(env: FPEnv) -> int:
    """Sign of an exact zero produced by cancellation: +0 except under
    roundTowardNegative, where it is -0 (IEEE 754 §6.3)."""
    return 1 if env.rounding is RoundingMode.TOWARD_NEGATIVE else 0


def fp_add(a: SoftFloat, b: SoftFloat, env: FPEnv | None = None) -> SoftFloat:
    """IEEE addition: ``a + b``."""
    env = env or get_env()
    if env.recorder is not None:
        env.recorder.record_op("add", a.fmt.name)
    if a.is_nan or b.is_nan:
        return propagate_nan(env, "add", a, b)
    return _add_core(a, b, env)


def _add_core(a: SoftFloat, b: SoftFloat, env: FPEnv) -> SoftFloat:
    """Shared non-NaN addition body (sub delegates here with ``-b``).

    Flags stay labelled ``add`` on this path, matching the historical
    ``a + (-b)`` definition of subtraction.
    """
    fmt = a.fmt
    a, b = _apply_daz(env, a), _apply_daz(env, b)

    if a.is_inf or b.is_inf:
        if a.is_inf and b.is_inf:
            if a.sign != b.sign:
                return _invalid_nan(env, "add", fmt)  # inf + (-inf)
            return a
        return a if a.is_inf else b

    if a.is_zero and b.is_zero:
        if a.sign == b.sign:
            return a
        return SoftFloat.zero(fmt, _exact_zero_sign(env))
    if a.is_zero:
        return b
    if b.is_zero:
        return a

    m1, e1 = a.significand_value()
    m2, e2 = b.significand_value()
    e = min(e1, e2)
    v1 = (m1 << (e1 - e)) * (-1 if a.sign else 1)
    v2 = (m2 << (e2 - e)) * (-1 if b.sign else 1)
    total = v1 + v2
    if total == 0:
        return SoftFloat.zero(fmt, _exact_zero_sign(env))
    sign = 1 if total < 0 else 0
    bits = round_and_pack(fmt, env, sign, abs(total), e, 0, "add")
    return SoftFloat(fmt, bits)


def fp_sub(a: SoftFloat, b: SoftFloat, env: FPEnv | None = None) -> SoftFloat:
    """IEEE subtraction: ``a - b``, defined as ``a + (-b)`` with NaN
    payloads propagated from the original operands."""
    env = env or get_env()
    if env.recorder is not None:
        env.recorder.record_op("sub", a.fmt.name)
    if a.is_nan or b.is_nan:
        return propagate_nan(env, "sub", a, b)
    return _add_core(a, -b, env)


def fp_mul(a: SoftFloat, b: SoftFloat, env: FPEnv | None = None) -> SoftFloat:
    """IEEE multiplication: ``a * b``."""
    env = env or get_env()
    if env.recorder is not None:
        env.recorder.record_op("mul", a.fmt.name)
    fmt = a.fmt
    if a.is_nan or b.is_nan:
        return propagate_nan(env, "mul", a, b)
    a, b = _apply_daz(env, a), _apply_daz(env, b)
    sign = a.sign ^ b.sign

    if a.is_inf or b.is_inf:
        if a.is_zero or b.is_zero:
            return _invalid_nan(env, "mul", fmt)  # 0 * inf
        return SoftFloat.inf(fmt, sign)
    if a.is_zero or b.is_zero:
        return SoftFloat.zero(fmt, sign)

    m1, e1 = a.significand_value()
    m2, e2 = b.significand_value()
    bits = round_and_pack(fmt, env, sign, m1 * m2, e1 + e2, 0, "mul")
    return SoftFloat(fmt, bits)


def fp_div(a: SoftFloat, b: SoftFloat, env: FPEnv | None = None) -> SoftFloat:
    """IEEE division: ``a / b``.

    ``x/0`` with finite nonzero ``x`` raises *divide-by-zero* and returns
    an exact infinity (not a NaN — the paper's *Divide By Zero*
    question); ``0/0`` and ``inf/inf`` raise *invalid* and return NaN.
    """
    env = env or get_env()
    if env.recorder is not None:
        env.recorder.record_op("div", a.fmt.name)
    fmt = a.fmt
    if a.is_nan or b.is_nan:
        return propagate_nan(env, "div", a, b)
    a, b = _apply_daz(env, a), _apply_daz(env, b)
    sign = a.sign ^ b.sign

    if a.is_inf:
        if b.is_inf:
            return _invalid_nan(env, "div", fmt)  # inf / inf
        return SoftFloat.inf(fmt, sign)
    if b.is_inf:
        return SoftFloat.zero(fmt, sign)
    if b.is_zero:
        if a.is_zero:
            return _invalid_nan(env, "div", fmt)  # 0 / 0
        env.raise_flags(FPFlag.DIV_BY_ZERO, "div")
        return SoftFloat.inf(fmt, sign)
    if a.is_zero:
        return SoftFloat.zero(fmt, sign)

    m1, e1 = a.significand_value()
    m2, e2 = b.significand_value()
    # Scale the numerator so the quotient carries `precision + 3`
    # significant bits; the remainder folds into the sticky marker.
    extra = fmt.precision + 3 + (m2.bit_length() - m1.bit_length())
    if extra < 0:
        extra = 0
    quotient, remainder = divmod(m1 << extra, m2)
    sticky = 1 if remainder else 0
    bits = round_and_pack(fmt, env, sign, quotient, e1 - e2 - extra, sticky, "div")
    return SoftFloat(fmt, bits)


def fp_remainder(a: SoftFloat, b: SoftFloat, env: FPEnv | None = None) -> SoftFloat:
    """IEEE ``remainder(a, b) = a - n*b`` with ``n = rint(a/b)`` rounded
    to nearest-even; always exact for finite operands."""
    env = env or get_env()
    if env.recorder is not None:
        env.recorder.record_op("remainder", a.fmt.name)
    fmt = a.fmt
    if a.is_nan or b.is_nan:
        return propagate_nan(env, "remainder", a, b)
    a, b = _apply_daz(env, a), _apply_daz(env, b)

    if a.is_inf or b.is_zero:
        return _invalid_nan(env, "remainder", fmt)
    if b.is_inf or a.is_zero:
        return a  # remainder(x, inf) = x; remainder(±0, y) = ±0

    m1, e1 = a.significand_value()
    m2, e2 = b.significand_value()
    # n = round-half-even(|a| / |b|), computed exactly with integers.
    if e1 >= e2:
        num, den = m1 << (e1 - e2), m2
    else:
        num, den = m1, m2 << (e2 - e1)
    n, rem = divmod(num, den)
    double_rem = 2 * rem
    if double_rem > den or (double_rem == den and (n & 1)):
        n += 1
    if a.sign != b.sign:
        n = -n

    # r = a - n*b, exact at granularity min(e1, e2).
    e = min(e1, e2)
    va = (m1 << (e1 - e)) * (-1 if a.sign else 1)
    vb = (m2 << (e2 - e)) * (-1 if b.sign else 1)
    r = va - n * vb
    if r == 0:
        return SoftFloat.zero(fmt, a.sign)  # zero remainder keeps a's sign
    sign = 1 if r < 0 else 0
    bits = round_and_pack(fmt, env, sign, abs(r), e, 0, "remainder")
    return SoftFloat(fmt, bits)


#: Per-op scalar kernels, keyed by backend op name (consumed by
#: :mod:`repro.softfloat.backend`; kept here so the backend layer never
#: needs to reach into private helpers).
SCALAR_KERNELS = {
    "add": fp_add,
    "sub": fp_sub,
    "mul": fp_mul,
    "div": fp_div,
}
