"""Conversions between SoftFloat formats and host types.

Conversions are IEEE operations and raise flags when given an
environment; the constructor conveniences (``from_float`` and
``to_float``) deliberately use a scratch environment so that *building
test values never pollutes the caller's sticky flags*.
"""

from __future__ import annotations

import math
import struct
from fractions import Fraction

from repro.errors import FormatError
from repro.fpenv.env import FPEnv, get_env
from repro.fpenv.flags import FPFlag
from repro.fpenv.rounding import RoundingMode
from repro.softfloat._round import round_and_pack
from repro.softfloat.formats import BINARY64, FloatFormat
from repro.softfloat.value import SoftFloat

__all__ = [
    "convert_format",
    "convert_bits",
    "softfloat_from_float",
    "softfloat_to_float",
    "softfloat_from_int",
    "softfloat_to_int",
    "softfloat_from_fraction",
    "round_to_integral",
]


def convert_format(
    x: SoftFloat, fmt: FloatFormat, env: FPEnv | None = None
) -> SoftFloat:
    """Convert ``x`` to ``fmt`` with correct rounding (IEEE
    ``convertFormat``).  NaN payloads are preserved where they fit;
    signaling NaNs raise *invalid* and are quieted."""
    env = env or get_env()
    if x.fmt == fmt:
        if x.is_signaling_nan:
            env.raise_flags(FPFlag.INVALID, "convert")
            return SoftFloat(fmt, x.bits | fmt.quiet_bit)
        return x
    if x.is_nan:
        if x.is_signaling_nan:
            env.raise_flags(FPFlag.INVALID, "convert")
        # Move the payload across, truncating from the low end if needed.
        payload = x.frac & ~x.fmt.quiet_bit
        shift = fmt.frac_bits - x.fmt.frac_bits
        payload = payload << shift if shift >= 0 else payload >> (-shift)
        payload &= fmt.quiet_bit - 1
        return SoftFloat(fmt, fmt.quiet_nan_bits(x.sign, payload))
    if x.is_inf:
        return SoftFloat.inf(fmt, x.sign)
    if x.is_zero:
        return SoftFloat.zero(fmt, x.sign)
    mant, exp2 = x.significand_value()
    bits = round_and_pack(fmt, env, x.sign, mant, exp2, 0, "convert")
    return SoftFloat(fmt, bits)


def convert_bits(
    bits: int, src_fmt: FloatFormat, dst_fmt: FloatFormat, env: FPEnv | None = None
) -> int:
    """Packed-encoding form of :func:`convert_format`, used by the
    backend protocol: ``src_fmt`` bits in, ``dst_fmt`` bits out."""
    return convert_format(SoftFloat(src_fmt, bits), dst_fmt, env).bits


def softfloat_from_float(value: float, fmt: FloatFormat = BINARY64) -> SoftFloat:
    """Build a SoftFloat from a host ``float`` (IEEE binary64).

    Exact for binary64; other destinations are correctly rounded under
    round-to-nearest-even.  Uses a scratch environment — constructing
    values raises no flags.
    """
    (bits,) = struct.unpack("<Q", struct.pack("<d", value))
    x = SoftFloat(BINARY64, bits)
    if fmt == BINARY64:
        return x
    scratch = FPEnv()
    return convert_format(x, fmt, scratch)


def softfloat_to_float(x: SoftFloat) -> float:
    """Convert to a host ``float``, correctly rounded (no flags)."""
    if x.fmt == BINARY64:
        return struct.unpack("<d", struct.pack("<Q", x.bits))[0]
    scratch = FPEnv()
    as64 = convert_format(x, BINARY64, scratch)
    return struct.unpack("<d", struct.pack("<Q", as64.bits))[0]


def softfloat_from_int(
    value: int, fmt: FloatFormat = BINARY64, env: FPEnv | None = None
) -> SoftFloat:
    """Correctly rounded conversion from an arbitrary integer
    (``convertFromInt``).  Raises *inexact*/*overflow* as appropriate."""
    env = env or get_env()
    if value == 0:
        return SoftFloat.zero(fmt, 0)
    sign = 1 if value < 0 else 0
    bits = round_and_pack(fmt, env, sign, abs(value), 0, 0, "fromint")
    return SoftFloat(fmt, bits)


def softfloat_from_fraction(
    value: Fraction, fmt: FloatFormat = BINARY64, env: FPEnv | None = None
) -> SoftFloat:
    """Correctly rounded conversion from an exact rational."""
    env = env or get_env()
    if value == 0:
        return SoftFloat.zero(fmt, 0)
    sign = 1 if value < 0 else 0
    num, den = abs(value.numerator), value.denominator
    # Produce `precision + 3` quotient bits; the remainder is sticky.
    extra = fmt.precision + 3 + (den.bit_length() - num.bit_length())
    if extra < 0:
        extra = 0
    quotient, remainder = divmod(num << extra, den)
    sticky = 1 if remainder else 0
    bits = round_and_pack(fmt, env, sign, quotient, -extra, sticky, "fromfraction")
    return SoftFloat(fmt, bits)


def round_to_integral(
    x: SoftFloat,
    mode: RoundingMode | None = None,
    env: FPEnv | None = None,
    *,
    signal_inexact: bool = False,
) -> SoftFloat:
    """IEEE ``roundToIntegral``: round to an integral value in the same
    format.  By default follows ``roundToIntegralTowardX`` semantics
    (no *inexact*); pass ``signal_inexact=True`` for the *exact* variant.
    """
    env = env or get_env()
    mode = mode or env.rounding
    if x.is_nan:
        from repro.softfloat.arith import propagate_nan

        return propagate_nan(env, "roundToIntegral", x)
    if x.is_inf or x.is_zero:
        return x
    mant, exp2 = x.significand_value()
    if exp2 >= 0:
        return x  # already integral
    shift = -exp2
    kept = mant >> shift
    round_bit = (mant >> (shift - 1)) & 1 if shift >= 1 else 0
    sticky = 1 if (mant & ((1 << max(shift - 1, 0)) - 1)) else 0
    inexact = bool(round_bit or sticky)
    if mode.rounds_away(x.sign, kept & 1, round_bit, sticky):
        kept += 1
    if inexact and signal_inexact:
        env.raise_flags(FPFlag.INEXACT, "roundToIntegral")
    if kept == 0:
        return SoftFloat.zero(x.fmt, x.sign)
    bits = round_and_pack(x.fmt, FPEnv(), x.sign, kept, 0, 0, "roundToIntegral")
    return SoftFloat(x.fmt, bits)


def softfloat_to_int(
    x: SoftFloat,
    mode: RoundingMode | None = None,
    env: FPEnv | None = None,
) -> int:
    """IEEE ``convertToInteger``: NaN and infinities raise *invalid*
    (and a :class:`FormatError`, since Python ints cannot saturate)."""
    env = env or get_env()
    mode = mode or env.rounding
    if x.is_nan or x.is_inf:
        env.raise_flags(FPFlag.INVALID, "toint")
        raise FormatError(f"cannot convert {x!s} to an integer")
    if x.is_zero:
        return 0
    mant, exp2 = x.significand_value()
    if exp2 >= 0:
        magnitude = mant << exp2
    else:
        shift = -exp2
        kept = mant >> shift
        round_bit = (mant >> (shift - 1)) & 1 if shift >= 1 else 0
        sticky = 1 if (mant & ((1 << max(shift - 1, 0)) - 1)) else 0
        if round_bit or sticky:
            env.raise_flags(FPFlag.INEXACT, "toint")
        if mode.rounds_away(x.sign, kept & 1, round_bit, sticky):
            kept += 1
        magnitude = kept
    return -magnitude if x.sign else magnitude


def softfloat_nearest_host(x: SoftFloat) -> float:
    """Alias used by reporting code; see :func:`softfloat_to_float`."""
    value = softfloat_to_float(x)
    if math.isnan(value) and x.sign:
        return -math.nan
    return value
