"""A from-scratch, bit-exact IEEE 754 binary floating point engine.

This package is the substrate that makes every assertion in the paper's
quiz *executable*: arithmetic (§5.4 formatOf operations: add, subtract,
multiply, divide, fused multiply-add, square root, remainder),
comparisons with full NaN/signed-zero semantics, conversions, correctly
rounded decimal parsing/printing, and the recommended auxiliary
operations — all parameterized over arbitrary binary formats and a
thread-local :class:`~repro.fpenv.FPEnv` carrying rounding direction,
sticky exception flags, and the non-standard FTZ/DAZ controls.

Quick use::

    from repro.softfloat import BINARY64, sf

    a = sf(0.1) + sf(0.2)
    assert a != sf(0.3)          # the classic
    assert sf("nan") != sf("nan")  # Identity question

Host ``float`` is IEEE binary64, which the test suite exploits as a
differential oracle for the binary64 instantiation of this engine.
"""

from repro.softfloat.formats import (
    BFLOAT16,
    BINARY16,
    BINARY32,
    BINARY64,
    BINARY128,
    E4M3,
    E5M2,
    STANDARD_FORMATS,
    TINY8,
    FloatFormat,
)
from repro.softfloat.value import FPClass, SoftFloat
from repro.softfloat.arith import fp_add, fp_div, fp_mul, fp_remainder, fp_sub
from repro.softfloat.fma import fp_fma
from repro.softfloat.sqrt import fp_sqrt
from repro.softfloat.compare import (
    Ordering,
    fp_compare_quiet,
    fp_compare_signaling,
    fp_eq,
    fp_ge,
    fp_gt,
    fp_le,
    fp_lt,
    fp_ne,
    fp_total_order,
    fp_unordered,
    total_order_key,
)
from repro.softfloat.convert import (
    convert_format,
    round_to_integral,
    softfloat_from_float,
    softfloat_from_fraction,
    softfloat_from_int,
    softfloat_to_float,
    softfloat_to_int,
)
from repro.softfloat.directed import (
    directed_bounds,
    directed_envs,
    down_env,
    probe_op,
    up_env,
)
from repro.softfloat.backend import (
    BACKEND_OP_ARITY,
    BACKEND_OPS,
    AutoBackend,
    BatchResult,
    ScalarBackend,
    SoftFloatBackend,
    available_backends,
    get_backend,
)
from repro.softfloat.landmarks import special_bits, special_pairs, special_values
from repro.softfloat.parse import parse_softfloat
from repro.softfloat.printing import format_hex, format_softfloat
from repro.softfloat.augmented import (
    augmented_addition,
    augmented_multiplication,
)
from repro.softfloat.elementary import fp_hypot, fp_powi
from repro.softfloat.functions import (
    fp_ilogb,
    fp_max,
    fp_max_magnitude,
    fp_maximum,
    fp_min,
    fp_min_magnitude,
    fp_minimum,
    fp_scalb,
    next_after,
    next_down,
    next_up,
    significant_bits,
    ulp,
)

__all__ = [
    # formats
    "FloatFormat",
    "BINARY16",
    "BINARY32",
    "BINARY64",
    "BINARY128",
    "BFLOAT16",
    "E4M3",
    "E5M2",
    "TINY8",
    "STANDARD_FORMATS",
    # value
    "SoftFloat",
    "FPClass",
    "sf",
    # arithmetic
    "fp_add",
    "fp_sub",
    "fp_mul",
    "fp_div",
    "fp_remainder",
    "fp_fma",
    "fp_sqrt",
    "fp_hypot",
    "fp_powi",
    "augmented_addition",
    "augmented_multiplication",
    # comparison
    "Ordering",
    "fp_compare_quiet",
    "fp_compare_signaling",
    "fp_eq",
    "fp_ne",
    "fp_lt",
    "fp_le",
    "fp_gt",
    "fp_ge",
    "fp_unordered",
    "fp_total_order",
    "total_order_key",
    # conversion
    "convert_format",
    "softfloat_from_float",
    "softfloat_to_float",
    "softfloat_from_int",
    "softfloat_to_int",
    "softfloat_from_fraction",
    "round_to_integral",
    "parse_softfloat",
    "format_softfloat",
    "format_hex",
    "special_bits",
    "special_pairs",
    "special_values",
    # auxiliaries
    "next_up",
    "next_down",
    "next_after",
    "fp_min",
    "fp_max",
    "fp_minimum",
    "fp_maximum",
    "fp_min_magnitude",
    "fp_max_magnitude",
    "fp_scalb",
    "fp_ilogb",
    "ulp",
    "significant_bits",
    # backends
    "BACKEND_OPS",
    "BACKEND_OP_ARITY",
    "SoftFloatBackend",
    "BatchResult",
    "ScalarBackend",
    "AutoBackend",
    "available_backends",
    "get_backend",
    # directed rounding
    "down_env",
    "up_env",
    "directed_envs",
    "directed_bounds",
    "probe_op",
]


def sf(value: object, fmt: FloatFormat = BINARY64) -> SoftFloat:
    """Convenience constructor: build a SoftFloat from a ``float``,
    ``int``, ``str`` literal, ``Fraction``, or another SoftFloat.

    Construction is quiet (no sticky flags) — it is how you *state*
    values, not an arithmetic operation.

    >>> sf(1.5) * sf(2)
    SoftFloat(binary64, 3.0)
    """
    from fractions import Fraction

    from repro.fpenv.env import FPEnv

    if isinstance(value, SoftFloat):
        if value.fmt == fmt:
            return value
        return convert_format(value, fmt, FPEnv())
    if isinstance(value, bool):
        raise TypeError("refusing to interpret bool as a float")
    if isinstance(value, float):
        return softfloat_from_float(value, fmt)
    if isinstance(value, int):
        return softfloat_from_int(value, fmt, FPEnv())
    if isinstance(value, Fraction):
        return softfloat_from_fraction(value, fmt, FPEnv())
    if isinstance(value, str):
        return parse_softfloat(value, fmt)
    raise TypeError(f"cannot build a SoftFloat from {type(value).__name__}")
