"""Directed-rounding entry points for sound outward bounds.

Interval arithmetic and the static analyzer both need the same
primitive: "run one softfloat operation under roundTowardNegative /
roundTowardPositive and tell me what happened".  Because every rounded
result lies between the round-down and round-up values of the exact
result, endpoint pairs computed here bracket the concrete result under
*any* rounding direction — which is what makes the static interval
domain sound for all five modes at once.

The probe environments are plain :class:`~repro.fpenv.FPEnv` instances
(optionally carrying FTZ/DAZ so abrupt-underflow configurations are
bracketed with their own flush semantics) whose sticky flags callers
may inspect after the probe.
"""

from __future__ import annotations

from repro.fpenv.env import FPEnv
from repro.fpenv.flags import FPFlag
from repro.fpenv.rounding import RoundingMode
from repro.softfloat.arith import fp_add, fp_div, fp_mul, fp_remainder, fp_sub
from repro.softfloat.fma import fp_fma
from repro.softfloat.functions import fp_max, fp_min
from repro.softfloat.sqrt import fp_sqrt
from repro.softfloat.value import SoftFloat

__all__ = [
    "PROBE_OPS",
    "down_env",
    "up_env",
    "directed_envs",
    "probe_op",
    "directed_bounds",
]

#: Operation table used by probes (name -> callable taking operands+env).
PROBE_OPS = {
    "add": fp_add,
    "sub": fp_sub,
    "mul": fp_mul,
    "div": fp_div,
    "rem": fp_remainder,
    "min": fp_min,
    "max": fp_max,
    "sqrt": fp_sqrt,
    "fma": fp_fma,
}


def down_env(*, ftz: bool = False, daz: bool = False) -> FPEnv:
    """A fresh roundTowardNegative environment (lower endpoints)."""
    return FPEnv(rounding=RoundingMode.TOWARD_NEGATIVE, ftz=ftz, daz=daz)


def up_env(*, ftz: bool = False, daz: bool = False) -> FPEnv:
    """A fresh roundTowardPositive environment (upper endpoints)."""
    return FPEnv(rounding=RoundingMode.TOWARD_POSITIVE, ftz=ftz, daz=daz)


def directed_envs(*, ftz: bool = False, daz: bool = False) -> tuple[FPEnv, FPEnv]:
    """``(down, up)`` environment pair for one outward-rounded step."""
    return down_env(ftz=ftz, daz=daz), up_env(ftz=ftz, daz=daz)


def probe_op(
    name: str, *operands: SoftFloat, env: FPEnv
) -> tuple[SoftFloat, FPFlag]:
    """Run one named operation in ``env`` and return ``(result, flags)``.

    Flags are the sticky bits the single operation raised (the
    environment's flags are cleared first, so probes compose).
    """
    env.clear_flags()
    result = PROBE_OPS[name](*operands, env)
    return result, env.flags


def directed_bounds(
    name: str,
    *operands: SoftFloat,
    ftz: bool = False,
    daz: bool = False,
) -> tuple[SoftFloat, SoftFloat, FPFlag]:
    """Bracket one operation on exact operands: ``(down, up, flags)``.

    ``flags`` is the union raised by the two directed evaluations; the
    pair ``[down, up]`` encloses the correctly rounded result under
    every rounding direction.
    """
    lo, lo_flags = probe_op(name, *operands, env=down_env(ftz=ftz, daz=daz))
    hi, hi_flags = probe_op(name, *operands, env=up_env(ftz=ftz, daz=daz))
    return lo, hi, lo_flags | hi_flags
