"""Decimal and hexadecimal rendering of SoftFloat values.

:func:`format_softfloat` produces the *shortest* decimal string that
parses back to the identical bit pattern (the Steele–White/Ryū
guarantee, implemented here by exact-rational search rather than by a
specialized algorithm — this is a correctness library, not a printing
speed contest).  :func:`format_hex` renders the C99 ``%a`` form, which
is exact by construction.
"""

from __future__ import annotations

import math

from repro.softfloat.value import SoftFloat

__all__ = ["format_softfloat", "format_hex", "decimal_digits", "shortest_digits"]

_LOG10_2 = math.log10(2.0)


def _nan_spelling(x: SoftFloat) -> str:
    """``nan``/``snan`` with the payload in parentheses whenever it
    differs from the constructor default (0 for quiet, 1 for
    signaling), so NaN bit patterns survive a print/parse round trip.
    """
    prefix = "-" if x.sign else ""
    if x.is_signaling_nan:
        payload = x.frac
        return prefix + ("snan" if payload == 1 else f"snan(0x{payload:x})")
    payload = x.frac & (x.fmt.quiet_bit - 1)
    return prefix + ("nan" if payload == 0 else f"nan(0x{payload:x})")


def decimal_digits(x: SoftFloat, ndigits: int) -> tuple[int, str, int]:
    """Render a finite nonzero value to ``ndigits`` significant decimal
    digits, correctly rounded half-even.

    Returns ``(sign, digits, exponent10)`` with ``len(digits) == ndigits``
    and value ≈ ``±0.digits * 10**(exponent10 + 1)`` — i.e. ``digits[0]``
    has decimal weight ``10**exponent10``.
    """
    if ndigits < 1:
        raise ValueError("ndigits must be >= 1")
    mant, exp2 = x.significand_value()
    if mant == 0:
        raise ValueError("decimal_digits requires a nonzero value")

    e10 = int(math.floor((exp2 + mant.bit_length() - 1) * _LOG10_2))
    for _ in range(4):  # estimate fix-up loop; converges in <= 2 steps
        digits_int = _scaled_round(mant, exp2, ndigits - 1 - e10)
        if digits_int >= 10**ndigits:
            e10 += 1
            continue
        if digits_int < 10 ** (ndigits - 1):
            e10 -= 1
            continue
        return x.sign, str(digits_int), e10
    raise AssertionError("decimal exponent estimate failed to converge")


def _scaled_round(mant: int, exp2: int, pow10: int) -> int:
    """Round ``mant * 2**exp2 * 10**pow10`` to the nearest integer,
    ties to even, exactly."""
    num = mant
    den = 1
    if exp2 >= 0:
        num <<= exp2
    else:
        den <<= -exp2
    if pow10 >= 0:
        num *= 10**pow10
    else:
        den *= 10 ** (-pow10)
    quotient, remainder = divmod(num, den)
    double_rem = 2 * remainder
    if double_rem > den or (double_rem == den and (quotient & 1)):
        quotient += 1
    return quotient


def shortest_digits(x: SoftFloat) -> tuple[int, str, int]:
    """Shortest ``(sign, digits, exponent10)`` that round-trips to ``x``'s
    exact bit pattern through correctly rounded parsing."""
    from fractions import Fraction

    from repro.fpenv.env import FPEnv
    from repro.softfloat.convert import softfloat_from_fraction

    max_digits = int(math.ceil(x.fmt.precision * _LOG10_2)) + 2
    for ndigits in range(1, max_digits + 1):
        sign, digits, e10 = decimal_digits(x, ndigits)
        scale = ndigits - 1 - e10
        if scale >= 0:
            candidate = Fraction(int(digits), 10**scale)
        else:
            candidate = Fraction(int(digits) * 10 ** (-scale))
        back = softfloat_from_fraction(candidate, x.fmt, FPEnv())
        if sign:
            back = -back
        if back.same_bits(x):
            return sign, digits, e10
    return decimal_digits(x, max_digits)  # pragma: no cover - guaranteed above


def _assemble(sign: int, digits: str, e10: int) -> str:
    """Lay out digits Python-repr style: positional for moderate
    exponents, scientific otherwise."""
    prefix = "-" if sign else ""
    ndigits = len(digits)
    if -4 <= e10 < 16:
        if e10 >= ndigits - 1:
            body = digits + "0" * (e10 - ndigits + 1) + ".0"
        elif e10 >= 0:
            body = digits[: e10 + 1] + "." + digits[e10 + 1 :]
        else:
            body = "0." + "0" * (-e10 - 1) + digits
        return prefix + body
    mantissa = digits[0] + ("." + digits[1:] if ndigits > 1 else ".0")
    return f"{prefix}{mantissa}e{'+' if e10 >= 0 else '-'}{abs(e10):02d}"


def format_softfloat(x: SoftFloat) -> str:
    """Shortest round-tripping decimal form (or ``inf``/``nan`` etc.)."""
    prefix = "-" if x.sign else ""
    if x.is_nan:
        return _nan_spelling(x)
    if x.is_inf:
        return prefix + "inf"
    if x.is_zero:
        return prefix + "0.0"
    sign, digits, e10 = shortest_digits(x)
    return _assemble(sign, digits.rstrip("0") or "0", e10)


def format_hex(x: SoftFloat) -> str:
    """C99 ``%a``-style exact hexadecimal-significand rendering."""
    prefix = "-" if x.sign else ""
    if x.is_nan:
        return _nan_spelling(x)
    if x.is_inf:
        return prefix + "inf"
    if x.is_zero:
        return prefix + "0x0.0p+0"
    fmt = x.fmt
    if x.is_subnormal:
        lead = 0
        frac = x.frac
        exponent = fmt.emin
    else:
        lead = 1
        frac = x.frac
        exponent = x.biased_exp - fmt.bias
    nibbles = (fmt.frac_bits + 3) // 4
    frac <<= nibbles * 4 - fmt.frac_bits
    frac_hex = f"{frac:0{nibbles}x}".rstrip("0") or "0"
    return f"{prefix}0x{lead}.{frac_hex}p{'+' if exponent >= 0 else '-'}{abs(exponent)}"
