"""Correctly rounded composite operations: ``hypot`` and integer powers.

These are §9 recommended operations that naive compositions get subtly
wrong — ``sqrt(a*a + b*b)`` overflows for large ``a`` even when the
true hypotenuse is representable, and repeated multiplication
accumulates rounding.  Both are computed here through *exact* integer
intermediates with a single final rounding, which makes them useful
both as library functions and as reference oracles for accuracy
studies (see ``examples/mixed_precision.py``).
"""

from __future__ import annotations

import math
from fractions import Fraction

from repro.fpenv.env import FPEnv, get_env
from repro.fpenv.flags import FPFlag
from repro.softfloat._round import round_and_pack
from repro.softfloat.arith import _apply_daz, propagate_nan
from repro.softfloat.value import SoftFloat

__all__ = ["fp_hypot", "fp_powi"]


def fp_hypot(a: SoftFloat, b: SoftFloat, env: FPEnv | None = None) -> SoftFloat:
    """Correctly rounded ``sqrt(a**2 + b**2)`` with a single rounding.

    Never overflows or underflows spuriously: the square sum is exact.
    ``hypot(±inf, anything)`` is +inf — even when the other operand is a
    quiet NaN (IEEE 754-2008 §9.2.1); signaling NaNs raise *invalid*.
    """
    env = env or get_env()
    fmt = a.fmt
    if a.is_signaling_nan or b.is_signaling_nan:
        return propagate_nan(env, "hypot", a, b)
    if a.is_inf or b.is_inf:
        return SoftFloat.inf(fmt)
    if a.is_nan or b.is_nan:
        return propagate_nan(env, "hypot", a, b)
    a, b = _apply_daz(env, a), _apply_daz(env, b)
    if a.is_zero and b.is_zero:
        return SoftFloat.zero(fmt)
    if a.is_zero:
        return abs(b)
    if b.is_zero:
        return abs(a)

    ma, ea = a.significand_value()
    mb, eb = b.significand_value()
    # Exact a^2 + b^2 at the common granularity 2*min(ea, eb).
    e = min(ea, eb)
    sa = ma << (ea - e)
    sb = mb << (eb - e)
    total = sa * sa + sb * sb  # exact, at exponent 2e

    # Integer square root with sticky for a single correct rounding.
    target_bits = 2 * (fmt.precision + 2)
    shift = max(0, target_bits - total.bit_length())
    if shift % 2:
        shift += 1
    scaled = total << shift
    root = math.isqrt(scaled)
    sticky = 0 if root * root == scaled else 1
    bits = round_and_pack(fmt, env, 0, root, e - shift // 2, sticky, "hypot")
    return SoftFloat(fmt, bits)


def fp_powi(x: SoftFloat, n: int, env: FPEnv | None = None) -> SoftFloat:
    """Correctly rounded integer power ``x**n`` (single rounding).

    ``x**0`` is 1 for every ``x`` including NaN and infinity (the
    ``pown`` convention of IEEE 754-2008 §9.2).  Negative exponents go
    through an exact rational reciprocal.  Exponent magnitude is capped
    (|n| <= 4096) to bound the exact intermediate's size.
    """
    env = env or get_env()
    fmt = x.fmt
    if abs(n) > 4096:
        raise ValueError("pown exponent magnitude capped at 4096")
    if n == 0:
        return SoftFloat.one(fmt)
    if x.is_nan:
        return propagate_nan(env, "pown", x)
    x = _apply_daz(env, x)
    sign = x.sign if n % 2 else 0
    if x.is_inf:
        if n > 0:
            return SoftFloat.inf(fmt, sign)
        return SoftFloat.zero(fmt, sign)
    if x.is_zero:
        if n > 0:
            return SoftFloat.zero(fmt, sign)
        env.raise_flags(FPFlag.DIV_BY_ZERO, "pown")
        return SoftFloat.inf(fmt, sign)

    mant, exp2 = x.significand_value()
    power = abs(n)
    exact_mant = mant**power  # exact
    exact_exp = exp2 * power
    if n > 0:
        bits = round_and_pack(fmt, env, sign, exact_mant, exact_exp, 0, "pown")
        return SoftFloat(fmt, bits)
    # Negative power: exact rational 1 / (mant^|n| * 2^(exp*|n|)).
    from repro.softfloat.convert import softfloat_from_fraction

    if exact_exp >= 0:
        value = Fraction(1, exact_mant * (1 << exact_exp))
    else:
        value = Fraction(1 << (-exact_exp), exact_mant)
    result = softfloat_from_fraction(value, fmt, env)
    return -result if sign else result
