"""Correctly rounded square root.

``sqrt`` is one of the five basic operations IEEE 754 requires to be
correctly rounded.  The *Square* quiz question (is ``a*a >= 0`` for
non-NaN ``a``?) is about multiplication, but its demonstration sweeps
square roots as well to show the inverse relationship holds where exact.
"""

from __future__ import annotations

import math

from repro.fpenv.env import FPEnv, get_env
from repro.fpenv.flags import FPFlag
from repro.softfloat._round import round_and_pack
from repro.softfloat.arith import _apply_daz, propagate_nan
from repro.softfloat.value import SoftFloat

__all__ = ["fp_sqrt", "SCALAR_KERNELS"]


def fp_sqrt(a: SoftFloat, env: FPEnv | None = None) -> SoftFloat:
    """Compute ``squareRoot(a)`` with correct rounding.

    ``sqrt(-0) = -0`` (exact, no flags); ``sqrt`` of any other negative
    value raises *invalid* and returns NaN; ``sqrt(+inf) = +inf``.
    """
    env = env or get_env()
    if env.recorder is not None:
        env.recorder.record_op("sqrt", a.fmt.name)
    fmt = a.fmt
    if a.is_nan:
        return propagate_nan(env, "sqrt", a)
    a = _apply_daz(env, a)
    if a.is_zero:
        return a  # sqrt(±0) = ±0
    if a.sign:
        env.raise_flags(FPFlag.INVALID, "sqrt")
        return SoftFloat(fmt, fmt.quiet_nan_bits())
    if a.is_inf:
        return a

    mant, exp2 = a.significand_value()
    # Scale so the integer square root carries `precision + 2` bits and
    # the exponent stays even: sqrt(m * 2^e) = isqrt(m << s) * 2^((e-s)/2).
    target_bits = 2 * (fmt.precision + 2)
    shift = target_bits - mant.bit_length()
    if (exp2 - shift) % 2:
        shift += 1
    if shift < 0:  # pragma: no cover - mantissas are always narrower
        shift = (0 if exp2 % 2 == 0 else 1)
    scaled = mant << shift
    root = math.isqrt(scaled)
    sticky = 0 if root * root == scaled else 1
    bits = round_and_pack(fmt, env, 0, root, (exp2 - shift) // 2, sticky, "sqrt")
    return SoftFloat(fmt, bits)


#: Backend kernel table (see :mod:`repro.softfloat.backend`).
SCALAR_KERNELS = {"sqrt": fp_sqrt}
