"""Binary interchange format descriptions.

A :class:`FloatFormat` is fully determined by its exponent width and its
precision (significand bits *including* the hidden bit).  The standard
IEEE 754 binary formats are provided as module constants, along with
``bfloat16`` (widely used in ML hardware and relevant to the paper's
point about proliferating precisions) and a couple of tiny formats that
are small enough for exhaustive testing.
"""

from __future__ import annotations

import dataclasses

from repro.errors import FormatError

__all__ = [
    "FloatFormat",
    "BINARY16",
    "BINARY32",
    "BINARY64",
    "BINARY128",
    "BFLOAT16",
    "E4M3",
    "E5M2",
    "TINY8",
    "STANDARD_FORMATS",
]


@dataclasses.dataclass(frozen=True)
class FloatFormat:
    """An IEEE-754-style binary floating point format.

    Parameters
    ----------
    exp_bits:
        Width of the biased exponent field (``w`` in the standard).
    precision:
        Number of significand bits including the implicit leading bit
        (``p`` in the standard).  ``binary64`` has ``precision=53``.
    name:
        Display name.
    """

    exp_bits: int
    precision: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.exp_bits < 2:
            raise FormatError(f"exponent field needs >= 2 bits, got {self.exp_bits}")
        if self.precision < 2:
            raise FormatError(f"precision needs >= 2 bits, got {self.precision}")
        if not self.name:
            object.__setattr__(self, "name", f"E{self.exp_bits}M{self.frac_bits}")

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def frac_bits(self) -> int:
        """Width of the stored trailing significand field (``p - 1``)."""
        return self.precision - 1

    @property
    def width(self) -> int:
        """Total encoding width in bits (sign + exponent + fraction)."""
        return 1 + self.exp_bits + self.frac_bits

    @property
    def bias(self) -> int:
        """Exponent bias, ``2**(w-1) - 1``."""
        return (1 << (self.exp_bits - 1)) - 1

    @property
    def emax(self) -> int:
        """Largest unbiased exponent of a finite normal number."""
        return self.bias

    @property
    def emin(self) -> int:
        """Smallest unbiased exponent of a normal number (``1 - emax``)."""
        return 1 - self.bias

    @property
    def max_biased_exp(self) -> int:
        """The all-ones biased exponent (reserved for inf/NaN)."""
        return (1 << self.exp_bits) - 1

    @property
    def sig_mask(self) -> int:
        """Bit mask of the trailing significand field."""
        return (1 << self.frac_bits) - 1

    @property
    def quiet_bit(self) -> int:
        """The NaN quiet bit: the MSB of the trailing significand."""
        return 1 << (self.frac_bits - 1)

    @property
    def hidden_bit(self) -> int:
        """The implicit leading significand bit value, ``2**(p-1)``."""
        return 1 << self.frac_bits

    # ------------------------------------------------------------------
    # Landmark encodings
    # ------------------------------------------------------------------
    def pack(self, sign: int, biased_exp: int, frac: int) -> int:
        """Assemble an encoding from raw fields (no validation of ranges
        beyond masking errors; use for landmark constants)."""
        if sign not in (0, 1):
            raise FormatError(f"sign must be 0 or 1, got {sign}")
        if not 0 <= biased_exp <= self.max_biased_exp:
            raise FormatError(f"biased exponent {biased_exp} out of range")
        if not 0 <= frac <= self.sig_mask:
            raise FormatError(f"fraction {frac} out of range")
        return (sign << (self.width - 1)) | (biased_exp << self.frac_bits) | frac

    def unpack(self, bits: int) -> tuple[int, int, int]:
        """Split an encoding into ``(sign, biased_exp, frac)`` fields."""
        if not 0 <= bits < (1 << self.width):
            raise FormatError(f"bit pattern 0x{bits:x} out of range for {self.name}")
        sign = bits >> (self.width - 1)
        biased_exp = (bits >> self.frac_bits) & self.max_biased_exp
        frac = bits & self.sig_mask
        return sign, biased_exp, frac

    def inf_bits(self, sign: int = 0) -> int:
        """Encoding of ±infinity."""
        return self.pack(sign, self.max_biased_exp, 0)

    def quiet_nan_bits(self, sign: int = 0, payload: int = 0) -> int:
        """Encoding of a quiet NaN with the given payload."""
        return self.pack(sign, self.max_biased_exp, self.quiet_bit | payload)

    def signaling_nan_bits(self, sign: int = 0, payload: int = 1) -> int:
        """Encoding of a signaling NaN; payload must be nonzero."""
        if payload == 0 or payload & self.quiet_bit:
            raise FormatError("signaling NaN payload must be nonzero w/o quiet bit")
        return self.pack(sign, self.max_biased_exp, payload)

    def zero_bits(self, sign: int = 0) -> int:
        """Encoding of ±0."""
        return self.pack(sign, 0, 0)

    def max_finite_bits(self, sign: int = 0) -> int:
        """Encoding of the largest finite magnitude."""
        return self.pack(sign, self.max_biased_exp - 1, self.sig_mask)

    def min_normal_bits(self, sign: int = 0) -> int:
        """Encoding of the smallest positive normal magnitude."""
        return self.pack(sign, 1, 0)

    def min_subnormal_bits(self, sign: int = 0) -> int:
        """Encoding of the smallest positive subnormal magnitude."""
        return self.pack(sign, 0, 1)

    def one_bits(self, sign: int = 0) -> int:
        """Encoding of ±1.0."""
        return self.pack(sign, self.bias, 0)

    # ------------------------------------------------------------------
    # Landmark values (exact, as integers scaled by powers of two)
    # ------------------------------------------------------------------
    @property
    def max_finite_value(self) -> tuple[int, int]:
        """Largest finite magnitude as ``(mantissa, exponent2)``:
        value = mantissa * 2**exponent2."""
        mant = (1 << self.precision) - 1
        return mant, self.emax - self.frac_bits

    @property
    def min_subnormal_value(self) -> tuple[int, int]:
        """Smallest positive magnitude as ``(mantissa, exponent2)``."""
        return 1, self.emin - self.frac_bits

    @property
    def ulp_of_one(self) -> tuple[int, int]:
        """ULP at 1.0 as ``(mantissa, exponent2)`` (machine epsilon)."""
        return 1, -self.frac_bits

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return (
            f"FloatFormat(exp_bits={self.exp_bits}, precision={self.precision},"
            f" name={self.name!r})"
        )


#: IEEE 754 binary16 (half precision).
BINARY16 = FloatFormat(5, 11, "binary16")
#: IEEE 754 binary32 (single precision; C ``float``).
BINARY32 = FloatFormat(8, 24, "binary32")
#: IEEE 754 binary64 (double precision; C ``double``, Python ``float``).
BINARY64 = FloatFormat(11, 53, "binary64")
#: IEEE 754 binary128 (quadruple precision).
BINARY128 = FloatFormat(15, 113, "binary128")
#: Google brain float: binary32's exponent range with 8 significand bits.
BFLOAT16 = FloatFormat(8, 8, "bfloat16")
#: OCP 8-bit FP8 E4M3 variant (IEEE-style interpretation, with infinities).
E4M3 = FloatFormat(4, 4, "e4m3")
#: OCP 8-bit FP8 E5M2 variant.
E5M2 = FloatFormat(5, 3, "e5m2")
#: A deliberately tiny format (6 bits total) for exhaustive testing.
TINY8 = FloatFormat(3, 3, "tiny8")

STANDARD_FORMATS: tuple[FloatFormat, ...] = (
    BINARY16,
    BINARY32,
    BINARY64,
    BINARY128,
)
