"""Plain-text charts: histograms, stacked bars, and Likert profiles.

These render the paper's chart figures (13, 16–22) as terminal
graphics so a bench run shows the same *shape* the paper plots.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["render_histogram", "render_stacked_bars", "render_profile"]


def render_histogram(
    counts: Mapping[int, int],
    *,
    title: str = "",
    width: int = 50,
) -> str:
    """Horizontal-bar histogram keyed by integer bins.

    >>> print(render_histogram({0: 2, 1: 4}, width=4))
     0 |##    2
     1 |####  4
    """
    if not counts:
        raise ValueError("histogram needs at least one bin")
    lines = [title] if title else []
    peak = max(counts.values()) or 1
    lo, hi = min(counts), max(counts)
    for bin_value in range(lo, hi + 1):
        count = counts.get(bin_value, 0)
        bar = "#" * max(0, round(width * count / peak))
        lines.append(f"{bin_value:2d} |{bar:<{width}}{count:4d}")
    return "\n".join(lines)


def render_stacked_bars(
    rows: Sequence[tuple[str, Mapping[str, float]]],
    segments: Sequence[str],
    *,
    title: str = "",
    width: int = 60,
    total: float | None = None,
) -> str:
    """Stacked horizontal bars (one row per factor level).

    Each row maps segment name to a value; segments are drawn with
    distinct fill characters in the given order, scaled so ``total``
    (default: the max row sum) spans ``width`` characters.
    """
    fills = "#=+-.oxz"
    if len(segments) > len(fills):
        raise ValueError(f"at most {len(fills)} segments supported")
    row_sums = [sum(values.get(s, 0.0) for s in segments) for _, values in rows]
    scale_total = total if total is not None else (max(row_sums) or 1.0)
    label_width = max((len(label) for label, _ in rows), default=0)
    lines = [title] if title else []
    legend = "  ".join(
        f"{fill}={segment}" for fill, segment in zip(fills, segments)
    )
    lines.append(f"  [{legend}]")
    for label, values in rows:
        bar = ""
        for fill, segment in zip(fills, segments):
            chars = round(width * values.get(segment, 0.0) / scale_total)
            bar += fill * chars
        lines.append(f"{label:<{label_width}} |{bar}")
    return "\n".join(lines)


def render_profile(
    series: Mapping[str, Sequence[float]],
    x_labels: Sequence[object],
    *,
    title: str = "",
) -> str:
    """Tabular rendering of multi-series distributions (Figure 22 style:
    one column per x value, one row per series, cells are percents)."""
    lines = [title] if title else []
    label_width = max(len(name) for name in series)
    header = " " * label_width + "  " + "".join(
        f"{str(x):>8}" for x in x_labels
    )
    lines.append(header)
    for name, values in series.items():
        if len(values) != len(x_labels):
            raise ValueError(f"series {name!r} length mismatch")
        row = f"{name:<{label_width}}  " + "".join(
            f"{value:8.1f}" for value in values
        )
        lines.append(row)
    return "\n".join(lines)
