"""Plain-text rendering of tables and charts, in the paper's style."""

from repro.reporting.tables import format_count_percent, render_table
from repro.reporting.charts import (
    render_histogram,
    render_profile,
    render_stacked_bars,
)

__all__ = [
    "render_table",
    "format_count_percent",
    "render_histogram",
    "render_stacked_bars",
    "render_profile",
]
