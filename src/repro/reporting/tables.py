"""Plain-text table rendering in the paper's style.

Analysis results render to aligned ASCII tables so the benchmark
harness can print exactly the rows each paper figure reports.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "format_count_percent"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
    aligns: Sequence[str] | None = None,
) -> str:
    """Render an aligned table.

    ``aligns`` is a per-column sequence of ``"l"``/``"r"`` (defaults to
    left for the first column, right for the rest, matching the paper's
    n/% tables).
    """
    if aligns is None:
        aligns = ["l"] + ["r"] * (len(headers) - 1)
    if len(aligns) != len(headers):
        raise ValueError("aligns length must match headers length")
    cells = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
        cells.append([_format_cell(value) for value in row])
    widths = [
        max(len(row[col]) for row in cells) for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    for index, row in enumerate(cells):
        padded = [
            cell.rjust(width) if align == "r" else cell.ljust(width)
            for cell, width, align in zip(row, widths, aligns)
        ]
        lines.append(" | ".join(padded).rstrip())
        if index == 0:
            lines.append(separator)
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def format_count_percent(count: int, total: int) -> tuple[int, float]:
    """The paper's ``n`` / ``%`` column pair."""
    if total <= 0:
        raise ValueError("total must be positive")
    return count, 100.0 * count / total
