"""Command line interface: ``python -m repro <command>``.

Commands
--------
``quiz``
    Take the paper's survey interactively (with executable ground-truth
    demonstrations for anything you miss).
``study``
    Simulate the cohorts and print every paper table/figure.
``demo``
    Run and print the ground-truth demonstration for one question (or
    all of them).
``spy``
    Run an exception-provoking workload under the fpspy monitor.
``optsim``
    Compile an expression at an optimization level and search for a
    divergence from strict IEEE.
``lint``
    Statically analyze an expression for floating-point hazards
    (cancellation, absorption, overflow, NaN introduction, unsafe
    rewrites) without running it.
``shadow``
    Shadow-evaluate an expression at high precision.
``mca``
    Monte Carlo arithmetic: significance via randomized rounding.
``drill``
    Adaptive training drills with computed answers.
``instrument``
    Print the full survey document (no answer key).
``oracle``
    Differential conformance testing of the softfloat engine against
    the exact-rounding oracle (and the host's native floats).
``telemetry``
    Inspect recorded traces/metrics, or run an instrumented demo.

The ``study``, ``optsim``, and ``oracle run`` commands accept
``--trace PATH`` (dump the span tree and FP-exception events as JSONL)
and ``--metrics-out PATH`` (dump the metrics registry as JSON); either
flag enables the telemetry session for the run.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from collections.abc import Iterator, Sequence

__all__ = ["main", "build_parser"]


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="PATH", dest="trace_out",
        help="record a telemetry trace (spans + FP-exception events)"
             " to this JSONL file",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the run's metrics registry (counters, latency"
             " histograms, gauges) to this JSON file",
    )


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--parallel", type=int, default=0, metavar="N",
        help="run the sweep on the sharded execution engine with N"
             " worker processes (0: serial, the default; results are"
             " bit-identical either way)",
    )
    parser.add_argument(
        "--cache", default=None, metavar="PATH", dest="cache_path",
        help="JSONL disk tier for the engine's result cache (default:"
             " the user cache dir; only used with --parallel)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the engine's result cache entirely",
    )


def _build_engine(args: argparse.Namespace):
    """An :class:`~repro.engine.Engine` per the command's flags."""
    from repro.engine import Engine, EngineConfig, default_cache_path

    cache_path = None
    if not args.no_cache:
        cache_path = args.cache_path or default_cache_path()
    return Engine(EngineConfig(
        workers=max(0, args.parallel),
        cache_enabled=not args.no_cache,
        cache_path=cache_path,
    ))


def _engine_interrupted():
    """The exception a drained Ctrl-C raises (lazy import)."""
    from repro.errors import EngineInterrupted

    return EngineInterrupted


def _engine_summary(engine) -> str:
    report = engine.last_report
    line = (
        f"engine: {report.shards} shards, {report.from_cache} cached,"
        f" {report.executed} executed"
        f" ({'pool' if report.parallel else 'in-process'},"
        f" {report.elapsed_seconds:.2f}s)"
    )
    if report.pool is not None:
        pool = report.pool
        faults = pool.retries + pool.timeouts + pool.worker_deaths
        if faults:
            line += (f"; faults: {pool.retries} retries,"
                     f" {pool.timeouts} timeouts,"
                     f" {pool.worker_deaths} worker deaths")
    return line


@contextlib.contextmanager
def _telemetry_scope(args: argparse.Namespace) -> Iterator[None]:
    """Enable telemetry for a command when it asked for exports."""
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    if not trace_out and not metrics_out:
        yield
        return
    from repro.telemetry import telemetry_session
    from repro.telemetry.export import write_metrics_json, write_trace_jsonl

    with telemetry_session() as session:
        yield
    if trace_out:
        count = write_trace_jsonl(trace_out, session)
        print(f"wrote {count} trace records to {trace_out}")
    if metrics_out:
        write_metrics_json(metrics_out, session.metrics.snapshot())
        print(f"wrote {len(session.metrics)} metrics to {metrics_out}")


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro-fp`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-fp",
        description=(
            "Reproduction of 'Do Developers Understand IEEE Floating "
            "Point?' (IPDPS 2018)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    quiz = sub.add_parser("quiz", help="take the survey interactively")
    quiz.add_argument(
        "--no-suspicion", action="store_true",
        help="skip the suspicion component",
    )
    quiz.add_argument(
        "--no-demos", action="store_true",
        help="do not print demonstrations for missed questions",
    )

    study = sub.add_parser(
        "study", help="simulate the cohorts and print all figures",
    )
    study.add_argument("--seed", type=int, default=754)
    study.add_argument("--developers", type=int, default=199)
    study.add_argument("--students", type=int, default=52)
    study.add_argument(
        "--figure", default=None,
        help="print only this figure (e.g. 'Figure 14')",
    )
    study.add_argument(
        "--export", default=None, metavar="PATH",
        help="also write the simulated records as CSV",
    )
    study.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the full markdown report (all figures + extensions)",
    )
    _add_telemetry_flags(study)
    _add_engine_flags(study)

    demo = sub.add_parser(
        "demo", help="run a question's ground-truth demonstration",
    )
    demo.add_argument(
        "question", help="question id (e.g. 'associativity') or 'all'",
    )

    spy = sub.add_parser("spy", help="monitor a workload's exceptions")
    spy.add_argument("workload", help="workload name or 'list' or 'all'")
    spy.add_argument("--trace", action="store_true",
                     help="also log each flag-raise with its operation")

    optsim = sub.add_parser(
        "optsim", help="check an expression's behavior under a flag",
    )
    optsim.add_argument("expr", help="expression, e.g. 'a*b + c'")
    optsim.add_argument(
        "--level", default="-O3",
        help="-O0..-O3, -Ofast, --ffast-math, or a full command line "
             "like 'gcc -O2 -fassociative-math'",
    )
    optsim.add_argument(
        "--oracle-check", action="store_true",
        help="cross-validate the strict-IEEE side of the verdict "
             "against the exact-rounding oracle",
    )
    optsim.add_argument(
        "--analyze", action="store_true",
        help="also run the static analyzer: lint diagnostics, per-pass "
             "safety verdicts, and static-vs-dynamic agreement",
    )
    optsim.add_argument(
        "--strategy", default="random",
        choices=["random", "guided", "exhaustive"],
        help="divergence search strategy: random corner-biased sampling "
             "(default), analysis-guided region search, or an exhaustive "
             "sweep (small formats)",
    )
    _add_telemetry_flags(optsim)

    lint = sub.add_parser(
        "lint", help="statically analyze an expression for FP hazards",
    )
    lint.add_argument(
        "expr", nargs="?", default=None,
        help="expression, e.g. '(a + b) - a' (omit with --corpus)",
    )
    lint.add_argument(
        "--level", default="strict",
        help="machine configuration: strict (default), -O0..-O3, -Ofast,"
             " --ffast-math, or a full command line",
    )
    lint.add_argument(
        "--format", default=None, dest="fmt",
        choices=["tiny8", "e4m3", "e5m2", "bfloat16", "binary16",
                 "binary32", "binary64", "binary128"],
        help="analysis format (default: the level's format, binary64)",
    )
    lint.add_argument(
        "--bind-range", action="append", default=[], metavar="NAME=LO,HI",
        help="variable range (repeatable); NAME=V pins a point",
    )
    lint.add_argument(
        "--assume-nan-inputs", action="store_true",
        help="let unbound variables be NaN too (default: NaN verdicts "
             "mark where NaNs are introduced, not propagated)",
    )
    lint.add_argument(
        "--json", action="store_true",
        help="emit the diagnostics as JSON instead of text",
    )
    lint.add_argument(
        "--explain", action="store_true",
        help="also print the per-node abstract values and pass verdicts",
    )
    lint.add_argument(
        "--corpus", action="store_true",
        help="lint the built-in gotcha corpus, print the precision "
             "summary, and diff against the golden file",
    )
    lint.add_argument(
        "--write-golden", action="store_true",
        help="with --corpus: regenerate the golden diagnostics file",
    )
    lint.add_argument(
        "--witness", action="store_true",
        help="back every unsafe verdict with a verified counterexample: "
             "guided search plus localization and flag-flow coverage "
             "(with --corpus: resolve all 22 entries and diff witness "
             "outcomes against the golden file)",
    )
    lint.add_argument(
        "--witness-strategy", default="guided",
        choices=["guided", "random", "exhaustive"],
        help="witness search strategy (default: guided)",
    )
    lint.add_argument(
        "--witness-trials", type=int, default=2000,
        help="candidate budget for the witness search (default: 2000)",
    )
    _add_telemetry_flags(lint)
    _add_engine_flags(lint)

    shadow = sub.add_parser(
        "shadow", help="shadow-evaluate an expression at high precision",
    )
    shadow.add_argument("expr")
    shadow.add_argument(
        "--bind", action="append", default=[], metavar="NAME=VALUE",
        help="variable binding (repeatable)",
    )
    shadow.add_argument("--localize", action="store_true",
                        help="also print per-node error attribution")

    mca = sub.add_parser(
        "mca", help="randomized-rounding significance estimate",
    )
    mca.add_argument("expr")
    mca.add_argument(
        "--bind", action="append", default=[], metavar="NAME=VALUE",
    )
    mca.add_argument("--samples", type=int, default=32)

    drill = sub.add_parser(
        "drill", help="adaptive floating point training drills",
    )
    drill.add_argument("--rounds", type=int, default=10)
    drill.add_argument(
        "--concept", action="append", default=None,
        help="restrict to a concept (repeatable); see --list",
    )
    drill.add_argument("--list", action="store_true",
                       help="list available concepts")
    drill.add_argument("--seed", type=int, default=None)

    instrument = sub.add_parser(
        "instrument", help="print the full survey document",
    )
    instrument.add_argument("--plain", action="store_true",
                            help="plain text instead of markdown")

    oracle = sub.add_parser(
        "oracle", help="exact-rounding conformance testing",
    )
    oracle_sub = oracle.add_subparsers(dest="oracle_command", required=True)
    oracle_run = oracle_sub.add_parser(
        "run", help="differential sweep: engine vs exact oracle vs native",
    )
    oracle_run.add_argument(
        "--format", default="binary16", dest="fmt",
        choices=["tiny8", "e4m3", "e5m2", "bfloat16", "binary16",
                 "binary32", "binary64", "binary128"],
        help="destination format under test",
    )
    oracle_run.add_argument(
        "--ops", default="add,sub,mul,div,sqrt,fma",
        help="comma-separated operations (add,sub,mul,div,sqrt,fma)",
    )
    oracle_run.add_argument(
        "--budget", type=int, default=10000,
        help="evaluations per operation across the mode/FTZ matrix",
    )
    oracle_run.add_argument("--seed", type=int, default=754)
    oracle_run.add_argument(
        "--modes", default="all",
        help="rounding modes: 'all' or comma list of rne,rna,rtz,rtp,rtn",
    )
    oracle_run.add_argument(
        "--ftz", choices=["off", "on", "both"], default="both",
        help="flush-to-zero settings to drive",
    )
    oracle_run.add_argument(
        "--daz", choices=["off", "on", "both"], default="both",
        help="denormals-are-zero settings to drive",
    )
    oracle_run.add_argument(
        "--tininess", choices=["before", "after"], default="before",
        help="underflow tininess-detection convention the oracle models",
    )
    oracle_run.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the JSON conformance report here",
    )
    oracle_run.add_argument(
        "--no-native", action="store_true",
        help="skip the native-hardware third opinion",
    )
    oracle_run.add_argument(
        "--engine-backend", default="scalar",
        choices=["scalar", "batch", "native", "auto"],
        help="softfloat backend computing the engine side of each"
             " evaluation (batched backends vectorize the sweep;"
             " verdicts are bit-identical across backends)",
    )
    oracle_run.add_argument(
        "--no-timing", action="store_true",
        help="omit wall-clock fields from the JSON report, making"
             " serial and --parallel runs byte-identical",
    )
    _add_telemetry_flags(oracle_run)
    _add_engine_flags(oracle_run)

    engine = sub.add_parser(
        "engine", help="the sharded parallel execution engine",
    )
    engine_sub = engine.add_subparsers(dest="engine_command", required=True)
    engine_run = engine_sub.add_parser(
        "run", help="run a registered task across shards",
    )
    engine_run.add_argument(
        "task", help="registered task name (see 'engine status')",
    )
    engine_run.add_argument(
        "--param", action="append", default=[], metavar="JSON",
        help="one shard's params as a JSON object (repeatable; shard"
             " order follows flag order)",
    )
    engine_run.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="run N shards with empty params (alternative to --param)",
    )
    engine_run.add_argument("--seed", type=int, default=754)
    engine_run.add_argument(
        "--workers", type=int, default=0,
        help="worker processes (0: in-process serial)",
    )
    engine_run.add_argument(
        "--timeout", type=float, default=120.0,
        help="per-shard timeout in seconds",
    )
    engine_run.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the ordered shard results to this JSON file",
    )
    _add_telemetry_flags(engine_run)
    engine_status = engine_sub.add_parser(
        "status", help="registered tasks, machine fingerprint, cache",
    )
    engine_status.add_argument(
        "--cache", default=None, metavar="PATH", dest="cache_path",
        help="inspect this cache file instead of the default",
    )
    engine_cache = engine_sub.add_parser(
        "cache", help="inspect or clear the disk result cache",
    )
    engine_cache.add_argument("action", choices=["show", "clear"])
    engine_cache.add_argument(
        "--cache", default=None, metavar="PATH", dest="cache_path",
        help="cache file (default: the user cache dir)",
    )

    telemetry = sub.add_parser(
        "telemetry", help="inspect recorded traces and metrics",
    )
    telemetry_sub = telemetry.add_subparsers(
        dest="telemetry_command", required=True,
    )
    telemetry_view = telemetry_sub.add_parser(
        "view", help="render a recorded trace JSONL or metrics JSON",
    )
    telemetry_view.add_argument(
        "path", help="file written by --trace or --metrics-out",
    )
    telemetry_view.add_argument(
        "--trace-id", default=None, metavar="HEX",
        help="show only records stamped with this trace id (prefix ok)",
    )
    telemetry_view.add_argument(
        "--min-ms", type=float, default=None, metavar="MS",
        help="hide spans whose wall time is below MS milliseconds"
             " (survivors re-home under their nearest kept ancestor)",
    )
    telemetry_demo = telemetry_sub.add_parser(
        "demo", help="run a small instrumented workload and print the"
                     " span tree, metrics, and exception events",
    )
    telemetry_demo.add_argument("--budget", type=int, default=500)

    serve = sub.add_parser(
        "serve",
        help="run the async FP-analysis service (quiz/lint/oracle/study"
             " over newline-delimited JSON)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0: pick a free one and print it)",
    )
    serve.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="engine worker processes for oracle/study jobs (0: run"
             " them in-process)",
    )
    serve.add_argument(
        "--dispatchers", type=int, default=8,
        help="concurrent request dispatcher tasks",
    )
    serve.add_argument(
        "--rate", type=float, default=2000.0,
        help="per-client sustained requests/second (token bucket rate)",
    )
    serve.add_argument(
        "--burst", type=float, default=500.0,
        help="per-client burst allowance (token bucket capacity)",
    )
    serve.add_argument("--seed", type=int, default=754)
    serve.add_argument(
        "--backend", default="auto",
        choices=["scalar", "batch", "native", "auto"],
        help="softfloat backend for batched op.eval requests",
    )
    serve.add_argument(
        "--max-seconds", type=float, default=None, metavar="S",
        help="serve for S seconds then drain and exit (smoke tests;"
             " default: until SIGINT/SIGTERM)",
    )

    top = sub.add_parser(
        "top",
        help="live one-screen view of a running service (polls the"
             " stats and metrics methods)",
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, required=True)
    top.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="refresh period in seconds",
    )
    top.add_argument(
        "--once", action="store_true",
        help="poll once, print the screen, exit (CI smoke)",
    )
    return parser


def _cmd_quiz(args: argparse.Namespace) -> int:
    from repro.quiz.runner import run_interactive

    run_interactive(
        include_suspicion=not args.no_suspicion,
        show_demos=not args.no_demos,
    )
    return 0


def _cmd_study(args: argparse.Namespace) -> int:
    from repro.analysis.study import run_study

    engine = _build_engine(args) if args.parallel > 0 else None
    with _telemetry_scope(args):
        if engine is not None:
            from repro.engine.adapters import run_study_sharded

            study = run_study_sharded(
                engine, seed=args.seed, n_developers=args.developers,
                n_students=args.students,
            )
        else:
            study = run_study(
                seed=args.seed, n_developers=args.developers,
                n_students=args.students,
            )
        if args.figure is not None:
            print(study.figure(args.figure).render())
        else:
            print(study.render())
        if args.export:
            from repro.survey.io import write_csv

            count = write_csv(list(study.responses), args.export)
            print(f"\nwrote {count} records to {args.export}")
        if args.report:
            from repro.analysis.report import write_report

            target = write_report(study, args.report)
            print(f"wrote full report to {target}")
    if engine is not None:
        print(f"\n{_engine_summary(engine)}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.quiz.runner import all_questions

    questions = all_questions()
    if args.question != "all":
        questions = tuple(
            q for q in questions if q.qid == args.question
        )
        if not questions:
            known = ", ".join(q.qid for q in all_questions())
            print(f"unknown question {args.question!r}; known: {known}",
                  file=sys.stderr)
            return 2
    for question in questions:
        demo = question.verify_ground_truth()
        print(demo.render())
        print()
    return 0


def _cmd_spy(args: argparse.Namespace) -> int:
    from repro.fpspy import WORKLOADS, spy, workload

    if args.workload == "list":
        for w in WORKLOADS:
            print(f"{w.name:24s} {w.description}")
        return 0
    targets = WORKLOADS if args.workload == "all" else (workload(args.workload),)
    for w in targets:
        with spy(trace=args.trace) as report:
            result = w.run()
        print(f"workload {w.name}: result = {result!r}")
        print(report.render())
        if args.trace and report.trace is not None:
            print(report.trace.render())
        print()
    return 0


def _cmd_optsim(args: argparse.Namespace) -> int:
    from repro.optsim import (
        find_divergence,
        noncompliance_reasons,
        optimization_level,
        optimize,
        parse_expr,
    )

    try:
        config = optimization_level(args.level)
    except ValueError:
        from repro.optsim import config_from_flags

        config = config_from_flags(args.level)
    expr = parse_expr(args.expr)
    with _telemetry_scope(args):
        print(f"source:   {expr}")
        print(f"compiled: {optimize(expr, config)}   [{config.name}]")
        reasons = noncompliance_reasons(config)
        if reasons:
            print("non-standard permissions: " + "; ".join(reasons))
        report = find_divergence(
            expr, config, oracle_check=args.oracle_check,
            strategy=args.strategy,
        )
        print(report.describe())
        if args.analyze:
            from repro.staticfp import lint, predict_pass_safety

            print()
            print(lint(expr, config).render())
            safety = predict_pass_safety(expr, config)
            print()
            print(safety.describe())
            print()
            print(_agreement_line(safety, report))
    return 0


def _agreement_line(safety, report) -> str:
    """One-line static-vs-dynamic verdict comparison.

    The static contract is one-directional: a safe verdict must mean
    the search finds nothing, but an unsafe verdict is an admission of
    ignorance, so "unsafe + no divergence found" is still agreement.
    """
    if safety.value_safe and report.value_diverged:
        return ("static/dynamic DISAGREE: statically value-preserving, "
                "but the search found a value divergence (analyzer bug)")
    if safety.flags_safe and report.diverged:
        return ("static/dynamic DISAGREE: statically flag-preserving, "
                "but the search found a divergence (analyzer bug)")
    static = "value-preserving" if safety.value_safe \
        else "possibly-value-changing"
    dynamic = "found a divergence" if report.diverged \
        else "found no divergence"
    return (f"static/dynamic agreement: statically {static}, "
            f"dynamic search {dynamic}")


def _cmd_oracle(args: argparse.Namespace) -> int:
    from repro.oracle import FORMATS_BY_NAME, MODE_ALIASES, run_conformance

    fmt = FORMATS_BY_NAME[args.fmt]
    ops = [op.strip() for op in args.ops.split(",") if op.strip()]
    if not ops:
        print("no operations given; --ops wants a comma list like"
              " add,mul,fma", file=sys.stderr)
        return 2
    if args.budget < 1:
        print(f"--budget must be >= 1, got {args.budget} (a conformance"
              f" verdict needs at least one evaluation)", file=sys.stderr)
        return 2
    if args.modes == "all":
        modes = None
    else:
        try:
            modes = [MODE_ALIASES[m.strip().lower()]
                     for m in args.modes.split(",") if m.strip()]
        except KeyError as exc:
            print(f"unknown rounding mode {exc.args[0]!r}; choose from"
                  f" {sorted(MODE_ALIASES)}", file=sys.stderr)
            return 2
    switch = {"off": (False,), "on": (True,), "both": (False, True)}
    env_combos = [
        (ftz, daz)
        for ftz in switch[args.ftz]
        for daz in switch[args.daz]
    ]
    engine = _build_engine(args) if args.parallel > 0 else None
    try:
        with _telemetry_scope(args):
            if engine is not None:
                from repro.engine import graceful_shutdown
                from repro.engine.adapters import run_conformance_sharded

                with graceful_shutdown():
                    report = run_conformance_sharded(
                        fmt, ops, engine,
                        budget=args.budget,
                        seed=args.seed,
                        modes=modes,
                        env_combos=env_combos,
                        tininess=args.tininess,
                        native=not args.no_native,
                        engine_backend=args.engine_backend,
                    )
            else:
                report = run_conformance(
                    fmt, ops,
                    budget=args.budget,
                    seed=args.seed,
                    modes=modes,
                    env_combos=env_combos,
                    tininess=args.tininess,
                    native=not args.no_native,
                    engine_backend=args.engine_backend,
                )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except _engine_interrupted() as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        return 130
    print(report.summary())
    if engine is not None:
        print(f"\n{_engine_summary(engine)}")
    if args.json:
        try:
            report.write_json(args.json, timing=not args.no_timing)
        except OSError as exc:
            print(f"cannot write JSON report: {exc}", file=sys.stderr)
            return 2
        print(f"\nwrote JSON conformance report to {args.json}")
    return 0 if report.clean else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.errors import OptimizationError, ParseError
    from repro.optsim import optimization_level

    if args.corpus:
        if args.expr is not None:
            print("--corpus does not take an expression", file=sys.stderr)
            return 2
        return _lint_corpus(args)
    if args.expr is None:
        print("expected an expression (or --corpus)", file=sys.stderr)
        return 2
    try:
        config = optimization_level(args.level)
    except ValueError:
        from repro.optsim import config_from_flags

        try:
            config = config_from_flags(args.level)
        except ValueError as exc:
            print(f"bad --level: {exc}", file=sys.stderr)
            return 2
    if args.fmt is not None:
        from repro.softfloat import STANDARD_FORMATS

        config = config.replace(
            fmt=next(f for f in STANDARD_FORMATS if f.name == args.fmt)
        )
    bindings = _parse_range_bindings(args.bind_range)
    if bindings is None:
        return 2
    from repro.staticfp import lint

    try:
        with _telemetry_scope(args):
            report = lint(
                args.expr, config, bindings,
                assume_nan_inputs=args.assume_nan_inputs,
                witness=args.witness,
                witness_strategy=args.witness_strategy,
                witness_trials=args.witness_trials,
            )
    except (OptimizationError, ParseError) as exc:
        print(f"cannot analyze {args.expr!r}: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
        if args.explain:
            print()
            print(report.analysis.describe())
            print()
            print(report.safety.describe())
    return 1 if report.has_findings else 0


def _lint_corpus(args: argparse.Namespace) -> int:
    from repro.staticfp.corpus import (
        GOLDEN_PATH,
        check_golden,
        check_golden_witnesses,
        precision_summary,
        witness_outcomes,
        witness_summary,
        write_golden,
    )

    engine = _build_engine(args) if args.parallel > 0 else None
    with _telemetry_scope(args):
        witnesses = None
        if args.witness or args.write_golden:
            witnesses = witness_outcomes(trials=args.witness_trials)
        if args.write_golden:
            document = write_golden(witnesses=witnesses)
            print(f"wrote {len(document['entries'])} golden entries and "
                  f"{len(document['witnesses'])} witness outcomes to "
                  f"{GOLDEN_PATH}")
        outcomes = None
        if engine is not None:
            from repro.engine.adapters import run_corpus_sharded

            outcomes = run_corpus_sharded(engine)
        summary = precision_summary(outcomes)
        print(f"gotchas detected: {summary['gotchas_detected']}"
              f"/{summary['gotchas_total']}")
        if summary["missed"]:
            print("  missed: " + ", ".join(summary["missed"]))
        print(f"clean-corpus false positives:"
              f" {len(summary['false_positives'])}/{summary['clean_total']}")
        if summary["false_positives"]:
            print("  " + ", ".join(summary["false_positives"]))
        drift = check_golden(outcomes=outcomes)
        witness_ok = True
        if witnesses is not None:
            wsummary = witness_summary(witnesses)
            print(f"witness resolution: {wsummary['resolved']}"
                  f"/{wsummary['total']}"
                  f" ({len(wsummary['witnessed'])} witnessed,"
                  f" {len(wsummary['refuted'])} refuted,"
                  f" {len(wsummary['proved-safe'])} proved safe)")
            if wsummary["unresolved"]:
                print("  unresolved: " + ", ".join(wsummary["unresolved"]))
                witness_ok = False
            drift += check_golden_witnesses(outcomes=witnesses)
    if engine is not None:
        print(_engine_summary(engine))
    if drift:
        print(f"golden drift ({len(drift)} entries):")
        for line in drift:
            print("  " + line)
        return 1
    print("golden file: no drift")
    ok = (
        summary["gotchas_detected"] == summary["gotchas_total"]
        and not summary["false_positives"]
        and witness_ok
    )
    return 0 if ok else 1


def _parse_range_bindings(pairs):
    """``NAME=LO,HI`` range / ``NAME=V`` point bindings for lint.

    Values stay strings so exact decimal literals reach the analyzer's
    correctly-rounded parser untouched.
    """
    bindings: dict[str, object] = {}
    for item in pairs:
        name, eq, value = item.partition("=")
        if not name or not eq or not value:
            print(f"bad --bind-range {item!r}; expected NAME=LO,HI or"
                  f" NAME=VALUE", file=sys.stderr)
            return None
        lo, comma, hi = value.partition(",")
        if comma and (not lo or not hi):
            print(f"bad --bind-range {item!r}; expected NAME=LO,HI",
                  file=sys.stderr)
            return None
        bindings[name] = (lo, hi) if comma else value
    return bindings


def _cmd_shadow(args: argparse.Namespace) -> int:
    from repro.optsim import parse_expr
    from repro.shadow import localize_errors, shadow_evaluate

    bindings: dict[str, object] = {}
    for item in args.bind:
        name, _, value = item.partition("=")
        if not name or not value:
            print(f"bad --bind {item!r}; expected NAME=VALUE",
                  file=sys.stderr)
            return 2
        bindings[name] = float(value)
    expr = parse_expr(args.expr)
    print(shadow_evaluate(expr, bindings).describe())
    if args.localize:
        for entry in localize_errors(expr, bindings):
            print("  " + entry.describe())
    return 0


def _parse_bindings(pairs, parser_name: str):
    bindings: dict[str, object] = {}
    for item in pairs:
        name, _, value = item.partition("=")
        if not name or not value:
            print(f"bad --bind {item!r}; expected NAME=VALUE",
                  file=sys.stderr)
            return None
        bindings[name] = float(value)
    return bindings


def _cmd_mca(args: argparse.Namespace) -> int:
    from repro.optsim import parse_expr
    from repro.stochastic import mca_evaluate

    bindings = _parse_bindings(args.bind, "mca")
    if bindings is None:
        return 2
    result = mca_evaluate(
        parse_expr(args.expr), bindings, samples=args.samples
    )
    print(result.describe())
    return 0


def _cmd_drill(args: argparse.Namespace) -> int:
    import random

    from repro.training import ALL_TEMPLATES, DrillSession

    if args.list:
        for template in ALL_TEMPLATES:
            print(f"{template.concept:20s} {template.description}")
        return 0
    rng = random.Random(args.seed)
    session = DrillSession(rng=rng, concepts=args.concept)
    for number in range(1, args.rounds + 1):
        item = session.next_item()
        print(f"drill {number}/{args.rounds} [{item.concept}]")
        print(item.prompt)
        while True:
            raw = input("  [t/f] > ").strip().lower()
            if raw in ("t", "true", "f", "false"):
                break
            print("  please answer t or f")
        outcome = session.submit(item, raw in ("t", "true"))
        print("  " + outcome.feedback())
        print()
    print(session.mastery().render())
    return 0


def _filter_spans(spans: list, trace_id: str | None,
                  min_ms: float | None) -> list:
    """Apply the view filters, keeping the tree renderable.

    ``--trace-id`` matches by prefix (records from v1 files have no
    trace id and only survive when no filter is given).  ``--min-ms``
    drops fast spans; survivors whose parent was dropped re-home under
    their nearest surviving ancestor so the tree stays connected.
    """
    if trace_id is not None:
        spans = [
            s for s in spans
            if str(s.get("trace_id", "")).startswith(trace_id)
        ]
    if min_ms is None:
        return spans
    by_id = {s.get("id"): s for s in spans}
    kept = [
        s for s in spans
        if float(s.get("wall", 0.0)) * 1e3 >= min_ms
    ]
    kept_ids = {s.get("id") for s in kept}
    rehomed = []
    for span in kept:
        parent = span.get("parent", 0)
        while parent and parent not in kept_ids:
            parent = by_id.get(parent, {}).get("parent", 0)
        if parent != span.get("parent", 0):
            span = dict(span, parent=parent)
        rehomed.append(span)
    return rehomed


def _telemetry_view(path: str, *, trace_id: str | None = None,
                    min_ms: float | None = None) -> int:
    import json

    from repro.telemetry.export import (
        load_metrics_json,
        load_trace,
        render_metrics,
        render_span_tree,
    )

    try:
        trace = load_trace(path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        trace_error = exc
    else:
        meta = trace["meta"]
        spans = _filter_spans(trace["spans"], trace_id, min_ms)
        events = trace["events"]
        if trace_id is not None:
            events = [
                e for e in events
                if str(e.get("trace_id", "")).startswith(trace_id)
            ]
        if meta.get("trace_id"):
            print(f"trace {meta['trace_id']}"
                  f" (schema v{meta.get('version')})")
        if spans:
            print(render_span_tree(spans))
        if events:
            if spans:
                print()
            print(f"fp exception events ({len(events)}):")
            for event in events:
                flags = ",".join(event.get("flags", ()))
                where = event.get("span") or "-"
                print(f"  #{event.get('sequence')}"
                      f" {event.get('operation')}: {flags}  [{where}]")
        if not spans and not events:
            filtered = trace_id is not None or min_ms is not None
            print(f"{path}: "
                  + ("no records match the filters" if filtered
                     else "empty trace"))
        return 0
    # Not a trace; maybe a metrics snapshot.
    try:
        snapshot = load_metrics_json(path)
    except (OSError, ValueError, json.JSONDecodeError):
        print(f"cannot read {path} as a trace or metrics file:"
              f" {trace_error}", file=sys.stderr)
        return 2
    print(render_metrics(snapshot))
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    if args.telemetry_command == "view":
        return _telemetry_view(
            args.path, trace_id=args.trace_id, min_ms=args.min_ms,
        )

    # demo: run a small instrumented workload end to end.
    from repro.oracle import FORMATS_BY_NAME, run_conformance
    from repro.optsim import find_divergence, optimization_level, parse_expr
    from repro.telemetry import telemetry_session

    with telemetry_session() as session:
        run_conformance(
            FORMATS_BY_NAME["binary16"], ["add", "mul"],
            budget=args.budget, native=False,
        )
        find_divergence(parse_expr("(a + b) + c"), optimization_level("-O3"))
    print(session.tracer.render_tree())
    print()
    print(session.metrics.render())
    if session.events is not None and session.events.events:
        print()
        print(session.events.render())
    return 0


def _cmd_instrument(args: argparse.Namespace) -> int:
    from repro.survey import render_instrument

    print(render_instrument(markdown=not args.plain))
    return 0


def _cmd_engine(args: argparse.Namespace) -> int:
    from repro.engine import default_cache_path

    if args.engine_command == "status":
        import multiprocessing
        import os

        from repro.engine import machine_fingerprint, registered_tasks
        from repro.engine.cache import ResultCache

        print("registered tasks:")
        for name in registered_tasks():
            print(f"  {name}")
        print("machine fingerprint:")
        for key, value in machine_fingerprint().items():
            print(f"  {key}: {value}")
        print(f"cpus: {os.cpu_count()}")
        print(f"start method: {multiprocessing.get_start_method()}")
        path = args.cache_path or default_cache_path()
        cache = ResultCache(disk_path=path)
        print(f"cache file: {path} ({cache.disk_entries} entries)")
        return 0

    if args.engine_command == "cache":
        from repro.engine.cache import ResultCache

        path = args.cache_path or default_cache_path()
        cache = ResultCache(disk_path=path)
        if args.action == "clear":
            entries = cache.disk_entries
            cache.clear()
            print(f"cleared {entries} entries from {path}")
        else:
            print(cache.describe())
        return 0

    # engine run
    import json

    from repro.engine import Engine, EngineConfig, get_task, make_job
    from repro.errors import EngineError, ShardError

    if args.param and args.shards is not None:
        print("--param and --shards are mutually exclusive", file=sys.stderr)
        return 2
    try:
        get_task(args.task)
    except EngineError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.param:
        try:
            param_list = [json.loads(p) for p in args.param]
        except ValueError as exc:
            print(f"bad --param JSON: {exc}", file=sys.stderr)
            return 2
        if not all(isinstance(p, dict) for p in param_list):
            print("each --param must be a JSON object", file=sys.stderr)
            return 2
    else:
        param_list = [{} for _ in range(args.shards or 1)]
    engine = Engine(EngineConfig(
        workers=max(0, args.workers),
        shard_timeout=args.timeout,
        cache_enabled=False,
    ))
    with _telemetry_scope(args):
        from repro.engine import graceful_shutdown

        job = make_job(args.task, args.task, param_list,
                       seed=args.seed, cacheable=False)
        try:
            with graceful_shutdown():
                results = engine.run(job)
        except ShardError as exc:
            print(str(exc), file=sys.stderr)
            if exc.details:
                print(exc.details, file=sys.stderr)
            return 1
        except _engine_interrupted() as exc:
            print(f"interrupted: {exc}", file=sys.stderr)
            return 130
    print(_engine_summary(engine))
    payload = json.dumps(results, indent=2, default=str)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"wrote {len(results)} shard results to {args.json}")
    else:
        print(payload)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.engine import Engine, EngineConfig
    from repro.service import FPService, ServiceConfig

    engine = Engine(EngineConfig(
        workers=max(0, args.workers), cache_enabled=True,
    ))
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        service_seed=args.seed,
        dispatchers=max(1, args.dispatchers),
        rate=args.rate,
        burst=args.burst,
        backend=args.backend,
    )

    async def run() -> int:
        service = FPService(config, engine=engine)
        await service.start()
        print(f"serving on {config.host}:{service.port}"
              f" ({config.dispatchers} dispatchers,"
              f" {args.workers} engine workers,"
              f" {config.rate:g} req/s per client)", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or exotic platform
        try:
            await asyncio.wait_for(stop.wait(), timeout=args.max_seconds)
        except asyncio.TimeoutError:
            pass
        print("draining...", flush=True)
        await service.stop()
        stats = service.stats()
        print(f"served {stats['answered']} requests"
              f" ({stats['errors']} errors, {stats['limited']} limited,"
              f" {stats['shed']} shed)")
        return 0

    return asyncio.run(run())


def _cmd_top(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.client import ServiceClient
    from repro.service.topview import CLEAR_SCREEN, render_top
    from repro.telemetry.prometheus import parse_exposition

    title = f"{args.host}:{args.port}"

    async def screen(client: ServiceClient) -> str:
        stats_response = await client.call("stats")
        metrics_response = await client.call("metrics")
        stats = stats_response.result if stats_response.ok else {}
        exposition = None
        if metrics_response.ok and isinstance(
            metrics_response.result, dict
        ):
            exposition = parse_exposition(
                metrics_response.result.get("text", "")
            )
        return render_top(stats or {}, exposition, title=title)

    async def run() -> int:
        try:
            client = await ServiceClient.open(args.host, args.port)
        except OSError as exc:
            print(f"cannot connect to {title}: {exc}", file=sys.stderr)
            return 2
        try:
            async with client:
                if args.once:
                    print(await screen(client), end="")
                    return 0
                while True:
                    print(CLEAR_SCREEN + await screen(client),
                          end="", flush=True)
                    await asyncio.sleep(max(0.1, args.interval))
        except (ConnectionError, ValueError) as exc:
            print(f"lost the service: {exc}", file=sys.stderr)
            return 1

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        print()
        return 0


_COMMANDS = {
    "quiz": _cmd_quiz,
    "study": _cmd_study,
    "demo": _cmd_demo,
    "spy": _cmd_spy,
    "optsim": _cmd_optsim,
    "lint": _cmd_lint,
    "shadow": _cmd_shadow,
    "mca": _cmd_mca,
    "drill": _cmd_drill,
    "instrument": _cmd_instrument,
    "oracle": _cmd_oracle,
    "telemetry": _cmd_telemetry,
    "engine": _cmd_engine,
    "serve": _cmd_serve,
    "top": _cmd_top,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        import os

        try:
            sys.stdout.close()
        except BrokenPipeError:
            os.close(1)
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
