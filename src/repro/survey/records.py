"""Response records: the schema the analysis pipeline consumes.

A :class:`SurveyResponse` is one (anonymous) participant's complete
submission.  The analysis layer works only with these records, so a
real survey export converted to this schema runs through the identical
pipeline as the calibrated synthetic cohorts.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import SurveyDataError
from repro.quiz.model import TFAnswer
from repro.survey.background import Background

__all__ = ["Cohort", "SurveyResponse"]


class Cohort(enum.Enum):
    """Which study population a record belongs to."""

    DEVELOPER = "developer"  # the 199-person main group
    STUDENT = "student"      # the 52-person suspicion-only group


@dataclasses.dataclass(frozen=True)
class SurveyResponse:
    """One participant's full submission.

    ``core_answers`` and ``opt_answers`` map question ids to answers
    (missing id = unanswered); ``suspicion`` maps suspicion item ids to
    Likert levels 1–5.  Students have no background and no quiz answers
    (they took only the suspicion component, as a midterm problem).
    """

    respondent_id: str
    cohort: Cohort
    background: Background | None
    core_answers: dict[str, TFAnswer] = dataclasses.field(default_factory=dict)
    opt_answers: dict[str, TFAnswer | str] = dataclasses.field(
        default_factory=dict
    )
    suspicion: dict[str, int] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        for qid, level in self.suspicion.items():
            if not 1 <= int(level) <= 5:
                raise SurveyDataError(
                    f"suspicion level {level!r} for {qid!r} not on 1-5 scale"
                )
        if self.cohort is Cohort.DEVELOPER and self.background is None:
            raise SurveyDataError("developer records require a background")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """JSON-ready dict."""
        return {
            "respondent_id": self.respondent_id,
            "cohort": self.cohort.value,
            "background": (
                None if self.background is None else self.background.to_dict()
            ),
            "core_answers": {
                qid: answer.value for qid, answer in self.core_answers.items()
            },
            "opt_answers": {
                qid: (answer.value if isinstance(answer, TFAnswer) else answer)
                for qid, answer in self.opt_answers.items()
            },
            "suspicion": dict(self.suspicion),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "SurveyResponse":
        """Inverse of :meth:`to_dict`."""
        try:
            cohort = Cohort(data["cohort"])
        except (KeyError, ValueError) as exc:
            raise SurveyDataError(f"bad cohort in record: {exc}") from exc
        background_data = data.get("background")
        background = (
            None
            if background_data is None
            else Background.from_dict(background_data)  # type: ignore[arg-type]
        )
        core = {
            qid: TFAnswer(value)
            for qid, value in dict(data.get("core_answers", {})).items()
        }
        opt: dict[str, TFAnswer | str] = {}
        tf_values = {member.value for member in TFAnswer}
        for qid, value in dict(data.get("opt_answers", {})).items():
            opt[qid] = TFAnswer(value) if value in tf_values and qid != "opt_level" else value
        suspicion = {
            qid: int(level)
            for qid, level in dict(data.get("suspicion", {})).items()
        }
        return cls(
            respondent_id=str(data["respondent_id"]),
            cohort=cohort,
            background=background,
            core_answers=core,
            opt_answers=opt,
            suspicion=suspicion,
        )
