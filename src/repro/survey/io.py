"""Survey data import/export: JSON lines and flat CSV.

The JSON-lines form round-trips every field.  The CSV form flattens
answers into one column per question (the shape a Google Forms export
takes after coding), with multi-select background fields joined by
``;``.  :func:`anonymize` renumbers respondent ids, the one direct
identifier the schema carries.
"""

from __future__ import annotations

import csv
import json
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.errors import SurveyDataError
from repro.quiz.core import CORE_QUESTION_ORDER
from repro.quiz.model import TFAnswer
from repro.quiz.optimization import OPTIMIZATION_QUESTION_ORDER
from repro.quiz.suspicion import SUSPICION_ORDER
from repro.survey.background import Background
from repro.survey.records import Cohort, SurveyResponse

__all__ = [
    "write_jsonl",
    "read_jsonl",
    "write_csv",
    "read_csv",
    "anonymize",
]


def write_jsonl(responses: Iterable[SurveyResponse], path: str | Path) -> int:
    """Write records as JSON lines; returns the record count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for response in responses:
            handle.write(json.dumps(response.to_dict(), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str | Path) -> list[SurveyResponse]:
    """Read records written by :func:`write_jsonl`."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(SurveyResponse.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError) as exc:
                raise SurveyDataError(
                    f"{path}:{line_number}: bad record: {exc}"
                ) from exc
    return records


_BG_SCALAR_FIELDS = (
    "position", "area", "formal_training", "dev_role",
    "contributed_size", "contributed_fp_extent",
    "involved_size", "involved_fp_extent",
)
_BG_LIST_FIELDS = ("informal_training", "fp_languages", "arb_prec_languages")


def _csv_header() -> list[str]:
    header = ["respondent_id", "cohort"]
    header.extend(_BG_SCALAR_FIELDS)
    header.extend(_BG_LIST_FIELDS)
    header.extend(f"core:{qid}" for qid in CORE_QUESTION_ORDER)
    header.extend(f"opt:{qid}" for qid in OPTIMIZATION_QUESTION_ORDER)
    header.extend(f"suspicion:{qid}" for qid in SUSPICION_ORDER)
    return header


def write_csv(responses: Sequence[SurveyResponse], path: str | Path) -> int:
    """Write a flat one-row-per-respondent CSV; returns the row count."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=_csv_header())
        writer.writeheader()
        for response in responses:
            row: dict[str, object] = {
                "respondent_id": response.respondent_id,
                "cohort": response.cohort.value,
            }
            if response.background is not None:
                data = response.background.to_dict()
                for field in _BG_SCALAR_FIELDS:
                    row[field] = data[field]
                for field in _BG_LIST_FIELDS:
                    row[field] = ";".join(data[field])  # type: ignore[arg-type]
            for qid in CORE_QUESTION_ORDER:
                answer = response.core_answers.get(qid)
                row[f"core:{qid}"] = "" if answer is None else answer.value
            for qid in OPTIMIZATION_QUESTION_ORDER:
                answer = response.opt_answers.get(qid)
                if answer is None:
                    row[f"opt:{qid}"] = ""
                else:
                    row[f"opt:{qid}"] = (
                        answer.value if isinstance(answer, TFAnswer)
                        else answer
                    )
            for qid in SUSPICION_ORDER:
                level = response.suspicion.get(qid)
                row[f"suspicion:{qid}"] = "" if level is None else level
            writer.writerow(row)
    return len(responses)


def read_csv(path: str | Path) -> list[SurveyResponse]:
    """Read a CSV written by :func:`write_csv`."""
    records = []
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        for row_number, row in enumerate(reader, start=2):
            try:
                records.append(_row_to_response(row))
            except (KeyError, ValueError) as exc:
                raise SurveyDataError(
                    f"{path}: row {row_number}: {exc}"
                ) from exc
    return records


def _row_to_response(row: dict[str, str]) -> SurveyResponse:
    cohort = Cohort(row["cohort"])
    background = None
    if cohort is Cohort.DEVELOPER:
        data: dict[str, object] = {
            field: row[field] for field in _BG_SCALAR_FIELDS
        }
        for field in _BG_LIST_FIELDS:
            raw = row.get(field, "")
            data[field] = [item for item in raw.split(";") if item]
        background = Background.from_dict(data)
    core = {}
    for qid in CORE_QUESTION_ORDER:
        value = row.get(f"core:{qid}", "")
        if value:
            core[qid] = TFAnswer(value)
    opt: dict[str, TFAnswer | str] = {}
    for qid in OPTIMIZATION_QUESTION_ORDER:
        value = row.get(f"opt:{qid}", "")
        if not value:
            continue
        opt[qid] = value if qid == "opt_level" else TFAnswer(value)
    suspicion = {}
    for qid in SUSPICION_ORDER:
        raw = row.get(f"suspicion:{qid}", "")
        if raw:
            suspicion[qid] = int(raw)
    return SurveyResponse(
        respondent_id=row["respondent_id"],
        cohort=cohort,
        background=background,
        core_answers=core,
        opt_answers=opt,
        suspicion=suspicion,
    )


def anonymize(
    responses: Sequence[SurveyResponse], prefix: str = "anon"
) -> list[SurveyResponse]:
    """Replace respondent ids with sequential opaque ids (stable order)."""
    import dataclasses

    return [
        dataclasses.replace(response, respondent_id=f"{prefix}-{index:04d}")
        for index, response in enumerate(responses, start=1)
    ]
