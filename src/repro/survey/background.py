"""Background factors (paper Section II-A, tabulated in Figures 1–11).

Every categorical factor is an enum whose ``display`` string matches the
paper's tables exactly, so analysis output lines up row-for-row.
Multi-select factors (informal training, language experience) are sets
of strings/enum members.
"""

from __future__ import annotations

import dataclasses
import enum

__all__ = [
    "Position",
    "Area",
    "AreaGroup",
    "FormalTraining",
    "InformalTraining",
    "DevRole",
    "CodebaseSize",
    "FPExtent",
    "Background",
    "FP_LANGUAGES",
    "ARB_PREC_LANGUAGES",
]


class _Displayed(enum.Enum):
    """Enum whose value is the paper's display string."""

    @property
    def display(self) -> str:
        return str(self.value)

    def __str__(self) -> str:
        return str(self.value)


class Position(_Displayed):
    """Current position (Figure 1)."""

    PHD_STUDENT = "Ph.D. student"
    FACULTY = "Faculty"
    SOFTWARE_ENGINEER = "Software engineer"
    RESEARCH_STAFF = "Research staff"
    RESEARCH_SCIENTIST = "Research scientist"
    MS_STUDENT = "M.S. student"
    UNDERGRADUATE = "Undergraduate"
    POSTDOC = "Postdoc"
    MANAGER = "Manager"
    OTHER = "Other"


class Area(_Displayed):
    """Area of formal training (Figure 2)."""

    CS = "Computer Science"
    OTHER_PHYSICAL_SCIENCE = "Other Physical Science Field"
    OTHER_ENGINEERING = "Other Engineering Field"
    CE = "Computer Engineering"
    MATHEMATICS = "Mathematics"
    EE = "Electrical Engineering"
    ECONOMICS = "Economics"
    OTHER_NON_PHYSICAL_SCIENCE = "Other Non-Physical Science Field"
    CS_AND_MATH = "CS&Math"
    CS_AND_CE = "CS&CE"
    POLI_SCI_AND_STATS = "Political Science and Statistics"
    SOCIAL_SCIENCES = "Social Sciences"
    ROBOTICS = "Robotics"
    ECONOMETRICS = "Econometrics"
    BIOMEDICAL_ENGINEERING = "Biomedical Engineering"
    MMSS = "MMSS"
    STATISTICS = "Statistics"
    MECHANICAL_ENGINEERING = "Mechanical Engineering"
    UNREPORTED = "Unreported"


class AreaGroup(_Displayed):
    """The coarse area grouping used by the factor analysis
    (Figures 17 and 20): EE, CS, CE, Math, PhysSci, Eng, and Other."""

    EE = "EE"
    CS = "CS"
    CE = "CE"
    MATH = "Math"
    PHYS_SCI = "PhysSci"
    ENG = "Eng"
    OTHER = "Other"


#: Mapping from detailed Area to the factor-analysis grouping.
_AREA_GROUPS: dict[Area, AreaGroup] = {
    Area.CS: AreaGroup.CS,
    Area.CS_AND_MATH: AreaGroup.CS,
    Area.CS_AND_CE: AreaGroup.CS,
    Area.CE: AreaGroup.CE,
    Area.EE: AreaGroup.EE,
    Area.MATHEMATICS: AreaGroup.MATH,
    Area.STATISTICS: AreaGroup.MATH,
    Area.OTHER_PHYSICAL_SCIENCE: AreaGroup.PHYS_SCI,
    Area.OTHER_ENGINEERING: AreaGroup.ENG,
    Area.BIOMEDICAL_ENGINEERING: AreaGroup.ENG,
    Area.MECHANICAL_ENGINEERING: AreaGroup.ENG,
    Area.ROBOTICS: AreaGroup.ENG,
}


class FormalTraining(_Displayed):
    """Formal training in floating point (Figure 3)."""

    LECTURES = "One or more lectures in course"
    NONE = "None"
    WEEKS = "One or more weeks within a course"
    COURSES = "One or more courses"
    NOT_REPORTED = "Not reported"


class InformalTraining(_Displayed):
    """Informal training kinds (Figure 4; multi-select)."""

    GOOGLED = "Googled when necessary"
    READ = "Read about it"
    DISCUSSED = "Discussed with coworkers/etc"
    MENTOR = "Trained by adviser/mentor"
    VIDEO = "Watched video"


class DevRole(_Displayed):
    """Software development role (Figure 5)."""

    SUPPORT = "I develop software to support my main role"
    ENGINEER = "My main role is as a software engineer"
    MANAGE_SUPPORT = (
        "I manage others who develop software to support my main role"
    )
    MANAGE_ENGINEERS = "My main role is to manage software engineers"
    NOT_REPORTED = "Not Reported"


class CodebaseSize(_Displayed):
    """Codebase size by order of magnitude (Figures 8 and 10)."""

    LOC_LT_100 = "<100 lines of code"
    LOC_100_1K = "100 to 1,000 lines of code"
    LOC_1K_10K = "1,001 to 10,000 lines of code"
    LOC_10K_100K = "10,001 to 100,000 lines of code"
    LOC_100K_1M = "100,001 to 1,000,000 lines of code"
    LOC_GT_1M = ">1,000,000 lines of code"
    NOT_REPORTED = "Not Reported"

    @property
    def rank(self) -> int:
        """Ordinal rank by size (NOT_REPORTED ranks lowest)."""
        order = [
            CodebaseSize.NOT_REPORTED,
            CodebaseSize.LOC_LT_100,
            CodebaseSize.LOC_100_1K,
            CodebaseSize.LOC_1K_10K,
            CodebaseSize.LOC_10K_100K,
            CodebaseSize.LOC_100K_1M,
            CodebaseSize.LOC_GT_1M,
        ]
        return order.index(self)


class FPExtent(_Displayed):
    """Floating point extent within a codebase (Figures 9 and 11)."""

    NONE = "No FP involved"
    INCIDENTAL = "FP incidental"
    INTRINSIC = "FP intrinsic"
    INTRINSIC_SELF = "FP intrinsic, I did numerical correctness"
    INTRINSIC_TEAM = "FP intrinsic, my team did numeric correctness"
    INTRINSIC_OTHER_TEAM = (
        "FP intrinsic, other team did numerical correctness"
    )
    NOT_REPORTED = "No Report"


#: The 13 floating point languages reported with n >= 5 (Figure 6).
FP_LANGUAGES: tuple[str, ...] = (
    "Python", "C", "C++", "Matlab", "Java", "Fortran", "R", "C#",
    "Perl", "Scheme/Racket", "Haskell", "ML", "JavaScript",
)

#: The 9 arbitrary precision languages/libraries with n >= 5 (Figure 7).
ARB_PREC_LANGUAGES: tuple[str, ...] = (
    "Mathematica", "Maple", "Other language",
    "MPFR/GNU MultiPrecision Library", "Scheme/Racket/LISP with BigNums",
    "Other library", "Matlab MultiPrecision Toolbox",
    "Haskell with arb. prec. and rationals", "Macsyma",
)


@dataclasses.dataclass(frozen=True)
class Background:
    """A participant's full self-reported background (Section II-A)."""

    position: Position
    area: Area
    formal_training: FormalTraining
    informal_training: frozenset[InformalTraining]
    dev_role: DevRole
    fp_languages: frozenset[str]
    arb_prec_languages: frozenset[str]
    contributed_size: CodebaseSize
    contributed_fp_extent: FPExtent
    involved_size: CodebaseSize
    involved_fp_extent: FPExtent

    @property
    def area_group(self) -> AreaGroup:
        """Coarse area grouping for factor analysis (Figures 17/20)."""
        return _AREA_GROUPS.get(self.area, AreaGroup.OTHER)

    def to_dict(self) -> dict[str, object]:
        """Serialize to plain strings (for CSV/JSON records)."""
        return {
            "position": self.position.display,
            "area": self.area.display,
            "formal_training": self.formal_training.display,
            "informal_training": sorted(
                t.display for t in self.informal_training
            ),
            "dev_role": self.dev_role.display,
            "fp_languages": sorted(self.fp_languages),
            "arb_prec_languages": sorted(self.arb_prec_languages),
            "contributed_size": self.contributed_size.display,
            "contributed_fp_extent": self.contributed_fp_extent.display,
            "involved_size": self.involved_size.display,
            "involved_fp_extent": self.involved_fp_extent.display,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Background":
        """Inverse of :meth:`to_dict`; raises on unknown categories."""
        from repro.errors import SurveyDataError

        def lookup(enum_cls, text):
            for member in enum_cls:
                if member.display == text:
                    return member
            raise SurveyDataError(
                f"unknown {enum_cls.__name__} value {text!r}"
            )

        return cls(
            position=lookup(Position, data["position"]),
            area=lookup(Area, data["area"]),
            formal_training=lookup(FormalTraining, data["formal_training"]),
            informal_training=frozenset(
                lookup(InformalTraining, t)
                for t in data.get("informal_training", [])
            ),
            dev_role=lookup(DevRole, data["dev_role"]),
            fp_languages=frozenset(data.get("fp_languages", [])),
            arb_prec_languages=frozenset(data.get("arb_prec_languages", [])),
            contributed_size=lookup(CodebaseSize, data["contributed_size"]),
            contributed_fp_extent=lookup(
                FPExtent, data["contributed_fp_extent"]
            ),
            involved_size=lookup(CodebaseSize, data["involved_size"]),
            involved_fp_extent=lookup(FPExtent, data["involved_fp_extent"]),
        )
