"""Survey instrument: background factors and response records.

The schema mirrors the paper's Section II-A exactly (display strings
match the tables in Figures 1–11), so the analysis layer's output lines
up row-for-row with the paper.  Records round-trip through JSON lines
and a flat CSV (the coded shape of a forms export).
"""

from repro.survey.background import (
    ARB_PREC_LANGUAGES,
    FP_LANGUAGES,
    Area,
    AreaGroup,
    Background,
    CodebaseSize,
    DevRole,
    FormalTraining,
    FPExtent,
    InformalTraining,
    Position,
)
from repro.survey.instrument import (
    BACKGROUND_ITEMS,
    BackgroundItem,
    render_instrument,
)
from repro.survey.records import Cohort, SurveyResponse
from repro.survey.io import anonymize, read_csv, read_jsonl, write_csv, write_jsonl

__all__ = [
    "Position",
    "Area",
    "AreaGroup",
    "FormalTraining",
    "InformalTraining",
    "DevRole",
    "CodebaseSize",
    "FPExtent",
    "Background",
    "FP_LANGUAGES",
    "ARB_PREC_LANGUAGES",
    "BackgroundItem",
    "BACKGROUND_ITEMS",
    "render_instrument",
    "Cohort",
    "SurveyResponse",
    "write_jsonl",
    "read_jsonl",
    "write_csv",
    "read_csv",
    "anonymize",
]
