"""The complete survey instrument, renderable as a document.

The paper's survey lived in Google Forms; this module is its portable
equivalent: every background item (Section II-A), the core and
optimization quizzes (II-B/II-C, *without* the answer key — "no labels
appear in the actual survey"), and the suspicion component (II-D),
rendered to markdown or plain text so the study can actually be
re-administered and the responses coded into
:class:`repro.survey.SurveyResponse` records.
"""

from __future__ import annotations

import dataclasses

from repro.quiz.core import CORE_QUESTIONS
from repro.quiz.model import QuestionKind
from repro.quiz.optimization import OPTIMIZATION_QUESTIONS
from repro.quiz.suspicion import SUSPICION_ITEMS
from repro.survey.background import (
    ARB_PREC_LANGUAGES,
    FP_LANGUAGES,
    Area,
    CodebaseSize,
    DevRole,
    FormalTraining,
    FPExtent,
    InformalTraining,
    Position,
)

__all__ = ["BackgroundItem", "BACKGROUND_ITEMS", "render_instrument"]


@dataclasses.dataclass(frozen=True)
class BackgroundItem:
    """One background question: prompt, options, multi-select flag."""

    field: str
    prompt: str
    options: tuple[str, ...]
    multiple: bool = False
    free_text: bool = False


def _displays(enum_cls, *, skip=()) -> tuple[str, ...]:
    return tuple(
        member.display for member in enum_cls if member.name not in skip
    )


#: Section II-A, in survey order.
BACKGROUND_ITEMS: tuple[BackgroundItem, ...] = (
    BackgroundItem(
        field="position",
        prompt="What is your current position?",
        options=_displays(Position),
    ),
    BackgroundItem(
        field="area",
        prompt="What is your area of formal training?",
        options=_displays(Area, skip=("UNREPORTED",)),
        free_text=True,
    ),
    BackgroundItem(
        field="formal_training",
        prompt=("How much formal training about floating point have you "
                "received?"),
        options=_displays(FormalTraining, skip=("NOT_REPORTED",)),
    ),
    BackgroundItem(
        field="informal_training",
        prompt=("What kinds of informal training about floating point "
                "have you used? (select all that apply)"),
        options=_displays(InformalTraining),
        multiple=True,
    ),
    BackgroundItem(
        field="dev_role",
        prompt="How do you view the software development you perform?",
        options=_displays(DevRole, skip=("NOT_REPORTED",)),
    ),
    BackgroundItem(
        field="fp_languages",
        prompt=("In which languages have you used IEEE floating point? "
                "(select all that apply; add your own)"),
        options=FP_LANGUAGES,
        multiple=True,
        free_text=True,
    ),
    BackgroundItem(
        field="arb_prec_languages",
        prompt=("Which languages/libraries supporting arbitrary "
                "precision numbers have you used? (select all that "
                "apply; add your own)"),
        options=ARB_PREC_LANGUAGES,
        multiple=True,
        free_text=True,
    ),
    BackgroundItem(
        field="contributed_size",
        prompt=("How many lines of code is the largest codebase you "
                "built, or your largest contribution to a shared "
                "codebase?"),
        options=_displays(CodebaseSize, skip=("NOT_REPORTED",)),
    ),
    BackgroundItem(
        field="contributed_fp_extent",
        prompt=("To what extent was floating point involved in that "
                "codebase and your work within it?"),
        options=_displays(FPExtent, skip=("NOT_REPORTED",)),
    ),
    BackgroundItem(
        field="involved_size",
        prompt=("How many lines of code is the largest codebase you "
                "have been involved with in any capacity?"),
        options=_displays(CodebaseSize, skip=("NOT_REPORTED",)),
    ),
    BackgroundItem(
        field="involved_fp_extent",
        prompt=("To what extent was floating point involved in that "
                "codebase and your work within it?"),
        options=_displays(FPExtent, skip=("NOT_REPORTED",)),
    ),
)


def render_instrument(*, markdown: bool = True) -> str:
    """Render the complete instrument (no answer key, no labels —
    matching the survey's presentation rules)."""
    heading = "## " if markdown else ""
    bullet = "- " if markdown else "  * "
    code_open = "```c" if markdown else ""
    code_close = "```" if markdown else ""
    lines: list[str] = []
    out = lines.append

    out("# Floating Point Understanding Survey")
    out("")
    out("This survey is anonymous and takes under 30 minutes. Answer "
        "from experience; do not look things up.")
    out("")

    out(f"{heading}Part 1: Background")
    out("")
    for number, item in enumerate(BACKGROUND_ITEMS, start=1):
        suffix = " (select all that apply)" if item.multiple and \
            "select all" not in item.prompt else ""
        out(f"{number}. {item.prompt}{suffix}")
        for option in item.options:
            out(f"{bullet}{option}")
        if item.free_text:
            out(f"{bullet}Other: ____________")
        out("")

    out(f"{heading}Part 2: Floating Point Behavior")
    out("")
    out("For each statement, answer **True**, **False**, or **Don't "
        "know**. All code is C syntax; `double` is IEEE 754 binary64.")
    out("")
    for number, question in enumerate(CORE_QUESTIONS, start=1):
        out(f"{number}. {question.prompt}")
        if question.snippet:
            out(code_open)
            out(question.snippet)
            out(code_close)
        out(f"{bullet}True")
        out(f"{bullet}False")
        out(f"{bullet}Don't know")
        out("")

    out(f"{heading}Part 3: Optimizations")
    out("")
    for number, question in enumerate(OPTIMIZATION_QUESTIONS, start=1):
        out(f"{number}. {question.prompt}")
        if question.snippet:
            out(code_open)
            out(question.snippet)
            out(code_close)
        if question.kind is QuestionKind.MULTIPLE_CHOICE:
            for choice in question.choices:
                out(f"{bullet}{choice}")
        else:
            out(f"{bullet}True")
            out(f"{bullet}False")
        out(f"{bullet}Don't know")
        out("")

    out(f"{heading}Part 4: Suspicion")
    out("")
    out("A scientific simulation you rely on was wrapped with code "
        "that checks the processor's floating point condition codes "
        "after the run. For each condition below, rate how suspicious "
        "you would be of the simulation's results if the condition "
        "occurred one or more times during execution "
        "(1 = not suspicious at all, 5 = maximally suspicious).")
    out("")
    for number, item in enumerate(SUSPICION_ITEMS, start=1):
        out(f"{number}. {item.label}: {item.description}")
        out(f"{bullet}1 / 2 / 3 / 4 / 5")
        out("")

    return "\n".join(lines)
