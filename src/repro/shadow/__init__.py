"""Shadow precision execution and error localization.

The second tool the paper's conclusions call for: run the same
computation at working precision and at arbitrary precision (exact
rationals when possible, a 240-bit binary format otherwise), compare,
and point at the operation that lost the accuracy.

>>> from repro.optsim import parse_expr
>>> from repro.shadow import shadow_evaluate
>>> result = shadow_evaluate(parse_expr("(a + b) - a"), {"a": 2.0**53, "b": 1.0})
>>> result.suspicious
True
"""

from repro.shadow.shadow import (
    WIDE_FORMAT,
    ShadowResult,
    shadow_evaluate,
    ulp_distance,
)
from repro.shadow.localize import NodeError, localize_errors

__all__ = [
    "shadow_evaluate",
    "ShadowResult",
    "WIDE_FORMAT",
    "ulp_distance",
    "localize_errors",
    "NodeError",
]
