"""Error localization: which operation in an expression loses accuracy.

In the spirit of the dynamic-analysis tools the paper cites (Benz et
al.'s accuracy-problem finder, cancellation detection), this ranks each
operation node by the *local* error it introduces: the difference
between the node's working-precision result and the correctly rounded
working-precision value of its exact (shadow) result, measured in ULPs.
Catastrophic cancellation shows up as a node whose inputs are accurate
but whose output is far from the exact value's rounding.
"""

from __future__ import annotations

import dataclasses
from fractions import Fraction

from repro.optsim.ast import Const, Expr, Var, walk
from repro.optsim.evaluator import evaluate
from repro.optsim.machine import STRICT, MachineConfig
from repro.shadow.shadow import WIDE_FORMAT, ulp_distance
from repro.softfloat import SoftFloat, convert_format, sf

__all__ = ["NodeError", "localize_errors"]


@dataclasses.dataclass(frozen=True)
class NodeError:
    """Accuracy accounting for one operation node."""

    node: Expr
    working: SoftFloat
    shadow_exact: Fraction | None
    total_ulps: float | None  # error of working vs exact subtree value

    def describe(self) -> str:
        ulps = "n/a" if self.total_ulps is None else f"{self.total_ulps:.2f}"
        return f"'{self.node}' = {self.working!s} (error {ulps} ulps)"


def localize_errors(
    expr: Expr,
    bindings: dict[str, object],
    *,
    config: MachineConfig = STRICT,
) -> list[NodeError]:
    """Per-node accuracy report, worst first.

    Every non-leaf node is evaluated both in the working format and in
    the wide shadow format; the ULP distance of the working value from
    the shadow value of the *same subtree* is the node's accumulated
    error.  The root's entry equals the full shadow comparison.
    """
    working_bindings = {
        name: sf(value, config.fmt) if not isinstance(value, SoftFloat)
        else value
        for name, value in bindings.items()
    }
    wide_config = STRICT.replace(name="shadow-wide", fmt=WIDE_FORMAT)
    wide_bindings = {
        name: convert_format(value, WIDE_FORMAT)
        for name, value in working_bindings.items()
    }
    reports = []
    for node in walk(expr):
        if isinstance(node, (Const, Var)):
            continue
        working = evaluate(node, working_bindings, config).value
        shadow = evaluate(node, wide_bindings, wide_config).value
        if working.is_finite and shadow.is_finite:
            exact = shadow.to_fraction()
            ulps = ulp_distance(working, exact)
        else:
            exact, ulps = None, None
        reports.append(
            NodeError(
                node=node, working=working, shadow_exact=exact,
                total_ulps=ulps,
            )
        )
    reports.sort(
        key=lambda r: (r.total_ulps is None, -(r.total_ulps or 0.0))
    )
    return reports
