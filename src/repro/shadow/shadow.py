"""Shadow execution: re-run floating point code at higher precision.

The paper's conclusions call for a system that lets "code written using
floating point ... be seamlessly compiled to use arbitrary precision"
so developers can sanity-check results (and any optimizations they
chose).  This module does that for :mod:`repro.optsim` expressions: the
same tree is evaluated in the working format and in a reference — an
exact rational evaluation when the expression is sqrt-free, otherwise a
very wide binary format — and the divergence is quantified in relative
error and ULPs.
"""

from __future__ import annotations

import dataclasses
from fractions import Fraction

from repro.optsim.ast import Expr, Unary, UnOp, walk
from repro.optsim.evaluator import evaluate
from repro.optsim.machine import STRICT, MachineConfig
from repro.softfloat import SoftFloat, convert_format, sf
from repro.softfloat.formats import BINARY64, FloatFormat

__all__ = ["ShadowResult", "shadow_evaluate", "WIDE_FORMAT", "ulp_distance"]

#: The default reference format: 64 extra significand bits over
#: binary128 (beyond any double-rounding artifact of the workloads here).
WIDE_FORMAT = FloatFormat(19, 240, "wide240")


def ulp_distance(value: SoftFloat, reference: Fraction) -> float:
    """Distance between a finite ``value`` and an exact ``reference`` in
    units of ``value``'s last place (0.5 = best possible rounding)."""
    from repro.softfloat.functions import ulp as ulp_of

    gap = ulp_of(value).to_fraction()
    if gap == 0:  # pragma: no cover - ulp is never zero
        raise ZeroDivisionError("zero ulp")
    ratio = abs(value.to_fraction() - reference) / gap
    try:
        return float(ratio)
    except OverflowError:
        return float("inf")


@dataclasses.dataclass(frozen=True)
class ShadowResult:
    """Outcome of one shadow evaluation."""

    expr: Expr
    working: SoftFloat
    reference: SoftFloat
    reference_exact: Fraction | None
    abs_error: float
    rel_error: float
    ulps: float | None

    @property
    def suspicious(self) -> bool:
        """True when the working result differs from the reference by
        more than 1 ULP (i.e. beyond a single final rounding), or when
        one side is exceptional and the other is not."""
        if self.working.is_nan or self.reference.is_nan:
            return self.working.is_nan != self.reference.is_nan
        if self.working.is_inf or self.reference.is_inf:
            return not self.working.same_bits(
                convert_format(self.reference, self.working.fmt)
            )
        return self.ulps is not None and self.ulps > 1.0

    def describe(self) -> str:
        """One-line summary."""
        ulps = "n/a" if self.ulps is None else f"{self.ulps:.2f}"
        verdict = "SUSPICIOUS" if self.suspicious else "consistent"
        return (
            f"'{self.expr}': working={self.working!s} "
            f"reference={self.reference!s} rel_err={self.rel_error:.3e} "
            f"ulps={ulps} -> {verdict}"
        )


def _has_sqrt(expr: Expr) -> bool:
    return any(
        isinstance(node, Unary) and node.op is UnOp.SQRT for node in walk(expr)
    )


def _exact_evaluate(expr: Expr, bindings: dict[str, SoftFloat]) -> Fraction | None:
    """Exact rational evaluation; None when NaN/inf arises or the tree
    contains sqrt."""
    from repro.optsim.ast import FMA, Binary, BinOp, Const, Var
    from repro.errors import ParseError
    from repro.softfloat.parse import _parse_exact

    def go(node: Expr) -> Fraction | None:
        if isinstance(node, Const):
            try:
                return _parse_exact(node.literal)
            except ParseError:
                return None  # inf/nan literal
        if isinstance(node, Var):
            value = bindings[node.name]
            if not value.is_finite:
                return None
            return value.to_fraction()
        if isinstance(node, Unary):
            inner = go(node.operand)
            if inner is None:
                return None
            if node.op is UnOp.NEG:
                return -inner
            if node.op is UnOp.ABS:
                return abs(inner)
            return None  # sqrt: not rational in general
        if isinstance(node, Binary):
            left, right = go(node.left), go(node.right)
            if left is None or right is None:
                return None
            if node.op is BinOp.ADD:
                return left + right
            if node.op is BinOp.SUB:
                return left - right
            if node.op is BinOp.MUL:
                return left * right
            if node.op is BinOp.DIV:
                return left / right if right != 0 else None
            if node.op is BinOp.MIN:
                return min(left, right)
            if node.op is BinOp.MAX:
                return max(left, right)
            return None  # REM: defined, but exact rarely useful here
        if isinstance(node, FMA):
            a, b, c = go(node.a), go(node.b), go(node.c)
            if a is None or b is None or c is None:
                return None
            return a * b + c
        raise TypeError(f"unknown node {type(node).__name__}")

    try:
        return go(expr)
    except ZeroDivisionError:  # pragma: no cover - guarded above
        return None


def shadow_evaluate(
    expr: Expr,
    bindings: dict[str, object],
    *,
    config: MachineConfig = STRICT,
    reference_fmt: FloatFormat = WIDE_FORMAT,
) -> ShadowResult:
    """Evaluate ``expr`` in the working config and against the high-
    precision/exact reference.

    ``bindings`` values may be plain numbers; they are converted into
    the working format first (the reference sees the *same* rounded
    inputs the working run saw — shadow execution diagnoses the
    computation, not the input conversion).
    """
    working_bindings = {
        name: sf(value, config.fmt) if not isinstance(value, SoftFloat)
        else value
        for name, value in bindings.items()
    }
    working = evaluate(expr, working_bindings, config).value

    exact = None if _has_sqrt(expr) else _exact_evaluate(expr, working_bindings)
    if exact is not None:
        reference = sf(exact, reference_fmt)
    else:
        wide_config = STRICT.replace(name="shadow-wide", fmt=reference_fmt)
        wide_bindings = {
            name: convert_format(value, reference_fmt)
            for name, value in working_bindings.items()
        }
        reference = evaluate(expr, wide_bindings, wide_config).value

    if working.is_nan or reference.is_nan or working.is_inf or reference.is_inf:
        return ShadowResult(
            expr=expr, working=working, reference=reference,
            reference_exact=exact, abs_error=float("nan"),
            rel_error=float("nan"), ulps=None,
        )
    ref_value = exact if exact is not None else reference.to_fraction()
    err = abs(working.to_fraction() - ref_value)
    rel = float(err / abs(ref_value)) if ref_value != 0 else float(err != 0)
    return ShadowResult(
        expr=expr, working=working, reference=reference,
        reference_exact=exact, abs_error=float(err), rel_error=rel,
        ulps=ulp_distance(working, ref_value),
    )
