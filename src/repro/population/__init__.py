"""Calibrated synthetic study populations.

The paper's subjects were 199 human developers and 52 students; a code
reproduction cannot re-run them, so this package *simulates* them:

1. :mod:`~repro.population.marginals` transcribes the published
   background tables (Figures 1–11);
2. :mod:`~repro.population.sampler` allocates backgrounds whose
   marginals match those tables exactly;
3. :mod:`~repro.population.ability` maps backgrounds to latent
   abilities with factor weights tuned to the quoted effect sizes
   (Figures 16–21);
4. :mod:`~repro.population.calibration` fits per-question intercepts so
   the cohort's marginal response rates match Figures 14–15;
5. :mod:`~repro.population.response_model` draws complete survey
   records, including Figure-22-shaped suspicion ratings.

The output is ordinary :class:`repro.survey.SurveyResponse` records —
the same schema a real survey export would use — so the analysis layer
is agnostic to the substitution.
"""

from repro.population.ability import AbilityModel, DEFAULT_ABILITY_MODEL, sigmoid
from repro.population.calibration import (
    Calibration,
    ItemParams,
    calibrate,
    solve_intercept,
)
from repro.population.marginals import PAPER_N_DEVELOPERS, PAPER_N_STUDENTS
from repro.population.response_model import (
    generate_mc_answer,
    generate_response,
    generate_tf_answer,
    simulate_developers,
    simulate_students,
)
from repro.population.sampler import (
    allocate_factor,
    allocate_multiselect,
    apportion,
    sample_backgrounds,
)

__all__ = [
    "AbilityModel",
    "DEFAULT_ABILITY_MODEL",
    "sigmoid",
    "Calibration",
    "ItemParams",
    "calibrate",
    "solve_intercept",
    "PAPER_N_DEVELOPERS",
    "PAPER_N_STUDENTS",
    "simulate_developers",
    "simulate_students",
    "generate_response",
    "generate_tf_answer",
    "generate_mc_answer",
    "sample_backgrounds",
    "apportion",
    "allocate_factor",
    "allocate_multiselect",
]
