"""The paper's reported background marginals (Figures 1–11), as data.

These counts are transcribed directly from the tables.  The sampler
allocates factor levels to synthetic respondents so that each factor's
marginal matches these counts *exactly* (scaled by largest-remainder
apportionment when the cohort size differs from 199).  The paper
reports no cross-factor joint distributions; factors are therefore
allocated independently, except for the two codebase-size factors,
which are rank-paired so a participant's largest *involved* codebase is
(almost always) at least as large as their largest *contributed* one.
"""

from __future__ import annotations

from repro.survey.background import (
    Area,
    CodebaseSize,
    DevRole,
    FormalTraining,
    FPExtent,
    InformalTraining,
    Position,
)

__all__ = [
    "POSITION_COUNTS",
    "AREA_COUNTS",
    "FORMAL_TRAINING_COUNTS",
    "INFORMAL_TRAINING_COUNTS",
    "DEV_ROLE_COUNTS",
    "FP_LANGUAGE_COUNTS",
    "ARB_PREC_LANGUAGE_COUNTS",
    "CONTRIBUTED_SIZE_COUNTS",
    "CONTRIBUTED_FP_EXTENT_COUNTS",
    "INVOLVED_SIZE_COUNTS",
    "INVOLVED_FP_EXTENT_COUNTS",
    "PAPER_N_DEVELOPERS",
    "PAPER_N_STUDENTS",
]

#: Cohort sizes from the paper's abstract.
PAPER_N_DEVELOPERS = 199
PAPER_N_STUDENTS = 52

#: Figure 1.
POSITION_COUNTS: dict[Position, int] = {
    Position.PHD_STUDENT: 73,
    Position.FACULTY: 49,
    Position.SOFTWARE_ENGINEER: 23,
    Position.RESEARCH_STAFF: 17,
    Position.RESEARCH_SCIENTIST: 11,
    Position.MS_STUDENT: 8,
    Position.UNDERGRADUATE: 7,
    Position.POSTDOC: 4,
    Position.MANAGER: 3,
    Position.OTHER: 5,
}

#: Figure 2.
AREA_COUNTS: dict[Area, int] = {
    Area.CS: 80,
    Area.OTHER_PHYSICAL_SCIENCE: 38,
    Area.OTHER_ENGINEERING: 26,
    Area.CE: 19,
    Area.MATHEMATICS: 10,
    Area.EE: 9,
    Area.ECONOMICS: 2,
    Area.OTHER_NON_PHYSICAL_SCIENCE: 2,
    Area.CS_AND_MATH: 2,
    Area.CS_AND_CE: 2,
    Area.POLI_SCI_AND_STATS: 1,
    Area.SOCIAL_SCIENCES: 1,
    Area.ROBOTICS: 1,
    Area.ECONOMETRICS: 1,
    Area.BIOMEDICAL_ENGINEERING: 1,
    Area.MMSS: 1,
    Area.STATISTICS: 1,
    Area.MECHANICAL_ENGINEERING: 1,
    Area.UNREPORTED: 1,
}

#: Figure 3.
FORMAL_TRAINING_COUNTS: dict[FormalTraining, int] = {
    FormalTraining.LECTURES: 62,
    FormalTraining.NONE: 52,
    FormalTraining.WEEKS: 49,
    FormalTraining.COURSES: 35,
    FormalTraining.NOT_REPORTED: 1,
}

#: Figure 4 (multi-select membership counts; top 5 reported).
INFORMAL_TRAINING_COUNTS: dict[InformalTraining, int] = {
    InformalTraining.GOOGLED: 138,
    InformalTraining.READ: 136,
    InformalTraining.DISCUSSED: 89,
    InformalTraining.MENTOR: 38,
    InformalTraining.VIDEO: 22,
}

#: Figure 5.
DEV_ROLE_COUNTS: dict[DevRole, int] = {
    DevRole.SUPPORT: 119,
    DevRole.ENGINEER: 50,
    DevRole.MANAGE_SUPPORT: 19,
    DevRole.MANAGE_ENGINEERS: 6,
    DevRole.NOT_REPORTED: 5,
}

#: Figure 6 (multi-select; the 13 languages with n >= 5).
FP_LANGUAGE_COUNTS: dict[str, int] = {
    "Python": 142,
    "C": 139,
    "C++": 136,
    "Matlab": 105,
    "Java": 100,
    "Fortran": 65,
    "R": 48,
    "C#": 26,
    "Perl": 25,
    "Scheme/Racket": 17,
    "Haskell": 12,
    "ML": 9,
    "JavaScript": 6,
}

#: Figure 7 (multi-select; the 9 entries with n >= 5).
ARB_PREC_LANGUAGE_COUNTS: dict[str, int] = {
    "Mathematica": 71,
    "Maple": 29,
    "Other language": 20,
    "MPFR/GNU MultiPrecision Library": 19,
    "Scheme/Racket/LISP with BigNums": 13,
    "Other library": 13,
    "Matlab MultiPrecision Toolbox": 10,
    "Haskell with arb. prec. and rationals": 8,
    "Macsyma": 5,
}

#: Figure 8.
CONTRIBUTED_SIZE_COUNTS: dict[CodebaseSize, int] = {
    CodebaseSize.LOC_1K_10K: 79,
    CodebaseSize.LOC_10K_100K: 65,
    CodebaseSize.LOC_100_1K: 27,
    CodebaseSize.LOC_100K_1M: 17,
    CodebaseSize.LOC_GT_1M: 9,
    CodebaseSize.LOC_LT_100: 1,
    CodebaseSize.NOT_REPORTED: 1,
}

#: Figure 9.
CONTRIBUTED_FP_EXTENT_COUNTS: dict[FPExtent, int] = {
    FPExtent.INCIDENTAL: 77,
    FPExtent.INTRINSIC: 63,
    FPExtent.INTRINSIC_SELF: 29,
    FPExtent.INTRINSIC_OTHER_TEAM: 10,
    FPExtent.INTRINSIC_TEAM: 10,
    FPExtent.NONE: 9,
    FPExtent.NOT_REPORTED: 1,
}

#: Figure 10.
INVOLVED_SIZE_COUNTS: dict[CodebaseSize, int] = {
    CodebaseSize.LOC_10K_100K: 61,
    CodebaseSize.LOC_1K_10K: 53,
    CodebaseSize.LOC_GT_1M: 36,
    CodebaseSize.LOC_100K_1M: 36,
    CodebaseSize.LOC_100_1K: 8,
    CodebaseSize.LOC_LT_100: 2,
    CodebaseSize.NOT_REPORTED: 3,
}

#: Figure 11.
INVOLVED_FP_EXTENT_COUNTS: dict[FPExtent, int] = {
    FPExtent.INCIDENTAL: 71,
    FPExtent.INTRINSIC: 55,
    FPExtent.INTRINSIC_SELF: 23,
    FPExtent.INTRINSIC_OTHER_TEAM: 17,
    FPExtent.NONE: 15,
    FPExtent.INTRINSIC_TEAM: 13,
    FPExtent.NOT_REPORTED: 5,
}
