"""Item calibration: fit intercepts so the cohort hits Figure 14/15.

For each quiz question the paper reports four marginal rates (correct,
incorrect, don't know, unanswered).  The response model uses three
calibrated pieces per item:

- the *unanswered* rate, taken directly from the figure;
- a *don't-know* intercept ``delta_q``: respondents say "don't know"
  with probability ``sigmoid(delta_q - slope * theta)`` — higher
  ability means more willingness to commit, strongly so on the
  optimization quiz ("participants generally recognized their
  ignorance", and the Role/Area effects in Figures 20–21 are largely
  about *who answers at all*);
- a *correctness* intercept ``alpha_q``: committed answers are correct
  with probability ``sigmoid(alpha_q + theta)``.

Both intercepts are found by bisection against a large seeded sample of
abilities, so the simulated cohort's marginal rates land on the paper's
(the don't-know fit is unconditional-in-theta; the correctness fit is
weighted by each respondent's probability of committing).
"""

from __future__ import annotations

import dataclasses
import functools
import random
from collections.abc import Sequence

from repro.errors import CalibrationError
from repro.population.ability import AbilityModel, DEFAULT_ABILITY_MODEL, sigmoid
from repro.population.targets import CORE_QUESTION_RATES, OPT_QUESTION_RATES
from repro.population.sampler import sample_backgrounds

__all__ = [
    "ItemParams",
    "Calibration",
    "calibrate",
    "solve_intercept",
    "CORE_DK_SLOPE",
    "OPT_DK_SLOPE",
]

_CALIBRATION_SAMPLE = 4000
_CALIBRATION_SEED = 20180521  # IPDPS 2018 conference date

#: How strongly ability suppresses "don't know" answers, per quiz.
CORE_DK_SLOPE = 0.35
OPT_DK_SLOPE = 0.95


@dataclasses.dataclass(frozen=True)
class ItemParams:
    """Calibrated response parameters for one question."""

    qid: str
    intercept: float
    dk_intercept: float
    dk_slope: float
    unanswered_rate: float
    dont_know_rate: float
    target_correct_given_answered: float

    def dont_know_probability(self, theta: float) -> float:
        """P(don't know | not skipped, ability theta)."""
        return sigmoid(self.dk_intercept - self.dk_slope * theta)

    def correct_probability(self, theta: float) -> float:
        """P(correct | substantive answer, ability theta)."""
        return sigmoid(self.intercept + theta)


@dataclasses.dataclass(frozen=True)
class Calibration:
    """Calibrated parameters for every core and optimization question."""

    core: dict[str, ItemParams]
    optimization: dict[str, ItemParams]
    model: AbilityModel

    def item(self, qid: str) -> ItemParams:
        """Look up any question's parameters."""
        if qid in self.core:
            return self.core[qid]
        return self.optimization[qid]


def solve_intercept(
    thetas: Sequence[float],
    target: float,
    *,
    weights: Sequence[float] | None = None,
    tolerance: float = 1e-10,
) -> float:
    """Find ``alpha`` with ``weighted_mean(sigmoid(alpha + theta)) ==
    target`` by bisection.  ``target`` must lie strictly in (0, 1)."""
    if not 0.0 < target < 1.0:
        raise CalibrationError(f"target rate {target} outside (0, 1)")
    if weights is None:
        weights = [1.0] * len(thetas)
    total = sum(weights)
    if total <= 0:
        raise CalibrationError("weights must have positive total")
    lo, hi = -30.0, 30.0

    def mean_rate(alpha: float) -> float:
        return sum(
            w * sigmoid(alpha + theta) for w, theta in zip(weights, thetas)
        ) / total

    if mean_rate(lo) > target or mean_rate(hi) < target:
        raise CalibrationError(
            f"target rate {target} unreachable over the ability sample"
        )
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if mean_rate(mid) < target:
            lo = mid
        else:
            hi = mid
        if hi - lo < tolerance:
            break
    return 0.5 * (lo + hi)


def _ability_samples(
    model: AbilityModel, sample_size: int, seed: int
) -> tuple[list[float], list[float]]:
    backgrounds = sample_backgrounds(sample_size, seed)
    rng = random.Random(("calibration", seed).__repr__())
    core, opt = [], []
    for background in backgrounds:
        theta_core, theta_opt = model.sample_abilities(background, rng)
        core.append(theta_core)
        opt.append(theta_opt)
    return core, opt


def _fit_item(qid, rates, thetas: list[float], dk_slope: float) -> ItemParams:
    unanswered = rates.unanswered / 100.0
    dk_conditional = (rates.dont_know / 100.0) / max(1e-9, 1.0 - unanswered)
    dk_conditional = min(max(dk_conditional, 1e-6), 1.0 - 1e-6)
    # P(DK | answered-at-all) = sigmoid(delta - slope*theta): solve delta
    # over the negated, scaled abilities.
    delta = solve_intercept(
        [-dk_slope * theta for theta in thetas], dk_conditional
    )
    # Correctness, weighted by each respondent's commit probability.
    weights = [
        1.0 - sigmoid(delta - dk_slope * theta) for theta in thetas
    ]
    alpha = solve_intercept(
        thetas, rates.correct_given_answered, weights=weights
    )
    return ItemParams(
        qid=qid,
        intercept=alpha,
        dk_intercept=delta,
        dk_slope=dk_slope,
        unanswered_rate=unanswered,
        dont_know_rate=rates.dont_know / 100.0,
        target_correct_given_answered=rates.correct_given_answered,
    )


@functools.lru_cache(maxsize=8)
def _calibrate_cached(
    model: AbilityModel, sample_size: int, seed: int
) -> Calibration:
    core_thetas, opt_thetas = _ability_samples(model, sample_size, seed)
    core_items = {
        qid: _fit_item(qid, rates, core_thetas, CORE_DK_SLOPE)
        for qid, rates in CORE_QUESTION_RATES.items()
    }
    opt_items = {
        qid: _fit_item(qid, rates, opt_thetas, OPT_DK_SLOPE)
        for qid, rates in OPT_QUESTION_RATES.items()
    }
    return Calibration(core=core_items, optimization=opt_items, model=model)


def calibrate(
    model: AbilityModel = DEFAULT_ABILITY_MODEL,
    *,
    sample_size: int = _CALIBRATION_SAMPLE,
    seed: int = _CALIBRATION_SEED,
) -> Calibration:
    """Fit (and cache) item intercepts for the given ability model."""
    return _calibrate_cached(model, sample_size, seed)
