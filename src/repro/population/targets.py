"""Calibration targets from the paper's results (Figures 12–15, 22 and
quoted factor-effect statistics).

Every number here is transcribed from the paper or, where the paper
published only a chart, estimated from the chart's described shape and
the surrounding prose (those entries are marked ``soft=True`` and the
supporting quote is recorded).  EXPERIMENTS.md reports paper-vs-measured
for each.
"""

from __future__ import annotations

import dataclasses

__all__ = [
    "QuestionRates",
    "CORE_QUESTION_RATES",
    "OPT_QUESTION_RATES",
    "FIG12_CORE",
    "FIG12_OPT",
    "FIG12_CORE_CHANCE",
    "FIG12_OPT_CHANCE",
    "FactorTarget",
    "FACTOR_TARGETS",
    "SUSPICION_DISTRIBUTIONS",
]


@dataclasses.dataclass(frozen=True)
class QuestionRates:
    """Per-question response percentages (one Figure 14/15 row)."""

    correct: float
    incorrect: float
    dont_know: float
    unanswered: float

    def __post_init__(self) -> None:
        total = self.correct + self.incorrect + self.dont_know + self.unanswered
        if not 97.0 <= total <= 103.0:  # the paper's rows carry rounding
            raise ValueError(f"rates sum to {total}, not ~100")

    @property
    def answered(self) -> float:
        """Percentage giving a substantive answer."""
        return self.correct + self.incorrect

    @property
    def correct_given_answered(self) -> float:
        """P(correct | substantive answer)."""
        return self.correct / self.answered


#: Figure 14, row for row (percent).
CORE_QUESTION_RATES: dict[str, QuestionRates] = {
    "commutativity": QuestionRates(53.3, 27.6, 18.6, 0.5),
    "associativity": QuestionRates(69.3, 14.1, 15.6, 1.0),
    "distributivity": QuestionRates(81.9, 6.0, 10.6, 1.5),
    "ordering": QuestionRates(80.4, 6.0, 12.6, 1.0),
    "identity": QuestionRates(16.6, 76.9, 5.5, 1.0),
    "negative_zero": QuestionRates(58.8, 28.1, 11.6, 1.5),
    "square": QuestionRates(47.2, 35.2, 16.6, 1.0),
    "overflow": QuestionRates(60.8, 24.1, 11.1, 4.0),
    "divide_by_zero": QuestionRates(11.6, 76.4, 11.1, 1.0),
    "zero_divide_by_zero": QuestionRates(70.4, 9.0, 19.6, 1.0),
    "saturation_plus": QuestionRates(54.8, 26.1, 17.6, 1.5),
    "saturation_minus": QuestionRates(53.3, 25.6, 19.6, 1.5),
    "denormal_precision": QuestionRates(52.3, 24.6, 22.1, 1.0),
    "operation_precision": QuestionRates(73.4, 9.0, 16.6, 1.0),
    "exception_signal": QuestionRates(69.3, 10.1, 19.6, 1.0),
}

#: Figure 15, row for row (percent).
OPT_QUESTION_RATES: dict[str, QuestionRates] = {
    "madd": QuestionRates(15.6, 10.0, 72.4, 2.0),
    "flush_to_zero": QuestionRates(13.6, 7.5, 76.9, 2.0),
    "opt_level": QuestionRates(8.5, 20.7, 68.8, 2.0),
    "fast_math": QuestionRates(29.1, 3.0, 65.8, 2.0),
}

#: Figure 12, top half: average core-quiz bucket counts (of 15).
FIG12_CORE = {"correct": 8.5, "incorrect": 4.0, "dont_know": 2.3,
              "unanswered": 0.2}
FIG12_CORE_CHANCE = 7.5
#: Figure 12, bottom half: average optimization T/F bucket counts (of 3).
FIG12_OPT = {"correct": 0.6, "incorrect": 0.2, "dont_know": 2.2,
             "unanswered": 0.1}
FIG12_OPT_CHANCE = 1.5


@dataclasses.dataclass(frozen=True)
class FactorTarget:
    """A quoted factor-effect statistic (Figures 16–21 prose).

    ``best_level_score`` is the approximate mean score at the
    best-performing factor level; ``variation`` the spread across levels.
    Both are soft targets digitized from prose, checked with generous
    tolerances.
    """

    figure: str
    factor: str
    quiz: str  # "core" or "optimization"
    best_level_score: float
    variation: float
    quote: str
    soft: bool = True


FACTOR_TARGETS: dict[str, FactorTarget] = {
    "fig16": FactorTarget(
        figure="Figure 16", factor="contributed_size", quiz="core",
        best_level_score=11.0, variation=4.0,
        quote=("In the best case, the average performance rises from "
               "8.5/15 to 11/15, and the variation across the values of "
               "the factor is 4/15. ... the most predictive factor is "
               "simply Contributed Codebase Size"),
    ),
    "fig17": FactorTarget(
        figure="Figure 17", factor="area_group", quiz="core",
        best_level_score=11.0, variation=3.5,
        quote=("participants from areas closest to the construction of "
               "floating point (EE, CS, CE) do better ... at best raises "
               "average performance from 8.5/15 to 11/15 and the "
               "variation across the values is 3.5/15 ... 'Other Physical "
               "Science Field' and 'Other Engineering Field' are "
               "performing at the level of chance"),
    ),
    "fig18": FactorTarget(
        figure="Figure 18", factor="dev_role", quiz="core",
        best_level_score=9.5, variation=1.5,
        quote=("Those who view their main role as software engineering do "
               "slightly better than those who see their software "
               "engineering as done in support of their main role."),
    ),
    "fig19": FactorTarget(
        figure="Figure 19", factor="formal_training", quiz="core",
        best_level_score=9.5, variation=2.0,
        quote=("The maximum gain over the baseline is only about 1/15, "
               "and the variation is about 2/15."),
    ),
    "fig20": FactorTarget(
        figure="Figure 20", factor="area_group", quiz="optimization",
        best_level_score=1.1, variation=0.8,
        quote=("the effects cap quickly (... 0.5 above chance for Area), "
               "although the variation is considerable (... 0.8/3 for "
               "Area)"),
    ),
    "fig21": FactorTarget(
        figure="Figure 21", factor="dev_role", quiz="optimization",
        best_level_score=1.3, variation=1.4,
        quote=("0.7/3 above chance for Role ... the variation is "
               "considerable (1.4/3 for Role)"),
    ),
}

#: Figure 22: suspicion distributions, percent reporting each Likert
#: level 1..5, per condition, per cohort.  Published only as charts; the
#: shapes below encode the prose: both groups rate Invalid and Overflow
#: highest; about 1/3 of both groups rate Invalid below the maximum;
#: students are less suspicious of Underflow, Denorm, and Overflow.
#: These are SOFT targets (the sampler draws from them, the analysis
#: recovers them).
SUSPICION_DISTRIBUTIONS: dict[str, dict[str, tuple[float, ...]]] = {
    "developer": {
        "overflow": (5.0, 10.0, 20.0, 35.0, 30.0),
        "underflow": (25.0, 30.0, 25.0, 13.0, 7.0),
        "precision": (30.0, 28.0, 22.0, 13.0, 7.0),
        "invalid": (3.0, 5.0, 10.0, 15.0, 67.0),
        "denorm": (22.0, 28.0, 27.0, 15.0, 8.0),
    },
    "student": {
        "overflow": (8.0, 15.0, 25.0, 32.0, 20.0),
        "underflow": (40.0, 30.0, 17.0, 9.0, 4.0),
        "precision": (30.0, 30.0, 22.0, 12.0, 6.0),
        "invalid": (4.0, 6.0, 12.0, 14.0, 64.0),
        "denorm": (35.0, 30.0, 20.0, 10.0, 5.0),
    },
}
