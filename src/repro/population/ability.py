"""Latent-ability model: how background maps to quiz performance.

A respondent's probability of answering a question correctly (given
that they commit to an answer at all) follows a Rasch-style item
response model::

    P(correct | theta) = sigmoid(alpha_q + theta)

where ``alpha_q`` is the per-item intercept fitted by
:mod:`repro.population.calibration` and ``theta`` is a latent ability
composed of additive background-factor contributions plus individual
noise.  Separate abilities drive the core and optimization quizzes: the
paper found codebase size the strongest core-quiz factor with *no*
effect on the optimization quiz, where only Role and Area mattered
(Section IV-C).

The factor weights below are the model's free parameters, tuned so the
simulated cohort reproduces the quoted effect sizes (Figures 16–21);
see ``FACTOR_TARGETS`` in :mod:`repro.population.targets`.
"""

from __future__ import annotations

import dataclasses
import math
import random

from repro.survey.background import (
    AreaGroup,
    Background,
    CodebaseSize,
    DevRole,
    FormalTraining,
    FPExtent,
)

__all__ = ["AbilityModel", "DEFAULT_ABILITY_MODEL", "sigmoid"]


def sigmoid(x: float) -> float:
    """Numerically safe logistic function."""
    if x >= 0:
        z = math.exp(-x)
        return 1.0 / (1.0 + z)
    z = math.exp(x)
    return z / (1.0 + z)


_SIZE_WEIGHTS_CONTRIBUTED: dict[CodebaseSize, float] = {
    CodebaseSize.NOT_REPORTED: -0.50,
    CodebaseSize.LOC_LT_100: -0.70,
    CodebaseSize.LOC_100_1K: -0.50,
    CodebaseSize.LOC_1K_10K: -0.15,
    CodebaseSize.LOC_10K_100K: 0.20,
    CodebaseSize.LOC_100K_1M: 0.55,
    CodebaseSize.LOC_GT_1M: 0.90,
}

_SIZE_WEIGHTS_INVOLVED: dict[CodebaseSize, float] = {
    CodebaseSize.NOT_REPORTED: -0.30,
    CodebaseSize.LOC_LT_100: -0.40,
    CodebaseSize.LOC_100_1K: -0.30,
    CodebaseSize.LOC_1K_10K: -0.15,
    CodebaseSize.LOC_10K_100K: 0.05,
    CodebaseSize.LOC_100K_1M: 0.25,
    CodebaseSize.LOC_GT_1M: 0.45,
}

_AREA_WEIGHTS_CORE: dict[AreaGroup, float] = {
    AreaGroup.EE: 0.80,
    AreaGroup.CS: 0.40,
    AreaGroup.CE: 0.55,
    AreaGroup.MATH: 0.10,
    AreaGroup.PHYS_SCI: -0.60,
    AreaGroup.ENG: -0.55,
    AreaGroup.OTHER: -0.45,
}

_ROLE_WEIGHTS_CORE: dict[DevRole, float] = {
    DevRole.ENGINEER: 0.30,
    DevRole.SUPPORT: -0.10,
    DevRole.MANAGE_SUPPORT: -0.25,
    DevRole.MANAGE_ENGINEERS: 0.05,
    DevRole.NOT_REPORTED: -0.20,
}

_TRAINING_WEIGHTS_CORE: dict[FormalTraining, float] = {
    FormalTraining.NONE: -0.20,
    FormalTraining.LECTURES: 0.00,
    FormalTraining.WEEKS: 0.15,
    FormalTraining.COURSES: 0.20,
    FormalTraining.NOT_REPORTED: 0.00,
}

_EXTENT_WEIGHTS_CORE: dict[FPExtent, float] = {
    FPExtent.NONE: -0.25,
    FPExtent.INCIDENTAL: -0.10,
    FPExtent.INTRINSIC: 0.05,
    FPExtent.INTRINSIC_OTHER_TEAM: 0.10,
    FPExtent.INTRINSIC_TEAM: 0.25,
    FPExtent.INTRINSIC_SELF: 0.35,
    FPExtent.NOT_REPORTED: 0.00,
}

_AREA_WEIGHTS_OPT: dict[AreaGroup, float] = {
    AreaGroup.EE: 0.55,
    AreaGroup.CS: 0.40,
    AreaGroup.CE: 0.50,
    AreaGroup.MATH: 0.00,
    AreaGroup.PHYS_SCI: -0.35,
    AreaGroup.ENG: -0.30,
    AreaGroup.OTHER: -0.25,
}

_ROLE_WEIGHTS_OPT: dict[DevRole, float] = {
    DevRole.ENGINEER: 0.80,
    DevRole.SUPPORT: -0.25,
    DevRole.MANAGE_SUPPORT: -0.35,
    DevRole.MANAGE_ENGINEERS: 0.50,
    DevRole.NOT_REPORTED: -0.30,
}


@dataclasses.dataclass(frozen=True)
class AbilityModel:
    """Additive factor-weight model producing the two latent abilities.

    ``noise_core``/``noise_opt`` are the standard deviations of the
    respondent-level Gaussian residuals (individual variation the
    background factors do not explain).  ``factor_scale`` globally
    scales all factor contributions — the knob the ablation bench
    zeroes to show the factor effects vanish.
    """

    noise_core: float = 0.55
    noise_opt: float = 0.50
    factor_scale: float = 1.0

    def core_factor_effect(self, background: Background) -> float:
        """Deterministic (factor-driven) part of the core-quiz ability."""
        informal = len(background.informal_training)
        informal_effect = -0.40 if informal == 0 else (
            -0.20 if informal == 1 else 0.0
        )
        total = (
            _SIZE_WEIGHTS_CONTRIBUTED[background.contributed_size]
            + _SIZE_WEIGHTS_INVOLVED[background.involved_size]
            + _AREA_WEIGHTS_CORE[background.area_group]
            + _ROLE_WEIGHTS_CORE[background.dev_role]
            + _TRAINING_WEIGHTS_CORE[background.formal_training]
            + 0.5 * _EXTENT_WEIGHTS_CORE[background.contributed_fp_extent]
            + 0.5 * _EXTENT_WEIGHTS_CORE[background.involved_fp_extent]
            + informal_effect
        )
        return self.factor_scale * total

    def opt_factor_effect(self, background: Background) -> float:
        """Deterministic part of the optimization-quiz ability (Role and
        Area only — the paper found no codebase-size effect here)."""
        total = (
            _AREA_WEIGHTS_OPT[background.area_group]
            + _ROLE_WEIGHTS_OPT[background.dev_role]
        )
        return self.factor_scale * total

    def sample_abilities(
        self, background: Background, rng: random.Random
    ) -> tuple[float, float]:
        """Draw ``(theta_core, theta_opt)`` for one respondent."""
        theta_core = self.core_factor_effect(background) + rng.gauss(
            0.0, self.noise_core
        )
        theta_opt = self.opt_factor_effect(background) + rng.gauss(
            0.0, self.noise_opt
        )
        return theta_core, theta_opt


#: The tuned default used throughout the reproduction.
DEFAULT_ABILITY_MODEL = AbilityModel()
