"""Response generation: from backgrounds to survey records.

For each true/false question, a respondent first lands in the
unanswered / don't-know / substantive buckets with the item's
calibrated probabilities, then — if substantive — answers correctly
with probability ``sigmoid(alpha_q + theta)``.  An incorrect T/F answer
is the negation of the correct one; an incorrect multiple choice is
uniform over the wrong options.  Suspicion levels are drawn from the
cohort's Figure-22 distribution.

Students (the 52-person comparison group) answer only the suspicion
quiz, as in the paper, where it was a midterm exam problem.

Randomness is *per respondent*: every respondent draws from their own
:class:`random.Random` seeded by ``(cohort, n, seed, index)`` (see
:func:`respondent_rng`).  That makes each record a pure function of
the cohort parameters and its index, so any contiguous slice of a
cohort — ``simulate_developers(n, seed, start=lo, stop=hi)`` — is
bit-identical to the same slice of the full run.  The execution
engine's study adapter leans on exactly this property to shard
simulation across worker processes without changing a single byte of
the merged study output.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.population.ability import AbilityModel, DEFAULT_ABILITY_MODEL, sigmoid
from repro.population.calibration import Calibration, ItemParams, calibrate
from repro.population.marginals import PAPER_N_DEVELOPERS, PAPER_N_STUDENTS
from repro.population.sampler import sample_backgrounds
from repro.population.targets import SUSPICION_DISTRIBUTIONS
from repro.quiz.core import CORE_QUESTIONS
from repro.quiz.model import Question, QuestionKind, TFAnswer
from repro.quiz.optimization import OPTIMIZATION_QUESTIONS
from repro.quiz.suspicion import LIKERT_SCALE, SUSPICION_ORDER
from repro.survey.background import Background
from repro.survey.records import Cohort, SurveyResponse
from repro.telemetry import get_telemetry

__all__ = [
    "generate_tf_answer",
    "generate_mc_answer",
    "generate_response",
    "respondent_rng",
    "simulate_developers",
    "simulate_students",
]


def respondent_rng(
    cohort: str, n: int, seed: int, index: int
) -> random.Random:
    """The RNG for one respondent (1-based ``index``) of a cohort.

    Derivation is positional, not sequential: respondent *i*'s stream
    never depends on how many respondents were generated before it, so
    cohort slices reproduce exactly under any sharding.
    """
    return random.Random((cohort, n, seed, index).__repr__())


def _draw_bucket(item: ItemParams, theta: float, rng: random.Random) -> str:
    """Unanswered / don't-know / substantive, with the don't-know rate
    falling as ability rises (the calibrated commit model)."""
    if rng.random() < item.unanswered_rate:
        return "unanswered"
    if rng.random() < item.dont_know_probability(theta):
        return "dont-know"
    return "substantive"


def generate_tf_answer(
    question: Question, item: ItemParams, theta: float, rng: random.Random
) -> TFAnswer:
    """Draw one true/false response."""
    bucket = _draw_bucket(item, theta, rng)
    if bucket == "unanswered":
        return TFAnswer.UNANSWERED
    if bucket == "dont-know":
        return TFAnswer.DONT_KNOW
    correct = rng.random() < item.correct_probability(theta)
    assert isinstance(question.correct, TFAnswer)
    return question.correct if correct else question.correct.negation


def generate_mc_answer(
    question: Question, item: ItemParams, theta: float, rng: random.Random
) -> str:
    """Draw one multiple-choice response (option string or bucket)."""
    bucket = _draw_bucket(item, theta, rng)
    if bucket != "substantive":
        return bucket
    if rng.random() < item.correct_probability(theta):
        assert isinstance(question.correct, str)
        return question.correct
    wrong = [c for c in question.choices if c != question.correct]
    return rng.choice(wrong)


def _draw_likert(
    distribution: Sequence[float], rng: random.Random
) -> int:
    roll = rng.random() * sum(distribution)
    cumulative = 0.0
    for level, weight in zip(LIKERT_SCALE, distribution):
        cumulative += weight
        if roll < cumulative:
            return level
    return LIKERT_SCALE[-1]


def generate_response(
    respondent_id: str,
    background: Background,
    calibration: Calibration,
    rng: random.Random,
    *,
    model: AbilityModel | None = None,
) -> SurveyResponse:
    """Generate one developer's full survey submission."""
    ability_model = model or calibration.model
    theta_core, theta_opt = ability_model.sample_abilities(background, rng)
    core_answers = {
        q.qid: generate_tf_answer(q, calibration.core[q.qid], theta_core, rng)
        for q in CORE_QUESTIONS
    }
    opt_answers: dict[str, TFAnswer | str] = {}
    for question in OPTIMIZATION_QUESTIONS:
        item = calibration.optimization[question.qid]
        if question.kind is QuestionKind.TRUE_FALSE:
            opt_answers[question.qid] = generate_tf_answer(
                question, item, theta_opt, rng
            )
        else:
            opt_answers[question.qid] = generate_mc_answer(
                question, item, theta_opt, rng
            )
    distributions = SUSPICION_DISTRIBUTIONS[Cohort.DEVELOPER.value]
    suspicion = {
        qid: _draw_likert(distributions[qid], rng) for qid in SUSPICION_ORDER
    }
    return SurveyResponse(
        respondent_id=respondent_id,
        cohort=Cohort.DEVELOPER,
        background=background,
        core_answers=core_answers,
        opt_answers=opt_answers,
        suspicion=suspicion,
    )


def simulate_developers(
    n: int = PAPER_N_DEVELOPERS,
    seed: int = 754,
    *,
    model: AbilityModel = DEFAULT_ABILITY_MODEL,
    calibration: Calibration | None = None,
    start: int = 0,
    stop: int | None = None,
) -> list[SurveyResponse]:
    """Simulate the main study group (default n=199, seeded).

    ``start``/``stop`` select a contiguous slice of the cohort
    (0-based, half-open); the records returned are bit-identical to
    ``simulate_developers(n, seed)[start:stop]`` because every
    respondent owns a positionally derived RNG.
    """
    stop = n if stop is None else min(stop, n)
    telemetry = get_telemetry()
    with telemetry.tracer.span("study.simulate_developers", n=n, seed=seed,
                               start=start, stop=stop):
        calibration = calibration or calibrate(model)
        backgrounds = sample_backgrounds(n, seed)
        responses = [
            generate_response(
                f"dev-{index:04d}", backgrounds[index - 1], calibration,
                respondent_rng("developer", n, seed, index), model=model,
            )
            for index in range(start + 1, stop + 1)
        ]
    telemetry.metrics.counter(
        "study.respondents_simulated", cohort="developer"
    ).inc(len(responses))
    return responses


def simulate_students(
    n: int = PAPER_N_STUDENTS, seed: int = 754,
    *, start: int = 0, stop: int | None = None,
) -> list[SurveyResponse]:
    """Simulate the student comparison group: suspicion quiz only.

    Sliceable exactly like :func:`simulate_developers`.
    """
    stop = n if stop is None else min(stop, n)
    telemetry = get_telemetry()
    span = telemetry.tracer.span("study.simulate_students", n=n, seed=seed)
    distributions = SUSPICION_DISTRIBUTIONS[Cohort.STUDENT.value]
    responses = []
    with span:
        for index in range(start + 1, stop + 1):
            rng = respondent_rng("student", n, seed, index)
            suspicion = {
                qid: _draw_likert(distributions[qid], rng)
                for qid in SUSPICION_ORDER
            }
            responses.append(
                SurveyResponse(
                    respondent_id=f"student-{index:04d}",
                    cohort=Cohort.STUDENT,
                    background=None,
                    suspicion=suspicion,
                )
            )
    telemetry.metrics.counter(
        "study.respondents_simulated", cohort="student"
    ).inc(len(responses))
    return responses
