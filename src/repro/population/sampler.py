"""Synthetic cohort sampling.

Backgrounds are allocated so every factor's marginal matches the
paper's table *exactly* (Figures 1–11), via largest-remainder
apportionment when the cohort size differs from 199, with the level
assignment shuffled across respondents by a seeded RNG.  The two
codebase-size factors are rank-paired (a respondent's involved codebase
is at least as large as their contributed one, as logic dictates), which
preserves both marginals while inducing the natural correlation.
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence
from typing import TypeVar

from repro.population import marginals as m
from repro.survey.background import Background, CodebaseSize
from repro.telemetry import get_telemetry

__all__ = ["apportion", "allocate_factor", "allocate_multiselect",
           "sample_backgrounds"]

K = TypeVar("K")


def apportion(counts: Mapping[K, int], n: int) -> dict[K, int]:
    """Scale integer ``counts`` to total ``n`` by the largest-remainder
    method (exact when ``n`` equals the counts' total).

    >>> apportion({"a": 1, "b": 1}, 3)["a"] + apportion({"a": 1, "b": 1}, 3)["b"]
    3
    """
    total = sum(counts.values())
    if total <= 0:
        raise ValueError("counts must sum to a positive total")
    if n < 0:
        raise ValueError("n must be non-negative")
    quotas = {key: count * n / total for key, count in counts.items()}
    floors = {key: int(quota) for key, quota in quotas.items()}
    remainder = n - sum(floors.values())
    by_fraction = sorted(
        counts, key=lambda key: (quotas[key] - floors[key]), reverse=True
    )
    for key in by_fraction[:remainder]:
        floors[key] += 1
    return floors


def allocate_factor(
    counts: Mapping[K, int], n: int, rng: random.Random
) -> list[K]:
    """An n-element level assignment matching the apportioned marginal,
    in shuffled order."""
    allocation = apportion(counts, n)
    levels: list[K] = []
    for key, count in allocation.items():
        levels.extend([key] * count)
    rng.shuffle(levels)
    return levels


def allocate_multiselect(
    counts: Mapping[K, int], population_total: int, n: int, rng: random.Random
) -> list[set[K]]:
    """Per-respondent membership sets for a multi-select factor.

    Each item's membership count is apportioned exactly
    (``count * n / population_total`` respondents receive it), with the
    receiving respondents chosen independently per item.
    """
    memberships: list[set[K]] = [set() for _ in range(n)]
    for key, count in counts.items():
        assigned = apportion({True: count, False: population_total - count}, n)
        flags = [True] * assigned.get(True, 0) + [False] * assigned.get(False, 0)
        rng.shuffle(flags)
        for index, flag in enumerate(flags):
            if flag:
                memberships[index].add(key)
    return memberships


def _rank_paired_sizes(
    n: int, rng: random.Random
) -> list[tuple[CodebaseSize, CodebaseSize]]:
    """Pair contributed and involved codebase sizes by rank so that
    involved >= contributed (almost surely), preserving both marginals."""
    contributed = allocate_factor(m.CONTRIBUTED_SIZE_COUNTS, n, rng)
    involved = allocate_factor(m.INVOLVED_SIZE_COUNTS, n, rng)
    contributed.sort(key=lambda size: size.rank)
    involved.sort(key=lambda size: size.rank)
    pairs = list(zip(contributed, involved))
    rng.shuffle(pairs)
    return pairs


def sample_backgrounds(
    n: int = m.PAPER_N_DEVELOPERS, seed: int = 754,
    *, rng: random.Random | None = None,
) -> list[Background]:
    """Sample ``n`` developer backgrounds matching the paper's marginals.

    Deterministic in ``(n, seed)``.  All randomness flows through one
    injectable ``rng`` (derived from ``(n, seed)`` when omitted) — no
    module-level RNG state is consulted, which is what lets the
    execution engine prove that sharded simulation reproduces the
    serial cohort bit-for-bit.
    """
    telemetry = get_telemetry()
    span = telemetry.tracer.span("population.sample_backgrounds", n=n,
                                 seed=seed)
    telemetry.metrics.counter("study.backgrounds_sampled_total").inc(n)
    with span:
        return _sample_backgrounds(n, seed, rng)


def _sample_backgrounds(
    n: int, seed: int, rng: random.Random | None = None
) -> list[Background]:
    rng = rng or random.Random(("backgrounds", n, seed).__repr__())
    positions = allocate_factor(m.POSITION_COUNTS, n, rng)
    areas = allocate_factor(m.AREA_COUNTS, n, rng)
    trainings = allocate_factor(m.FORMAL_TRAINING_COUNTS, n, rng)
    roles = allocate_factor(m.DEV_ROLE_COUNTS, n, rng)
    contributed_extents = allocate_factor(
        m.CONTRIBUTED_FP_EXTENT_COUNTS, n, rng
    )
    involved_extents = allocate_factor(m.INVOLVED_FP_EXTENT_COUNTS, n, rng)
    size_pairs = _rank_paired_sizes(n, rng)
    informal = allocate_multiselect(
        m.INFORMAL_TRAINING_COUNTS, m.PAPER_N_DEVELOPERS, n, rng
    )
    fp_langs = allocate_multiselect(
        m.FP_LANGUAGE_COUNTS, m.PAPER_N_DEVELOPERS, n, rng
    )
    arb_langs = allocate_multiselect(
        m.ARB_PREC_LANGUAGE_COUNTS, m.PAPER_N_DEVELOPERS, n, rng
    )

    backgrounds = []
    for i in range(n):
        contributed_size, involved_size = size_pairs[i]
        backgrounds.append(
            Background(
                position=positions[i],
                area=areas[i],
                formal_training=trainings[i],
                informal_training=frozenset(informal[i]),
                dev_role=roles[i],
                fp_languages=frozenset(fp_langs[i]),
                arb_prec_languages=frozenset(arb_langs[i]),
                contributed_size=contributed_size,
                contributed_fp_extent=contributed_extents[i],
                involved_size=involved_size,
                involved_fp_extent=involved_extents[i],
            )
        )
    return backgrounds
