"""Runtime floating point exception monitoring.

The paper's conclusions describe "a simple runtime monitoring tool to
spy on unmodified binaries and track exceptional conditions using
floating point condition codes, similar to the structure of the
suspicion quiz."  This module is that tool for Python computations:

- softfloat code run inside :func:`spy` has its sticky flags captured
  through a scoped :class:`~repro.fpenv.FPEnv`;
- NumPy code is monitored through ``numpy.errstate``'s call hook, which
  reports divide/overflow/underflow/invalid (NumPy exposes no inexact
  or denormal status — a limitation of the host path that the softfloat
  path does not share).

The report mirrors the suspicion quiz: which of the five conditions
occurred at least once, paired with the reference suspicion guidance.
"""

from __future__ import annotations

import contextlib
import dataclasses
from collections.abc import Iterator

import numpy as np

from repro.fpenv.env import env_context
from repro.fpenv.flags import FPFlag

__all__ = ["SpyReport", "spy"]

_NUMPY_FLAGS: dict[str, FPFlag] = {
    "divide by zero": FPFlag.DIV_BY_ZERO,
    "overflow": FPFlag.OVERFLOW,
    "underflow": FPFlag.UNDERFLOW,
    "invalid value": FPFlag.INVALID,
}


@dataclasses.dataclass
class SpyReport:
    """Accumulated exception footprint of a monitored computation."""

    flags: FPFlag = FPFlag.NONE
    numpy_events: int = 0
    softfloat_flags: FPFlag = FPFlag.NONE
    trace: "object | None" = None  # TracingEnv when spy(trace=True)

    def occurred(self, flag: FPFlag) -> bool:
        """Did ``flag`` occur at least once?"""
        return bool(self.flags & flag)

    @property
    def clean(self) -> bool:
        """True when nothing beyond *inexact* occurred (rounding alone
        is not an anomaly worth reporting as one)."""
        return not (self.flags & ~FPFlag.INEXACT)

    def render(self) -> str:
        """Suspicion-quiz-structured report (see
        :func:`repro.fpspy.report.render_report`)."""
        from repro.fpspy.report import render_report

        return render_report(self)


@contextlib.contextmanager
def spy(*, trace: bool = False, **env_overrides: object) -> Iterator[SpyReport]:
    """Monitor a block of computation.

    Softfloat operations inside the block run under a fresh scoped
    environment (optionally customized via keyword overrides, e.g.
    ``spy(ftz=True)``); NumPy floating point errors are captured via the
    errstate call hook.  Neither monitor disturbs the caller's state.

    With ``trace=True``, every softfloat flag-raise is also logged with
    its operation and sequence number (``report.trace`` holds the
    :class:`repro.fpenv.trace.TracingEnv`), so the report can answer
    *where* the first NaN appeared, not just whether one did.

    >>> from repro.softfloat import sf
    >>> from repro.fpenv import FPFlag
    >>> with spy() as report:
    ...     _ = sf(1.0) / sf(0.0)
    >>> report.occurred(FPFlag.DIV_BY_ZERO)
    True
    """
    report = SpyReport()

    class _Hook:
        def write(self, message: str) -> None:  # pragma: no cover - log api
            self._record(message)

        def __call__(self, kind: str, _flag: int) -> None:
            self._record(kind)

        def _record(self, kind: str) -> None:
            report.numpy_events += 1
            for needle, flag in _NUMPY_FLAGS.items():
                if needle in kind:
                    report.flags |= flag

    if trace:
        from repro.fpenv.trace import TracingEnv

        tracing = TracingEnv(**{k: v for k, v in env_overrides.items()})
        context = env_context(tracing, install=True)
        report.trace = tracing
    else:
        context = env_context(**env_overrides)
    with context as env:
        with np.errstate(all="call", call=_Hook()):
            try:
                yield report
            finally:
                report.softfloat_flags = env.flags
                report.flags |= env.flags
