"""Exception-provoking scientific workloads.

Small simulations, each engineered to raise a *specific, documented*
set of floating point exceptions, so the monitor (and the suspicion
quiz's scenario) can be exercised end-to-end.  The Lorenz system is
included deliberately: the paper's introduction cites Lorenz's rounding
error as the canonical example of numerics changing science.

Each workload runs on the softfloat engine (so the full six-flag
footprint is observable) and takes a step/size parameter kept small —
this substrate favors observability over speed.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from repro.fpenv.flags import FPFlag
from repro.softfloat import BINARY64, SoftFloat, fp_sqrt, sf

__all__ = [
    "Workload",
    "WORKLOADS",
    "lorenz_trajectory",
    "naive_variance",
    "logistic_map",
    "compounding_growth",
    "probability_underflow",
    "newton_no_root",
    "workload",
]


@dataclasses.dataclass(frozen=True)
class Workload:
    """A named exception-provoking simulation.

    ``expected_flags`` is the exception footprint the workload is
    engineered to produce (beyond *inexact*, which everything raises);
    the test suite asserts it exactly.
    """

    name: str
    description: str
    run: Callable[[], object]
    expected_flags: FPFlag


def lorenz_trajectory(steps: int = 120) -> tuple[float, float, float]:
    """Forward-Euler Lorenz system (sigma=10, rho=28, beta=8/3).

    Numerically tame at this step size: raises only *inexact* —
    the baseline "a healthy simulation still rounds" case.
    """
    dt = sf(0.005)
    sigma, rho, beta = sf(10.0), sf(28.0), sf(8.0) / sf(3.0)
    x, y, z = sf(1.0), sf(1.0), sf(1.0)
    for _ in range(steps):
        dx = sigma * (y - x)
        dy = x * (rho - z) - y
        dz = x * y - beta * z
        x = x + dt * dx
        y = y + dt * dy
        z = z + dt * dz
    return x.to_float(), y.to_float(), z.to_float()


def naive_variance(scale: float = 1e9) -> float:
    """The classic one-pass variance formula on large-offset data.

    ``E[x^2] - E[x]^2`` cancels catastrophically and can go negative;
    taking its square root then raises *invalid* and yields NaN.
    """
    data = [scale + offset for offset in (4.0, 7.0, 13.0, 16.0)]
    n = sf(float(len(data)))
    total = SoftFloat.zero(BINARY64)
    total_sq = SoftFloat.zero(BINARY64)
    for value in data:
        x = sf(value)
        total = total + x
        total_sq = total_sq + x * x
    mean = total / n
    variance = total_sq / n - mean * mean
    return fp_sqrt(variance).to_float()


def logistic_map(r: float = 4.0, steps: int = 80) -> float:
    """Chaotic logistic map iteration ``x <- r x (1 - x)``.

    Stays in [0, 1]: raises only *inexact* (chaos is not an exception;
    the point the Lorenz anecdote makes is that rounding alone can
    dominate chaotic systems)."""
    x = sf(0.2)
    growth = sf(r)
    one = sf(1.0)
    for _ in range(steps):
        x = growth * x * (one - x)
    return x.to_float()


def compounding_growth(rate: float = 2.0, steps: int = 1100) -> float:
    """Unchecked exponential growth: doubles past DBL_MAX.

    Raises *overflow* and saturates at +infinity; later arithmetic
    silently carries the infinity along.
    """
    balance = sf(1.0)
    factor = sf(rate)
    for _ in range(steps):
        balance = balance * factor
    return (balance + sf(1.0)).to_float()


def probability_underflow(p: float = 1e-6, events: int = 60) -> float:
    """Joint probability of many rare independent events.

    The product marches down through the subnormal range (raising
    *underflow* and *denormal-result*) and finally flushes to zero —
    the motivating case for log-space probability arithmetic.
    """
    probability = sf(1.0)
    per_event = sf(p)
    for _ in range(events):
        probability = probability * per_event
    return probability.to_float()


def newton_no_root(iterations: int = 6) -> float:
    """Newton's method on ``f(x) = x^2 + 1`` (which has no real root),
    started at ``x0 = 1``.

    The first step lands exactly on ``x = 0`` where the derivative
    vanishes: ``f/f' = 1/0`` raises *divide-by-zero* and the iterate
    becomes an infinity; the next step computes ``inf/inf`` — *invalid*,
    NaN — and every subsequent iterate stays NaN.  The loop still
    "converges" (NaN == NaN is false, but the loop is step-counted) and
    returns normally: the suspicion wrapper is the only witness.
    """
    x = sf(1.0)
    one, two = sf(1.0), sf(2.0)
    for _ in range(iterations):
        f = x * x + one
        df = two * x
        x = x - f / df
    return x.to_float()


WORKLOADS: tuple[Workload, ...] = (
    Workload(
        name="lorenz",
        description="Lorenz attractor, forward Euler (rounding only)",
        run=lorenz_trajectory,
        expected_flags=FPFlag.INEXACT,
    ),
    Workload(
        name="naive-variance",
        description="one-pass variance + sqrt: cancellation to NaN",
        run=naive_variance,
        expected_flags=FPFlag.INEXACT | FPFlag.INVALID,
    ),
    Workload(
        name="logistic-map",
        description="chaotic logistic map (rounding only)",
        run=logistic_map,
        expected_flags=FPFlag.INEXACT,
    ),
    Workload(
        name="compounding-growth",
        description="unchecked exponential growth to +inf",
        run=compounding_growth,
        expected_flags=FPFlag.INEXACT | FPFlag.OVERFLOW,
    ),
    Workload(
        name="newton-no-root",
        description="Newton iteration on a rootless function: hits a "
                    "zero derivative, then inf/inf -> NaN, silently",
        run=newton_no_root,
        expected_flags=(
            FPFlag.INVALID | FPFlag.DIV_BY_ZERO
        ),
    ),
    Workload(
        name="probability-underflow",
        description="product of rare-event probabilities through the "
                    "subnormals to zero",
        run=probability_underflow,
        expected_flags=(
            FPFlag.INEXACT | FPFlag.UNDERFLOW | FPFlag.DENORMAL_RESULT
        ),
    ),
)

_BY_NAME = {w.name: w for w in WORKLOADS}


def workload(name: str) -> Workload:
    """Look up a workload by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown workload {name!r}; known: {known}")
