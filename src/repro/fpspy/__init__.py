"""fpspy: runtime floating point exception monitoring.

One of the two tools the paper's conclusions call for (the authors
mention building exactly this): wrap a computation, read the sticky
condition codes afterward, and report which exceptional conditions
occurred — structured like the suspicion quiz.

>>> from repro.fpspy import spy, workload
>>> with spy() as report:
...     _ = workload("naive-variance").run()
>>> report.occurred(__import__("repro.fpenv", fromlist=["FPFlag"]).FPFlag.INVALID)
True
"""

from repro.fpspy.monitor import SpyReport, spy
from repro.fpspy.report import render_report, suspicion_summary
from repro.fpspy.workloads import (
    WORKLOADS,
    Workload,
    compounding_growth,
    logistic_map,
    lorenz_trajectory,
    naive_variance,
    newton_no_root,
    probability_underflow,
    workload,
)

__all__ = [
    "spy",
    "SpyReport",
    "render_report",
    "suspicion_summary",
    "Workload",
    "WORKLOADS",
    "workload",
    "lorenz_trajectory",
    "naive_variance",
    "logistic_map",
    "compounding_growth",
    "probability_underflow",
    "newton_no_root",
]
