"""Suspicion-structured reporting for spy results.

Maps each monitored exceptional condition to the suspicion quiz's
reference guidance, so a report reads like the quiz scenario: "these
conditions occurred at least once; here is how suspicious you should
be."
"""

from __future__ import annotations

from repro.fpspy.monitor import SpyReport
from repro.quiz.suspicion import FLAG_FOR_ITEM, SUSPICION_ITEMS

__all__ = ["render_report", "suspicion_summary"]


def suspicion_summary(report: SpyReport) -> list[dict[str, object]]:
    """One entry per suspicion-quiz condition: occurrence + guidance."""
    rows = []
    for item in SUSPICION_ITEMS:
        flag = FLAG_FOR_ITEM[item.qid]
        rows.append({
            "condition": item.label,
            "occurred": report.occurred(flag),
            "reference_suspicion": item.reference_level,
            "rationale": item.rationale,
        })
    return rows


def render_report(report: SpyReport) -> str:
    """Human-readable report in the suspicion quiz's structure."""
    lines = ["floating point exception report (sticky, per condition):"]
    worst = 0
    for row in suspicion_summary(report):
        mark = "OCCURRED" if row["occurred"] else "clear   "
        lines.append(
            f"  {row['condition']:<10} {mark}  "
            f"(reference suspicion {row['reference_suspicion']}/5)"
        )
        if row["occurred"]:
            worst = max(worst, int(row["reference_suspicion"]))  # type: ignore[arg-type]
            lines.append(f"      {row['rationale']}")
    if worst >= 5:
        verdict = "DO NOT TRUST these results without investigation (NaN)."
    elif worst >= 4:
        verdict = "Treat results with suspicion (infinities occurred)."
    elif worst > 0:
        verdict = ("Results plausibly fine if the algorithm was designed "
                   "for rounding/underflow.")
    else:
        verdict = "No exceptional conditions beyond (at most) rounding."
    lines.append(f"verdict: {verdict}")
    return "\n".join(lines)
