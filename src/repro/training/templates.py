"""Parameterized drill templates.

Each template maps to one of the survey's weak spots (Figure 14/15) and
generates an endless stream of concrete true/false items.  The crucial
design rule: the template *computes* the answer by running the actual
computation on the softfloat engine (or the optsim compliance checker)
for the drawn parameters — so a template bug cannot teach a falsehood
without also failing the test suite's verification sweep, and the same
concept appears sometimes-true, sometimes-false, defeating pattern
memorization.
"""

from __future__ import annotations

import dataclasses
import random
from collections.abc import Callable

from repro.fpenv.env import FPEnv
from repro.softfloat import (
    BINARY64,
    SoftFloat,
    fp_add,
    fp_div,
    fp_eq,
    fp_mul,
    fp_sub,
    sf,
)

__all__ = [
    "DrillItem",
    "DrillTemplate",
    "ALL_TEMPLATES",
    "CONCEPTS",
    "template_for",
]


@dataclasses.dataclass(frozen=True)
class DrillItem:
    """One concrete drill question.

    ``answer`` is True/False, computed at generation time; ``witness``
    shows the actual evaluation so an explanation can be exact.
    """

    concept: str
    prompt: str
    answer: bool
    explanation: str

    def grade(self, response: bool) -> bool:
        """Was the response correct?"""
        return response == self.answer


@dataclasses.dataclass(frozen=True)
class DrillTemplate:
    """A generator of drill items for one concept."""

    concept: str
    description: str
    generate: Callable[[random.Random], DrillItem]


def _fmt(x: SoftFloat) -> str:
    return str(x)


# ----------------------------------------------------------------------
# Core-quiz concepts
# ----------------------------------------------------------------------

def _absorption(rng: random.Random) -> DrillItem:
    """(big + small) == big — true iff small is under the rounding
    threshold at big's magnitude."""
    exponent = rng.randrange(40, 70)
    big = sf(float(2**exponent))
    small = sf(float(rng.choice([1, 3, 2 ** (exponent - 54),
                                 2 ** (exponent - 52), 2 ** (exponent - 50)])))
    result = fp_add(big, small, FPEnv())
    answer = fp_eq(result, big, FPEnv())
    from repro.softfloat.functions import ulp

    return DrillItem(
        concept="absorption",
        prompt=(f"double a = {_fmt(big)}, b = {_fmt(small)};\n"
                f"True or false: (a + b) == a."),
        answer=answer,
        explanation=(
            f"a + b evaluates to {_fmt(result)}; the addend is "
            f"{'below' if answer else 'at or above'} half an ulp of a "
            f"(ulp = {_fmt(ulp(big))}), so it is "
            f"{'absorbed by rounding' if answer else 'not absorbed'}."
        ),
    )


def _rounding_equality(rng: random.Random) -> DrillItem:
    """Does a decimal sum equal its decimal total? True iff the binary
    roundings happen to agree."""
    tenths = rng.randrange(1, 9)
    other = rng.randrange(1, 9)
    a = sf(f"0.{tenths}")
    b = sf(f"0.{other}")
    total_text = f"0.{tenths + other}" if tenths + other < 10 else \
        f"{(tenths + other) / 10:.1f}"
    total = sf(total_text)
    computed = fp_add(a, b, FPEnv())
    answer = fp_eq(computed, total, FPEnv())
    return DrillItem(
        concept="decimal-rounding",
        prompt=(f"True or false: 0.{tenths} + 0.{other} == {total_text} "
                f"in double arithmetic."),
        answer=answer,
        explanation=(
            f"The binary doubles nearest those decimals sum to "
            f"{_fmt(computed)}, which {'equals' if answer else 'differs from'}"
            f" the double nearest {total_text}."
        ),
    )


def _associativity(rng: random.Random) -> DrillItem:
    values = [sf(rng.choice([1.0, 0.1, 0.2, 0.3, 1e16, -1e16, 3.0, 7.0]))
              for _ in range(3)]
    a, b, c = values
    left = fp_add(fp_add(a, b, FPEnv()), c, FPEnv())
    right = fp_add(a, fp_add(b, c, FPEnv()), FPEnv())
    answer = fp_eq(left, right, FPEnv())
    return DrillItem(
        concept="associativity",
        prompt=(f"double a = {_fmt(a)}, b = {_fmt(b)}, c = {_fmt(c)};\n"
                f"True or false: ((a + b) + c) == (a + (b + c))."),
        answer=answer,
        explanation=(
            f"Left grouping gives {_fmt(left)}, right grouping gives "
            f"{_fmt(right)}: grouping {'does not matter here' if answer else 'matters because each add rounds'}."
        ),
    )


def _special_values(rng: random.Random) -> DrillItem:
    numerator = rng.choice([0.0, 1.0, -1.0, 2.5])
    num = sf(numerator)
    zero = SoftFloat.zero(BINARY64)
    result = fp_div(num, zero, FPEnv())
    claims_nan = rng.random() < 0.5
    if claims_nan:
        answer = result.is_nan
        claim = "an invalid-operation indicator (a NaN)"
    else:
        answer = result.is_inf
        claim = "an infinity"
    return DrillItem(
        concept="special-values",
        prompt=(f"True or false: in double arithmetic, {numerator!r} / 0.0 "
                f"evaluates to {claim}."),
        answer=answer,
        explanation=(
            f"{numerator!r} / 0.0 = {_fmt(result)}: division of a nonzero "
            f"by zero is an exact infinity (divide-by-zero exception); "
            f"only 0.0/0.0 is invalid and yields NaN."
        ),
    )


def _nan_comparison(rng: random.Random) -> DrillItem:
    make_nan = rng.random() < 0.5
    if make_nan:
        expr_text = "0.0 / 0.0"
        value = fp_div(SoftFloat.zero(BINARY64), SoftFloat.zero(BINARY64),
                       FPEnv())
    else:
        seed_value = rng.choice([1.5, -2.0, 1e300])
        expr_text = f"{seed_value!r}"
        value = sf(seed_value)
    answer = fp_eq(value, value, FPEnv())
    return DrillItem(
        concept="nan-comparison",
        prompt=(f"double x = {expr_text};\n"
                f"True or false: (x == x) evaluates to true."),
        answer=answer,
        explanation=(
            f"x is {_fmt(value)}; NaN compares unequal to everything "
            f"including itself, while every non-NaN value equals itself."
        ),
    )


def _overflow_saturation(rng: random.Random) -> DrillItem:
    factor = rng.choice([2.0, 10.0, 1.0 + 2.0**-20])
    big = SoftFloat.max_finite(BINARY64)
    result = fp_mul(big, sf(factor), FPEnv())
    answer = result.is_inf
    return DrillItem(
        concept="overflow",
        prompt=(f"double x = DBL_MAX;\n"
                f"True or false: x * {factor!r} overflows to infinity "
                f"(rather than wrapping around like an int)."),
        answer=answer,
        explanation=(
            f"DBL_MAX * {factor!r} = {_fmt(result)}: floating point "
            f"overflow saturates at infinity"
            + ("" if answer else
               " — but this factor is small enough that the product "
               "rounds back to DBL_MAX, so no overflow occurs")
            + "."
        ),
    )


def _subnormal_gradual(rng: random.Random) -> DrillItem:
    halvings = rng.randrange(1, 5)
    x = SoftFloat.min_normal(BINARY64)
    for _ in range(halvings):
        x = fp_mul(x, sf(0.5), FPEnv())
    answer = not x.is_zero
    return DrillItem(
        concept="gradual-underflow",
        prompt=(f"Starting from the smallest normal double, halve "
                f"{halvings} time(s).\n"
                f"True or false: the result is still nonzero."),
        answer=answer,
        explanation=(
            f"The result is {_fmt(x)}: gradual underflow through the "
            f"subnormals keeps tiny values nonzero for another 52 "
            f"halvings before reaching zero."
        ),
    )


def _cancellation(rng: random.Random) -> DrillItem:
    k = rng.randrange(20, 60)
    a = fp_add(sf(1.0), sf(2.0**-k), FPEnv())
    diff = fp_sub(a, sf(1.0), FPEnv())
    answer = fp_eq(diff, sf(2.0**-k), FPEnv())
    return DrillItem(
        concept="cancellation",
        prompt=(f"double a = 1.0 + pow(2, -{k});\n"
                f"True or false: (a - 1.0) == pow(2, -{k})."),
        answer=answer,
        explanation=(
            f"(a - 1.0) = {_fmt(diff)}: for k <= 52 the tiny term "
            f"survives the addition and subtracts back exactly; beyond "
            f"the precision it was already rounded away."
        ),
    )


# ----------------------------------------------------------------------
# Optimization-quiz concepts
# ----------------------------------------------------------------------

def _contraction(rng: random.Random) -> DrillItem:
    from repro.optsim import O2, O3, find_divergence, parse_expr
    from repro.optsim.evaluator import bind

    use_o3 = rng.random() < 0.5
    config = O3 if use_o3 else O2
    source = rng.choice(
        ["a*b + c", "c + a*b", "a*b - c", "a + b + c", "a * b"]
    )
    expr = parse_expr(source)
    witness = bind(config, a=1.0 + 2.0**-27, b=1.0 + 2.0**-27, c=-1.0)
    report = find_divergence(expr, config, extra_witnesses=[witness])
    answer = report.diverged
    return DrillItem(
        concept="fp-contract",
        prompt=(f"You compile `d = {source};` at {config.name}.\n"
                f"True or false: the compiled program can produce "
                f"different result bits than strict IEEE evaluation."),
        answer=answer,
        explanation=(
            f"{config.name} {'contracts the multiply-add into a single-rounding FMA, which changes results' if answer else 'performs no value-changing floating point transformation'}"
            f" ({report.describe()})"
        ),
    )


def _flag_semantics(rng: random.Random) -> DrillItem:
    from repro.optsim import (
        is_standard_compliant,
        noncompliance_reasons,
        optimization_level,
    )

    flag = rng.choice(["-O0", "-O1", "-O2", "-O3", "-Ofast",
                       "--ffast-math"])
    config = optimization_level(flag)
    answer = is_standard_compliant(config)
    if answer:
        detail = "compliant: it licenses no value-changing rewrites"
    else:
        detail = ("NOT compliant — it permits: "
                  + "; ".join(noncompliance_reasons(config)))
    return DrillItem(
        concept="flag-compliance",
        prompt=(f"True or false: compiling with {flag} preserves "
                f"standard-compliant IEEE floating point behavior."),
        answer=answer,
        explanation=f"{flag} is {detail}.",
    )


ALL_TEMPLATES: tuple[DrillTemplate, ...] = (
    DrillTemplate("absorption",
                  "when does adding a small value change a big one?",
                  _absorption),
    DrillTemplate("decimal-rounding",
                  "decimal identities that may not survive binary rounding",
                  _rounding_equality),
    DrillTemplate("associativity",
                  "grouping sensitivity of floating point sums",
                  _associativity),
    DrillTemplate("special-values",
                  "division by zero: infinity vs NaN",
                  _special_values),
    DrillTemplate("nan-comparison",
                  "self-equality and NaN propagation",
                  _nan_comparison),
    DrillTemplate("overflow",
                  "saturating (not modular) overflow",
                  _overflow_saturation),
    DrillTemplate("gradual-underflow",
                  "subnormals and the approach to zero",
                  _subnormal_gradual),
    DrillTemplate("cancellation",
                  "what survives a subtraction of near-equals",
                  _cancellation),
    DrillTemplate("fp-contract",
                  "which optimization levels fuse multiply-add",
                  _contraction),
    DrillTemplate("flag-compliance",
                  "which compiler flags stay standard-compliant",
                  _flag_semantics),
)

#: Concept names, in template order.
CONCEPTS: tuple[str, ...] = tuple(t.concept for t in ALL_TEMPLATES)

_BY_CONCEPT = {t.concept: t for t in ALL_TEMPLATES}


def template_for(concept: str) -> DrillTemplate:
    """Look up a template by concept name."""
    try:
        return _BY_CONCEPT[concept]
    except KeyError:
        known = ", ".join(CONCEPTS)
        raise KeyError(f"unknown concept {concept!r}; known: {known}")
