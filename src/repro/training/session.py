"""Adaptive drill sessions with per-concept mastery tracking.

The session samples concepts in proportion to how much the trainee
still misses them (a smoothed error rate), so practice concentrates
where Figure 14 says developers are weak *for this trainee* — the
adaptivity the paper's one-shot survey could diagnose but not deliver.
"""

from __future__ import annotations

import dataclasses
import random
from collections.abc import Sequence

from repro.training.templates import (
    ALL_TEMPLATES,
    CONCEPTS,
    DrillItem,
    DrillTemplate,
    template_for,
)

__all__ = ["DrillSession", "DrillOutcome", "MasteryReport"]

#: Laplace smoothing for the per-concept error estimate: one virtual
#: miss and one virtual hit, so unseen concepts are drilled eagerly.
_PRIOR_MISSES = 1.0
_PRIOR_HITS = 1.0
#: A concept counts as mastered below this smoothed error rate.
_MASTERY_THRESHOLD = 0.25


@dataclasses.dataclass(frozen=True)
class DrillOutcome:
    """The graded result of one submitted answer."""

    item: DrillItem
    response: bool
    correct: bool

    def feedback(self) -> str:
        """Explanation text, prefixed by the verdict."""
        verdict = "correct" if self.correct else "INCORRECT"
        return f"[{verdict}] {self.item.explanation}"


@dataclasses.dataclass(frozen=True)
class MasteryReport:
    """Per-concept progress snapshot."""

    attempts: dict[str, int]
    errors: dict[str, int]

    def error_rate(self, concept: str) -> float:
        """Smoothed error rate for a concept."""
        attempts = self.attempts.get(concept, 0)
        errors = self.errors.get(concept, 0)
        return (errors + _PRIOR_MISSES) / (
            attempts + _PRIOR_MISSES + _PRIOR_HITS
        )

    def mastered(self, concept: str) -> bool:
        """Has the concept's smoothed error rate fallen below the
        mastery threshold?"""
        return self.error_rate(concept) < _MASTERY_THRESHOLD

    def weakest(self) -> str:
        """Concept with the highest smoothed error rate."""
        return max(CONCEPTS, key=self.error_rate)

    def render(self) -> str:
        """Progress table."""
        lines = ["concept                error-rate  attempts  mastered"]
        for concept in CONCEPTS:
            lines.append(
                f"{concept:<22} {self.error_rate(concept):9.2f}"
                f"  {self.attempts.get(concept, 0):8d}"
                f"  {'yes' if self.mastered(concept) else 'no'}"
            )
        return "\n".join(lines)


class DrillSession:
    """An adaptive practice session.

    Parameters
    ----------
    rng:
        Source of randomness (inject for reproducibility).
    concepts:
        Restrict practice to these concepts (default: all).
    """

    def __init__(
        self,
        rng: random.Random | None = None,
        concepts: Sequence[str] | None = None,
    ) -> None:
        self._rng = rng or random.Random()
        if concepts is None:
            self._templates: tuple[DrillTemplate, ...] = ALL_TEMPLATES
        else:
            self._templates = tuple(template_for(c) for c in concepts)
            if not self._templates:
                raise ValueError("need at least one concept")
        self._attempts: dict[str, int] = {}
        self._errors: dict[str, int] = {}

    # ------------------------------------------------------------------
    def mastery(self) -> MasteryReport:
        """Current progress snapshot."""
        return MasteryReport(dict(self._attempts), dict(self._errors))

    def next_item(self) -> DrillItem:
        """Generate the next drill item, biased toward weak concepts."""
        report = self.mastery()
        weights = [report.error_rate(t.concept) for t in self._templates]
        total = sum(weights)
        roll = self._rng.random() * total
        cumulative = 0.0
        chosen = self._templates[-1]
        for template, weight in zip(self._templates, weights):
            cumulative += weight
            if roll < cumulative:
                chosen = template
                break
        return chosen.generate(self._rng)

    def submit(self, item: DrillItem, response: bool) -> DrillOutcome:
        """Grade a response and update mastery statistics."""
        correct = item.grade(response)
        self._attempts[item.concept] = self._attempts.get(item.concept, 0) + 1
        if not correct:
            self._errors[item.concept] = self._errors.get(item.concept, 0) + 1
        return DrillOutcome(item=item, response=response, correct=correct)

    def run(
        self,
        answer,
        *,
        rounds: int = 20,
    ) -> MasteryReport:
        """Drive ``rounds`` items through an answering callable
        (``answer(item) -> bool``); returns the final mastery report."""
        for _ in range(rounds):
            item = self.next_item()
            self.submit(item, answer(item))
        return self.mastery()
