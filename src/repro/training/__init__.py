"""Adaptive floating point training drills.

The paper's conclusions argue that training fails not because training
cannot work but because "the community has just not found the right
training approach yet", and propose developing one.  This package is a
concrete attempt: an endless supply of *parameterized* drill questions
— fresh concrete values every time, never the same memorizable item —
whose correct answers are **computed by the softfloat/optsim substrates
at generation time**, plus an adaptive session that steers practice
toward the concepts a trainee keeps missing (which, per Figure 14, is
exactly what a fixed quiz cannot do).

>>> import random
>>> from repro.training import DrillSession
>>> session = DrillSession(rng=random.Random(7))
>>> item = session.next_item()
>>> outcome = session.submit(item, item.answer)   # answering correctly
>>> outcome.correct
True
"""

from repro.training.templates import (
    ALL_TEMPLATES,
    CONCEPTS,
    DrillItem,
    DrillTemplate,
    template_for,
)
from repro.training.session import DrillOutcome, DrillSession, MasteryReport

__all__ = [
    "DrillItem",
    "DrillTemplate",
    "ALL_TEMPLATES",
    "CONCEPTS",
    "template_for",
    "DrillSession",
    "DrillOutcome",
    "MasteryReport",
]
