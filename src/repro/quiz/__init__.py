"""The paper's survey quizzes as an executable instrument.

Three components, mirroring Sections II-B through II-D of the paper:

- :data:`~repro.quiz.core.CORE_QUESTIONS` — 15 true/false questions on
  core IEEE 754 behavior (commutativity through exception signaling);
- :data:`~repro.quiz.optimization.OPTIMIZATION_QUESTIONS` — 4 questions
  on compiler/hardware optimizations (MADD, FTZ, -O levels, fast-math);
- :data:`~repro.quiz.suspicion.SUSPICION_ITEMS` — 5 Likert items on
  exceptional conditions.

Unlike a paper appendix, every answer key entry here is *executable*:
``question.verify_ground_truth()`` runs witness computations on the
softfloat and optsim substrates and raises if the claimed answer cannot
be demonstrated.

>>> from repro.quiz import core_question
>>> demo = core_question("identity").verify_ground_truth()
>>> demo.ok
True
"""

from repro.quiz.demos import Claim, Demonstration, claim
from repro.quiz.model import LikertItem, Question, QuestionKind, Section, TFAnswer
from repro.quiz.core import CORE_QUESTION_ORDER, CORE_QUESTIONS, core_question
from repro.quiz.optimization import (
    OPT_LEVEL_CHOICES,
    OPTIMIZATION_QUESTION_ORDER,
    OPTIMIZATION_QUESTIONS,
    optimization_question,
)
from repro.quiz.suspicion import (
    FLAG_FOR_ITEM,
    LIKERT_SCALE,
    SUSPICION_ITEMS,
    SUSPICION_ORDER,
    reference_ranking,
    suspicion_item,
)
from repro.quiz.scoring import (
    CORE_CHANCE,
    OPT_TF_CHANCE,
    QuizScore,
    chance_score,
    score_core,
    score_optimization,
    score_questions,
)
from repro.quiz.runner import GradeReport, all_questions, grade, run_interactive

__all__ = [
    "Question",
    "QuestionKind",
    "Section",
    "TFAnswer",
    "LikertItem",
    "Claim",
    "Demonstration",
    "claim",
    "CORE_QUESTIONS",
    "CORE_QUESTION_ORDER",
    "core_question",
    "OPTIMIZATION_QUESTIONS",
    "OPTIMIZATION_QUESTION_ORDER",
    "OPT_LEVEL_CHOICES",
    "optimization_question",
    "SUSPICION_ITEMS",
    "SUSPICION_ORDER",
    "LIKERT_SCALE",
    "FLAG_FOR_ITEM",
    "suspicion_item",
    "reference_ranking",
    "QuizScore",
    "score_questions",
    "score_core",
    "score_optimization",
    "chance_score",
    "CORE_CHANCE",
    "OPT_TF_CHANCE",
    "GradeReport",
    "grade",
    "run_interactive",
    "all_questions",
]
