"""Demonstration infrastructure: ground truth you can execute.

A :class:`Demonstration` is a list of :class:`Claim` records, each the
outcome of an actual computation on the softfloat substrate (usually
cross-checked against the host's native binary64).  The test suite runs
every question's demonstration; a quiz whose answer key cannot be
demonstrated is a quiz you should not trust.
"""

from __future__ import annotations

import dataclasses

__all__ = ["Claim", "Demonstration", "claim"]


@dataclasses.dataclass(frozen=True)
class Claim:
    """One verified statement with its witnesses.

    ``witnesses`` maps names to rendered values that exhibit the claim
    (e.g. ``{"a": "1e16", "lhs": "0.0", "rhs": "1.0"}``).
    """

    text: str
    passed: bool
    witnesses: dict[str, str] = dataclasses.field(default_factory=dict)

    def render(self) -> str:
        """Single-line human-readable form."""
        mark = "ok" if self.passed else "FAILED"
        detail = ""
        if self.witnesses:
            pairs = ", ".join(f"{k}={v}" for k, v in self.witnesses.items())
            detail = f"  [{pairs}]"
        return f"[{mark}] {self.text}{detail}"


def claim(text: str, passed: bool, **witnesses: object) -> Claim:
    """Build a :class:`Claim`, rendering witness values to strings."""
    return Claim(text=text, passed=bool(passed), witnesses={
        key: str(value) for key, value in witnesses.items()
    })


@dataclasses.dataclass(frozen=True)
class Demonstration:
    """A verified bundle of claims demonstrating one question's answer."""

    qid: str
    claims: tuple[Claim, ...]

    @property
    def ok(self) -> bool:
        """True when every claim held."""
        return all(c.passed for c in self.claims)

    def render(self) -> str:
        """Multi-line report of all claims."""
        lines = [f"demonstration for {self.qid}:"]
        lines.extend("  " + c.render() for c in self.claims)
        return "\n".join(lines)

    @classmethod
    def build(cls, qid: str, claims: list[Claim]) -> "Demonstration":
        """Assemble from a claim list (must be non-empty)."""
        if not claims:
            raise ValueError(f"demonstration for {qid!r} has no claims")
        return cls(qid=qid, claims=tuple(claims))
