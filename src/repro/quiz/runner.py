"""Interactive and batch quiz administration.

:func:`run_interactive` administers the survey's quizzes on a terminal
(used by ``python -m repro quiz``); :func:`grade` scores a response set
and renders a report card with per-question explanations and — the part
no paper survey could offer — the executable demonstration of each
answer the participant missed.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Mapping

from repro.quiz.core import CORE_QUESTIONS
from repro.quiz.model import Question, QuestionKind, TFAnswer
from repro.quiz.optimization import OPTIMIZATION_QUESTIONS
from repro.quiz.scoring import (
    CORE_CHANCE,
    OPT_TF_CHANCE,
    QuizScore,
    score_core,
    score_optimization,
)
from repro.quiz.suspicion import SUSPICION_ITEMS
from repro.telemetry import get_telemetry

__all__ = ["GradeReport", "grade", "run_interactive", "all_questions"]


def all_questions() -> tuple[Question, ...]:
    """Core followed by optimization questions, in instrument order."""
    return CORE_QUESTIONS + OPTIMIZATION_QUESTIONS


@dataclasses.dataclass(frozen=True)
class GradeReport:
    """A graded submission."""

    core: QuizScore
    optimization: QuizScore
    missed: tuple[str, ...]  # question ids answered incorrectly

    def render(self, *, show_demos: bool = False) -> str:
        """Report card text; with ``show_demos`` each missed question's
        ground truth demonstration is executed and included."""
        lines = [
            f"core quiz:         {self.core.correct}/{self.core.total} "
            f"correct (chance {CORE_CHANCE:.1f}), "
            f"{self.core.incorrect} incorrect, "
            f"{self.core.dont_know} don't-know, "
            f"{self.core.unanswered} unanswered",
            f"optimization quiz: "
            f"{self.optimization.correct}/{self.optimization.total} correct "
            f"(chance {OPT_TF_CHANCE:.1f} on the T/F questions), "
            f"{self.optimization.incorrect} incorrect, "
            f"{self.optimization.dont_know} don't-know, "
            f"{self.optimization.unanswered} unanswered",
        ]
        if self.missed:
            lines.append("missed questions:")
            lookup = {q.qid: q for q in all_questions()}
            for qid in self.missed:
                question = lookup[qid]
                correct = (
                    question.correct.value
                    if isinstance(question.correct, TFAnswer)
                    else question.correct
                )
                lines.append(f"  {question.label}: correct answer is "
                             f"{correct!s} — {question.explanation}")
                if show_demos and question.demonstrate is not None:
                    demo = question.verify_ground_truth()
                    lines.extend("    " + line for line in
                                 demo.render().splitlines())
        return "\n".join(lines)


def grade(responses: Mapping[str, TFAnswer | str]) -> GradeReport:
    """Grade a full response set (core + optimization question ids)."""
    telemetry = get_telemetry()
    with telemetry.tracer.span("quiz.grade", responses=len(responses)):
        core = score_core(responses)
        optimization = score_optimization(
            responses, include_multiple_choice=True
        )
        missed = tuple(
            q.qid for q in all_questions() if q.grade(
                responses.get(q.qid, TFAnswer.UNANSWERED)
            ) is False
        )
    telemetry.metrics.counter("quiz.submissions_graded_total").inc()
    telemetry.metrics.counter("quiz.questions_missed_total").inc(len(missed))
    return GradeReport(core=core, optimization=optimization, missed=missed)


_TF_KEYS = {
    "t": TFAnswer.TRUE,
    "true": TFAnswer.TRUE,
    "f": TFAnswer.FALSE,
    "false": TFAnswer.FALSE,
    "d": TFAnswer.DONT_KNOW,
    "dk": TFAnswer.DONT_KNOW,
    "": TFAnswer.UNANSWERED,
}


def run_interactive(
    ask: Callable[[str], str] | None = None,
    emit: Callable[[str], None] = print,
    *,
    include_suspicion: bool = True,
    show_demos: bool = True,
) -> GradeReport:
    """Administer the quizzes on a terminal.

    ``ask``/``emit`` are injectable for testing.  Accepts ``t``/``f``/
    ``d`` (don't know) or empty (skip) for true/false questions, an
    option name or number for multiple choice, and ``1``–``5`` for the
    suspicion items.
    """
    if ask is None:
        # Resolve the builtin at call time so tests can monkeypatch it.
        import builtins

        ask = builtins.input
    responses: dict[str, TFAnswer | str] = {}
    emit("Floating point understanding quiz (Dinda & Hetland, IPDPS 2018)")
    emit("Answer t(rue) / f(alse) / d(on't know), or press enter to skip.\n")
    for number, question in enumerate(all_questions(), start=1):
        emit(f"Q{number}. {question.prompt}")
        if question.snippet:
            emit("    " + question.snippet.replace("\n", "\n    "))
        if question.kind is QuestionKind.TRUE_FALSE:
            while True:
                raw = ask("  [t/f/d] > ").strip().lower()
                if raw in _TF_KEYS:
                    responses[question.qid] = _TF_KEYS[raw]
                    break
                emit("  please answer t, f, d, or press enter to skip")
        else:
            emit("  options: " + ", ".join(
                f"{i}={c}" for i, c in enumerate(question.choices, start=1)
            ) + ", d=don't know")
            while True:
                raw = ask("  > ").strip().lower()
                if raw in ("d", "dk"):
                    responses[question.qid] = "dont-know"
                    break
                if raw == "":
                    responses[question.qid] = "unanswered"
                    break
                if raw in question.choices:
                    responses[question.qid] = raw
                    break
                if raw.isdigit() and 1 <= int(raw) <= len(question.choices):
                    responses[question.qid] = question.choices[int(raw) - 1]
                    break
                emit("  please pick an option number/name, d, or enter")
        emit("")

    if include_suspicion:
        emit("Suspicion quiz: a simulation ran; the sticky condition codes")
        emit("report each condition below occurred at least once. Rate your")
        emit("suspicion of the results from 1 (none) to 5 (maximum).\n")
        for item in SUSPICION_ITEMS:
            emit(f"{item.label}: {item.description}")
            while True:
                raw = ask("  [1-5] > ").strip()
                if raw in ("1", "2", "3", "4", "5"):
                    responses[f"suspicion_{item.qid}"] = raw
                    break
                emit("  please answer 1-5")
            emit("")

    report = grade(responses)
    emit(report.render(show_demos=show_demos))
    return report
