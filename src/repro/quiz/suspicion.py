"""The suspicion quiz (paper Section II-D).

The scenario: a scientific simulation is wrapped with code that reads
the sticky floating point condition codes afterward and reports which
exceptional conditions occurred at least once.  For each condition the
participant rates, on a 5-point Likert scale, how suspicious the
occurrence would make them of the simulation's results.

There are no wrong answers on the instrument; the paper's analysis
compares responses against an "arguably reasonable ranking": Invalid
(NaN) is by far the most suspicious, then Overflow (infinity), with
Underflow, Precision, and Denorm common and usually benign.  The
``reference_level`` fields encode that ranking, and each item's
rationale can be *exercised* with :mod:`repro.fpspy`'s workloads.
"""

from __future__ import annotations

from repro.fpenv.flags import FPFlag
from repro.quiz.model import LikertItem

__all__ = [
    "SUSPICION_ITEMS",
    "SUSPICION_ORDER",
    "suspicion_item",
    "LIKERT_SCALE",
    "FLAG_FOR_ITEM",
    "reference_ranking",
]

#: Likert levels: 1 = not suspicious at all ... 5 = maximally suspicious.
LIKERT_SCALE: tuple[int, ...] = (1, 2, 3, 4, 5)

SUSPICION_ITEMS: tuple[LikertItem, ...] = (
    LikertItem(
        qid="overflow",
        label="Overflow",
        description=(
            "The result of an operation was an infinity (the computation "
            "exceeded the largest representable value at least once)."
        ),
        reference_level=4,
        rationale=(
            "Usually a sign of trouble in real code: an infinity can "
            "wash back out (1/inf = 0) and contaminate results invisibly."
        ),
    ),
    LikertItem(
        qid="underflow",
        label="Underflow",
        description=(
            "The result of an operation was a zero (a nonzero exact "
            "result was too tiny to represent and became 0)."
        ),
        reference_level=2,
        rationale=(
            "Probably not a sign of trouble: tiny results collapsing to "
            "zero is routine in converged iterations and probabilities."
        ),
    ),
    LikertItem(
        qid="precision",
        label="Precision",
        description=(
            "The result of an operation required rounding, losing some "
            "precision relative to the exact result."
        ),
        reference_level=2,
        rationale=(
            "Rounding is pervasive — nearly every operation rounds; it is "
            "only a problem if the algorithm's numerics were not designed "
            "for it."
        ),
    ),
    LikertItem(
        qid="invalid",
        label="Invalid",
        description=(
            "The result of an operation was a NaN (an invalid operation "
            "such as 0/0, inf - inf, or sqrt of a negative occurred)."
        ),
        reference_level=5,
        rationale=(
            "Almost invariably serious trouble in real code: something "
            "mathematically meaningless happened.  Maximum suspicion is "
            "warranted."
        ),
    ),
    LikertItem(
        qid="denorm",
        label="Denorm",
        description=(
            "The result of an operation was a denormalized (subnormal) "
            "number — a value very near zero with reduced precision."
        ),
        reference_level=2,
        rationale=(
            "Common and usually benign given sound algorithm design; "
            "suspicious only if very tiny nonzero values are unexpected."
        ),
    ),
)

#: Figure 22 series order.
SUSPICION_ORDER: tuple[str, ...] = tuple(item.qid for item in SUSPICION_ITEMS)

#: Map from suspicion item to the sticky flag fpspy monitors for it.
FLAG_FOR_ITEM: dict[str, FPFlag] = {
    "overflow": FPFlag.OVERFLOW,
    "underflow": FPFlag.UNDERFLOW,
    "precision": FPFlag.INEXACT,
    "invalid": FPFlag.INVALID,
    "denorm": FPFlag.DENORMAL_RESULT,
}

_BY_ID = {item.qid: item for item in SUSPICION_ITEMS}


def suspicion_item(qid: str) -> LikertItem:
    """Look up a suspicion item by id."""
    return _BY_ID[qid]


def reference_ranking() -> list[str]:
    """Item ids from most to least reference suspicion (ties broken by
    instrument order): invalid >> overflow >> the rest."""
    return sorted(
        SUSPICION_ORDER,
        key=lambda qid: (-_BY_ID[qid].reference_level, SUSPICION_ORDER.index(qid)),
    )
