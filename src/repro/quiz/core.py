"""The 15 core-quiz questions (paper Section II-B), with executable
ground truth.

Each question mirrors the survey's structure: a C-syntax snippet, an
assertion, and a true/false answer.  The ``demonstrate`` callables prove
every answer twice over — on the from-scratch softfloat engine and,
where the claim concerns binary64, on the host's native IEEE doubles —
and, for the universally quantified claims, by *exhaustive* sweeps over
a tiny 6-bit format in which checking all pairs is tractable.
"""

from __future__ import annotations

import math
import random

import numpy as np

from repro.fpenv.env import FPEnv
from repro.fpenv.flags import FPFlag
from repro.fpenv.rounding import RoundingMode
from repro.quiz.demos import Claim, Demonstration, claim
from repro.quiz.model import Question, QuestionKind, Section, TFAnswer
from repro.softfloat import (
    BINARY64,
    TINY8,
    SoftFloat,
    fp_add,
    fp_div,
    fp_eq,
    fp_ge,
    fp_mul,
    fp_sub,
    get_backend,
    next_up,
    sf,
    significant_bits,
)
from repro.softfloat.backend import ORD_EQUAL, ORD_GREATER

__all__ = ["CORE_QUESTIONS", "core_question", "CORE_QUESTION_ORDER"]


def _tiny_values(include_special: bool = False) -> list[SoftFloat]:
    """Every encoding of the 6-bit TINY8 format (finite only unless
    ``include_special``), small enough for exhaustive pair sweeps."""
    values = []
    for bits in range(1 << TINY8.width):
        x = SoftFloat(TINY8, bits)
        if x.is_nan:
            continue
        if x.is_inf and not include_special:
            continue
        values.append(x)
    return values


def _tiny_lanes(include_special: bool = False) -> np.ndarray:
    """The same sweep domain as packed uint64 lanes for the batch
    backend (the exhaustive pair sweeps ride vectorized kernels)."""
    return np.array(
        [v.bits for v in _tiny_values(include_special)], dtype=np.uint64
    )


def _tiny_pairs(include_special: bool = False) -> tuple[np.ndarray, np.ndarray]:
    """All ordered pairs of the sweep domain, as two lane arrays."""
    lanes = _tiny_lanes(include_special)
    return np.repeat(lanes, lanes.shape[0]), np.tile(lanes, lanes.shape[0])


# ----------------------------------------------------------------------
# Demonstrations
# ----------------------------------------------------------------------

def demo_commutativity() -> Demonstration:
    """a + b == b + a holds for all non-NaN operands."""
    claims: list[Claim] = []
    backend = get_backend("batch")
    a, b = _tiny_pairs(include_special=True)
    forward = backend.run_packed(
        "add", TINY8, [a, b], RoundingMode.NEAREST_EVEN, False, False
    )
    reverse = backend.run_packed(
        "add", TINY8, [b, a], RoundingMode.NEAREST_EVEN, False, False
    )
    holds = bool(np.array_equal(forward.bits, reverse.bits))
    claims.append(claim(
        "exhaustive tiny-format sweep: x+y is bit-identical to y+x for "
        "every non-NaN pair (including infinities and signed zeros)",
        holds,
        format=TINY8.name,
    ))
    rng = random.Random(754)
    native_ok = True
    for _ in range(2000):
        a = rng.uniform(-1e308, 1e308) * rng.choice([1.0, 1e-300, 1e300])
        b = rng.uniform(-1e308, 1e308)
        if (a + b) != (b + a) and not (math.isnan(a + b)):
            native_ok = False
            break
    claims.append(claim(
        "2000 random host doubles: a+b == b+a every time", native_ok
    ))
    return Demonstration.build("commutativity", claims)


def demo_associativity() -> Demonstration:
    """(a + b) + c == a + (b + c) can fail."""
    a, b, c = sf(0.1), sf(0.2), sf(0.3)
    lhs = (a + b) + c
    rhs = a + (b + c)
    claims = [claim(
        "(0.1 + 0.2) + 0.3 differs from 0.1 + (0.2 + 0.3) on softfloat",
        not lhs.same_bits(rhs),
        lhs=lhs, rhs=rhs,
    )]
    claims.append(claim(
        "same witness on host doubles",
        (0.1 + 0.2) + 0.3 != 0.1 + (0.2 + 0.3),
        lhs=repr((0.1 + 0.2) + 0.3), rhs=repr(0.1 + (0.2 + 0.3)),
    ))
    big, one = sf(float(2**53)), sf(1.0)
    claims.append(claim(
        "absorption witness: (2^53 + 1) - 2^53 == 0 but 2^53 + (1 - 2^53) != 0",
        ((big + one) - big) == sf(0.0) and (big + (one - big)) != sf(0.0),
        absorbed=(big + one) - big,
    ))
    return Demonstration.build("associativity", claims)


def demo_distributivity() -> Demonstration:
    """a*(b + c) == a*b + a*c can fail."""
    found = None
    rng = random.Random(754)
    for _ in range(1000):
        a = sf(rng.uniform(-3, 3))
        b = sf(rng.uniform(-3, 3))
        c = sf(rng.uniform(-3, 3))
        lhs = a * (b + c)
        rhs = a * b + a * c
        if not lhs.same_bits(rhs) and lhs.is_finite and rhs.is_finite:
            found = (a, b, c, lhs, rhs)
            break
    claims = [claim(
        "seeded search found finite a,b,c with a*(b+c) != a*b + a*c",
        found is not None,
        **({} if found is None else {
            "a": found[0], "b": found[1], "c": found[2],
            "lhs": found[3], "rhs": found[4],
        }),
    )]
    if found is not None:
        af, bf, cf = (x.to_float() for x in found[:3])
        claims.append(claim(
            "the same witness separates the two sides on host doubles",
            af * (bf + cf) != af * bf + af * cf,
        ))
    x, huge = sf(2.0), sf(1e308)
    claims.append(claim(
        "overflow witness: 2*(1e308 + (-1e308)) == 0 but 2*1e308 + 2*(-1e308)"
        " goes through infinity and yields NaN",
        (x * (huge + (-huge))).is_zero
        and (x * huge + x * (-huge)).is_nan,
    ))
    return Demonstration.build("distributivity", claims)


def demo_ordering() -> Demonstration:
    """((a + b) - a) == b can fail."""
    a, b = sf(float(2**53)), sf(1.0)
    result = (a + b) - a
    claims = [claim(
        "softfloat: ((2^53 + 1.0) - 2^53) == 0.0, not 1.0 (absorption)",
        result == sf(0.0) and result != b,
        result=result,
    )]
    claims.append(claim(
        "host doubles agree", ((2.0**53 + 1.0) - 2.0**53) != 1.0,
        native=repr((2.0**53 + 1.0) - 2.0**53),
    ))
    inf = SoftFloat.inf(BINARY64)
    one = sf(1.0)
    claims.append(claim(
        "infinity witness: ((1e308*10 + 1) - 1e308*10) is NaN, not 1",
        ((inf + one) - inf).is_nan,
    ))
    return Demonstration.build("ordering", claims)


def demo_identity() -> Demonstration:
    """a == a can be FALSE (for NaN)."""
    nan = SoftFloat.nan(BINARY64)
    claims = [claim(
        "softfloat: NaN == NaN is false under IEEE quiet equality",
        not fp_eq(nan, nan),
    )]
    claims.append(claim(
        "host doubles: float('nan') == float('nan') is false",
        float("nan") != float("nan"),
    ))
    zero_div = fp_div(sf(0.0), sf(0.0), FPEnv())
    claims.append(claim(
        "a computed 0.0/0.0 result also fails a == a",
        not fp_eq(zero_div, zero_div),
        value=zero_div,
    ))
    lanes = _tiny_lanes(include_special=True)
    codes = get_backend("batch").run_packed(
        "compare_quiet", TINY8, [lanes, lanes],
        RoundingMode.NEAREST_EVEN, False, False,
    )
    finite_ok = bool(np.all(codes.bits == ORD_EQUAL))
    claims.append(claim(
        "but every non-NaN value (exhaustive tiny format) satisfies a == a",
        finite_ok,
    ))
    return Demonstration.build("identity", claims)


def demo_negative_zero() -> Demonstration:
    """Two zero values can NOT compare unequal: -0 == +0."""
    pz, nz = sf(0.0), sf(-0.0)
    claims = [claim(
        "softfloat: -0.0 == 0.0 despite different bit patterns",
        fp_eq(pz, nz) and not pz.same_bits(nz),
        pos_bits=hex(pz.bits), neg_bits=hex(nz.bits),
    )]
    claims.append(claim(
        "host doubles: -0.0 == 0.0", -0.0 == 0.0,
    ))
    claims.append(claim(
        "yet the zeros are distinguishable: 1/+0 = +inf, 1/-0 = -inf",
        fp_div(sf(1.0), pz, FPEnv()).same_bits(SoftFloat.inf(BINARY64, 0))
        and fp_div(sf(1.0), nz, FPEnv()).same_bits(SoftFloat.inf(BINARY64, 1)),
    ))
    return Demonstration.build("negative_zero", claims)


def demo_square() -> Demonstration:
    """a*a >= 0 holds for every non-NaN a (unlike integer arithmetic)."""
    backend = get_backend("batch")
    lanes = _tiny_lanes(include_special=True)
    squares = backend.run_packed(
        "mul", TINY8, [lanes, lanes], RoundingMode.NEAREST_EVEN, False, False
    )
    zeros = np.full(lanes.shape[0], SoftFloat.zero(TINY8).bits,
                    dtype=np.uint64)
    codes = backend.run_packed(
        "compare_signaling", TINY8, [squares.bits, zeros],
        RoundingMode.NEAREST_EVEN, False, False,
    )
    holds = bool(np.all((codes.bits == ORD_EQUAL) | (codes.bits == ORD_GREATER)))
    claims = [claim(
        "exhaustive tiny-format sweep: x*x >= 0 for every non-NaN x",
        holds,
    )]
    big = SoftFloat.max_finite(BINARY64, sign=1)
    claims.append(claim(
        "overflowing square saturates to +infinity, which is still >= 0",
        fp_ge(fp_mul(big, big, FPEnv()), SoftFloat.zero(BINARY64), FPEnv()),
        square=fp_mul(big, big, FPEnv()),
    ))
    # The contrast that causes the confusion: int squares CAN be negative.
    wrapped = (46341 * 46341) & 0xFFFFFFFF  # 46341^2 > 2^31
    as_signed = wrapped - (1 << 32) if wrapped >= (1 << 31) else wrapped
    claims.append(claim(
        "contrast: 32-bit integer 46341*46341 wraps negative",
        as_signed < 0,
        wrapped=as_signed,
    ))
    return Demonstration.build("square", claims)


def demo_overflow() -> Demonstration:
    """FP overflow saturates at infinity; it does not wrap like ints."""
    env = FPEnv()
    big = SoftFloat.max_finite(BINARY64)
    doubled = fp_mul(big, sf(2.0), env)
    claims = [claim(
        "softfloat: DBL_MAX * 2 == +inf and raises the overflow flag",
        doubled.same_bits(SoftFloat.inf(BINARY64))
        and env.test_flag(FPFlag.OVERFLOW),
        result=doubled,
    )]
    claims.append(claim(
        "host doubles: 1.7976931348623157e308 * 2 == inf",
        math.isinf(1.7976931348623157e308 * 2),
    ))
    wrapped = (0x7FFFFFFF + 1) & 0xFFFFFFFF
    as_signed = wrapped - (1 << 32)
    claims.append(claim(
        "contrast: 32-bit INT_MAX + 1 wraps to INT_MIN (modular, not "
        "saturating)",
        as_signed == -(1 << 31),
        wrapped=as_signed,
    ))
    claims.append(claim(
        "and the saturated infinity sticks: inf - DBL_MAX is still inf",
        fp_sub(doubled, big, FPEnv()).same_bits(SoftFloat.inf(BINARY64)),
    ))
    return Demonstration.build("overflow", claims)


def demo_divide_by_zero() -> Demonstration:
    """1.0/0.0 IS a non-NaN value: +infinity."""
    env = FPEnv()
    result = fp_div(sf(1.0), sf(0.0), env)
    claims = [claim(
        "softfloat: 1.0/0.0 == +inf (not NaN); raises divide-by-zero, "
        "not invalid",
        result.same_bits(SoftFloat.inf(BINARY64))
        and env.test_flag(FPFlag.DIV_BY_ZERO)
        and not env.test_flag(FPFlag.INVALID),
        result=result,
    )]
    env2 = FPEnv()
    downstream = fp_div(sf(1.0), result, env2)
    claims.append(claim(
        "the infinity can silently wash out: 1.0/(1.0/0.0) == 0.0, an "
        "ordinary-looking number in the output",
        downstream == sf(0.0),
        downstream=downstream,
    ))
    return Demonstration.build("divide_by_zero", claims)


def demo_zero_divide_by_zero() -> Demonstration:
    """0.0/0.0 is NOT a non-NaN value: it is NaN."""
    env = FPEnv()
    result = fp_div(sf(0.0), sf(0.0), env)
    claims = [claim(
        "softfloat: 0.0/0.0 is NaN and raises the invalid flag",
        result.is_nan and env.test_flag(FPFlag.INVALID),
        result=result,
    )]
    propagated = fp_add(result, sf(1.0), FPEnv())
    claims.append(claim(
        "the NaN propagates through later arithmetic to the output, "
        "making the user suspicious (desirably so)",
        propagated.is_nan,
    ))
    return Demonstration.build("zero_divide_by_zero", claims)


def demo_saturation_plus() -> Demonstration:
    """(a + 1.0) == a is possible."""
    inf = SoftFloat.inf(BINARY64)
    claims = [claim(
        "saturation witness: a = +inf gives (a + 1.0) == a",
        fp_eq(fp_add(inf, sf(1.0), FPEnv()), inf),
    )]
    big = sf(float(2**53))
    claims.append(claim(
        "rounding witness: a = 2^53 gives (a + 1.0) == a because 1.0 is "
        "below half an ulp",
        fp_eq(fp_add(big, sf(1.0), FPEnv()), big),
        a=big,
    ))
    claims.append(claim(
        "host doubles agree on the rounding witness",
        (2.0**53 + 1.0) == 2.0**53,
    ))
    return Demonstration.build("saturation_plus", claims)


def demo_saturation_minus() -> Demonstration:
    """(a - 1.0) == a is possible: you cannot back off an infinity."""
    inf = SoftFloat.inf(BINARY64)
    claims = [claim(
        "a = +inf: (a - 1.0) == a — subtraction does not leave saturation",
        fp_eq(fp_sub(inf, sf(1.0), FPEnv()), inf),
    )]
    big = sf(float(2**53))
    claims.append(claim(
        "rounding witness: a = 2^53 gives (a - 1.0) != a (exact here) but "
        "a = 2^54 gives (a - 1.0) == a",
        not fp_eq(fp_sub(big, sf(1.0), FPEnv()), big)
        and fp_eq(fp_sub(sf(float(2**54)), sf(1.0), FPEnv()), sf(float(2**54))),
    ))
    claims.append(claim(
        "host doubles agree", (2.0**54 - 1.0) == 2.0**54,
    ))
    return Demonstration.build("saturation_minus", claims)


def demo_denormal_precision() -> Demonstration:
    """Numbers very near zero (subnormals) carry less precision."""
    smallest = SoftFloat.min_subnormal(BINARY64)
    claims = [claim(
        "the smallest positive double carries 1 significant bit vs the "
        "53 of any normal number",
        significant_bits(smallest) == 1
        and significant_bits(sf(1.0)) == 53,
        value=smallest,
    )]
    # Precision loss in action: dividing a subnormal by 3 and multiplying
    # back misses by far more (relatively) than the same thing at 1.0.
    sub = SoftFloat.min_subnormal(BINARY64)
    third = fp_div(sub, sf(3.0), FPEnv())
    claims.append(claim(
        "min_subnormal / 3 collapses to zero — total relative error 1.0",
        third.is_zero,
    ))
    spaced = next_up(sub).to_fraction() - sub.to_fraction()
    rel_gap_sub = spaced / sub.to_fraction()
    rel_gap_norm = next_up(sf(1.0)).to_fraction() - 1
    claims.append(claim(
        "relative spacing at the smallest subnormal is 1.0 vs 2^-52 at 1.0",
        rel_gap_sub == 1 and rel_gap_norm == sf(2.0**-52).to_fraction(),
    ))
    gradual = fp_div(SoftFloat.min_normal(BINARY64), sf(2.0), FPEnv())
    claims.append(claim(
        "gradual underflow: min_normal/2 is a nonzero subnormal, not zero",
        gradual.is_subnormal,
        value=gradual,
    ))
    return Demonstration.build("denormal_precision", claims)


def demo_operation_precision() -> Demonstration:
    """Operation results can have less precision than the exact result
    of the operands (rounding)."""
    env = FPEnv()
    result = fp_add(sf(0.1), sf(0.2), env)
    exact = sf(0.1).to_fraction() + sf(0.2).to_fraction()
    claims = [claim(
        "0.1 + 0.2 raises the inexact flag: the delivered result is not "
        "the exact sum of the operands",
        env.test_flag(FPFlag.INEXACT) and result.to_fraction() != exact,
        delivered=result,
    )]
    env2 = FPEnv()
    product = fp_mul(sf(1.0 + 2**-52), sf(1.0 + 2**-52), env2)
    claims.append(claim(
        "(1+ulp)^2 needs 105 significand bits exactly; the 53-bit result "
        "is rounded (inexact raised)",
        env2.test_flag(FPFlag.INEXACT),
        delivered=product,
    ))
    env3 = FPEnv()
    fp_add(sf(1.5), sf(0.25), env3)
    claims.append(claim(
        "contrast: representable results raise no inexact (1.5 + 0.25)",
        not env3.test_flag(FPFlag.INEXACT),
    ))
    return Demonstration.build("operation_precision", claims)


def demo_exception_signal() -> Demonstration:
    """Exceptional results do NOT signal the application by default."""
    env = FPEnv()  # default: all traps masked
    outcomes = []
    try:
        fp_div(sf(1.0), sf(0.0), env)
        fp_div(sf(0.0), sf(0.0), env)
        fp_mul(SoftFloat.max_finite(BINARY64), sf(2.0), env)
        outcomes.append(True)
    except ArithmeticError:  # pragma: no cover - the claim is that it won't
        outcomes.append(False)
    claims = [claim(
        "divide-by-zero, invalid, and overflow all executed without any "
        "signal/exception reaching the program",
        outcomes == [True],
    )]
    claims.append(claim(
        "...but the sticky status flags silently recorded all three",
        env.test_flag(FPFlag.DIV_BY_ZERO)
        and env.test_flag(FPFlag.INVALID)
        and env.test_flag(FPFlag.OVERFLOW),
        flags=env,
    ))
    trap_env = FPEnv(traps=FPFlag.DIV_BY_ZERO)
    trapped = False
    try:
        fp_div(sf(1.0), sf(0.0), trap_env)
    except ArithmeticError:
        trapped = True
    claims.append(claim(
        "signals exist but are opt-in: enabling the trap makes the same "
        "operation raise",
        trapped,
    ))
    claims.append(claim(
        "contrast with integers: Python integer 1//0 does raise by default",
        _int_division_raises(),
    ))
    return Demonstration.build("exception_signal", claims)


def _int_division_raises() -> bool:
    try:
        _ = 1 // 0
    except ZeroDivisionError:
        return True
    return False  # pragma: no cover


# ----------------------------------------------------------------------
# Question definitions (order matches Figure 14)
# ----------------------------------------------------------------------

def _tf(qid, label, prompt, snippet, correct, explanation, demo) -> Question:
    return Question(
        qid=qid,
        label=label,
        section=Section.CORE,
        kind=QuestionKind.TRUE_FALSE,
        prompt=prompt,
        snippet=snippet,
        correct=correct,
        explanation=explanation,
        demonstrate=demo,
        chance_rate=0.5,
    )


CORE_QUESTIONS: tuple[Question, ...] = (
    _tf(
        "commutativity", "Commutativity",
        "Assuming x and y never hold the result of invalid operations, "
        "this function always returns 1.",
        "int f(double x, double y) {\n  return (x + y) == (y + x);\n}",
        TFAnswer.TRUE,
        "Floating point addition is commutative (for non-NaN operands): "
        "both orders round the same exact sum.",
        demo_commutativity,
    ),
    _tf(
        "associativity", "Associativity",
        "Assuming a, b, and c never hold the result of invalid "
        "operations, this function always returns 1.",
        "int f(double a, double b, double c) {\n"
        "  return ((a + b) + c) == (a + (b + c));\n}",
        TFAnswer.FALSE,
        "Each addition rounds, so grouping matters; misjudging this is a "
        "common source of problems (e.g. parallel reductions).",
        demo_associativity,
    ),
    _tf(
        "distributivity", "Distributivity",
        "Assuming a, b, and c never hold the result of invalid "
        "operations, this function always returns 1.",
        "int f(double a, double b, double c) {\n"
        "  return (a * (b + c)) == (a*b + a*c);\n}",
        TFAnswer.FALSE,
        "Distributivity of real arithmetic does not survive per-operation "
        "rounding (or intermediate overflow).",
        demo_distributivity,
    ),
    _tf(
        "ordering", "Ordering",
        "Assuming a and b never hold the result of invalid operations, "
        "this function always returns 1.",
        "int f(double a, double b) {\n"
        "  return ((a + b) - a) == b;\n}",
        TFAnswer.FALSE,
        "Rounding (absorption) and infinities break it: (1e16+1)-1e16 is "
        "0, not 1.",
        demo_ordering,
    ),
    _tf(
        "identity", "Identity",
        "For any double a — including the results of any previous "
        "operations whatsoever — this function always returns 1.",
        "int f(double a) {\n  return a == a;\n}",
        TFAnswer.FALSE,
        "If a holds the result of an invalid operation (a NaN), a == a is "
        "false: NaNs compare unequal to everything, themselves included.",
        demo_identity,
    ),
    _tf(
        "negative_zero", "Negative Zero",
        "Given two double values x and y that are each some form of "
        "zero, it is possible for x == y to be false.",
        "/* x and y are both zeros (the standard has more than one) */\n"
        "int f(double x, double y) {\n  return x == y;\n}",
        TFAnswer.FALSE,
        "The standard has a negative zero, but +0 and -0 compare equal; "
        "no pair of zeros compares unequal.",
        demo_negative_zero,
    ),
    _tf(
        "square", "Square",
        "Assuming a never holds the result of an invalid operation, this "
        "function always returns 1.",
        "int f(double a) {\n  return (a * a) >= 0;\n}",
        TFAnswer.TRUE,
        "A square is never negative in floating point — overflow "
        "saturates to +inf, which is still >= 0.  (Integer squares CAN "
        "wrap negative, a common confusion.)",
        demo_square,
    ),
    _tf(
        "overflow", "Overflow",
        "When a double arithmetic operation overflows the largest finite "
        "value, the result wraps around, analogously to what happens "
        "with int arithmetic.",
        "double x = DBL_MAX;\nx = x * 2; /* what is x now? */",
        TFAnswer.FALSE,
        "Integer overflow wraps (modular); floating point overflow "
        "saturates at an infinity.",
        demo_overflow,
    ),
    _tf(
        "divide_by_zero", "Divide By Zero",
        "The result of the division below is a well-defined value, not "
        "the indicator of an invalid operation.",
        "double x = 1.0 / 0.0;",
        TFAnswer.TRUE,
        "1.0/0.0 is +infinity, which may propagate to the output looking "
        "like an ordinary number — unlike a NaN, it can hide.",
        demo_divide_by_zero,
    ),
    _tf(
        "zero_divide_by_zero", "Zero Divide By Zero",
        "The result of the division below is a well-defined value, not "
        "the indicator of an invalid operation.",
        "double x = 0.0 / 0.0;",
        TFAnswer.FALSE,
        "0.0/0.0 is an invalid operation producing NaN — desirably loud, "
        "since NaN propagates to the output.",
        demo_zero_divide_by_zero,
    ),
    _tf(
        "saturation_plus", "Saturation Plus",
        "There exists a double value a for which this function returns 1.",
        "int f(double a) {\n  return (a + 1.0) == a;\n}",
        TFAnswer.TRUE,
        "a = infinity (saturation) or any a large enough that 1.0 is "
        "under half an ulp (rounding/absorption).",
        demo_saturation_plus,
    ),
    _tf(
        "saturation_minus", "Saturation Minus",
        "There exists a double value a for which this function returns 1.",
        "int f(double a) {\n  return (a - 1.0) == a;\n}",
        TFAnswer.TRUE,
        "a = infinity: you cannot 'back off' from saturation; large "
        "finite magnitudes also absorb the 1.0.",
        demo_saturation_minus,
    ),
    _tf(
        "denormal_precision", "Denormal Precision",
        "Double values that are very near zero have less precision than "
        "values further away from zero.",
        "/* consider the smallest positive doubles */",
        TFAnswer.TRUE,
        "Subnormal (denormalized) numbers trade precision for gradual "
        "underflow: the smallest carries a single significant bit.",
        demo_denormal_precision,
    ),
    _tf(
        "operation_precision", "Operation Precision",
        "A double arithmetic operation can produce a result with lower "
        "precision than its operands.",
        "double z = x + y; /* can z be less precise? */",
        TFAnswer.TRUE,
        "Results are rounded to the format; the exact sum/product often "
        "needs more bits than the format has.",
        demo_operation_precision,
    ),
    _tf(
        "exception_signal", "Exception Signal",
        "Any double operation that delivers an exceptional result (an "
        "infinity, a NaN, etc.) will inform your application of that "
        "fact by default (e.g., via a signal).",
        "double x = 0.0 / 0.0; /* does the program get notified? */",
        TFAnswer.FALSE,
        "By default exceptions only set sticky status flags; nothing "
        "reaches the program.  A signal-free run does NOT mean no "
        "exceptional value was generated.",
        demo_exception_signal,
    ),
)

#: Figure 14 row order, by question id.
CORE_QUESTION_ORDER: tuple[str, ...] = tuple(q.qid for q in CORE_QUESTIONS)

_BY_ID = {q.qid: q for q in CORE_QUESTIONS}


def core_question(qid: str) -> Question:
    """Look up a core question by id."""
    return _BY_ID[qid]
