"""Data model for the survey's three quizzes.

A :class:`Question` bundles the prompt a participant sees with the
machine-checkable ground truth: a ``correct`` answer and a
``demonstrate`` callable that *proves* the answer by running witness
computations on the softfloat/optsim substrates (see
:mod:`repro.quiz.demos`).  Question ids and labels follow the paper's
Section II naming exactly, so analysis tables line up with Figures 14
and 15.
"""

from __future__ import annotations

import dataclasses
import enum
from collections.abc import Callable

from repro.quiz.demos import Demonstration

__all__ = [
    "Section",
    "QuestionKind",
    "TFAnswer",
    "Question",
    "LikertItem",
]


class Section(enum.Enum):
    """Survey components (paper Section II)."""

    BACKGROUND = "background"
    CORE = "core"
    OPTIMIZATION = "optimization"
    SUSPICION = "suspicion"


class QuestionKind(enum.Enum):
    """Response formats used by the instrument."""

    TRUE_FALSE = "true-false"
    MULTIPLE_CHOICE = "multiple-choice"
    LIKERT = "likert"


class TFAnswer(enum.Enum):
    """A participant's response to a true/false question.

    ``DONT_KNOW`` was an explicit option in the survey; ``UNANSWERED``
    records a skipped question.  Figure 12/14/15 tabulate all four.
    """

    TRUE = "true"
    FALSE = "false"
    DONT_KNOW = "dont-know"
    UNANSWERED = "unanswered"

    @property
    def is_substantive(self) -> bool:
        """True for an actual TRUE/FALSE commitment."""
        return self in (TFAnswer.TRUE, TFAnswer.FALSE)

    @property
    def negation(self) -> "TFAnswer":
        """The opposite substantive answer (identity for the others)."""
        if self is TFAnswer.TRUE:
            return TFAnswer.FALSE
        if self is TFAnswer.FALSE:
            return TFAnswer.TRUE
        return self


@dataclasses.dataclass(frozen=True)
class Question:
    """One quiz question with executable ground truth.

    Attributes
    ----------
    qid:
        Stable machine id (e.g. ``"associativity"``).
    label:
        The paper's display label (e.g. ``"Associativity"``).
    section:
        Which quiz the question belongs to.
    kind:
        Response format.
    prompt:
        The assertion put to the participant.
    snippet:
        C-syntax code fragment shown with the prompt (may be empty).
    correct:
        Ground truth: a :class:`TFAnswer` for true/false questions or
        the correct choice string for multiple choice.
    choices:
        Option list for multiple-choice questions.
    explanation:
        Why the answer is what it is, in the paper's terms.
    demonstrate:
        Zero-argument callable producing a verified
        :class:`~repro.quiz.demos.Demonstration`.
    chance_rate:
        Probability of answering correctly by uniform guessing among
        substantive options (0.5 for T/F).
    """

    qid: str
    label: str
    section: Section
    kind: QuestionKind
    prompt: str
    snippet: str
    correct: TFAnswer | str
    explanation: str
    demonstrate: Callable[[], Demonstration] | None = None
    choices: tuple[str, ...] = ()
    chance_rate: float = 0.5

    def grade(self, answer: TFAnswer | str) -> bool | None:
        """True/False for substantive answers; None for don't-know or
        unanswered (they are tabulated separately, not as wrong)."""
        if isinstance(answer, TFAnswer):
            if not answer.is_substantive:
                return None
            return answer == self.correct
        if answer in ("dont-know", "unanswered", ""):
            return None
        return answer == self.correct

    def verify_ground_truth(self) -> Demonstration:
        """Run the demonstration and assert every claim held."""
        if self.demonstrate is None:
            raise ValueError(f"question {self.qid!r} has no demonstration")
        demo = self.demonstrate()
        if not demo.ok:
            failed = [c.text for c in demo.claims if not c.passed]
            raise AssertionError(
                f"ground truth demonstration failed for {self.qid!r}: {failed}"
            )
        return demo


@dataclasses.dataclass(frozen=True)
class LikertItem:
    """One suspicion-quiz item: an exceptional condition rated 1–5.

    ``reference_level`` encodes the paper's "arguably reasonable
    ranking" (Section IV-D): how suspicious a well-calibrated developer
    *should* be. There are no wrong answers on the instrument itself.
    """

    qid: str
    label: str
    description: str
    reference_level: int
    rationale: str

    def __post_init__(self) -> None:
        if not 1 <= self.reference_level <= 5:
            raise ValueError("reference_level must be on the 1-5 scale")
