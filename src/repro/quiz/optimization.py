"""The optimization-quiz questions (paper Section II-C).

Three true/false questions (MADD, Flush to Zero, Fast-math) and one
multiple choice (Standard-compliant Level).  Ground truth is
demonstrated with the :mod:`repro.optsim` compliance checker: each
non-standard behavior is exhibited by a concrete divergence witness,
and ``-O2``'s compliance by the absence of one over the witness corpus.
"""

from __future__ import annotations

from repro.quiz.demos import Claim, Demonstration, claim
from repro.quiz.model import Question, QuestionKind, Section, TFAnswer
from repro.optsim import (
    O2,
    O3,
    OFAST,
    STRICT,
    find_divergence,
    is_standard_compliant,
    optimization_level,
    parse_expr,
)
from repro.optsim.evaluator import bind
from repro.softfloat import SoftFloat, sf

__all__ = [
    "OPTIMIZATION_QUESTIONS",
    "optimization_question",
    "OPTIMIZATION_QUESTION_ORDER",
    "OPT_LEVEL_CHOICES",
]


def demo_madd() -> Demonstration:
    """FMA is 754-2008, not 754-1985, and it changes results."""
    expr = parse_expr("a*b + c")
    # A crafted witness: the product needs 106 bits; fusing keeps them.
    a = sf(1.0 + 2.0**-27)
    witness = {"a": a, "b": a, "c": sf(-1.0)}
    report = find_divergence(expr, O3, extra_witnesses=[witness])
    claims: list[Claim] = [claim(
        "fusing a*b+c into one rounding produces a different result than "
        "the separate multiply-then-add on a concrete input",
        report.diverged and report.value_diverged,
        detail=report.describe(),
    )]
    claims.append(claim(
        "so MADD behavior is NOT part of the original 754-1985 two-"
        "rounding semantics (it was standardized in 754-2008 as "
        "fusedMultiplyAdd)",
        True,
    ))
    return Demonstration.build("madd", claims)


def demo_flush_to_zero() -> Demonstration:
    """FTZ/DAZ eliminate gradual underflow; not standard behavior."""
    ftz_config = STRICT.replace(name="ftz+daz", ftz=True, daz=True)
    expr = parse_expr("a * b")
    tiny = SoftFloat.min_normal(STRICT.fmt)
    witness = {"a": tiny, "b": sf(0.5)}
    report = find_divergence(expr, ftz_config, extra_witnesses=[witness])
    claims = [claim(
        "with FTZ set, min_normal * 0.5 flushes to zero instead of the "
        "standard's gradual-underflow subnormal",
        report.diverged and report.value_diverged,
        detail=report.describe(),
    )]
    from repro.fpenv.env import FPEnv
    from repro.softfloat import fp_sub, fp_eq

    # Two distinct *normal* values whose difference is subnormal.
    b = SoftFloat.min_normal(STRICT.fmt)
    a = fp_sub(b + b, sf(0.5) * b, FPEnv())  # 1.5 * min_normal
    strict_diff = fp_sub(a, b, FPEnv())
    ftz_env = FPEnv(ftz=True, daz=True)
    ftz_diff = fp_sub(a, b, ftz_env)
    claims.append(claim(
        "consequence: with FTZ, x != y no longer implies x - y != 0 "
        "(catastrophic for code that divides by a checked difference)",
        not strict_diff.is_zero and ftz_diff.is_zero
        and not fp_eq(a, b, FPEnv()),
        strict=strict_diff, flushed=ftz_diff,
    ))
    return Demonstration.build("flush_to_zero", claims)


def demo_opt_level() -> Demonstration:
    """-O2 preserves standard semantics; -O3 (contraction) does not."""
    exprs = [
        parse_expr("a*b + c"),
        parse_expr("a + b + c + d"),
        parse_expr("(a - b) / (a - b)"),
        parse_expr("x / 3.0"),
        parse_expr("sqrt(a*a + b*b)"),
    ]
    # The -O2 sweep walks every candidate of every expression (nothing
    # diverges), so it rides the batched candidate evaluation.
    o2_clean = all(
        not find_divergence(e, O2, backend="auto").diverged for e in exprs
    )
    claims = [claim(
        "-O2: no divergence from strict IEEE on any witness expression",
        o2_clean and is_standard_compliant(O2),
    )]
    o3_report = find_divergence(
        exprs[0], O3,
        extra_witnesses=[bind(O3, a=1.0 + 2.0**-27, b=1.0 + 2.0**-27, c=-1.0)],
    )
    claims.append(claim(
        "-O3: diverges (MADD contraction), so it is past the highest "
        "standard-compliant level",
        o3_report.diverged and not is_standard_compliant(O3),
    ))
    claims.append(claim(
        "-O1 is also compliant, so the *highest* compliant level is -O2",
        is_standard_compliant(optimization_level("-O1"))
        and is_standard_compliant(O2),
    ))
    return Demonstration.build("opt_level", claims)


def demo_fast_math() -> Demonstration:
    """--ffast-math can produce non-standard-compliant behavior."""
    claims: list[Claim] = []
    chain = parse_expr("a + b + c + d")
    witnesses = [bind(OFAST, a=1e16, b=1.0, c=1.0, d=-1e16)]
    report = find_divergence(chain, OFAST, extra_witnesses=witnesses)
    claims.append(claim(
        "reassociation: a left-to-right sum and the fast-math rebalanced "
        "sum differ on concrete inputs",
        report.diverged,
        detail=report.describe(),
    ))
    xx = parse_expr("x - x")
    nan_witness = [{"x": SoftFloat.inf(OFAST.fmt)}]
    report2 = find_divergence(xx, OFAST, extra_witnesses=nan_witness)
    claims.append(claim(
        "finite-math-only: inf - inf folds to 0.0 instead of NaN",
        report2.diverged,
        detail=report2.describe(),
    ))
    recip = parse_expr("x / 3.0")
    report3 = find_divergence(recip, OFAST)
    claims.append(claim(
        "reciprocal-math: x/3.0 becomes x*(1/3), double rounding",
        report3.diverged,
        detail=report3.describe(),
    ))
    return Demonstration.build("fast_math", claims)


#: Choices for the Standard-compliant Level multiple-choice question.
OPT_LEVEL_CHOICES: tuple[str, ...] = ("-O0", "-O1", "-O2", "-O3", "-Ofast")


OPTIMIZATION_QUESTIONS: tuple[Question, ...] = (
    Question(
        qid="madd",
        label="MADD",
        section=Section.OPTIMIZATION,
        kind=QuestionKind.TRUE_FALSE,
        prompt=(
            "Many processors provide a fused multiply-add instruction "
            "that computes a*b + c with a single rounding at the end. "
            "Using this instruction complies with the original IEEE 754 "
            "floating point standard."
        ),
        snippet="d = a*b + c;  /* compiled to one MADD instruction */",
        correct=TFAnswer.FALSE,
        explanation=(
            "MADD is in the newer 754-2008 standard but not the original "
            "754-1985, and it can compute a different result than "
            "separate multiply and add."
        ),
        demonstrate=demo_madd,
        chance_rate=0.5,
    ),
    Question(
        qid="flush_to_zero",
        label="Flush to Zero",
        section=Section.OPTIMIZATION,
        kind=QuestionKind.TRUE_FALSE,
        prompt=(
            "Some processors have control bits (e.g. Intel's FTZ and "
            "DAZ) that replace very small intermediate results with zero "
            "in favor of speed.  Enabling them complies with the IEEE "
            "754 standard."
        ),
        snippet="/* _MM_SET_FLUSH_ZERO_MODE(_MM_FLUSH_ZERO_ON); */",
        correct=TFAnswer.FALSE,
        explanation=(
            "FTZ/DAZ eliminate the standard's gradual underflow "
            "(denormalized numbers); on some hardware they are on by "
            "default, surprising computations that rely on tiny values."
        ),
        demonstrate=demo_flush_to_zero,
        chance_rate=0.5,
    ),
    Question(
        qid="opt_level",
        label="Standard-compliant Level",
        section=Section.OPTIMIZATION,
        kind=QuestionKind.MULTIPLE_CHOICE,
        prompt=(
            "Typical compilers offer optimization levels -O0 through "
            "-O3 and -Ofast.  Which is generally considered the highest "
            "level that still preserves standard-compliant floating "
            "point behavior?"
        ),
        snippet="cc -O? program.c",
        correct="-O2",
        choices=OPT_LEVEL_CHOICES,
        explanation=(
            "Typically -O2; -O3 additionally allows multiply-add "
            "contraction (MADD), and -Ofast implies --ffast-math."
        ),
        demonstrate=demo_opt_level,
        chance_rate=1.0 / len(OPT_LEVEL_CHOICES),
    ),
    Question(
        qid="fast_math",
        label="Fast-math",
        section=Section.OPTIMIZATION,
        kind=QuestionKind.TRUE_FALSE,
        prompt=(
            "Compilers typically have a --ffast-math option enabling "
            "aggressive floating point optimizations.  Using it can "
            "result in behavior that does not comply with the IEEE 754 "
            "standard."
        ),
        snippet="cc -O2 --ffast-math program.c",
        correct=TFAnswer.TRUE,
        explanation=(
            "Fast-math is 'the least conforming but fastest math mode': "
            "it reassociates, assumes finite math, ignores signed zeros, "
            "uses reciprocals, and flushes denormals."
        ),
        demonstrate=demo_fast_math,
        chance_rate=0.5,
    ),
)

#: Figure 15 row order, by question id.
OPTIMIZATION_QUESTION_ORDER: tuple[str, ...] = tuple(
    q.qid for q in OPTIMIZATION_QUESTIONS
)

_BY_ID = {q.qid: q for q in OPTIMIZATION_QUESTIONS}


def optimization_question(qid: str) -> Question:
    """Look up an optimization question by id."""
    return _BY_ID[qid]
