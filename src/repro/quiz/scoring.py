"""Scoring for quiz responses.

Matches the paper's tabulation (Figure 12): every question lands in
exactly one of four buckets — correct, incorrect, don't know, or
unanswered.  The optimization-quiz *score* covers only its three
true/false questions; the multiple-choice Standard-compliant Level
question is tabulated per-question (Figure 15) but "not included as it
is not a T/F question" in the aggregate.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Mapping

from repro.quiz.core import CORE_QUESTIONS
from repro.quiz.model import Question, QuestionKind, TFAnswer
from repro.quiz.optimization import OPTIMIZATION_QUESTIONS

__all__ = [
    "QuizScore",
    "score_questions",
    "score_core",
    "score_optimization",
    "chance_score",
    "CORE_CHANCE",
    "OPT_TF_CHANCE",
]


@dataclasses.dataclass(frozen=True)
class QuizScore:
    """Bucket counts for one participant on one quiz."""

    correct: int
    incorrect: int
    dont_know: int
    unanswered: int

    @property
    def total(self) -> int:
        """Number of questions scored."""
        return self.correct + self.incorrect + self.dont_know + self.unanswered

    @property
    def answered(self) -> int:
        """Number of substantive (true/false or choice) commitments."""
        return self.correct + self.incorrect

    def __add__(self, other: "QuizScore") -> "QuizScore":
        return QuizScore(
            self.correct + other.correct,
            self.incorrect + other.incorrect,
            self.dont_know + other.dont_know,
            self.unanswered + other.unanswered,
        )


def score_questions(
    questions: Iterable[Question],
    responses: Mapping[str, TFAnswer | str],
) -> QuizScore:
    """Score ``responses`` (a map from question id to answer) against
    ``questions``.  Missing responses count as unanswered."""
    correct = incorrect = dont_know = unanswered = 0
    for question in questions:
        answer = responses.get(question.qid, TFAnswer.UNANSWERED)
        if isinstance(answer, TFAnswer) and answer is TFAnswer.UNANSWERED:
            unanswered += 1
            continue
        if isinstance(answer, TFAnswer) and answer is TFAnswer.DONT_KNOW:
            dont_know += 1
            continue
        if isinstance(answer, str) and answer in ("dont-know", ""):
            dont_know += 1
            continue
        if isinstance(answer, str) and answer == "unanswered":
            unanswered += 1
            continue
        graded = question.grade(answer)
        if graded is True:
            correct += 1
        elif graded is False:
            incorrect += 1
        else:  # pragma: no cover - covered by the explicit branches above
            dont_know += 1
    return QuizScore(correct, incorrect, dont_know, unanswered)


def score_core(responses: Mapping[str, TFAnswer | str]) -> QuizScore:
    """Score the 15-question core quiz (max 15)."""
    return score_questions(CORE_QUESTIONS, responses)


def score_optimization(
    responses: Mapping[str, TFAnswer | str], *, include_multiple_choice: bool = False
) -> QuizScore:
    """Score the optimization quiz.

    By default only the three T/F questions count (max 3), matching
    Figure 12's note; pass ``include_multiple_choice=True`` to add the
    Standard-compliant Level question.
    """
    questions = [
        q
        for q in OPTIMIZATION_QUESTIONS
        if include_multiple_choice or q.kind is QuestionKind.TRUE_FALSE
    ]
    return score_questions(questions, responses)


def chance_score(questions: Iterable[Question]) -> float:
    """Expected number correct under uniform guessing among substantive
    options (the paper's 'chance' baseline: 7.5/15 core, 1.5/3 opt)."""
    return sum(q.chance_rate for q in questions)


#: The paper's chance baselines.
CORE_CHANCE: float = chance_score(CORE_QUESTIONS)
OPT_TF_CHANCE: float = chance_score(
    q for q in OPTIMIZATION_QUESTIONS if q.kind is QuestionKind.TRUE_FALSE
)
