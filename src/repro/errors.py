"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can guard an entire study run with a single ``except`` clause.
Trap-enabled floating point exceptions derive from
:class:`FloatingPointTrap` and carry the flag that fired.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "FormatError",
    "ParseError",
    "FloatingPointTrap",
    "InvalidOperationTrap",
    "DivisionByZeroTrap",
    "OverflowTrap",
    "UnderflowTrap",
    "InexactTrap",
    "CalibrationError",
    "SurveyDataError",
    "OptimizationError",
    "EngineError",
    "ShardError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class FormatError(ReproError, ValueError):
    """An invalid floating point format description or bit pattern."""


class ParseError(ReproError, ValueError):
    """A string could not be parsed as a number or expression."""


class FloatingPointTrap(ReproError, ArithmeticError):
    """A floating point exception fired while its trap was enabled.

    ``flag`` is the :class:`repro.fpenv.FPFlag` that triggered the trap;
    ``operation`` names the softfloat operation that raised it.
    """

    def __init__(self, flag, operation: str = "<unknown>") -> None:
        self.flag = flag
        self.operation = operation
        super().__init__(f"floating point trap: {flag.name.lower()} in {operation}")


class InvalidOperationTrap(FloatingPointTrap):
    """Trap for the IEEE *invalid operation* exception (NaN results)."""


class DivisionByZeroTrap(FloatingPointTrap):
    """Trap for the IEEE *division by zero* exception (exact infinities)."""


class OverflowTrap(FloatingPointTrap):
    """Trap for the IEEE *overflow* exception (rounded result too large)."""


class UnderflowTrap(FloatingPointTrap):
    """Trap for the IEEE *underflow* exception (tiny and inexact result)."""


class InexactTrap(FloatingPointTrap):
    """Trap for the IEEE *inexact* exception (result required rounding)."""


class CalibrationError(ReproError, RuntimeError):
    """The population calibration failed to converge to its targets."""


class SurveyDataError(ReproError, ValueError):
    """Malformed survey records (bad CSV/JSON, unknown categories, ...)."""


class OptimizationError(ReproError, RuntimeError):
    """An optimization pass produced an ill-formed expression tree."""


class EngineError(ReproError, RuntimeError):
    """The execution engine was misconfigured or misused (unknown task,
    bad job spec, unusable cache file, ...)."""


class ShardError(EngineError):
    """A shard failed permanently: its task raised, or every retry of a
    dying/hung worker was exhausted.  ``shard_index`` identifies the
    shard; ``details`` carries the worker-side traceback when one
    exists."""

    def __init__(self, shard_index: int, message: str,
                 details: str | None = None) -> None:
        self.shard_index = shard_index
        self.details = details
        super().__init__(f"shard {shard_index}: {message}")


class EngineInterrupted(EngineError):
    """A pool run was stopped before every shard completed (graceful
    shutdown).  In-flight shards were drained and workers reaped;
    ``completed``/``total`` say how far the job got."""

    def __init__(self, completed: int, total: int) -> None:
        self.completed = completed
        self.total = total
        super().__init__(
            f"pool stopped after {completed}/{total} shards (graceful "
            f"shutdown requested)"
        )


class ServiceError(ReproError, RuntimeError):
    """The serving layer rejected or failed a request.  ``code`` is the
    HTTP-style status the protocol carries (429, 503, ...);
    ``retry_after`` is the suggested backoff in seconds when the
    rejection is transient."""

    def __init__(self, code: int, message: str,
                 retry_after: float | None = None) -> None:
        self.code = code
        self.message = message
        self.retry_after = retry_after
        super().__init__(f"[{code}] {message}")
