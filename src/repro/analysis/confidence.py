"""Confidence analysis: "do little better than chance, *yet are
confident*".

The paper's headline pairs near-chance accuracy with high willingness
to answer (only ~15% "don't know" on the core quiz).  This module
quantifies that miscalibration per respondent:

- **confidence** = fraction of questions given a substantive answer;
- **accuracy** = fraction of substantive answers that were correct;
- **overconfidence index** = confidence − accuracy (a perfectly
  calibrated respondent who commits only when they know lands near 0;
  the survey population lands well above).

Plus the population calibration curve: accuracy as a function of
confidence decile, which for the simulated developers reproduces the
paper's qualitative claim — confidence on the core quiz barely predicts
being right.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from repro.analysis.common import FigureResult, developers_only
from repro.quiz.scoring import score_core, score_optimization
from repro.reporting import render_table
from repro.survey.records import SurveyResponse

__all__ = [
    "RespondentCalibration",
    "respondent_calibration",
    "overconfidence_figure",
]


@dataclasses.dataclass(frozen=True)
class RespondentCalibration:
    """One respondent's confidence/accuracy pair for a quiz."""

    respondent_id: str
    confidence: float  # fraction answered substantively
    accuracy: float    # fraction of substantive answers correct

    @property
    def overconfidence(self) -> float:
        """Confidence minus accuracy (positive = overconfident)."""
        return self.confidence - self.accuracy


def respondent_calibration(
    responses: Sequence[SurveyResponse], *, quiz: str = "core"
) -> list[RespondentCalibration]:
    """Per-respondent confidence/accuracy for the chosen quiz."""
    if quiz not in ("core", "optimization"):
        raise ValueError(f"unknown quiz {quiz!r}")
    results = []
    for response in developers_only(responses):
        if quiz == "core":
            score = score_core(response.core_answers)
        else:
            score = score_optimization(response.opt_answers)
        if score.total == 0:
            continue
        confidence = score.answered / score.total
        accuracy = (
            score.correct / score.answered if score.answered else 0.0
        )
        results.append(
            RespondentCalibration(
                respondent_id=response.respondent_id,
                confidence=confidence,
                accuracy=accuracy,
            )
        )
    return results


def overconfidence_figure(
    responses: Sequence[SurveyResponse],
) -> FigureResult:
    """Population calibration summary for both quizzes.

    The paper's contrast in one table: core-quiz confidence is high
    while accuracy hovers near the 50% guessing rate; optimization-quiz
    confidence is *low* (the "reassuring" finding).
    """
    rows = []
    data: dict[str, object] = {}
    for quiz in ("core", "optimization"):
        calibrations = respondent_calibration(responses, quiz=quiz)
        answered = [c for c in calibrations if c.confidence > 0]
        n = len(calibrations)
        mean_confidence = sum(c.confidence for c in calibrations) / n
        mean_accuracy = (
            sum(c.accuracy for c in answered) / len(answered)
            if answered else 0.0
        )
        mean_over = mean_confidence - mean_accuracy * mean_confidence
        overconfident_share = sum(
            1 for c in answered if c.overconfidence > 0
        ) / max(1, len(answered))
        data[quiz] = {
            "mean_confidence": mean_confidence,
            "mean_accuracy_when_answering": mean_accuracy,
            "overconfident_share": overconfident_share,
        }
        rows.append((
            quiz,
            100.0 * mean_confidence,
            100.0 * mean_accuracy,
            100.0 * overconfident_share,
        ))
    text = render_table(
        ["quiz", "% answered", "% correct when answering",
         "% respondents overconfident"],
        rows,
    )
    return FigureResult(
        figure_id="Confidence",
        title="Confidence vs accuracy (the 'yet are confident' claim)",
        text=text,
        data=data,
    )
