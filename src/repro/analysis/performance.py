"""Aggregate quiz performance: Figure 12 (table) and Figure 13
(histogram of core-quiz scores)."""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

from repro.analysis.common import FigureResult, developers_only
from repro.quiz.scoring import (
    CORE_CHANCE,
    OPT_TF_CHANCE,
    score_core,
    score_optimization,
)
from repro.reporting import render_histogram, render_table
from repro.survey.records import SurveyResponse

__all__ = ["fig12_performance", "fig13_histogram", "core_scores"]


def core_scores(responses: Sequence[SurveyResponse]) -> list[int]:
    """Per-developer core-quiz correct counts."""
    return [
        score_core(r.core_answers).correct for r in developers_only(responses)
    ]


def fig12_performance(responses: Sequence[SurveyResponse]) -> FigureResult:
    """Figure 12: average (expected) performance on both quizzes."""
    developers = developers_only(responses)
    n = len(developers)
    if n == 0:
        raise ValueError("no developer records to analyze")
    core_total = opt_total = None
    for response in developers:
        core = score_core(response.core_answers)
        opt = score_optimization(response.opt_answers)
        core_total = core if core_total is None else core_total + core
        opt_total = opt if opt_total is None else opt_total + opt
    assert core_total is not None and opt_total is not None

    def averages(total) -> dict[str, float]:
        return {
            "correct": total.correct / n,
            "incorrect": total.incorrect / n,
            "dont_know": total.dont_know / n,
            "unanswered": total.unanswered / n,
        }

    core_avg = averages(core_total)
    opt_avg = averages(opt_total)
    headers = ["quiz", "# Correct", "# Incorrect", "# Don't Know",
               "# No Answer", "# Chance"]
    rows = [
        ("Core", core_avg["correct"], core_avg["incorrect"],
         core_avg["dont_know"], core_avg["unanswered"], CORE_CHANCE),
        ("Optimization (T/F)", opt_avg["correct"], opt_avg["incorrect"],
         opt_avg["dont_know"], opt_avg["unanswered"], OPT_TF_CHANCE),
    ]
    text = render_table(headers, rows)
    return FigureResult(
        figure_id="Figure 12",
        title="Average (expected) performance on the core and optimization "
              "quizzes",
        text=text,
        data={"core": core_avg, "optimization": opt_avg,
              "core_chance": CORE_CHANCE, "opt_chance": OPT_TF_CHANCE,
              "n": n},
    )


def fig13_histogram(responses: Sequence[SurveyResponse]) -> FigureResult:
    """Figure 13: histogram of core-quiz scores (0–15)."""
    scores = core_scores(responses)
    counts = Counter(scores)
    histogram = {score: counts.get(score, 0) for score in range(0, 16)}
    mean = sum(scores) / len(scores)
    text = render_histogram(histogram)
    text += f"\nmean = {mean:.2f} (chance {CORE_CHANCE:.1f})"
    return FigureResult(
        figure_id="Figure 13",
        title="Histogram of core quiz scores (15 questions; chance mean 7.5)",
        text=text,
        data={"histogram": histogram, "mean": mean},
    )
