"""Per-question breakdowns: Figures 14 and 15.

Each row reports the percentage of developers answering the question
correctly, incorrectly, with "don't know", or not at all — with the
paper's emphasis markers: rows answered at chance level are flagged
``(chance)``, rows answered incorrectly (or unknown) more often than
correctly are flagged ``(worse)``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.common import FigureResult, developers_only
from repro.quiz.core import CORE_QUESTIONS
from repro.quiz.model import Question, TFAnswer
from repro.quiz.optimization import OPTIMIZATION_QUESTIONS
from repro.reporting import render_table
from repro.survey.records import SurveyResponse

__all__ = ["question_rates", "fig14_core_questions", "fig15_opt_questions"]


def question_rates(
    responses: Sequence[SurveyResponse], question: Question
) -> dict[str, float]:
    """Percentages of correct/incorrect/don't-know/unanswered for one
    question over the developer cohort."""
    developers = developers_only(responses)
    n = len(developers)
    if n == 0:
        raise ValueError("no developer records to analyze")
    correct = incorrect = dont_know = unanswered = 0
    for response in developers:
        if question.qid in response.core_answers:
            answer: TFAnswer | str = response.core_answers[question.qid]
        else:
            answer = response.opt_answers.get(
                question.qid, TFAnswer.UNANSWERED
            )
        if answer in (TFAnswer.UNANSWERED, "unanswered"):
            unanswered += 1
            continue
        if answer in (TFAnswer.DONT_KNOW, "dont-know"):
            dont_know += 1
            continue
        graded = question.grade(answer)
        if graded is True:
            correct += 1
        elif graded is False:
            incorrect += 1
        else:  # pragma: no cover - exhaustive above
            dont_know += 1
    return {
        "correct": 100.0 * correct / n,
        "incorrect": 100.0 * incorrect / n,
        "dont_know": 100.0 * dont_know / n,
        "unanswered": 100.0 * unanswered / n,
    }


def _chance_band(question: Question, correct_pct: float) -> bool:
    """Is this question answered 'at the level of chance'?  The paper
    boldfaces rows whose correct rate is near the guessing rate among
    substantive options (we use +/-7.5 points, which recovers the
    paper's six boldfaced rows)."""
    return abs(correct_pct - 100.0 * question.chance_rate) <= 7.5


def _questions_figure(
    responses: Sequence[SurveyResponse],
    questions: Sequence[Question],
    figure_id: str,
    title: str,
) -> FigureResult:
    rows = []
    data: dict[str, object] = {}
    for question in questions:
        rates = question_rates(responses, question)
        data[question.qid] = rates
        marks = []
        if _chance_band(question, rates["correct"]):
            marks.append("chance")
        if rates["correct"] < max(rates["incorrect"], rates["dont_know"]):
            marks.append("worse")
        label = question.label + (f" ({', '.join(marks)})" if marks else "")
        rows.append((
            label, rates["correct"], rates["incorrect"],
            rates["dont_know"], rates["unanswered"],
        ))
    text = render_table(
        ["Question", "% Correct", "% Incorrect", "% Don't Know",
         "% Unanswered"],
        rows,
    )
    return FigureResult(
        figure_id=figure_id, title=title, text=text, data=data,
    )


def fig14_core_questions(responses: Sequence[SurveyResponse]) -> FigureResult:
    """Figure 14: core quiz, question by question."""
    return _questions_figure(
        responses, CORE_QUESTIONS, "Figure 14", "Core quiz questions",
    )


def fig15_opt_questions(responses: Sequence[SurveyResponse]) -> FigureResult:
    """Figure 15: optimization quiz, question by question."""
    return _questions_figure(
        responses, OPTIMIZATION_QUESTIONS, "Figure 15",
        "Optimization quiz questions",
    )
