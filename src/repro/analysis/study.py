"""One-call full study reproduction.

:func:`run_study` simulates both cohorts and regenerates every table
and figure in the paper's evaluation; :func:`analyze` does the same for
an arbitrary set of response records (e.g. a real survey export read
with :mod:`repro.survey.io`).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from repro.analysis.backgrounds import ALL_BACKGROUND_FIGURES
from repro.analysis.common import FigureResult
from repro.analysis.factors import (
    fig16_contributed_size,
    fig17_area,
    fig18_dev_role,
    fig19_formal_training,
    fig20_area_opt,
    fig21_dev_role_opt,
)
from repro.analysis.performance import fig12_performance, fig13_histogram
from repro.analysis.questions import fig14_core_questions, fig15_opt_questions
from repro.analysis.suspicion import fig22_suspicion
from repro.population.response_model import (
    simulate_developers,
    simulate_students,
)
from repro.survey.records import Cohort, SurveyResponse
from repro.telemetry import get_telemetry

__all__ = ["StudyResults", "analyze", "run_study"]


@dataclasses.dataclass(frozen=True)
class StudyResults:
    """Every regenerated figure, in paper order, plus the raw records."""

    figures: tuple[FigureResult, ...]
    responses: tuple[SurveyResponse, ...]

    def figure(self, figure_id: str) -> FigureResult:
        """Look up a figure by id (e.g. ``"Figure 14"``)."""
        for result in self.figures:
            if result.figure_id == figure_id:
                return result
        raise KeyError(f"no figure {figure_id!r} in this study")

    def render(self) -> str:
        """All figures as one report."""
        return "\n\n".join(result.render() for result in self.figures)

    def to_json(self) -> str:
        """Machine-readable results: every figure's data, keyed by id.

        The counterpart to :meth:`render` for downstream comparison
        scripts (paper-vs-measured tables, plotting, regression checks
        across library versions).
        """
        import json

        payload = {
            result.figure_id: {
                "title": result.title,
                "data": result.data,
            }
            for result in self.figures
        }
        return json.dumps(payload, indent=2, sort_keys=True, default=str)


def analyze(responses: Sequence[SurveyResponse]) -> StudyResults:
    """Regenerate every figure from arbitrary response records."""
    telemetry = get_telemetry()
    responses = tuple(responses)
    figures: list[FigureResult] = []

    def generate(generator, *args) -> None:
        with telemetry.tracer.span("study.figure", figure=generator.__name__):
            figures.append(generator(responses, *args))
        telemetry.metrics.counter("study.figures_generated_total").inc()

    with telemetry.tracer.span("study.analyze", responses=len(responses)):
        for generator in ALL_BACKGROUND_FIGURES:
            generate(generator)
        generate(fig12_performance)
        generate(fig13_histogram)
        generate(fig14_core_questions)
        generate(fig15_opt_questions)
        generate(fig16_contributed_size)
        generate(fig17_area)
        generate(fig18_dev_role)
        generate(fig19_formal_training)
        generate(fig20_area_opt)
        generate(fig21_dev_role_opt)
        generate(fig22_suspicion, Cohort.DEVELOPER)
        if any(r.cohort is Cohort.STUDENT for r in responses):
            generate(fig22_suspicion, Cohort.STUDENT)
    return StudyResults(figures=tuple(figures), responses=responses)


def run_study(
    seed: int = 754, n_developers: int = 199, n_students: int = 52
) -> StudyResults:
    """Simulate both cohorts and regenerate the paper's full evaluation."""
    with get_telemetry().tracer.span(
        "study.run", seed=seed, developers=n_developers, students=n_students
    ):
        responses = simulate_developers(
            n_developers, seed
        ) + simulate_students(n_students, seed)
        return analyze(responses)
