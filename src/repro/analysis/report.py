"""Full study report writer.

Bundles every regenerated paper figure plus the extension analyses
(confidence calibration, cohort comparison, item analysis) into one
markdown document — the artifact a replication would publish.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.compare import compare_suspicion
from repro.analysis.confidence import overconfidence_figure
from repro.analysis.items import item_analysis_figure
from repro.analysis.regression import regression_figure
from repro.analysis.study import StudyResults

__all__ = ["render_report", "write_report"]


def render_report(study: StudyResults, *, title: str | None = None) -> str:
    """The full study as a markdown document."""
    lines = [
        title or "# Study reproduction report",
        "",
        "Regenerated tables and figures for *Do Developers Understand "
        "IEEE Floating Point?* (Dinda & Hetland, IPDPS 2018), plus the "
        "extension analyses this library adds.  See EXPERIMENTS.md for "
        "paper-vs-measured commentary.",
        "",
        "## Paper figures",
        "",
    ]
    for figure in study.figures:
        lines.append(f"### {figure.figure_id}: {figure.title}")
        lines.append("")
        lines.append("```")
        lines.append(figure.text)
        lines.append("```")
        lines.append("")

    lines.append("## Extension analyses")
    lines.append("")
    responses = list(study.responses)
    extensions = [overconfidence_figure(responses)]
    try:
        extensions.append(compare_suspicion(responses))
    except ValueError:
        pass  # single-cohort dataset: no comparison
    extensions.append(item_analysis_figure(responses))
    try:
        extensions.append(regression_figure(responses))
    except ValueError:
        pass  # dataset too small for the full model
    for figure in extensions:
        lines.append(f"### {figure.title}")
        lines.append("")
        lines.append("```")
        lines.append(figure.text)
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def write_report(
    study: StudyResults, path: str | Path, *, title: str | None = None
) -> Path:
    """Write the report to ``path``; returns the path."""
    target = Path(path)
    target.write_text(render_report(study, title=title), encoding="utf-8")
    return target
