"""Classical item analysis of the quiz instrument.

Standard psychometrics the paper stops short of: per-question
*difficulty* (the fraction answering correctly) and *discrimination*
(the point-biserial correlation between getting the item right and the
rest-of-quiz score).  A well-functioning item is moderately difficult
and positively discriminating; an item most high scorers get *wrong*
(negative discrimination) measures a shared misconception rather than
knowledge — which is exactly what the Identity and Divide-By-Zero
questions turn out to be in the simulated cohort, matching the paper's
reading of Figure 14.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Sequence

from repro.analysis.common import FigureResult, developers_only
from repro.quiz.core import CORE_QUESTIONS
from repro.quiz.model import TFAnswer
from repro.reporting import render_table
from repro.survey.records import SurveyResponse

__all__ = ["ItemStatistics", "item_analysis", "item_analysis_figure"]


@dataclasses.dataclass(frozen=True)
class ItemStatistics:
    """Difficulty and discrimination for one core-quiz item."""

    qid: str
    label: str
    difficulty: float       # fraction of cohort answering correctly
    discrimination: float   # item vs rest-score point-biserial r
    answered_rate: float    # fraction committing to an answer

    @property
    def flags_misconception(self) -> bool:
        """True when most answers are wrong AND being right correlates
        with overall skill — the shape of a shared misconception."""
        return self.difficulty < 0.35 and self.discrimination > 0.05


def _point_biserial(item_scores: list[int], rest_scores: list[int]) -> float:
    n = len(item_scores)
    mean_item = sum(item_scores) / n
    mean_rest = sum(rest_scores) / n
    var_item = sum((x - mean_item) ** 2 for x in item_scores)
    var_rest = sum((y - mean_rest) ** 2 for y in rest_scores)
    if var_item == 0 or var_rest == 0:
        return 0.0
    covariance = sum(
        (x - mean_item) * (y - mean_rest)
        for x, y in zip(item_scores, rest_scores)
    )
    return covariance / math.sqrt(var_item * var_rest)


def item_analysis(
    responses: Sequence[SurveyResponse],
) -> list[ItemStatistics]:
    """Per-item statistics over the developer cohort (core quiz)."""
    developers = developers_only(responses)
    if not developers:
        raise ValueError("no developer records")
    # Per respondent: correctness vector over the 15 items (1 correct,
    # 0 otherwise — don't-know counts as not-correct, as in scoring).
    matrix: list[list[int]] = []
    answered: list[list[int]] = []
    for response in developers:
        row, committed = [], []
        for question in CORE_QUESTIONS:
            answer = response.core_answers.get(
                question.qid, TFAnswer.UNANSWERED
            )
            graded = question.grade(answer)
            row.append(1 if graded is True else 0)
            committed.append(1 if graded is not None else 0)
        matrix.append(row)
        answered.append(committed)

    n = len(matrix)
    results = []
    for index, question in enumerate(CORE_QUESTIONS):
        item_scores = [row[index] for row in matrix]
        rest_scores = [sum(row) - row[index] for row in matrix]
        results.append(
            ItemStatistics(
                qid=question.qid,
                label=question.label,
                difficulty=sum(item_scores) / n,
                discrimination=_point_biserial(item_scores, rest_scores),
                answered_rate=sum(row[index] for row in answered) / n,
            )
        )
    return results


def item_analysis_figure(
    responses: Sequence[SurveyResponse],
) -> FigureResult:
    """Item-analysis table (difficulty, discrimination, misconception
    flag)."""
    stats = item_analysis(responses)
    rows = [
        (
            s.label,
            100.0 * s.difficulty,
            f"{s.discrimination:.3f}",
            100.0 * s.answered_rate,
            "MISCONCEPTION" if s.flags_misconception else "",
        )
        for s in stats
    ]
    text = render_table(
        ["Item", "% correct", "item-rest r", "% answered", ""],
        rows,
    )
    return FigureResult(
        figure_id="Item analysis",
        title="Classical item analysis of the core quiz",
        text=text,
        data={s.qid: {
            "difficulty": s.difficulty,
            "discrimination": s.discrimination,
            "answered_rate": s.answered_rate,
            "misconception": s.flags_misconception,
        } for s in stats},
    )
