"""Suspicion analysis: Figure 22 and the appropriateness checks.

Figure 22 plots, per exceptional condition, the percentage of a cohort
reporting each suspicion level 1–5.  The paper's Section IV-D analysis
adds two derived statistics we also compute: whether the cohort ranks
Invalid and Overflow above the benign conditions, and the fraction
reporting less-than-maximum suspicion for Invalid ("about 1/3").
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.common import FigureResult
from repro.quiz.suspicion import LIKERT_SCALE, SUSPICION_ITEMS, SUSPICION_ORDER
from repro.reporting import render_profile
from repro.survey.records import Cohort, SurveyResponse

__all__ = [
    "suspicion_distribution",
    "mean_suspicion",
    "fraction_below_max",
    "fig22_suspicion",
]


def suspicion_distribution(
    responses: Sequence[SurveyResponse], cohort: Cohort
) -> dict[str, list[float]]:
    """Percent reporting each level 1–5, per condition, for a cohort."""
    members = [r for r in responses if r.cohort is cohort and r.suspicion]
    if not members:
        raise ValueError(f"no {cohort.value} suspicion records")
    distribution: dict[str, list[float]] = {}
    for qid in SUSPICION_ORDER:
        counts = [0] * len(LIKERT_SCALE)
        reported = 0
        for response in members:
            level = response.suspicion.get(qid)
            if level is None:
                continue
            counts[level - 1] += 1
            reported += 1
        if reported == 0:
            raise ValueError(f"no responses for suspicion item {qid!r}")
        distribution[qid] = [100.0 * c / reported for c in counts]
    return distribution


def mean_suspicion(
    responses: Sequence[SurveyResponse], cohort: Cohort
) -> dict[str, float]:
    """Mean Likert level per condition for a cohort."""
    distribution = suspicion_distribution(responses, cohort)
    return {
        qid: sum(level * pct / 100.0
                 for level, pct in zip(LIKERT_SCALE, percentages))
        for qid, percentages in distribution.items()
    }


def fraction_below_max(
    responses: Sequence[SurveyResponse], cohort: Cohort, qid: str
) -> float:
    """Fraction of the cohort reporting suspicion below 5 for ``qid``
    (the paper: 'About 1/3 of both groups reported a suspicion level
    less than the maximum' for Invalid)."""
    distribution = suspicion_distribution(responses, cohort)
    return sum(distribution[qid][:-1]) / 100.0


def fig22_suspicion(
    responses: Sequence[SurveyResponse], cohort: Cohort
) -> FigureResult:
    """Figure 22(a) for developers or 22(b) for students."""
    distribution = suspicion_distribution(responses, cohort)
    labels = {item.qid: item.label for item in SUSPICION_ITEMS}
    series = {labels[qid]: distribution[qid] for qid in SUSPICION_ORDER}
    n = sum(1 for r in responses if r.cohort is cohort and r.suspicion)
    text = render_profile(series, list(LIKERT_SCALE))
    means = mean_suspicion(responses, cohort)
    text += "\nmean suspicion: " + "  ".join(
        f"{labels[qid]}={means[qid]:.2f}" for qid in SUSPICION_ORDER
    )
    part = "a" if cohort is Cohort.DEVELOPER else "b"
    group = "Main Group" if cohort is Cohort.DEVELOPER else "Student Group"
    return FigureResult(
        figure_id=f"Figure 22({part})",
        title=f"Distribution of suspicion for exceptional conditions, "
              f"{group} (n = {n})",
        text=text,
        data={"distribution": distribution, "means": means, "n": n},
    )
