"""Shared result types for the analysis pipeline."""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from repro.survey.records import Cohort, SurveyResponse

__all__ = ["FigureResult", "developers_only", "students_only"]


@dataclasses.dataclass(frozen=True)
class FigureResult:
    """One regenerated paper figure/table.

    ``data`` holds the machine-readable content (what tests assert on);
    ``text`` is the rendered paper-style table or chart.
    """

    figure_id: str
    title: str
    text: str
    data: dict[str, object]

    def render(self) -> str:
        """The rendered figure with its header line."""
        return f"=== {self.figure_id}: {self.title} ===\n{self.text}"


def developers_only(
    responses: Sequence[SurveyResponse],
) -> list[SurveyResponse]:
    """The developer cohort (the only group with quiz answers)."""
    return [r for r in responses if r.cohort is Cohort.DEVELOPER]


def students_only(
    responses: Sequence[SurveyResponse],
) -> list[SurveyResponse]:
    """The student comparison group."""
    return [r for r in responses if r.cohort is Cohort.STUDENT]
