"""Factor analysis: Figures 16–21.

Each figure slices a quiz's average bucket counts by the levels of one
background factor, rendered as the paper's stacked bars (average
correct / incorrect / don't-know / unanswered per level).
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from collections.abc import Callable, Sequence

from repro.analysis.common import FigureResult, developers_only
from repro.quiz.scoring import QuizScore, score_core, score_optimization
from repro.reporting import render_stacked_bars
from repro.survey.background import (
    AreaGroup,
    Background,
    CodebaseSize,
    DevRole,
    FormalTraining,
)
from repro.survey.records import SurveyResponse

__all__ = [
    "FactorLevelStats",
    "factor_breakdown",
    "fig16_contributed_size",
    "fig17_area",
    "fig18_dev_role",
    "fig19_formal_training",
    "fig20_area_opt",
    "fig21_dev_role_opt",
]

_SEGMENTS = ("correct", "incorrect", "dont_know", "unanswered")


@dataclasses.dataclass(frozen=True)
class FactorLevelStats:
    """Average bucket counts for one factor level."""

    level: str
    n: int
    correct: float
    incorrect: float
    dont_know: float
    unanswered: float

    def as_segments(self) -> dict[str, float]:
        return {
            "correct": self.correct,
            "incorrect": self.incorrect,
            "dont_know": self.dont_know,
            "unanswered": self.unanswered,
        }


def factor_breakdown(
    responses: Sequence[SurveyResponse],
    level_getter: Callable[[Background], object],
    *,
    quiz: str = "core",
    level_order: Sequence[object] | None = None,
    min_n: int = 1,
) -> list[FactorLevelStats]:
    """Average per-level bucket counts for the chosen quiz.

    ``quiz`` is ``"core"`` (of 15) or ``"optimization"`` (T/F, of 3).
    """
    if quiz not in ("core", "optimization"):
        raise ValueError(f"unknown quiz {quiz!r}")
    scores_by_level: dict[object, list[QuizScore]] = defaultdict(list)
    for response in developers_only(responses):
        if response.background is None:
            continue
        level = level_getter(response.background)
        if quiz == "core":
            scores_by_level[level].append(score_core(response.core_answers))
        else:
            scores_by_level[level].append(
                score_optimization(response.opt_answers)
            )
    levels = (
        list(level_order)
        if level_order is not None
        else sorted(scores_by_level, key=str)
    )
    stats = []
    for level in levels:
        scores = scores_by_level.get(level, [])
        n = len(scores)
        if n < min_n:
            continue
        stats.append(
            FactorLevelStats(
                level=str(level),
                n=n,
                correct=sum(s.correct for s in scores) / n,
                incorrect=sum(s.incorrect for s in scores) / n,
                dont_know=sum(s.dont_know for s in scores) / n,
                unanswered=sum(s.unanswered for s in scores) / n,
            )
        )
    return stats


def _factor_figure(
    responses: Sequence[SurveyResponse],
    figure_id: str,
    title: str,
    level_getter: Callable[[Background], object],
    *,
    quiz: str,
    level_order: Sequence[object] | None = None,
) -> FigureResult:
    stats = factor_breakdown(
        responses, level_getter, quiz=quiz, level_order=level_order,
    )
    bar_rows = [
        (f"{s.level} (n={s.n})", s.as_segments()) for s in stats
    ]
    total = 15.0 if quiz == "core" else 3.0
    text = render_stacked_bars(
        bar_rows, _SEGMENTS, total=total, width=60,
    )
    data = {
        s.level: {
            "n": s.n,
            "correct": s.correct,
            "incorrect": s.incorrect,
            "dont_know": s.dont_know,
            "unanswered": s.unanswered,
        }
        for s in stats
    }
    return FigureResult(figure_id=figure_id, title=title, text=text, data=data)


_SIZE_ORDER = [
    CodebaseSize.LOC_LT_100,
    CodebaseSize.LOC_100_1K,
    CodebaseSize.LOC_1K_10K,
    CodebaseSize.LOC_10K_100K,
    CodebaseSize.LOC_100K_1M,
    CodebaseSize.LOC_GT_1M,
]

_AREA_ORDER = [
    AreaGroup.EE, AreaGroup.CE, AreaGroup.CS, AreaGroup.MATH,
    AreaGroup.PHYS_SCI, AreaGroup.ENG, AreaGroup.OTHER,
]

_ROLE_ORDER = [
    DevRole.ENGINEER, DevRole.MANAGE_ENGINEERS, DevRole.SUPPORT,
    DevRole.MANAGE_SUPPORT,
]

_TRAINING_ORDER = [
    FormalTraining.NONE, FormalTraining.LECTURES, FormalTraining.WEEKS,
    FormalTraining.COURSES,
]


def fig16_contributed_size(
    responses: Sequence[SurveyResponse],
) -> FigureResult:
    """Figure 16: effect of Contributed Codebase Size on core quiz."""
    return _factor_figure(
        responses, "Figure 16",
        "Effect of Contributed Codebase Size on core quiz scores",
        lambda b: b.contributed_size, quiz="core", level_order=_SIZE_ORDER,
    )


def fig17_area(responses: Sequence[SurveyResponse]) -> FigureResult:
    """Figure 17: effect of Area on core quiz."""
    return _factor_figure(
        responses, "Figure 17", "Effect of Area on core quiz scores",
        lambda b: b.area_group, quiz="core", level_order=_AREA_ORDER,
    )


def fig18_dev_role(responses: Sequence[SurveyResponse]) -> FigureResult:
    """Figure 18: effect of Software Development Role on core quiz."""
    return _factor_figure(
        responses, "Figure 18",
        "Effect of Software Development Role on core quiz scores",
        lambda b: b.dev_role, quiz="core", level_order=_ROLE_ORDER,
    )


def fig19_formal_training(
    responses: Sequence[SurveyResponse],
) -> FigureResult:
    """Figure 19: effect of Formal Training on core quiz."""
    return _factor_figure(
        responses, "Figure 19",
        "Effect of Formal Training (in floating point) on core quiz scores",
        lambda b: b.formal_training, quiz="core",
        level_order=_TRAINING_ORDER,
    )


def fig20_area_opt(responses: Sequence[SurveyResponse]) -> FigureResult:
    """Figure 20: effect of Area on optimization quiz."""
    return _factor_figure(
        responses, "Figure 20",
        "Effect of Area on optimization quiz scores",
        lambda b: b.area_group, quiz="optimization", level_order=_AREA_ORDER,
    )


def fig21_dev_role_opt(responses: Sequence[SurveyResponse]) -> FigureResult:
    """Figure 21: effect of Software Development Role on optimization
    quiz."""
    return _factor_figure(
        responses, "Figure 21",
        "Effect of Software Development Role on optimization quiz scores",
        lambda b: b.dev_role, quiz="optimization", level_order=_ROLE_ORDER,
    )
