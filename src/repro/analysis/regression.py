"""Multivariate factor analysis: all backgrounds at once.

Section IV-B examines each factor *in isolation* ("we have enough data
to meaningfully consider each factor in isolation, which we did").
With the generative model we can afford the multivariate version: an
ordinary-least-squares regression of the core-quiz score on all factor
dummies simultaneously, with bootstrap confidence intervals.  Two of
the paper's conclusions become precise statements:

- *codebase size is the most predictive factor* → largest standardized
  coefficient block after controlling for everything else;
- *"we did not find any particularly strong factor"* → the full model's
  R² stays modest: most variance is individual, not demographic.
"""

from __future__ import annotations

import dataclasses
import random
from collections.abc import Sequence

import numpy as np

from repro.analysis.common import FigureResult, developers_only
from repro.quiz.scoring import score_core
from repro.reporting import render_table
from repro.survey.background import AreaGroup, Background, DevRole, FormalTraining
from repro.survey.records import SurveyResponse

__all__ = ["RegressionResult", "factor_regression", "regression_figure"]


@dataclasses.dataclass(frozen=True)
class RegressionResult:
    """Fitted multivariate model."""

    names: tuple[str, ...]
    coefficients: tuple[float, ...]
    ci_low: tuple[float, ...]
    ci_high: tuple[float, ...]
    r_squared: float
    n: int

    def coefficient(self, name: str) -> float:
        """Look up one coefficient by predictor name."""
        return self.coefficients[self.names.index(name)]

    def significant(self, name: str) -> bool:
        """Is the bootstrap CI for ``name`` bounded away from zero?"""
        index = self.names.index(name)
        return self.ci_low[index] > 0 or self.ci_high[index] < 0


def _design_row(background: Background) -> list[float]:
    """Predictors: intercept, codebase ranks (contributed + involved,
    centered), area-group dummies (baseline: PhysSci), role dummies
    (baseline: support), formal-training ordinal, informal count."""
    row = [1.0]
    row.append(background.contributed_size.rank - 3.5)
    row.append(background.involved_size.rank - 3.5)
    for group in (AreaGroup.CS, AreaGroup.CE, AreaGroup.EE,
                  AreaGroup.MATH, AreaGroup.ENG, AreaGroup.OTHER):
        row.append(1.0 if background.area_group is group else 0.0)
    for role in (DevRole.ENGINEER, DevRole.MANAGE_ENGINEERS,
                 DevRole.MANAGE_SUPPORT):
        row.append(1.0 if background.dev_role is role else 0.0)
    training_rank = {
        FormalTraining.NONE: 0, FormalTraining.LECTURES: 1,
        FormalTraining.WEEKS: 2, FormalTraining.COURSES: 3,
        FormalTraining.NOT_REPORTED: 1,
    }
    row.append(float(training_rank[background.formal_training]))
    row.append(float(len(background.informal_training)))
    return row


_PREDICTOR_NAMES = (
    "intercept", "contributed_size_rank", "involved_size_rank",
    "area=CS", "area=CE", "area=EE", "area=Math", "area=Eng",
    "area=Other", "role=engineer", "role=manage_engineers",
    "role=manage_support", "formal_training", "informal_count",
)


def factor_regression(
    responses: Sequence[SurveyResponse],
    *,
    n_bootstrap: int = 400,
    seed: int = 754,
) -> RegressionResult:
    """OLS of core-quiz score on all background factors, with percentile
    bootstrap CIs for every coefficient."""
    developers = developers_only(responses)
    if len(developers) < len(_PREDICTOR_NAMES) + 5:
        raise ValueError("too few developer records for the full model")
    design = np.array([
        _design_row(r.background) for r in developers  # type: ignore[arg-type]
    ])
    outcome = np.array([
        float(score_core(r.core_answers).correct) for r in developers
    ])

    coefficients, *_ = np.linalg.lstsq(design, outcome, rcond=None)
    fitted = design @ coefficients
    total = float(((outcome - outcome.mean()) ** 2).sum())
    residual = float(((outcome - fitted) ** 2).sum())
    r_squared = 1.0 - residual / total if total > 0 else 0.0

    rng = random.Random(seed)
    n = len(outcome)
    samples = np.empty((n_bootstrap, len(coefficients)))
    for b in range(n_bootstrap):
        index = [rng.randrange(n) for _ in range(n)]
        beta, *_ = np.linalg.lstsq(
            design[index], outcome[index], rcond=None
        )
        samples[b] = beta
    ci_low = np.percentile(samples, 2.5, axis=0)
    ci_high = np.percentile(samples, 97.5, axis=0)

    return RegressionResult(
        names=_PREDICTOR_NAMES,
        coefficients=tuple(float(c) for c in coefficients),
        ci_low=tuple(float(c) for c in ci_low),
        ci_high=tuple(float(c) for c in ci_high),
        r_squared=r_squared,
        n=n,
    )


def regression_figure(
    responses: Sequence[SurveyResponse], **kwargs
) -> FigureResult:
    """The regression as a table figure."""
    result = factor_regression(responses, **kwargs)
    rows = []
    for index, name in enumerate(result.names):
        marker = "*" if result.significant(name) and name != "intercept" \
            else ""
        rows.append((
            name,
            f"{result.coefficients[index]:+.2f}",
            f"[{result.ci_low[index]:+.2f}, {result.ci_high[index]:+.2f}]",
            marker,
        ))
    text = render_table(
        ["predictor", "coef (score pts)", "95% bootstrap CI", ""], rows,
    )
    text += (f"\nR^2 = {result.r_squared:.3f} on n = {result.n}: even "
             f"jointly, the background factors leave most score variance "
             f"unexplained")
    return FigureResult(
        figure_id="Regression",
        title="Multivariate OLS: core score on all background factors",
        text=text,
        data={
            "r_squared": result.r_squared,
            "coefficients": dict(zip(result.names, result.coefficients)),
        },
    )
