"""Statistical power of the study design, by simulation.

Having a generative model of the cohort buys something the paper could
not do: ask how often a study of a given size would *detect* each
factor effect the model builds in.  (Our own seed-754 run flips the
Figure 18 direction — so what fraction of 199-person studies get it
right?)  Power here is the probability, over independent simulated
studies, that the observed effect has the true direction — optionally
requiring nominal significance by Kruskal–Wallis.
"""

from __future__ import annotations

import dataclasses
import statistics
from collections import defaultdict
from collections.abc import Callable

from repro.analysis.stats import kruskal_wallis
from repro.population.response_model import simulate_developers
from repro.quiz.scoring import score_core, score_optimization
from repro.survey.background import Background, DevRole

__all__ = ["PowerEstimate", "detection_power", "role_effect_observed"]


@dataclasses.dataclass(frozen=True)
class PowerEstimate:
    """Detection power of a design for one directional effect."""

    n: int
    trials: int
    direction_rate: float   # fraction with the true direction observed
    significant_rate: float  # fraction also significant (KW p < .05)

    def render(self) -> str:
        return (
            f"n={self.n}: direction detected in "
            f"{100 * self.direction_rate:.0f}% of {self.trials} studies, "
            f"significant in {100 * self.significant_rate:.0f}%"
        )


def role_effect_observed(cohort) -> tuple[bool, float]:
    """Did this cohort show engineers > support on the core quiz, and
    the Kruskal–Wallis p over the role groups?  (The Figure 18 check.)"""
    by_role: dict[DevRole, list[int]] = defaultdict(list)
    for response in cohort:
        by_role[response.background.dev_role].append(
            score_core(response.core_answers).correct
        )
    engineer = by_role.get(DevRole.ENGINEER, [])
    support = by_role.get(DevRole.SUPPORT, [])
    if not engineer or not support:
        return False, 1.0
    direction = statistics.mean(engineer) > statistics.mean(support)
    groups = [g for g in by_role.values() if len(g) >= 3]
    p = kruskal_wallis(groups).p_value if len(groups) >= 2 else 1.0
    return direction, p


def detection_power(
    *,
    n: int = 199,
    trials: int = 30,
    seed_base: int = 1000,
    effect: Callable = role_effect_observed,
) -> PowerEstimate:
    """Estimate detection power by repeated simulated studies.

    ``effect(cohort) -> (direction_ok, p_value)`` defines what counts
    as detection; the default is the Figure 18 role effect.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    directions = 0
    significant = 0
    for trial in range(trials):
        cohort = simulate_developers(n, seed_base + trial)
        direction_ok, p = effect(cohort)
        if direction_ok:
            directions += 1
            if p < 0.05:
                significant += 1
    return PowerEstimate(
        n=n,
        trials=trials,
        direction_rate=directions / trials,
        significant_rate=significant / trials,
    )
