"""Cohort comparison: developers vs students, statistically.

Section IV-D compares the two groups' suspicion distributions by eye
("the groups behave quite similarly, although the student group is
overall less suspicious about Underflow and Denorm").  This module puts
numbers on that: per-condition Mann–Whitney tests with rank-biserial
effect sizes, and a chi-square on the full level distribution.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from repro.analysis.common import FigureResult
from repro.analysis.stats import ChiSquareResult, chi_square_independence
from repro.quiz.suspicion import LIKERT_SCALE, SUSPICION_ITEMS, SUSPICION_ORDER
from repro.reporting import render_table
from repro.survey.records import Cohort, SurveyResponse

__all__ = [
    "MannWhitneyResult",
    "mann_whitney",
    "rank_biserial",
    "compare_suspicion",
]


@dataclasses.dataclass(frozen=True)
class MannWhitneyResult:
    """Mann–Whitney U with normal-approximation p-value and the
    rank-biserial correlation as effect size (positive = first sample
    tends larger)."""

    u_statistic: float
    p_value: float
    effect_size: float

    @property
    def significant(self) -> bool:
        """True at the conventional 0.05 level."""
        return self.p_value < 0.05


def _rank_sum(first: Sequence[float], second: Sequence[float]) -> float:
    pooled = sorted(
        [(value, 0) for value in first] + [(value, 1) for value in second]
    )
    n = len(pooled)
    rank_first = 0.0
    i = 0
    while i < n:
        j = i
        while j + 1 < n and pooled[j + 1][0] == pooled[i][0]:
            j += 1
        midrank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            if pooled[k][1] == 0:
                rank_first += midrank
        i = j + 1
    return rank_first


def mann_whitney(
    first: Sequence[float], second: Sequence[float]
) -> MannWhitneyResult:
    """Two-sided Mann–Whitney U test (normal approximation with tie
    correction; fine for the Likert samples this module sees)."""
    import math

    n1, n2 = len(first), len(second)
    if n1 == 0 or n2 == 0:
        raise ValueError("both samples must be non-empty")
    rank_first = _rank_sum(first, second)
    u1 = rank_first - n1 * (n1 + 1) / 2.0
    mean_u = n1 * n2 / 2.0
    # Tie-corrected variance.
    from collections import Counter

    counts = Counter(list(first) + list(second))
    n = n1 + n2
    tie_term = sum(t**3 - t for t in counts.values())
    variance = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))
    if variance <= 0:
        return MannWhitneyResult(u_statistic=u1, p_value=1.0,
                                 effect_size=0.0)
    z = (u1 - mean_u) / math.sqrt(variance)
    p = math.erfc(abs(z) / math.sqrt(2.0))  # two-sided
    effect = 2.0 * u1 / (n1 * n2) - 1.0  # rank-biserial
    return MannWhitneyResult(u_statistic=u1, p_value=p, effect_size=effect)


def rank_biserial(
    first: Sequence[float], second: Sequence[float]
) -> float:
    """Rank-biserial correlation alone (positive = first tends larger)."""
    return mann_whitney(first, second).effect_size


def compare_suspicion(
    responses: Sequence[SurveyResponse],
) -> FigureResult:
    """Developer-vs-student comparison for every suspicion condition."""
    developers = [
        r for r in responses if r.cohort is Cohort.DEVELOPER and r.suspicion
    ]
    students = [
        r for r in responses if r.cohort is Cohort.STUDENT and r.suspicion
    ]
    if not developers or not students:
        raise ValueError("need both cohorts' suspicion responses")

    labels = {item.qid: item.label for item in SUSPICION_ITEMS}
    rows = []
    data: dict[str, object] = {}
    for qid in SUSPICION_ORDER:
        dev_levels = [float(r.suspicion[qid]) for r in developers
                      if qid in r.suspicion]
        student_levels = [float(r.suspicion[qid]) for r in students
                          if qid in r.suspicion]
        test = mann_whitney(dev_levels, student_levels)
        table = [
            [sum(1 for v in dev_levels if v == level)
             for level in LIKERT_SCALE],
            [sum(1 for v in student_levels if v == level)
             for level in LIKERT_SCALE],
        ]
        try:
            chi2: ChiSquareResult | None = chi_square_independence(table)
        except ValueError:
            chi2 = None
        dev_mean = sum(dev_levels) / len(dev_levels)
        student_mean = sum(student_levels) / len(student_levels)
        data[qid] = {
            "dev_mean": dev_mean,
            "student_mean": student_mean,
            "effect_size": test.effect_size,
            "p_value": test.p_value,
            "chi2_p": None if chi2 is None else chi2.p_value,
        }
        rows.append((
            labels[qid],
            round(dev_mean, 2),
            round(student_mean, 2),
            round(test.effect_size, 3),
            f"{test.p_value:.3f}",
        ))
    text = render_table(
        ["Condition", "dev mean", "student mean", "rank-biserial", "p"],
        rows,
    )
    return FigureResult(
        figure_id="Comparison",
        title="Developer vs student suspicion (Mann-Whitney)",
        text=text,
        data=data,
    )
