"""Analysis pipeline: regenerates every table and figure in the paper.

Works on :class:`repro.survey.SurveyResponse` records — simulated or
real.  :func:`repro.analysis.study.run_study` is the one-call entry
point; the per-figure generators live in the submodules:

- :mod:`~repro.analysis.backgrounds` — Figures 1–11
- :mod:`~repro.analysis.performance` — Figures 12–13
- :mod:`~repro.analysis.questions` — Figures 14–15
- :mod:`~repro.analysis.factors` — Figures 16–21
- :mod:`~repro.analysis.suspicion` — Figure 22(a)/(b)
- :mod:`~repro.analysis.stats` — chi-square, bootstrap, Kruskal–Wallis
"""

from repro.analysis.common import FigureResult, developers_only, students_only
from repro.analysis.backgrounds import ALL_BACKGROUND_FIGURES
from repro.analysis.performance import (
    core_scores,
    fig12_performance,
    fig13_histogram,
)
from repro.analysis.questions import (
    fig14_core_questions,
    fig15_opt_questions,
    question_rates,
)
from repro.analysis.factors import (
    FactorLevelStats,
    factor_breakdown,
    fig16_contributed_size,
    fig17_area,
    fig18_dev_role,
    fig19_formal_training,
    fig20_area_opt,
    fig21_dev_role_opt,
)
from repro.analysis.suspicion import (
    fig22_suspicion,
    fraction_below_max,
    mean_suspicion,
    suspicion_distribution,
)
from repro.analysis.items import (
    ItemStatistics,
    item_analysis,
    item_analysis_figure,
)
from repro.analysis.power import (
    PowerEstimate,
    detection_power,
    role_effect_observed,
)
from repro.analysis.regression import (
    RegressionResult,
    factor_regression,
    regression_figure,
)
from repro.analysis.report import render_report, write_report
from repro.analysis.confidence import (
    RespondentCalibration,
    overconfidence_figure,
    respondent_calibration,
)
from repro.analysis.compare import (
    MannWhitneyResult,
    compare_suspicion,
    mann_whitney,
    rank_biserial,
)
from repro.analysis.stats import (
    ChiSquareResult,
    bootstrap_ci,
    chi_square_independence,
    kruskal_wallis,
    summary,
)
from repro.analysis.study import StudyResults, analyze, run_study

__all__ = [
    "FigureResult",
    "developers_only",
    "students_only",
    "ALL_BACKGROUND_FIGURES",
    "fig12_performance",
    "fig13_histogram",
    "core_scores",
    "fig14_core_questions",
    "fig15_opt_questions",
    "question_rates",
    "FactorLevelStats",
    "factor_breakdown",
    "fig16_contributed_size",
    "fig17_area",
    "fig18_dev_role",
    "fig19_formal_training",
    "fig20_area_opt",
    "fig21_dev_role_opt",
    "fig22_suspicion",
    "suspicion_distribution",
    "mean_suspicion",
    "fraction_below_max",
    "ItemStatistics",
    "item_analysis",
    "item_analysis_figure",
    "render_report",
    "write_report",
    "RegressionResult",
    "factor_regression",
    "regression_figure",
    "PowerEstimate",
    "detection_power",
    "role_effect_observed",
    "RespondentCalibration",
    "respondent_calibration",
    "overconfidence_figure",
    "MannWhitneyResult",
    "mann_whitney",
    "rank_biserial",
    "compare_suspicion",
    "ChiSquareResult",
    "chi_square_independence",
    "bootstrap_ci",
    "kruskal_wallis",
    "summary",
    "StudyResults",
    "analyze",
    "run_study",
]
