"""Background tables: Figures 1–11.

Each function takes the response records and regenerates the
corresponding paper table (counts and percentages, sorted by count
descending, matching the paper's presentation).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable, Sequence

from repro.analysis.common import FigureResult, developers_only
from repro.reporting import render_table
from repro.survey.background import Background
from repro.survey.records import SurveyResponse

__all__ = [
    "fig01_positions",
    "fig02_areas",
    "fig03_formal_training",
    "fig04_informal_training",
    "fig05_dev_roles",
    "fig06_fp_languages",
    "fig07_arb_prec_languages",
    "fig08_contributed_sizes",
    "fig09_contributed_fp_extent",
    "fig10_involved_sizes",
    "fig11_involved_fp_extent",
    "ALL_BACKGROUND_FIGURES",
]


def _single_choice_table(
    responses: Sequence[SurveyResponse],
    figure_id: str,
    title: str,
    getter: Callable[[Background], object],
) -> FigureResult:
    developers = developers_only(responses)
    total = len(developers)
    counts = Counter(
        str(getter(r.background)) for r in developers if r.background
    )
    rows = [
        (label, count, 100.0 * count / total)
        for label, count in counts.most_common()
    ]
    text = render_table(["", "n", "%"], rows)
    return FigureResult(
        figure_id=figure_id,
        title=title,
        text=text,
        data={"counts": dict(counts), "total": total},
    )


def _multiselect_table(
    responses: Sequence[SurveyResponse],
    figure_id: str,
    title: str,
    getter: Callable[[Background], Sequence[str]],
    *,
    top: int | None = None,
    min_n: int | None = None,
) -> FigureResult:
    developers = developers_only(responses)
    total = len(developers)
    counts: Counter[str] = Counter()
    for response in developers:
        if response.background is None:
            continue
        counts.update(str(item) for item in getter(response.background))
    ranked = counts.most_common()
    if min_n is not None:
        ranked = [(label, count) for label, count in ranked if count >= min_n]
    if top is not None:
        ranked = ranked[:top]
    rows = [
        (label, count, 100.0 * count / total) for label, count in ranked
    ]
    text = render_table(["", "n", "%"], rows)
    return FigureResult(
        figure_id=figure_id,
        title=title,
        text=text,
        data={"counts": dict(counts), "total": total},
    )


def fig01_positions(responses: Sequence[SurveyResponse]) -> FigureResult:
    """Figure 1: positions of participants."""
    return _single_choice_table(
        responses, "Figure 1", "Positions of participants",
        lambda b: b.position,
    )


def fig02_areas(responses: Sequence[SurveyResponse]) -> FigureResult:
    """Figure 2: areas of participants."""
    return _single_choice_table(
        responses, "Figure 2", "Areas of participants", lambda b: b.area,
    )


def fig03_formal_training(
    responses: Sequence[SurveyResponse],
) -> FigureResult:
    """Figure 3: formal training in floating point."""
    return _single_choice_table(
        responses, "Figure 3", "Formal training in floating point",
        lambda b: b.formal_training,
    )


def fig04_informal_training(
    responses: Sequence[SurveyResponse],
) -> FigureResult:
    """Figure 4: informal training (top 5 shown, as in the paper)."""
    return _multiselect_table(
        responses, "Figure 4", "Informal training in floating point (top 5)",
        lambda b: [t.display for t in b.informal_training],
        top=5,
    )


def fig05_dev_roles(responses: Sequence[SurveyResponse]) -> FigureResult:
    """Figure 5: software development roles."""
    return _single_choice_table(
        responses, "Figure 5", "Software development roles",
        lambda b: b.dev_role,
    )


def fig06_fp_languages(responses: Sequence[SurveyResponse]) -> FigureResult:
    """Figure 6: floating point language experience (n >= 5 shown)."""
    return _multiselect_table(
        responses, "Figure 6", "Floating point language experience (n >= 5)",
        lambda b: sorted(b.fp_languages),
        min_n=5,
    )


def fig07_arb_prec_languages(
    responses: Sequence[SurveyResponse],
) -> FigureResult:
    """Figure 7: arbitrary precision language experience (n >= 5)."""
    return _multiselect_table(
        responses, "Figure 7",
        "Arbitrary precision language experience (n >= 5)",
        lambda b: sorted(b.arb_prec_languages),
        min_n=5,
    )


def fig08_contributed_sizes(
    responses: Sequence[SurveyResponse],
) -> FigureResult:
    """Figure 8: contributed codebase sizes."""
    return _single_choice_table(
        responses, "Figure 8", "Contributed codebase sizes",
        lambda b: b.contributed_size,
    )


def fig09_contributed_fp_extent(
    responses: Sequence[SurveyResponse],
) -> FigureResult:
    """Figure 9: contributed codebase floating point extent."""
    return _single_choice_table(
        responses, "Figure 9", "Contributed codebase floating point extent",
        lambda b: b.contributed_fp_extent,
    )


def fig10_involved_sizes(responses: Sequence[SurveyResponse]) -> FigureResult:
    """Figure 10: involved codebase sizes."""
    return _single_choice_table(
        responses, "Figure 10", "Involved codebase sizes",
        lambda b: b.involved_size,
    )


def fig11_involved_fp_extent(
    responses: Sequence[SurveyResponse],
) -> FigureResult:
    """Figure 11: involved codebase floating point extent."""
    return _single_choice_table(
        responses, "Figure 11", "Involved codebase floating point extent",
        lambda b: b.involved_fp_extent,
    )


#: All eleven background figure generators, in paper order.
ALL_BACKGROUND_FIGURES = (
    fig01_positions,
    fig02_areas,
    fig03_formal_training,
    fig04_informal_training,
    fig05_dev_roles,
    fig06_fp_languages,
    fig07_arb_prec_languages,
    fig08_contributed_sizes,
    fig09_contributed_fp_extent,
    fig10_involved_sizes,
    fig11_involved_fp_extent,
)
