"""Statistical helpers for the analysis: chi-square tests of factor
association, bootstrap confidence intervals, and rank tests.

Implemented with NumPy (chi-square CDF via :mod:`scipy` when available,
with a pure-Python fallback so the core library's only hard dependency
stays NumPy)."""

from __future__ import annotations

import dataclasses
import math
import random
from collections.abc import Callable, Sequence

import numpy as np

__all__ = [
    "ChiSquareResult",
    "chi_square_independence",
    "bootstrap_ci",
    "kruskal_wallis",
    "summary",
]


@dataclasses.dataclass(frozen=True)
class ChiSquareResult:
    """Outcome of a chi-square independence test."""

    statistic: float
    dof: int
    p_value: float

    @property
    def significant(self) -> bool:
        """True at the conventional 0.05 level."""
        return self.p_value < 0.05


def _chi2_sf(statistic: float, dof: int) -> float:
    """Chi-square survival function; scipy when present, else a series
    fallback via the regularized upper incomplete gamma."""
    try:
        from scipy.stats import chi2

        return float(chi2.sf(statistic, dof))
    except ImportError:  # pragma: no cover - scipy is installed in CI
        return _upper_gamma_regularized(dof / 2.0, statistic / 2.0)


def _upper_gamma_regularized(s: float, x: float) -> float:
    """Q(s, x) by series/continued fraction (Numerical Recipes style)."""
    if x < 0 or s <= 0:
        raise ValueError("invalid arguments")
    if x == 0:
        return 1.0
    if x < s + 1:
        # Lower series, then complement.
        term = 1.0 / s
        total = term
        for k in range(1, 500):
            term *= x / (s + k)
            total += term
            if abs(term) < abs(total) * 1e-15:
                break
        lower = total * math.exp(-x + s * math.log(x) - math.lgamma(s))
        return max(0.0, 1.0 - lower)
    # Continued fraction for the upper tail.
    b = x + 1.0 - s
    c = 1e308
    d = 1.0 / b
    h = d
    for i in range(1, 500):
        an = -i * (i - s)
        b += 2.0
        d = an * d + b
        d = 1.0 / d if abs(d) > 1e-300 else 1e300
        c = b + an / c if abs(c) > 1e-300 else 1e300
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    return h * math.exp(-x + s * math.log(x) - math.lgamma(s))


def chi_square_independence(table: Sequence[Sequence[int]]) -> ChiSquareResult:
    """Pearson chi-square test of independence on a contingency table.

    Rows/columns with zero totals are dropped (they carry no
    information and would divide by zero).
    """
    observed = np.asarray(table, dtype=float)
    observed = observed[observed.sum(axis=1) > 0][:, observed.sum(axis=0) > 0]
    if observed.shape[0] < 2 or observed.shape[1] < 2:
        raise ValueError("need at least a 2x2 table with nonzero margins")
    row_totals = observed.sum(axis=1, keepdims=True)
    col_totals = observed.sum(axis=0, keepdims=True)
    expected = row_totals @ col_totals / observed.sum()
    statistic = float(((observed - expected) ** 2 / expected).sum())
    dof = (observed.shape[0] - 1) * (observed.shape[1] - 1)
    return ChiSquareResult(
        statistic=statistic, dof=dof, p_value=_chi2_sf(statistic, dof),
    )


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[Sequence[float]], float] = lambda v: sum(v) / len(v),
    *,
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 754,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for a statistic."""
    if not values:
        raise ValueError("cannot bootstrap an empty sample")
    rng = random.Random(seed)
    n = len(values)
    stats = sorted(
        statistic([values[rng.randrange(n)] for _ in range(n)])
        for _ in range(n_resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    lo_index = max(0, int(alpha * n_resamples) - 1)
    hi_index = min(n_resamples - 1, int((1.0 - alpha) * n_resamples))
    return stats[lo_index], stats[hi_index]


def kruskal_wallis(groups: Sequence[Sequence[float]]) -> ChiSquareResult:
    """Kruskal–Wallis H test (chi-square approximation) across groups."""
    cleaned = [list(g) for g in groups if len(g) > 0]
    if len(cleaned) < 2:
        raise ValueError("need at least two non-empty groups")
    pooled = sorted(
        (value, gi) for gi, group in enumerate(cleaned) for value in group
    )
    n = len(pooled)
    # Midranks with tie correction.
    ranks = [0.0] * n
    i = 0
    tie_correction = 0.0
    while i < n:
        j = i
        while j + 1 < n and pooled[j + 1][0] == pooled[i][0]:
            j += 1
        midrank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[k] = midrank
        ties = j - i + 1
        tie_correction += ties**3 - ties
        i = j + 1
    rank_sums = [0.0] * len(cleaned)
    for (value, gi), rank in zip(pooled, ranks):
        rank_sums[gi] += rank
    h = (12.0 / (n * (n + 1))) * sum(
        rank_sums[gi] ** 2 / len(group) for gi, group in enumerate(cleaned)
    ) - 3.0 * (n + 1)
    correction = 1.0 - tie_correction / (n**3 - n) if n > 1 else 1.0
    if correction > 0:
        h /= correction
    dof = len(cleaned) - 1
    return ChiSquareResult(statistic=h, dof=dof, p_value=_chi2_sf(h, dof))


def summary(values: Sequence[float]) -> dict[str, float]:
    """Mean, standard deviation, min, median, max of a sample."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    array = np.asarray(values, dtype=float)
    return {
        "n": float(array.size),
        "mean": float(array.mean()),
        "sd": float(array.std()),
        "min": float(array.min()),
        "median": float(np.median(array)),
        "max": float(array.max()),
    }
