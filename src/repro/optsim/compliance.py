"""Standard-compliance checking: does a configuration change results?

The optimization quiz's answer key reduces to four checkable claims:
contraction (``-O3``) changes results, FTZ/DAZ changes results,
``-O2`` does not, and fast-math does.  :func:`find_divergence` proves
the positive claims by exhibiting a concrete input where the configured
evaluation differs bit-for-bit from strict IEEE, and supports the
negative claim by failing to find one over a corner-heavy search space.
"""

from __future__ import annotations

import dataclasses
import random
from collections.abc import Sequence

from repro.optsim.ast import Expr, expr_variables
from repro.optsim.evaluator import EvalResult, evaluate
from repro.optsim.machine import STRICT, MachineConfig
from repro.optsim.pipeline import optimize
from repro.softfloat import SoftFloat, sf
from repro.softfloat.formats import FloatFormat

__all__ = [
    "DivergenceReport",
    "find_divergence",
    "is_standard_compliant",
    "noncompliance_reasons",
    "corner_values",
]


@dataclasses.dataclass(frozen=True)
class DivergenceReport:
    """Outcome of a divergence search.

    ``diverged`` is True when some input produced different result bits
    (``value_diverged``) or a different exception footprint
    (``flags_diverged``) under the optimized configuration.
    """

    expr: Expr
    optimized_expr: Expr
    config: MachineConfig
    diverged: bool
    value_diverged: bool
    flags_diverged: bool
    witness: dict[str, SoftFloat] | None
    strict_result: EvalResult | None
    optimized_result: EvalResult | None
    trials: int

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        if not self.diverged:
            return (
                f"{self.config.name}: no divergence from strict IEEE found on"
                f" '{self.expr}' over {self.trials} inputs (compiled form:"
                f" '{self.optimized_expr}')."
            )
        assert self.witness is not None
        binding = ", ".join(f"{k}={v!s}" for k, v in self.witness.items())
        parts = [
            f"{self.config.name}: '{self.expr}' becomes"
            f" '{self.optimized_expr}'; at {binding or 'constants only'}"
        ]
        assert self.strict_result is not None
        assert self.optimized_result is not None
        if self.value_diverged:
            parts.append(
                f"strict = {self.strict_result.value!s} but optimized ="
                f" {self.optimized_result.value!s}"
            )
        if self.flags_diverged:
            from repro.fpenv.flags import flag_names

            parts.append(
                f"strict flags {flag_names(self.strict_result.flags)} vs"
                f" optimized flags {flag_names(self.optimized_result.flags)}"
            )
        return "; ".join(parts) + "."


def corner_values(fmt: FloatFormat) -> tuple[SoftFloat, ...]:
    """The adversarial operand set every search mixes in: zeros of both
    signs, ±1, subnormals, the normal/subnormal boundary, huge values,
    infinities, NaN, and rounding-sensitive near-1 values."""
    eps = SoftFloat(fmt, fmt.one_bits(0) | 1)  # 1 + ulp
    return (
        SoftFloat.zero(fmt, 0),
        SoftFloat.zero(fmt, 1),
        SoftFloat.one(fmt, 0),
        SoftFloat.one(fmt, 1),
        eps,
        -eps,
        SoftFloat.min_subnormal(fmt),
        SoftFloat.min_subnormal(fmt, 1),
        SoftFloat.min_normal(fmt),
        SoftFloat.max_finite(fmt),
        SoftFloat.max_finite(fmt, 1),
        SoftFloat.inf(fmt, 0),
        SoftFloat.inf(fmt, 1),
        SoftFloat.nan(fmt),
        sf(3.0, fmt),
        sf(0.1, fmt),
    )


def _random_value(rng: random.Random, fmt: FloatFormat) -> SoftFloat:
    """A random bit pattern, biased toward finite values."""
    bits = rng.getrandbits(fmt.width)
    x = SoftFloat(fmt, bits)
    if x.is_nan and rng.random() < 0.9:
        return sf(rng.uniform(-4.0, 4.0), fmt)
    return x


def find_divergence(
    expr: Expr,
    config: MachineConfig,
    *,
    seed: int = 754,
    trials: int = 400,
    check_flags: bool = True,
    extra_witnesses: Sequence[dict[str, SoftFloat]] = (),
) -> DivergenceReport:
    """Search for an input where ``config``'s compiled evaluation of
    ``expr`` differs from strict IEEE evaluation.

    The search tries caller-supplied witnesses first, then all-corner
    combinations (when the variable count keeps that tractable), then
    random operands.  Flag divergence counts as divergence only when
    ``check_flags`` is set.
    """
    names = expr_variables(expr)
    optimized = optimize(expr, config)
    rng = random.Random(seed)
    fmt = config.fmt

    candidates: list[dict[str, SoftFloat]] = list(extra_witnesses)
    corners = corner_values(fmt)
    if len(names) <= 2:
        if not names:
            candidates.append({})
        elif len(names) == 1:
            candidates.extend({names[0]: v} for v in corners)
        else:
            candidates.extend(
                {names[0]: v1, names[1]: v2} for v1 in corners for v2 in corners
            )
    else:
        for _ in range(trials // 2):
            candidates.append(
                {name: rng.choice(corners) for name in names}
            )
    while len(candidates) < trials:
        candidates.append({name: _random_value(rng, fmt) for name in names})

    count = 0
    for binding in candidates:
        count += 1
        strict_result = evaluate(expr, binding, STRICT.replace(fmt=fmt))
        optimized_result = evaluate(optimized, binding, config)
        value_diverged = not _same_value(
            strict_result.value, optimized_result.value
        )
        flags_diverged = strict_result.flags != optimized_result.flags
        if value_diverged or (check_flags and flags_diverged):
            return DivergenceReport(
                expr=expr,
                optimized_expr=optimized,
                config=config,
                diverged=True,
                value_diverged=value_diverged,
                flags_diverged=flags_diverged,
                witness=binding,
                strict_result=strict_result,
                optimized_result=optimized_result,
                trials=count,
            )
    return DivergenceReport(
        expr=expr,
        optimized_expr=optimized,
        config=config,
        diverged=False,
        value_diverged=False,
        flags_diverged=False,
        witness=None,
        strict_result=None,
        optimized_result=None,
        trials=count,
    )


def _same_value(a: SoftFloat, b: SoftFloat) -> bool:
    """Bit identity, with all NaNs considered one value (payloads are
    not semantically meaningful for compliance)."""
    if a.is_nan and b.is_nan:
        return True
    return a.same_bits(b)


def noncompliance_reasons(config: MachineConfig) -> tuple[str, ...]:
    """The list of reasons a config is not IEEE-754 compliant (empty for
    a compliant one)."""
    reasons = []
    if config.fp_contract:
        reasons.append(
            "fp-contract: a*b+c fuses into FMA, removing the product rounding"
        )
    if config.allow_reassoc:
        reasons.append("associative-math: +/* chains are reassociated")
    if config.no_signed_zeros:
        reasons.append("no-signed-zeros: the sign of zero is not preserved")
    if config.finite_math_only:
        reasons.append("finite-math-only: NaN/inf semantics are assumed away")
    if config.reciprocal_math:
        reasons.append("reciprocal-math: x/c becomes x*(1/c), double rounding")
    if config.ftz:
        reasons.append("FTZ: subnormal results flush to zero")
    if config.daz:
        reasons.append("DAZ: subnormal inputs are treated as zero")
    return tuple(reasons)


def is_standard_compliant(config: MachineConfig) -> bool:
    """True when the configuration cannot change any IEEE-defined result.

    >>> from repro.optsim.machine import O2, O3
    >>> is_standard_compliant(O2), is_standard_compliant(O3)
    (True, False)
    """
    return not noncompliance_reasons(config)
