"""Standard-compliance checking: does a configuration change results?

The optimization quiz's answer key reduces to four checkable claims:
contraction (``-O3``) changes results, FTZ/DAZ changes results,
``-O2`` does not, and fast-math does.  :func:`find_divergence` proves
the positive claims by exhibiting a concrete input where the configured
evaluation differs bit-for-bit from strict IEEE, and supports the
negative claim by failing to find one over a corner-heavy search space.
"""

from __future__ import annotations

import dataclasses
import random
from collections.abc import Sequence

from repro.optsim.ast import Expr, expr_variables
from repro.optsim.evaluator import EvalResult, evaluate
from repro.optsim.machine import STRICT, MachineConfig
from repro.optsim.pipeline import optimize
from repro.softfloat import SoftFloat, sf
from repro.softfloat.formats import FloatFormat
from repro.telemetry import get_telemetry

__all__ = [
    "DivergenceReport",
    "cross_validate",
    "divergence_candidates",
    "check_binding",
    "find_divergence",
    "is_standard_compliant",
    "noncompliance_reasons",
    "corner_values",
]


@dataclasses.dataclass(frozen=True)
class DivergenceReport:
    """Outcome of a divergence search.

    ``diverged`` is True when some input produced different result bits
    (``value_diverged``) or a different exception footprint
    (``flags_diverged``) under the optimized configuration.

    ``oracle_checked`` records that the strict-IEEE side of this
    verdict was recomputed through the exact-rounding oracle
    (:func:`cross_validate`), so the verdict does not rest on the
    softfloat engine alone.

    ``strategy`` names the search that produced the verdict
    (``"random"``, ``"guided"``, or ``"exhaustive"``); ``coverage``
    carries the guided search's exception-flow coverage map, and
    ``exhausted`` is True when an exhaustive sweep covered the whole
    admitted domain — turning a no-divergence verdict into a proof
    over it.
    """

    expr: Expr
    optimized_expr: Expr
    config: MachineConfig
    diverged: bool
    value_diverged: bool
    flags_diverged: bool
    witness: dict[str, SoftFloat] | None
    strict_result: EvalResult | None
    optimized_result: EvalResult | None
    trials: int
    oracle_checked: bool = False
    strategy: str = "random"
    coverage: object | None = None
    exhausted: bool = False

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        checked = " [oracle-checked]" if self.oracle_checked else ""
        trailer = ""
        if self.exhausted and not self.diverged:
            trailer = (
                " The sweep was exhaustive: this is an equivalence proof"
                " over the admitted domain."
            )
        if self.coverage is not None:
            trailer += "\n" + self.coverage.describe()
        if not self.diverged:
            return (
                f"{self.config.name}: no divergence from strict IEEE found on"
                f" '{self.expr}' over {self.trials} inputs (compiled form:"
                f" '{self.optimized_expr}').{checked}" + trailer
            )
        assert self.witness is not None
        binding = ", ".join(f"{k}={v!s}" for k, v in self.witness.items())
        parts = [
            f"{self.config.name}: '{self.expr}' becomes"
            f" '{self.optimized_expr}'; at {binding or 'constants only'}"
        ]
        assert self.strict_result is not None
        assert self.optimized_result is not None
        if self.value_diverged:
            parts.append(
                f"strict = {self.strict_result.value!s} but optimized ="
                f" {self.optimized_result.value!s}"
            )
        if self.flags_diverged:
            from repro.fpenv.flags import flag_names

            parts.append(
                f"strict flags {flag_names(self.strict_result.flags)} vs"
                f" optimized flags {flag_names(self.optimized_result.flags)}"
            )
        return "; ".join(parts) + "." + checked + trailer


def corner_values(fmt: FloatFormat) -> tuple[SoftFloat, ...]:
    """The adversarial operand set every search mixes in.

    The shared boundary-value corpus
    (:func:`repro.softfloat.landmarks.special_values` — the same list
    the differential test harness and the guided witness engine's
    landmark tier draw from) plus a few search-specific extras: the
    negative rounding-sensitive ``-(1 + ulp)`` and two plain values
    whose decimal conversions are inexact."""
    from repro.softfloat.landmarks import special_values

    eps = SoftFloat(fmt, fmt.one_bits(0) | 1)  # 1 + ulp
    extras = (-eps, sf(3.0, fmt), sf(0.1, fmt))
    seen: set[int] = set()
    out: list[SoftFloat] = []
    for value in (*special_values(fmt), *extras):
        if value.bits not in seen:
            seen.add(value.bits)
            out.append(value)
    return tuple(out)


def _random_value(rng: random.Random, fmt: FloatFormat) -> SoftFloat:
    """A random bit pattern, biased toward finite values.

    Every call consumes exactly three draws from ``rng`` — the bit
    pattern, the bias roll, and the finite fallback — regardless of
    which one is returned, so a candidate stream's tail is a pure
    function of the seed and its position, not of which earlier draws
    happened to be NaN.  (The historical version rolled the bias die
    only on NaN draws, silently desynchronizing streams and discarding
    the drawn pattern.)"""
    bits = rng.getrandbits(fmt.width)
    roll = rng.random()
    finite = sf(rng.uniform(-4.0, 4.0), fmt)
    x = SoftFloat(fmt, bits)
    if x.is_nan and roll < 0.9:
        return finite
    return x


def find_divergence(
    expr: Expr,
    config: MachineConfig,
    *,
    seed: int = 754,
    trials: int = 400,
    check_flags: bool = True,
    extra_witnesses: Sequence[dict[str, SoftFloat]] = (),
    oracle_check: bool = False,
    backend: str | None = None,
    strategy: str = "random",
    bindings=None,
) -> DivergenceReport:
    """Search for an input where ``config``'s compiled evaluation of
    ``expr`` differs from strict IEEE evaluation.

    ``strategy`` selects the search:

    - ``"random"`` (default, the historical behavior): caller-supplied
      witnesses first, then all-corner combinations (when the variable
      count keeps that tractable), then random operands.
    - ``"guided"``: analysis-steered sampling inside the feasible
      divergence regions of :func:`repro.staticfp.regions
      .divergence_goals`, with exception-flow coverage attached to the
      report (:mod:`repro.optsim.guided`).
    - ``"exhaustive"``: enumerate every admitted operand combination
      (small formats only); a no-divergence verdict is then a proof
      over the admitted domain (``report.exhausted``).

    ``bindings`` (guided/exhaustive) restricts variables to admitted
    abstract ranges, as in :func:`repro.staticfp.analyze.analyze`.
    Flag divergence counts as divergence only when ``check_flags`` is
    set.  With ``oracle_check`` the verdict is passed through
    :func:`cross_validate` before being returned.

    ``backend`` names a softfloat backend (``"batch"``, ``"auto"``, …)
    to evaluate the whole candidate list in vectorized lanes via
    :func:`repro.optsim.batch_eval.evaluate_many`; the first diverging
    candidate is then re-evaluated scalar for the definitive report, so
    the returned verdict — witness, trial count, both result sides — is
    identical to the serial walk's.  ``None`` keeps the historical
    candidate-by-candidate search.
    """
    telemetry = get_telemetry()
    with telemetry.tracer.span(
        "optsim.find_divergence", config=config.name, expr=str(expr),
        strategy=strategy,
    ) as span:
        if strategy == "random":
            report = _search_divergence(
                expr, config, telemetry,
                seed=seed, trials=trials, check_flags=check_flags,
                extra_witnesses=extra_witnesses, oracle_check=oracle_check,
                backend=backend,
            )
        elif strategy in ("guided", "exhaustive"):
            report = _search_divergence_strategic(
                expr, config, strategy,
                seed=seed, trials=trials, check_flags=check_flags,
                extra_witnesses=extra_witnesses, bindings=bindings,
                backend=backend, oracle_check=oracle_check,
            )
        else:
            raise ValueError(f"unknown search strategy {strategy!r}")
        span.set("diverged", report.diverged)
        span.set("trials", report.trials)
        return report


def _search_divergence_strategic(
    expr: Expr,
    config: MachineConfig,
    strategy: str,
    *,
    seed: int,
    trials: int,
    check_flags: bool,
    extra_witnesses: Sequence[dict[str, SoftFloat]],
    bindings,
    backend: str | None,
    oracle_check: bool,
) -> DivergenceReport:
    """Adapt the guided/exhaustive engines to a DivergenceReport."""
    from repro.optsim.guided import exhaustive_sweep, guided_search

    optimized = optimize(expr, config)
    if strategy == "guided":
        result = guided_search(
            expr, optimized, config, bindings=bindings, seed=seed,
            trials=trials, check_flags=check_flags,
            extra_witnesses=extra_witnesses,
        )
        witness = result.witness
        strict_result = result.strict_result
        optimized_result = result.optimized_result
        value_diverged = result.value_diverged
        flags_diverged = result.flags_diverged
        count = result.evals
        coverage, exhausted = result.coverage, False
    else:
        sweep = exhaustive_sweep(
            expr, optimized, config, bindings=bindings,
            check_flags=check_flags, backend=backend or "auto",
        )
        witness = sweep.witness
        value_diverged = sweep.value_diverged
        flags_diverged = sweep.flags_diverged
        count = sweep.checked
        coverage = None
        exhausted = sweep.found_index is None and sweep.is_proof
        strict_result = optimized_result = None
        if witness is not None:
            strict_result, optimized_result, _, _ = check_binding(
                expr, optimized, witness, config
            )
    diverged = value_diverged or (check_flags and flags_diverged)
    report = DivergenceReport(
        expr=expr,
        optimized_expr=optimized,
        config=config,
        diverged=diverged,
        value_diverged=value_diverged,
        flags_diverged=flags_diverged,
        witness=witness if diverged else None,
        strict_result=strict_result if diverged else None,
        optimized_result=optimized_result if diverged else None,
        trials=count,
        strategy=strategy,
        coverage=coverage,
        exhausted=exhausted,
    )
    return cross_validate(report) if oracle_check else report


def divergence_candidates(
    expr: Expr,
    config: MachineConfig,
    *,
    seed: int,
    trials: int,
    extra_witnesses: Sequence[dict[str, SoftFloat]] = (),
) -> list[dict[str, SoftFloat]]:
    """The deterministic candidate list a divergence search walks.

    Pure in ``(expr, config, seed, trials, extra_witnesses)``: caller
    witnesses first, then the corner lattice (all combinations when the
    variable count keeps that tractable, corner-biased random picks
    otherwise), then random operands up to ``trials``.  Sharded
    searches regenerate this list per shard and walk disjoint slices,
    which is what keeps a parallel search's verdict — first diverging
    index wins — identical to the serial walk.
    """
    names = expr_variables(expr)
    rng = random.Random(seed)
    fmt = config.fmt

    candidates: list[dict[str, SoftFloat]] = list(extra_witnesses)
    corners = corner_values(fmt)
    if len(names) <= 2:
        if not names:
            candidates.append({})
        elif len(names) == 1:
            candidates.extend({names[0]: v} for v in corners)
        else:
            candidates.extend(
                {names[0]: v1, names[1]: v2} for v1 in corners for v2 in corners
            )
    else:
        for _ in range(trials // 2):
            candidates.append(
                {name: rng.choice(corners) for name in names}
            )
    while len(candidates) < trials:
        candidates.append({name: _random_value(rng, fmt) for name in names})
    return candidates


def check_binding(
    expr: Expr,
    optimized: Expr,
    binding: dict[str, SoftFloat],
    config: MachineConfig,
) -> tuple[EvalResult, EvalResult, bool, bool]:
    """Evaluate one candidate both ways; report what diverged.

    Returns ``(strict, optimized, value_diverged, flags_diverged)``.
    """
    strict_result = evaluate(expr, binding, STRICT.replace(fmt=config.fmt))
    optimized_result = evaluate(optimized, binding, config)
    value_diverged = not _same_value(
        strict_result.value, optimized_result.value
    )
    flags_diverged = strict_result.flags != optimized_result.flags
    return strict_result, optimized_result, value_diverged, flags_diverged


def _search_divergence(
    expr: Expr,
    config: MachineConfig,
    telemetry,
    *,
    seed: int,
    trials: int,
    check_flags: bool,
    extra_witnesses: Sequence[dict[str, SoftFloat]],
    oracle_check: bool,
    backend: str | None = None,
) -> DivergenceReport:
    """The search body of :func:`find_divergence` (span managed there)."""
    trials_total = telemetry.metrics.counter(
        "optsim.divergence_trials_total", config=config.name
    )
    optimized = optimize(expr, config)
    candidates = divergence_candidates(
        expr, config, seed=seed, trials=trials,
        extra_witnesses=extra_witnesses,
    )

    if backend is not None:
        return _search_divergence_batched(
            expr, optimized, candidates, config, telemetry, backend,
            check_flags=check_flags, oracle_check=oracle_check,
            trials_total=trials_total,
        )

    count = 0
    for binding in candidates:
        count += 1
        trials_total.inc()
        strict_result, optimized_result, value_diverged, flags_diverged = \
            check_binding(expr, optimized, binding, config)
        if value_diverged or (check_flags and flags_diverged):
            telemetry.metrics.counter(
                "optsim.divergences_found_total", config=config.name
            ).inc()
            report = DivergenceReport(
                expr=expr,
                optimized_expr=optimized,
                config=config,
                diverged=True,
                value_diverged=value_diverged,
                flags_diverged=flags_diverged,
                witness=binding,
                strict_result=strict_result,
                optimized_result=optimized_result,
                trials=count,
            )
            return cross_validate(report) if oracle_check else report
    report = DivergenceReport(
        expr=expr,
        optimized_expr=optimized,
        config=config,
        diverged=False,
        value_diverged=False,
        flags_diverged=False,
        witness=None,
        strict_result=None,
        optimized_result=None,
        trials=count,
    )
    return cross_validate(report) if oracle_check else report


def _search_divergence_batched(
    expr: Expr,
    optimized: Expr,
    candidates: list[dict[str, SoftFloat]],
    config: MachineConfig,
    telemetry,
    backend: str,
    *,
    check_flags: bool,
    oracle_check: bool,
    trials_total,
) -> DivergenceReport:
    """Vectorized candidate walk: both evaluation sides run over the
    whole candidate list in backend lanes, then the first diverging
    index (the serial walk's stop point) is re-checked scalar to build
    the definitive report."""
    from repro.optsim.batch_eval import evaluate_many

    strict_config = STRICT.replace(fmt=config.fmt)
    strict_results = evaluate_many(expr, candidates, strict_config, backend)
    optimized_results = evaluate_many(optimized, candidates, config, backend)
    for count, (strict_result, optimized_result) in enumerate(
        zip(strict_results, optimized_results), start=1
    ):
        trials_total.inc()
        value_diverged = not _same_value(
            strict_result.value, optimized_result.value
        )
        flags_diverged = strict_result.flags != optimized_result.flags
        if value_diverged or (check_flags and flags_diverged):
            binding = candidates[count - 1]
            # Definitive scalar re-evaluation of the winning candidate:
            # the report's result objects never rest on the batch path.
            strict_result, optimized_result, value_diverged, flags_diverged = \
                check_binding(expr, optimized, binding, config)
            telemetry.metrics.counter(
                "optsim.divergences_found_total", config=config.name
            ).inc()
            report = DivergenceReport(
                expr=expr,
                optimized_expr=optimized,
                config=config,
                diverged=True,
                value_diverged=value_diverged,
                flags_diverged=flags_diverged,
                witness=binding,
                strict_result=strict_result,
                optimized_result=optimized_result,
                trials=count,
            )
            return cross_validate(report) if oracle_check else report
    report = DivergenceReport(
        expr=expr,
        optimized_expr=optimized,
        config=config,
        diverged=False,
        value_diverged=False,
        flags_diverged=False,
        witness=None,
        strict_result=None,
        optimized_result=None,
        trials=len(candidates),
    )
    return cross_validate(report) if oracle_check else report


def cross_validate(
    report: DivergenceReport, *, max_bindings: int = 32
) -> DivergenceReport:
    """Recompute the strict-IEEE side of a verdict through the
    exact-rounding oracle (:mod:`repro.oracle`).

    For a diverged report the witness binding is revalidated: the
    engine's strict result must match the oracle bit-for-bit, flags
    included.  For a no-divergence report the corner lattice is
    sampled (up to ``max_bindings``) and every strict evaluation is
    revalidated the same way, so "compliant" never rests on a shared
    engine bug.  Raises :class:`repro.oracle.OracleMismatch` when the
    engine and the oracle disagree; otherwise returns the report with
    ``oracle_checked`` set.
    """
    from repro.oracle.optcheck import oracle_evaluate
    from repro.oracle.runner import OracleMismatch

    fmt = report.config.fmt
    strict_config = STRICT.replace(fmt=fmt)
    if report.witness is not None:
        bindings_list = [report.witness]
    else:
        names = expr_variables(report.expr)
        corners = corner_values(fmt)
        if not names:
            bindings_list = [{}]
        elif len(names) == 1:
            bindings_list = [{names[0]: v} for v in corners]
        else:
            rng = random.Random(754)
            bindings_list = [{names[0]: v1, names[1]: v2}
                             for v1 in corners for v2 in corners]
            if len(names) > 2:
                for binding in bindings_list:
                    for name in names[2:]:
                        binding[name] = rng.choice(corners)
            rng.shuffle(bindings_list)
    for binding in bindings_list[:max_bindings]:
        strict = evaluate(report.expr, binding, strict_config)
        check = oracle_evaluate(report.expr, binding, strict_config)
        if (not _same_value(strict.value, check.value)
                or strict.flags != check.flags):
            from repro.fpenv.flags import flag_names

            shown = ", ".join(f"{k}={v!s}" for k, v in binding.items())
            raise OracleMismatch(
                f"strict evaluation of '{report.expr}' at"
                f" {shown or 'constants only'} disagrees with the exact"
                f" oracle: engine {strict.value!s}"
                f" {flag_names(strict.flags)} vs oracle {check.value!s}"
                f" {flag_names(check.flags)}"
            )
    return dataclasses.replace(report, oracle_checked=True)


def _same_value(a: SoftFloat, b: SoftFloat) -> bool:
    """Bit identity, with all NaNs considered one value (payloads are
    not semantically meaningful for compliance)."""
    if a.is_nan and b.is_nan:
        return True
    return a.same_bits(b)


def noncompliance_reasons(config: MachineConfig) -> tuple[str, ...]:
    """The list of reasons a config is not IEEE-754 compliant (empty for
    a compliant one)."""
    reasons = []
    if config.fp_contract:
        reasons.append(
            "fp-contract: a*b+c fuses into FMA, removing the product rounding"
        )
    if config.allow_reassoc:
        reasons.append("associative-math: +/* chains are reassociated")
    if config.no_signed_zeros:
        reasons.append("no-signed-zeros: the sign of zero is not preserved")
    if config.finite_math_only:
        reasons.append("finite-math-only: NaN/inf semantics are assumed away")
    if config.reciprocal_math:
        reasons.append("reciprocal-math: x/c becomes x*(1/c), double rounding")
    if config.ftz:
        reasons.append("FTZ: subnormal results flush to zero")
    if config.daz:
        reasons.append("DAZ: subnormal inputs are treated as zero")
    return tuple(reasons)


def is_standard_compliant(config: MachineConfig) -> bool:
    """True when the configuration cannot change any IEEE-defined result.

    >>> from repro.optsim.machine import O2, O3
    >>> is_standard_compliant(O2), is_standard_compliant(O3)
    (True, False)
    """
    return not noncompliance_reasons(config)
