"""Compiler and hardware floating point optimization simulator.

The paper's optimization quiz asks whether developers know *which*
optimizations step outside IEEE 754.  This package makes those claims
observable instead of asserted:

- a small expression IR (:mod:`~repro.optsim.ast`) with an infix parser,
- a :class:`~repro.optsim.machine.MachineConfig` capturing both hardware
  controls (format, rounding, FTZ/DAZ) and compiler permissions
  (fp-contract, reassociation, the fast-math sub-flags),
- optimization passes (:mod:`~repro.optsim.passes`) gated by those
  permissions, composed into named levels ``-O0``…``-O3``/``-Ofast``
  modeled on gcc's behavior (:mod:`~repro.optsim.pipeline`),
- an evaluator that runs an expression under a config with full flag
  capture, and
- a compliance checker (:mod:`~repro.optsim.compliance`) that searches
  for concrete inputs where a configuration's result differs bit-for-bit
  from strict IEEE evaluation.

Example::

    from repro.optsim import parse_expr, evaluate, O3, STRICT, find_divergence

    expr = parse_expr("a*b + c")
    report = find_divergence(expr, O3, seed=754)
    assert report.diverged          # -O3 contracts to FMA
"""

from repro.optsim.ast import (
    FMA,
    BinOp,
    Binary,
    Const,
    Expr,
    UnOp,
    Unary,
    Var,
    expr_variables,
)
from repro.optsim.parser import parse_expr
from repro.optsim.machine import (
    FAST_MATH,
    O0,
    O1,
    O2,
    O3,
    OFAST,
    STRICT,
    MachineConfig,
    optimization_level,
)
from repro.optsim.evaluator import EvalResult, evaluate, evaluate_strict
from repro.optsim.batch_eval import evaluate_lanes, evaluate_many
from repro.optsim.flags import config_from_flags
from repro.optsim.guided import (
    FlowCoverage,
    GuidedResult,
    SweepResult,
    exhaustive_sweep,
    guided_search,
)
from repro.optsim.pipeline import optimize
from repro.optsim.program import (
    Assign,
    Program,
    eliminate_common_subexpressions,
    eliminate_dead_code,
    evaluate_program,
    optimize_program,
    parse_program,
)
from repro.optsim.compliance import (
    DivergenceReport,
    find_divergence,
    is_standard_compliant,
    noncompliance_reasons,
)

__all__ = [
    "Expr",
    "Const",
    "Var",
    "Unary",
    "Binary",
    "FMA",
    "BinOp",
    "UnOp",
    "expr_variables",
    "parse_expr",
    "MachineConfig",
    "optimization_level",
    "config_from_flags",
    "STRICT",
    "O0",
    "O1",
    "O2",
    "O3",
    "OFAST",
    "FAST_MATH",
    "evaluate",
    "evaluate_strict",
    "evaluate_many",
    "evaluate_lanes",
    "EvalResult",
    "FlowCoverage",
    "GuidedResult",
    "SweepResult",
    "guided_search",
    "exhaustive_sweep",
    "optimize",
    "Assign",
    "Program",
    "parse_program",
    "evaluate_program",
    "optimize_program",
    "eliminate_common_subexpressions",
    "eliminate_dead_code",
    "find_divergence",
    "DivergenceReport",
    "is_standard_compliant",
    "noncompliance_reasons",
]
