"""Contraction of ``a*b ± c`` into fused multiply-add.

This is the *MADD* optimization of the paper: fusing removes the
intermediate rounding of the product, so the contracted program can
produce a different (usually more accurate, but *different*) result
than the 754-1985 two-rounding evaluation.  gcc performs it at
``-ffp-contract=fast``, which higher optimization levels enable.
"""

from __future__ import annotations

from repro.optsim.ast import FMA, Binary, BinOp, Expr, Unary, UnOp
from repro.optsim.machine import MachineConfig
from repro.optsim.passes.base import OptimizationPass, bottom_up

__all__ = ["FMAContraction"]


class FMAContraction(OptimizationPass):
    """Rewrite ``a*b + c``, ``c + a*b``, ``a*b - c``, and ``c - a*b``
    into single-rounding FMA nodes."""

    name = "fma-contraction"
    description = (
        "fuse multiply-add into a single-rounding FMA (-ffp-contract=fast); "
        "changes results because the product is no longer rounded"
    )
    value_preserving = False

    def enabled(self, config: MachineConfig) -> bool:
        return config.fp_contract

    def apply(self, expr: Expr, config: MachineConfig) -> Expr:
        return bottom_up(expr, self._contract)

    @staticmethod
    def _contract(node: Expr) -> Expr:
        if not isinstance(node, Binary) or node.op not in (BinOp.ADD, BinOp.SUB):
            return node
        left, right = node.left, node.right
        left_mul = isinstance(left, Binary) and left.op is BinOp.MUL
        right_mul = isinstance(right, Binary) and right.op is BinOp.MUL

        if node.op is BinOp.ADD:
            if left_mul:
                return FMA(left.left, left.right, right)
            if right_mul:
                return FMA(right.left, right.right, left)
            return node
        # Subtraction: a*b - c  ->  fma(a, b, -c);
        #              c - a*b  ->  fma(-a, b, c).
        if left_mul:
            return FMA(left.left, left.right, Unary(UnOp.NEG, right))
        if right_mul:
            return FMA(Unary(UnOp.NEG, right.left), right.right, left)
        return node
