"""Optimization pass protocol.

Each pass declares which :class:`~repro.optsim.machine.MachineConfig`
permissions it needs via :meth:`OptimizationPass.enabled`; the pipeline
only runs passes the config licenses.  A pass with requirements beyond
strict IEEE is by definition *value-changing* — exactly the property the
compliance checker exhibits witnesses for.
"""

from __future__ import annotations

import abc

from repro.optsim.ast import Expr
from repro.optsim.machine import MachineConfig

__all__ = ["OptimizationPass", "bottom_up"]


class OptimizationPass(abc.ABC):
    """A tree-to-tree rewrite gated by machine-config permissions."""

    #: Short identifier used in pipeline listings and reports.
    name: str = "<pass>"
    #: Human description of what the pass does and why it can change values.
    description: str = ""
    #: True when the rewrite can never change any result bit under strict
    #: IEEE semantics (such passes are allowed at every level).
    value_preserving: bool = False

    @abc.abstractmethod
    def enabled(self, config: MachineConfig) -> bool:
        """Does ``config`` license this pass?"""

    @abc.abstractmethod
    def apply(self, expr: Expr, config: MachineConfig) -> Expr:
        """Rewrite ``expr`` (must return a well-formed tree)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


def bottom_up(expr: Expr, rewrite) -> Expr:
    """Apply ``rewrite(node) -> node`` to every node, children first."""
    children = expr.children()
    if children:
        new_children = tuple(bottom_up(child, rewrite) for child in children)
        if new_children != children:
            expr = expr.with_children(*new_children)
    return rewrite(expr)
