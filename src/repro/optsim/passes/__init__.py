"""Optimization passes for the simulator.

``ALL_PASSES`` lists every pass in canonical pipeline order: safe
identity cleanup first, then the value-changing algebra, reassociation,
contraction, and finally constant folding over whatever became constant.
"""

from repro.optsim.passes.base import OptimizationPass, bottom_up
from repro.optsim.passes.constant_fold import ConstantFold
from repro.optsim.passes.fastmath import FastMathAlgebra, IdentitySimplify
from repro.optsim.passes.fma_contraction import FMAContraction
from repro.optsim.passes.reassociate import Reassociate

__all__ = [
    "OptimizationPass",
    "bottom_up",
    "IdentitySimplify",
    "FastMathAlgebra",
    "Reassociate",
    "FMAContraction",
    "ConstantFold",
    "ALL_PASSES",
]

#: Canonical pipeline order.
ALL_PASSES: tuple[OptimizationPass, ...] = (
    IdentitySimplify(),
    FastMathAlgebra(),
    Reassociate(),
    FMAContraction(),
    ConstantFold(),
)
