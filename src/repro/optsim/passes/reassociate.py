"""Reassociation of addition and multiplication chains.

Real arithmetic is associative; floating point arithmetic is not (the
paper's *Associativity* question).  Compilers nevertheless reassociate
under ``-fassociative-math`` (part of ``--ffast-math``) to expose
vectorization and instruction-level parallelism.  This pass models the
classic transformation: flatten a chain of the same operator, then
rebuild it as a *balanced* tree (the shape a vectorizing compiler's
partial-sum accumulators induce), which evaluates in a different order
from the source's left-to-right chain.
"""

from __future__ import annotations

from repro.optsim.ast import Binary, BinOp, Const, Expr, Unary, UnOp
from repro.optsim.machine import MachineConfig
from repro.optsim.passes.base import OptimizationPass, bottom_up

__all__ = ["Reassociate", "flatten_chain", "build_balanced"]


def flatten_chain(expr: Expr, op: BinOp) -> list[Expr]:
    """Collect the operands of a left-leaning ``op`` chain.

    Subtraction chains are handled by the caller via negation; this
    helper only flattens the *commutative* operators ADD and MUL.
    """
    if isinstance(expr, Binary) and expr.op is op:
        return flatten_chain(expr.left, op) + flatten_chain(expr.right, op)
    return [expr]


def build_balanced(operands: list[Expr], op: BinOp) -> Expr:
    """Combine operands pairwise into a balanced tree."""
    if len(operands) == 1:
        return operands[0]
    mid = len(operands) // 2
    return Binary(
        op,
        build_balanced(operands[:mid], op),
        build_balanced(operands[mid:], op),
    )


def _cancel_negated_pairs(operands: list[Expr]) -> list[Expr]:
    """Remove (x, -x) pairs from an addition chain — algebraically zero,
    numerically the whole point of compensated algorithms.  This is the
    cancellation -fassociative-math licenses."""
    remaining = list(operands)
    changed = True
    while changed:
        changed = False
        for i, candidate in enumerate(remaining):
            negated = (
                candidate.operand
                if isinstance(candidate, Unary) and candidate.op is UnOp.NEG
                else Unary(UnOp.NEG, candidate)
            )
            for j in range(len(remaining)):
                if j != i and remaining[j] == negated:
                    for index in sorted((i, j), reverse=True):
                        del remaining[index]
                    changed = True
                    break
            if changed:
                break
    return remaining


class Reassociate(OptimizationPass):
    """Rebalance ``+``/``*`` chains of length >= 3 into balanced trees."""

    name = "reassociate"
    description = (
        "rebalance addition/multiplication chains (-fassociative-math); "
        "changes results because FP addition is not associative"
    )
    value_preserving = False

    def enabled(self, config: MachineConfig) -> bool:
        return config.allow_reassoc

    def apply(self, expr: Expr, config: MachineConfig) -> Expr:
        return bottom_up(expr, self._rebalance)

    @staticmethod
    def _rebalance(node: Expr) -> Expr:
        if not isinstance(node, Binary):
            return node
        if node.op is BinOp.SUB:
            # a - b -> a + (-b) so subtraction joins addition chains,
            # as -fassociative-math effectively treats it.
            node = Binary(BinOp.ADD, node.left, Unary(UnOp.NEG, node.right))
        if node.op not in (BinOp.ADD, BinOp.MUL):
            return node
        operands = flatten_chain(node, node.op)
        if node.op is BinOp.ADD:
            operands = _cancel_negated_pairs(operands)
            if not operands:
                # Every term cancelled algebraically — the rewrite that
                # deletes Kahan's compensation term.
                return Const("0.0")
        if len(operands) < 3:
            if len(operands) == 1:
                return operands[0]
            if len(operands) == 2:
                return Binary(node.op, operands[0], operands[1])
            return node
        return build_balanced(operands, node.op)
