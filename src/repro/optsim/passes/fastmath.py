"""Algebraic fast-math rewrites and (safe) identity simplification.

Two passes live here:

- :class:`IdentitySimplify` — rewrites that are bit-exact under strict
  IEEE semantics for *all* inputs (``x * 1``, ``x / 1``, double
  negation) and therefore legal at every optimization level;
- :class:`FastMathAlgebra` — the value-changing rewrites gcc performs
  under fast-math sub-flags.  Each rewrite records which assumption
  breaks it: ``x + 0 -> x`` is wrong for ``x = -0`` (needs
  no-signed-zeros), ``x * 0 -> 0`` is wrong for NaN/inf (needs
  finite-math-only) *and* for ``-5 * 0 = -0`` (needs no-signed-zeros),
  ``x - x -> 0`` is wrong for NaN/inf, ``x / x -> 1`` is wrong for
  NaN/inf/0, and ``x / c -> x * (1/c)`` double-rounds (reciprocal-math).
"""

from __future__ import annotations

from fractions import Fraction

from repro.optsim.ast import Binary, BinOp, Const, Expr, Unary, UnOp
from repro.optsim.machine import MachineConfig
from repro.optsim.passes.base import OptimizationPass, bottom_up

__all__ = ["IdentitySimplify", "FastMathAlgebra"]


def _const_value(expr: Expr) -> Fraction | None:
    """Exact rational value of a finite Const node, else None."""
    if not isinstance(expr, Const):
        return None
    from repro.errors import ParseError
    from repro.softfloat.parse import _parse_exact

    try:
        return _parse_exact(expr.literal)
    except ParseError:
        return None  # inf/nan spellings


def _is_const(expr: Expr, value: int) -> bool:
    exact = _const_value(expr)
    return exact is not None and exact == value


class IdentitySimplify(OptimizationPass):
    """Bit-exact simplifications, legal at every level.

    ``x * 1 -> x``, ``1 * x -> x``, ``x / 1 -> x``, ``-(-x) -> x``,
    ``abs(abs(x)) -> abs(x)``, and ``x / 2^k -> x * 2^-k`` when the
    reciprocal is exactly representable (the one reciprocal rewrite
    that IS standard-compliant — the contrast to reciprocal-math's
    general ``x/c`` version).  Note that ``x + 0`` is *not* here: it
    changes ``-0 + 0`` from ``+0`` to ``-0``.
    """

    name = "identity-simplify"
    description = ("bit-exact identities (x*1, x/1, double negation, "
                   "division by a power of two)")
    value_preserving = True

    def enabled(self, config: MachineConfig) -> bool:
        return True

    def apply(self, expr: Expr, config: MachineConfig) -> Expr:
        def simplify(node: Expr) -> Expr:
            return self._simplify(node, config)

        return bottom_up(expr, simplify)

    @staticmethod
    def _simplify(node: Expr, config: MachineConfig) -> Expr:
        if isinstance(node, Unary):
            if node.op is UnOp.NEG:
                inner = node.operand
                if isinstance(inner, Unary) and inner.op is UnOp.NEG:
                    return inner.operand
            if node.op is UnOp.ABS:
                inner = node.operand
                if isinstance(inner, Unary) and inner.op is UnOp.ABS:
                    return inner
            return node
        if not isinstance(node, Binary):
            return node
        if node.op is BinOp.MUL:
            if _is_const(node.right, 1):
                return node.left
            if _is_const(node.left, 1):
                return node.right
        if node.op is BinOp.DIV:
            if _is_const(node.right, 1):
                return node.left
            reciprocal = _exact_power_of_two_reciprocal(node.right, config)
            if reciprocal is not None:
                return Binary(BinOp.MUL, node.left, reciprocal)
        return node


def _exact_power_of_two_reciprocal(expr: Expr, config: MachineConfig):
    """``Const(2^-k)`` when ``expr`` is a finite ±2^k whose reciprocal
    is exactly representable as a *normal* number in the config's
    format (subnormal reciprocals would round), else None.

    The quotient of any representable x by ±2^k equals the exact
    product x * ±2^-k, so the rewrite is bit-identical — including the
    overflow/underflow/inexact flags, which depend only on the exact
    value being rounded.
    """
    value = _const_value(expr)
    if value is None or value == 0:
        return None
    magnitude = abs(value)
    # A power of two iff the fraction is 2^k: numerator or denominator 1
    # and the other a power of two.
    num, den = magnitude.numerator, magnitude.denominator
    if num & (num - 1) or den & (den - 1):
        return None
    reciprocal = Fraction(den, num)
    # Exact representability as a normal number in this format.
    exponent = (den.bit_length() - 1) - (num.bit_length() - 1)
    fmt = config.fmt
    if not fmt.emin <= exponent <= fmt.emax:
        return None
    from repro.optsim.passes.fastmath import _fraction_const

    result = _fraction_const(
        reciprocal if value > 0 else -reciprocal, config
    )
    return result


class FastMathAlgebra(OptimizationPass):
    """Value-changing algebraic rewrites under fast-math assumptions."""

    name = "fast-math-algebra"
    description = (
        "x+0 -> x, x*0 -> 0, x-x -> 0, x/x -> 1, x/c -> x*(1/c); each "
        "assumes no signed zeros and/or finite math only"
    )
    value_preserving = False

    def enabled(self, config: MachineConfig) -> bool:
        return (
            config.no_signed_zeros
            or config.finite_math_only
            or config.reciprocal_math
        )

    def apply(self, expr: Expr, config: MachineConfig) -> Expr:
        def simplify(node: Expr) -> Expr:
            return self._simplify(node, config)

        return bottom_up(expr, simplify)

    @staticmethod
    def _simplify(node: Expr, config: MachineConfig) -> Expr:
        if not isinstance(node, Binary):
            return node
        nsz = config.no_signed_zeros
        finite = config.finite_math_only

        if node.op is BinOp.ADD and nsz:
            if _is_const(node.right, 0):
                return node.left  # wrong for x = -0
            if _is_const(node.left, 0):
                return node.right
        if node.op is BinOp.SUB and nsz:
            if _is_const(node.right, 0):
                return node.left
        if node.op is BinOp.MUL and nsz and finite:
            if _is_const(node.right, 0) or _is_const(node.left, 0):
                return Const("0.0")  # wrong for NaN, inf, and negative x
        if node.op is BinOp.SUB and finite:
            if node.left == node.right:
                return Const("0.0")  # wrong for NaN and inf
        if node.op is BinOp.DIV:
            if finite and node.left == node.right:
                return Const("1.0")  # wrong for NaN, inf, and zero
            if config.reciprocal_math:
                divisor = _const_value(node.right)
                if divisor is not None and divisor != 0:
                    # x / c -> x * (1/c): the reciprocal is rounded, so
                    # the product double-rounds unless c is a power of 2.
                    reciprocal = Fraction(1) / divisor
                    return Binary(
                        BinOp.MUL,
                        node.left,
                        _fraction_const(reciprocal, config),
                    )
        return node


def _fraction_const(value: Fraction, config: MachineConfig) -> Const:
    """Round an exact rational into the machine format and emit it as an
    exact hex literal (what a compiler's constant pool would hold)."""
    from repro.fpenv.env import FPEnv
    from repro.softfloat.convert import softfloat_from_fraction
    from repro.softfloat.printing import format_hex

    rounded = softfloat_from_fraction(abs(value), config.fmt, FPEnv())
    if value < 0:
        rounded = -rounded
    return Const(format_hex(rounded))
