"""Compile-time constant folding.

Folds constant subtrees by evaluating them with the *config's own*
runtime semantics, so folding never changes the delivered value.  What
folding *does* change — faithfully to real compilers — is the runtime
exception footprint: a folded ``1.0/0.0`` no longer raises the
divide-by-zero sticky flag at run time.  The compliance checker treats
value divergence and flag divergence separately for exactly this case.
"""

from __future__ import annotations

from repro.optsim.ast import Const, Expr
from repro.optsim.machine import MachineConfig
from repro.optsim.passes.base import OptimizationPass, bottom_up

__all__ = ["ConstantFold"]


class ConstantFold(OptimizationPass):
    """Evaluate constant-only subtrees at compile time."""

    name = "constant-fold"
    description = (
        "evaluate constant subtrees at compile time; value-preserving "
        "but erases runtime exception flags"
    )
    value_preserving = True  # value, not flags

    def enabled(self, config: MachineConfig) -> bool:
        return True

    def apply(self, expr: Expr, config: MachineConfig) -> Expr:
        def fold(node: Expr) -> Expr:
            if isinstance(node, Const) or node.children() == ():
                return node
            if not all(isinstance(child, Const) for child in node.children()):
                return node
            return self._fold_node(node, config)

        return bottom_up(expr, fold)

    @staticmethod
    def _fold_node(node: Expr, config: MachineConfig) -> Expr:
        from repro.optsim.evaluator import evaluate
        from repro.softfloat.printing import format_hex

        result = evaluate(node, {}, config)
        value = result.value
        if value.is_nan:
            return Const("-nan" if value.sign else "nan")
        if value.is_inf:
            return Const("-inf" if value.sign else "inf")
        return Const(format_hex(value))
