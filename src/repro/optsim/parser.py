"""Infix parser for the optimization simulator's expression language.

Grammar (standard precedence, left associative)::

    expr    := term (('+' | '-') term)*
    term    := unary (('*' | '/' | '%') unary)*
    unary   := '-' unary | primary
    primary := NUMBER | NAME | NAME '(' expr (',' expr)* ')' | '(' expr ')'

Numbers accept decimal and C99 hex-float literals plus ``inf``/``nan``.
Recognized functions: ``sqrt``, ``abs``, ``fma``, ``min``, ``max``,
``rem``.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.optsim.ast import FMA, Binary, BinOp, Const, Expr, Unary, UnOp, Var

__all__ = ["parse_expr", "tokenize"]

_TOKEN_RE = re.compile(
    r"""\s*(?:
        (?P<number>
            0[xX][0-9a-fA-F]*(?:\.[0-9a-fA-F]*)?(?:[pP][+-]?\d+)?
          | \d+\.?\d*(?:[eE][+-]?\d+)?
          | \.\d+(?:[eE][+-]?\d+)?
        )
      | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
      | (?P<punct>[-+*/%(),])
    )""",
    re.VERBOSE,
)

_SPECIAL_NAMES = {"inf", "infinity", "nan", "snan"}
_FUNCTIONS = {"sqrt": 1, "abs": 1, "fma": 3, "min": 2, "max": 2, "rem": 2}


def tokenize(text: str) -> list[tuple[str, str]]:
    """Tokenize into ``(kind, value)`` pairs; raises ParseError on junk."""
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ParseError(f"unexpected character {remainder[0]!r} in expression")
        pos = match.end()
        for kind in ("number", "name", "punct"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    tokens.append(("end", ""))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = tokenize(text)
        self.index = 0
        self.text = text

    def peek(self) -> tuple[str, str]:
        return self.tokens[self.index]

    def advance(self) -> tuple[str, str]:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, value: str) -> None:
        kind, got = self.advance()
        if got != value:
            raise ParseError(
                f"expected {value!r} but found {got or 'end of input'!r}"
                f" in {self.text!r}"
            )

    def parse(self) -> Expr:
        expr = self.expr()
        kind, value = self.peek()
        if kind != "end":
            raise ParseError(f"trailing input {value!r} in {self.text!r}")
        return expr

    def expr(self) -> Expr:
        node = self.term()
        while self.peek()[1] in ("+", "-"):
            op = BinOp.ADD if self.advance()[1] == "+" else BinOp.SUB
            node = Binary(op, node, self.term())
        return node

    def term(self) -> Expr:
        node = self.unary()
        while self.peek()[1] in ("*", "/", "%"):
            symbol = self.advance()[1]
            op = {"*": BinOp.MUL, "/": BinOp.DIV, "%": BinOp.REM}[symbol]
            node = Binary(op, node, self.unary())
        return node

    def unary(self) -> Expr:
        if self.peek()[1] == "-":
            self.advance()
            return Unary(UnOp.NEG, self.unary())
        if self.peek()[1] == "+":
            self.advance()
            return self.unary()
        return self.primary()

    def primary(self) -> Expr:
        kind, value = self.advance()
        if kind == "number":
            return Const(value)
        if kind == "name":
            lowered = value.lower()
            if lowered in _SPECIAL_NAMES:
                return Const(lowered)
            if self.peek()[1] == "(":
                return self.call(lowered)
            return Var(value)
        if value == "(":
            node = self.expr()
            self.expect(")")
            return node
        raise ParseError(f"unexpected {value or 'end of input'!r} in {self.text!r}")

    def call(self, name: str) -> Expr:
        arity = _FUNCTIONS.get(name)
        if arity is None:
            raise ParseError(f"unknown function {name!r}")
        self.expect("(")
        args = [self.expr()]
        while self.peek()[1] == ",":
            self.advance()
            args.append(self.expr())
        self.expect(")")
        if len(args) != arity:
            raise ParseError(f"{name} takes {arity} argument(s), got {len(args)}")
        if name == "sqrt":
            return Unary(UnOp.SQRT, args[0])
        if name == "abs":
            return Unary(UnOp.ABS, args[0])
        if name == "fma":
            return FMA(args[0], args[1], args[2])
        if name == "min":
            return Binary(BinOp.MIN, args[0], args[1])
        if name == "max":
            return Binary(BinOp.MAX, args[0], args[1])
        if name == "rem":
            return Binary(BinOp.REM, args[0], args[1])
        raise AssertionError(f"unhandled function {name}")  # pragma: no cover


def parse_expr(text: str) -> Expr:
    """Parse an infix expression into the IR.

    >>> str(parse_expr("a*b + c"))
    '((a * b) + c)'
    """
    return _Parser(text).parse()
