"""Parse gcc-style command lines into MachineConfigs.

The survey's developers face "dozens of flags that control floating
point optimizations"; this module models the composition rules for the
ones the simulator implements, so a whole command line can be audited::

    >>> from repro.optsim.flags import config_from_flags
    >>> from repro.optsim import noncompliance_reasons
    >>> config = config_from_flags("gcc -O2 -ffast-math -fno-finite-math-only")
    >>> any("associative" in r for r in noncompliance_reasons(config))
    True

Supported: ``-O0``…``-O3``, ``-Ofast``, ``-ffast-math`` and its
``-fno-`` negation, the fast-math sub-flags (``-fassociative-math``,
``-fno-signed-zeros``, ``-ffinite-math-only``, ``-freciprocal-math``)
and their negations, ``-ffp-contract=fast|off|on``, and
``-mdaz-ftz``/``-mno-daz-ftz``.  Later flags override earlier ones,
as in gcc.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.optsim.machine import MachineConfig, optimization_level

__all__ = ["config_from_flags"]

_LEVELS = {"-O0", "-O1", "-O2", "-O3", "-Ofast"}

_FAST_MATH_FIELDS = (
    "allow_reassoc", "no_signed_zeros", "finite_math_only",
    "reciprocal_math", "fp_contract", "ftz", "daz",
)


def config_from_flags(command_line: str) -> MachineConfig:
    """Fold a compiler command line into a :class:`MachineConfig`.

    Unrecognized tokens that look like FP-behavior flags (``-ffast*``,
    ``-ffp-*``, ``-f*-math*``, ``-fsigned-zeros`` etc. outside the
    supported set) raise :class:`ParseError` — silently ignoring an FP
    flag would defeat the audit; everything else (``-Wall``, file
    names, the compiler name) is ignored.
    """
    config = optimization_level("-O0").replace(name=command_line.strip())
    for token in command_line.split():
        if token in _LEVELS:
            level = optimization_level(token)
            config = config.replace(
                **{field: getattr(level, field)
                   for field in _FAST_MATH_FIELDS}
            )
        elif token == "-ffast-math":
            fast = optimization_level("--ffast-math")
            config = config.replace(
                **{field: getattr(fast, field)
                   for field in _FAST_MATH_FIELDS}
            )
        elif token == "-fno-fast-math":
            config = config.replace(
                allow_reassoc=False, no_signed_zeros=False,
                finite_math_only=False, reciprocal_math=False,
                fp_contract=False, ftz=False, daz=False,
            )
        elif token == "-fassociative-math":
            config = config.replace(allow_reassoc=True)
        elif token == "-fno-associative-math":
            config = config.replace(allow_reassoc=False)
        elif token == "-fno-signed-zeros":
            config = config.replace(no_signed_zeros=True)
        elif token == "-fsigned-zeros":
            config = config.replace(no_signed_zeros=False)
        elif token == "-ffinite-math-only":
            config = config.replace(finite_math_only=True)
        elif token == "-fno-finite-math-only":
            config = config.replace(finite_math_only=False)
        elif token == "-freciprocal-math":
            config = config.replace(reciprocal_math=True)
        elif token == "-fno-reciprocal-math":
            config = config.replace(reciprocal_math=False)
        elif token == "-ffp-contract=fast":
            config = config.replace(fp_contract=True)
        elif token in ("-ffp-contract=off", "-ffp-contract=on"):
            # gcc's "on" only contracts within source expressions where
            # the language permits; our IR has no such boundary, so we
            # conservatively treat it as off.
            config = config.replace(fp_contract=False)
        elif token == "-mdaz-ftz":
            config = config.replace(ftz=True, daz=True)
        elif token == "-mno-daz-ftz":
            config = config.replace(ftz=False, daz=False)
        elif _looks_like_fp_flag(token):
            raise ParseError(
                f"unrecognized floating point flag {token!r} — refusing "
                f"to silently ignore it"
            )
    return config


def _looks_like_fp_flag(token: str) -> bool:
    if not token.startswith("-"):
        return False
    needles = ("fast-math", "fp-contract", "math-only", "rounding-math",
               "signed-zeros", "reciprocal-math", "associative-math",
               "unsafe-math", "daz", "ftz", "fexcess-precision")
    return any(needle in token for needle in needles)
