"""Batched expression evaluation over the softfloat backend protocol.

:func:`evaluate_many` is the vectorized twin of
:func:`repro.optsim.evaluator.evaluate`: one walk of the expression
tree evaluates *every* candidate binding at once, with each tree node
computed across all lanes by a :class:`~repro.softfloat.SoftFloatBackend`
before the walk moves on.  Per-lane sticky flags accumulate exactly as
a fresh :class:`~repro.fpenv.FPEnv` would collect them lane by lane —
flag accumulation is a set union, so node order inside one lane and
lane order inside one node commute.

Operations outside the backend protocol (``REM``, ``MIN``, ``MAX``,
cross-format variable loads) fall back to the scalar engine lane by
lane, so the function is total over the expression IR while the hot
arithmetic rides the batch kernels.  The cross-backend differential
suite covers the resulting bit-identity with the scalar evaluator.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.errors import OptimizationError
from repro.fpenv.flags import FPFlag
from repro.optsim.ast import FMA, Binary, BinOp, Const, Expr, Unary, UnOp, Var
from repro.optsim.evaluator import EvalResult
from repro.optsim.machine import STRICT, MachineConfig
from repro.softfloat import (
    SoftFloat,
    convert_format,
    fp_max,
    fp_min,
    fp_remainder,
    parse_softfloat,
)
from repro.softfloat.backend import SoftFloatBackend, get_backend

__all__ = ["evaluate_lanes", "evaluate_many"]

#: Binary AST operations carried by the backend protocol.
_BACKEND_BINOPS = {
    BinOp.ADD: "add",
    BinOp.SUB: "sub",
    BinOp.MUL: "mul",
    BinOp.DIV: "div",
}

#: Binary AST operations that always take the scalar lane-by-lane path.
_SCALAR_BINOPS = {
    BinOp.REM: fp_remainder,
    BinOp.MIN: fp_min,
    BinOp.MAX: fp_max,
}


def evaluate_many(
    expr: Expr,
    bindings_list: Sequence[Mapping[str, SoftFloat]],
    config: MachineConfig = STRICT,
    backend: SoftFloatBackend | str = "auto",
) -> list[EvalResult]:
    """Evaluate ``expr`` under ``config`` for every binding at once.

    Returns one :class:`~repro.optsim.evaluator.EvalResult` per binding,
    bit-identical (value and flags) to calling
    :func:`repro.optsim.evaluator.evaluate` in a loop.

    >>> from repro.optsim import parse_expr, STRICT
    >>> from repro.softfloat import sf
    >>> expr = parse_expr("a + b")
    >>> results = evaluate_many(
    ...     expr, [{"a": sf(0.1), "b": sf(0.2)}, {"a": sf(1.0), "b": sf(2.0)}]
    ... )
    >>> [str(r.value) for r in results]
    ['0.30000000000000004', '3.0']
    """
    backend_obj = get_backend(backend)
    n = len(bindings_list)
    flags = np.zeros(n, dtype=np.uint8)
    if n == 0:
        return []
    fmt = config.fmt

    def var_source(name: str, flags: np.ndarray) -> np.ndarray:
        out = np.zeros(n, dtype=np.uint64)
        for i, bindings in enumerate(bindings_list):
            try:
                value = bindings[name]
            except KeyError:
                raise OptimizationError(f"unbound variable {name!r}")
            if value.fmt != fmt:
                env = config.fresh_env()
                value = convert_format(value, fmt, env)
                flags[i] |= np.uint8(env.flags.value)
            out[i] = value.bits
        return out

    bits = _eval_lanes(expr, var_source, n, config, backend_obj, flags)
    return [
        EvalResult(
            value=SoftFloat(fmt, int(bits[i])),
            flags=FPFlag(int(flags[i])),
            config=config,
        )
        for i in range(n)
    ]


def evaluate_lanes(
    expr: Expr,
    var_lanes: Mapping[str, np.ndarray],
    config: MachineConfig = STRICT,
    backend: SoftFloatBackend | str = "auto",
) -> tuple[np.ndarray, np.ndarray]:
    """Bits-level twin of :func:`evaluate_many` for pre-packed lanes.

    ``var_lanes`` maps each variable to a ``uint64`` array of packed
    encodings *already in the config's format* (no per-lane conversion
    happens — this is the hot path exhaustive sweeps drive, where the
    operands come straight out of a bit-region enumerator rather than
    from SoftFloat binding dicts).  Returns ``(bits, flags)`` arrays:
    packed result encodings and per-lane sticky-flag bytes.
    """
    sizes = {lane.shape[0] for lane in var_lanes.values()}
    if len(sizes) > 1:
        raise ValueError(f"ragged variable lanes: {sorted(sizes)}")
    n = sizes.pop() if sizes else 1
    flags = np.zeros(n, dtype=np.uint8)

    def var_source(name: str, flags: np.ndarray) -> np.ndarray:
        try:
            return np.asarray(var_lanes[name], dtype=np.uint64)
        except KeyError:
            raise OptimizationError(f"unbound variable {name!r}")

    bits = _eval_lanes(expr, var_source, n, config, get_backend(backend),
                       flags)
    return bits, flags


def _scalar_sweep(
    kernel,
    config: MachineConfig,
    flags: np.ndarray,
    *operand_lanes: np.ndarray,
) -> np.ndarray:
    """Apply a scalar engine kernel lane by lane, accumulating flags."""
    fmt = config.fmt
    out = np.zeros(flags.shape[0], dtype=np.uint64)
    for i in range(flags.shape[0]):
        env = config.fresh_env()
        args = [SoftFloat(fmt, int(lane[i])) for lane in operand_lanes]
        out[i] = kernel(*args, env).bits
        flags[i] |= np.uint8(env.flags.value)
    return out


def _run_op(
    op: str,
    config: MachineConfig,
    backend: SoftFloatBackend,
    flags: np.ndarray,
    *operand_lanes: np.ndarray,
) -> np.ndarray:
    """One protocol op across all lanes; scalar fallback off-protocol."""
    fmt = config.fmt
    if backend.supports(op, fmt, config.rounding, config.ftz, config.daz):
        result = backend.run_packed(
            op, fmt, list(operand_lanes), config.rounding, config.ftz,
            config.daz,
        )
        flags |= result.flags
        return result.bits
    from repro.softfloat.backend import _SCALAR_KERNELS

    return _scalar_sweep(_SCALAR_KERNELS[op], config, flags, *operand_lanes)


def _eval_lanes(
    expr: Expr,
    var_source,
    n: int,
    config: MachineConfig,
    backend: SoftFloatBackend,
    flags: np.ndarray,
) -> np.ndarray:
    """The vectorized mirror of ``evaluator._eval``: packed bits lanes.

    ``var_source(name, flags)`` supplies each variable's lane array —
    how :func:`evaluate_many` (SoftFloat dicts, converting) and
    :func:`evaluate_lanes` (pre-packed bits) share one walk."""
    fmt = config.fmt
    if isinstance(expr, Const):
        # Compile-time constant conversion: quiet, like the evaluator.
        value = parse_softfloat(expr.literal, fmt)
        return np.full(n, value.bits, dtype=np.uint64)
    if isinstance(expr, Var):
        return var_source(expr.name, flags)
    if isinstance(expr, Unary):
        operand = _eval_lanes(expr.operand, var_source, n, config, backend,
                              flags)
        signbit = np.uint64(1 << (fmt.width - 1))
        if expr.op is UnOp.NEG:
            return operand ^ signbit
        if expr.op is UnOp.ABS:
            return operand & ~signbit
        if expr.op is UnOp.SQRT:
            return _run_op("sqrt", config, backend, flags, operand)
        raise AssertionError(f"unhandled unary op {expr.op}")  # pragma: no cover
    if isinstance(expr, Binary):
        left = _eval_lanes(expr.left, var_source, n, config, backend, flags)
        right = _eval_lanes(expr.right, var_source, n, config, backend,
                            flags)
        if expr.op in _BACKEND_BINOPS:
            return _run_op(
                _BACKEND_BINOPS[expr.op], config, backend, flags, left, right
            )
        if expr.op in _SCALAR_BINOPS:
            return _scalar_sweep(
                _SCALAR_BINOPS[expr.op], config, flags, left, right
            )
        raise AssertionError(f"unhandled binary op {expr.op}")  # pragma: no cover
    if isinstance(expr, FMA):
        a = _eval_lanes(expr.a, var_source, n, config, backend, flags)
        b = _eval_lanes(expr.b, var_source, n, config, backend, flags)
        c = _eval_lanes(expr.c, var_source, n, config, backend, flags)
        return _run_op("fma", config, backend, flags, a, b, c)
    raise OptimizationError(f"cannot evaluate node {type(expr).__name__}")
