"""Expression IR for the optimization simulator.

Nodes are immutable and format-agnostic: constants carry their source
literal text and are converted (with correct rounding) to the machine's
format at evaluation time, so the same expression can be run on
binary64, binary32, or a 6-bit toy format.
"""

from __future__ import annotations

import dataclasses
import enum
from collections.abc import Iterator

from repro.errors import OptimizationError

__all__ = [
    "Expr",
    "Const",
    "Var",
    "Unary",
    "Binary",
    "FMA",
    "BinOp",
    "UnOp",
    "expr_variables",
    "expr_size",
    "unique_size",
    "walk",
    "walk_unique",
]


class BinOp(enum.Enum):
    """Binary arithmetic operators."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    REM = "%"
    MIN = "min"
    MAX = "max"


class UnOp(enum.Enum):
    """Unary operators."""

    NEG = "-"
    ABS = "abs"
    SQRT = "sqrt"


@dataclasses.dataclass(frozen=True)
class Expr:
    """Base class for expression nodes."""

    def children(self) -> tuple["Expr", ...]:
        """Immediate sub-expressions."""
        return ()

    def with_children(self, *children: "Expr") -> "Expr":
        """Rebuild this node with replacement children."""
        if children:
            raise OptimizationError(f"{type(self).__name__} takes no children")
        return self

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class Const(Expr):
    """A literal constant, kept as its exact source text.

    >>> str(Const("0.1"))
    '0.1'
    """

    literal: str

    def __str__(self) -> str:
        return self.literal


@dataclasses.dataclass(frozen=True)
class Var(Expr):
    """A free variable, bound at evaluation time."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclasses.dataclass(frozen=True)
class Unary(Expr):
    """A unary operation."""

    op: UnOp
    operand: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def with_children(self, *children: Expr) -> "Unary":
        (operand,) = children
        return Unary(self.op, operand)

    def __str__(self) -> str:
        if self.op is UnOp.NEG:
            return f"(-{self.operand})"
        return f"{self.op.value}({self.operand})"


@dataclasses.dataclass(frozen=True)
class Binary(Expr):
    """A binary operation."""

    op: BinOp
    left: Expr
    right: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def with_children(self, *children: Expr) -> "Binary":
        left, right = children
        return Binary(self.op, left, right)

    def __str__(self) -> str:
        if self.op in (BinOp.MIN, BinOp.MAX):
            return f"{self.op.value}({self.left}, {self.right})"
        return f"({self.left} {self.op.value} {self.right})"


@dataclasses.dataclass(frozen=True)
class FMA(Expr):
    """Fused multiply-add node: ``a*b + c`` with a single rounding.

    Produced by the contraction pass (or written directly as
    ``fma(a, b, c)`` in the expression language).
    """

    a: Expr
    b: Expr
    c: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.a, self.b, self.c)

    def with_children(self, *children: Expr) -> "FMA":
        a, b, c = children
        return FMA(a, b, c)

    def __str__(self) -> str:
        return f"fma({self.a}, {self.b}, {self.c})"


def walk(expr: Expr) -> Iterator[Expr]:
    """Pre-order traversal of every node in the tree.

    A node object shared between several parents (a DAG built by the
    rewrite passes, which reuse subtree objects) is yielded once per
    *occurrence*; use :func:`walk_unique` to visit each distinct node
    object exactly once.
    """
    yield expr
    for child in expr.children():
        yield from walk(child)


def walk_unique(expr: Expr) -> Iterator[Expr]:
    """Pre-order traversal visiting each node *object* exactly once.

    Rewrite passes reuse subtree objects, so an optimized expression is
    really a DAG; the plain :func:`walk` revisits shared subtrees once
    per parent (exponentially, in the worst case).  Memoizing on object
    identity — not structural equality, so two equal-but-distinct
    source occurrences are still both visited — makes traversal linear
    in the number of distinct nodes and lets the static analyzer emit
    one diagnostic per node.
    """
    seen: set[int] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        yield node
        stack.extend(reversed(node.children()))


def expr_variables(expr: Expr) -> tuple[str, ...]:
    """Free variable names in first-occurrence order."""
    seen: dict[str, None] = {}
    for node in walk_unique(expr):
        if isinstance(node, Var):
            seen.setdefault(node.name, None)
    return tuple(seen)


def expr_size(expr: Expr) -> int:
    """Total occurrence count (a proxy for naive evaluation cost)."""
    return sum(1 for _ in walk(expr))


def unique_size(expr: Expr) -> int:
    """Distinct node-object count (DAG size; a proxy for analyzed or
    memoized-evaluation cost)."""
    return sum(1 for _ in walk_unique(expr))
