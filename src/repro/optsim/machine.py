"""Machine/compiler configuration: what the toolchain is allowed to do.

A :class:`MachineConfig` models the two layers the paper's optimization
quiz probes:

- **hardware controls** — destination format, rounding direction, and
  the Intel FTZ/DAZ bits (*Flush to Zero* question);
- **compiler permissions** — whether contraction to FMA is allowed
  (*MADD* / *Standard-compliant Level* questions) and the fast-math
  sub-flags gcc bundles into ``--ffast-math`` (*Fast-math* question).

The named presets mirror gcc's observable behavior: ``-O0``…``-O2``
keep strict IEEE semantics, ``-O3`` additionally permits FMA
contraction (``-ffp-contract=fast`` being the practical default at
high optimization for this simulator's purposes, as the paper's answer
key states: "typically -O2, with -O3 also allowing MADD"), and
``-Ofast`` implies ``--ffast-math``.
"""

from __future__ import annotations

import dataclasses

from repro.fpenv.env import FPEnv
from repro.fpenv.rounding import RoundingMode
from repro.softfloat.formats import BINARY64, FloatFormat

__all__ = [
    "MachineConfig",
    "STRICT",
    "O0",
    "O1",
    "O2",
    "O3",
    "OFAST",
    "FAST_MATH",
    "optimization_level",
]


@dataclasses.dataclass(frozen=True)
class MachineConfig:
    """Evaluation semantics for :func:`repro.optsim.evaluator.evaluate`.

    Attributes
    ----------
    name:
        Display name (e.g. ``-O2``).
    fmt:
        Destination floating point format.
    rounding:
        Rounding direction attribute.
    ftz, daz:
        Hardware flush-to-zero / denormals-are-zero control bits.
    fp_contract:
        Compiler may fuse ``a*b + c`` into a single-rounding FMA.
    allow_reassoc:
        Compiler may reassociate chains of ``+``/``*``
        (gcc ``-fassociative-math``).
    no_signed_zeros:
        Compiler may ignore the sign of zero (``-fno-signed-zeros``).
    finite_math_only:
        Compiler may assume no NaNs or infinities occur
        (``-ffinite-math-only``).
    reciprocal_math:
        Compiler may replace division by multiplication with a rounded
        reciprocal (``-freciprocal-math``).
    """

    name: str = "custom"
    fmt: FloatFormat = BINARY64
    rounding: RoundingMode = RoundingMode.NEAREST_EVEN
    ftz: bool = False
    daz: bool = False
    fp_contract: bool = False
    allow_reassoc: bool = False
    no_signed_zeros: bool = False
    finite_math_only: bool = False
    reciprocal_math: bool = False

    def fresh_env(self) -> FPEnv:
        """A new environment realizing the hardware side of this config."""
        return FPEnv(rounding=self.rounding, ftz=self.ftz, daz=self.daz)

    def replace(self, **changes: object) -> "MachineConfig":
        """A modified copy (``dataclasses.replace`` convenience)."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    @property
    def fast_math(self) -> bool:
        """True when every fast-math sub-flag is enabled."""
        return (
            self.allow_reassoc
            and self.no_signed_zeros
            and self.finite_math_only
            and self.reciprocal_math
        )


#: Strict IEEE semantics: the reference everything is compared against.
STRICT = MachineConfig(name="strict-ieee")
#: ``-O0``/``-O1``: no value-changing floating point transformations.
O0 = MachineConfig(name="-O0")
O1 = MachineConfig(name="-O1")
#: ``-O2``: the highest level that preserves standard-compliant behavior.
O2 = MachineConfig(name="-O2")
#: ``-O3``: additionally contracts multiply-add (MADD) — non-754-1985.
O3 = MachineConfig(name="-O3", fp_contract=True)
#: ``--ffast-math`` alone: all value-changing algebra plus FTZ/DAZ
#: (gcc's fast-math sets abrupt-underflow mode on x86 startup).
FAST_MATH = MachineConfig(
    name="--ffast-math",
    fp_contract=True,
    allow_reassoc=True,
    no_signed_zeros=True,
    finite_math_only=True,
    reciprocal_math=True,
    ftz=True,
    daz=True,
)
#: ``-Ofast`` = ``-O3`` + ``--ffast-math``.
OFAST = FAST_MATH.replace(name="-Ofast")

_LEVELS = {
    "-O0": O0,
    "-O1": O1,
    "-O2": O2,
    "-O3": O3,
    "-Ofast": OFAST,
    "--ffast-math": FAST_MATH,
    "strict": STRICT,
}


def optimization_level(flag: str) -> MachineConfig:
    """Look up a named optimization level (``-O0`` … ``-Ofast``,
    ``--ffast-math``, ``strict``).

    >>> optimization_level("-O2").fp_contract
    False
    >>> optimization_level("-O3").fp_contract
    True
    """
    try:
        return _LEVELS[flag]
    except KeyError:
        known = ", ".join(sorted(_LEVELS))
        raise ValueError(f"unknown optimization level {flag!r}; known: {known}")
