"""Straight-line programs: assignment sequences over the expression IR.

Models the statement-level transformations the expression passes cannot
express, with the same strict-vs-optimized discipline:

- **CSE** (common subexpression elimination) is value-preserving:
  expressions are pure and deterministic, so reusing a computed value
  is bit-identical — but it *removes duplicate exception raises*
  (harmless: flags are sticky, a second raise changes nothing).
- **DCE** (dead code elimination) preserves the returned value but can
  erase *sticky exception flags* entirely: a dead ``x = 1.0/0.0`` no
  longer raises divide-by-zero at run time.  Real compilers do exactly
  this, which is one more reason a "no flags were set" observation
  proves less than developers think (the Exception Signal question's
  statement-level sequel).

Source syntax::

    t = a * b;
    u = t + c;
    return u / t

"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

from repro.errors import OptimizationError, ParseError
from repro.fpenv.env import FPEnv
from repro.fpenv.flags import FPFlag
from repro.optsim.ast import Expr, Var, expr_variables, walk
from repro.optsim.evaluator import EvalResult, evaluate
from repro.optsim.machine import STRICT, MachineConfig
from repro.optsim.parser import parse_expr
from repro.optsim.pipeline import optimize
from repro.softfloat import SoftFloat

__all__ = [
    "Assign",
    "Program",
    "parse_program",
    "evaluate_program",
    "eliminate_common_subexpressions",
    "eliminate_dead_code",
    "optimize_program",
]


@dataclasses.dataclass(frozen=True)
class Assign:
    """One assignment statement."""

    name: str
    expr: Expr

    def __str__(self) -> str:
        return f"{self.name} = {self.expr};"


@dataclasses.dataclass(frozen=True)
class Program:
    """A straight-line program: assignments then a returned expression."""

    statements: tuple[Assign, ...]
    result: Expr

    def __str__(self) -> str:
        lines = [str(statement) for statement in self.statements]
        lines.append(f"return {self.result}")
        return "\n".join(lines)

    def free_variables(self) -> tuple[str, ...]:
        """Input variables: used before any assignment defines them."""
        defined: set[str] = set()
        free: dict[str, None] = {}
        for statement in self.statements:
            for name in expr_variables(statement.expr):
                if name not in defined:
                    free.setdefault(name)
            defined.add(statement.name)
        for name in expr_variables(self.result):
            if name not in defined:
                free.setdefault(name)
        return tuple(free)


def parse_program(source: str) -> Program:
    """Parse semicolon/newline-separated assignments plus a final
    ``return`` expression."""
    statements: list[Assign] = []
    result: Expr | None = None
    for raw in source.replace("\n", ";").split(";"):
        text = raw.strip()
        if not text:
            continue
        if result is not None:
            raise ParseError("statements after the return expression")
        if text.startswith("return"):
            result = parse_expr(text[len("return"):])
            continue
        name, equals, body = text.partition("=")
        if not equals or "=" in body:
            raise ParseError(f"expected 'name = expr' or 'return expr', "
                             f"got {text!r}")
        name = name.strip()
        if not name.isidentifier():
            raise ParseError(f"bad assignment target {name!r}")
        statements.append(Assign(name, parse_expr(body)))
    if result is None:
        raise ParseError("program has no return expression")
    return Program(tuple(statements), result)


def evaluate_program(
    program: Program,
    bindings: Mapping[str, SoftFloat],
    config: MachineConfig = STRICT,
    env: FPEnv | None = None,
) -> EvalResult:
    """Run the program top to bottom under ``config``."""
    local_env = env if env is not None else config.fresh_env()
    scope: dict[str, SoftFloat] = dict(bindings)
    for statement in program.statements:
        scope[statement.name] = evaluate(
            statement.expr, scope, config, local_env
        ).value
    value = evaluate(program.result, scope, config, local_env).value
    return EvalResult(value=value, flags=local_env.flags, config=config)


# ----------------------------------------------------------------------
# Statement-level passes
# ----------------------------------------------------------------------

def eliminate_common_subexpressions(program: Program) -> Program:
    """Replace every repeated assigned expression with the earlier
    temporary (pure expressions: bit-identical by determinism).

    Only whole assignment bodies are unified — enough to model the
    classic "compute it once" transformation without an SSA dance.
    Assignments to a name that is later *re*-assigned are left alone.
    """
    reassigned = _reassigned_names(program)
    seen: dict[Expr, str] = {}
    replacements: dict[str, str] = {}
    statements: list[Assign] = []
    for statement in program.statements:
        expr = _substitute(statement.expr, replacements)
        if (
            expr in seen
            and statement.name not in reassigned
            and seen[expr] not in reassigned
        ):
            replacements[statement.name] = seen[expr]
            continue  # drop the duplicate assignment
        if statement.name not in reassigned:
            seen.setdefault(expr, statement.name)
        statements.append(Assign(statement.name, expr))
    result = _substitute(program.result, replacements)
    return Program(tuple(statements), result)


def eliminate_dead_code(program: Program) -> Program:
    """Drop assignments whose targets never reach the result.

    Value-preserving; NOT flag-preserving (the documented divergence).
    """
    live: set[str] = set(expr_variables(program.result))
    kept_reversed: list[Assign] = []
    for statement in reversed(program.statements):
        if statement.name in live:
            kept_reversed.append(statement)
            live.discard(statement.name)
            live.update(expr_variables(statement.expr))
    return Program(tuple(reversed(kept_reversed)), program.result)


def optimize_program(
    program: Program,
    config: MachineConfig,
    *,
    cse: bool = True,
    dce: bool = True,
) -> Program:
    """Expression passes per statement, then CSE and DCE."""
    statements = tuple(
        Assign(s.name, optimize(s.expr, config)) for s in program.statements
    )
    current = Program(statements, optimize(program.result, config))
    if cse:
        current = eliminate_common_subexpressions(current)
    if dce:
        current = eliminate_dead_code(current)
    return current


def _reassigned_names(program: Program) -> set[str]:
    counts: dict[str, int] = {}
    for statement in program.statements:
        counts[statement.name] = counts.get(statement.name, 0) + 1
    return {name for name, count in counts.items() if count > 1}


def _substitute(expr: Expr, replacements: Mapping[str, str]) -> Expr:
    if not replacements:
        return expr

    from repro.optsim.passes.base import bottom_up

    def rename(node: Expr) -> Expr:
        if isinstance(node, Var) and node.name in replacements:
            return Var(replacements[node.name])
        return node

    return bottom_up(expr, rename)
