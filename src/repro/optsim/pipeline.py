"""Pass pipeline: turn a source expression into its "compiled" form.

:func:`optimize` runs every pass the config licenses, in canonical
order, to a fixed point (bounded — passes here are contractive, but the
bound guards against rewrite ping-pong).  The result is what the
simulated compiler would actually execute.
"""

from __future__ import annotations

from repro.errors import OptimizationError
from repro.optsim.ast import Expr
from repro.optsim.machine import MachineConfig
from repro.optsim.passes import ALL_PASSES, OptimizationPass
from repro.telemetry import get_telemetry

__all__ = ["optimize", "enabled_passes"]

_MAX_ITERATIONS = 8


def enabled_passes(config: MachineConfig) -> tuple[OptimizationPass, ...]:
    """The subset of :data:`~repro.optsim.passes.ALL_PASSES` that
    ``config`` licenses, in pipeline order."""
    return tuple(p for p in ALL_PASSES if p.enabled(config))


def optimize(
    expr: Expr,
    config: MachineConfig,
    *,
    passes: tuple[OptimizationPass, ...] | None = None,
) -> Expr:
    """Apply the licensed passes to a fixed point and return the
    transformed tree.

    >>> from repro.optsim import parse_expr, O3
    >>> str(optimize(parse_expr("a*b + c"), O3))
    'fma(a, b, c)'
    """
    active = enabled_passes(config) if passes is None else passes
    telemetry = get_telemetry()
    with telemetry.tracer.span(
        "optsim.optimize", config=config.name, expr=str(expr)
    ) as span:
        current = expr
        for _ in range(_MAX_ITERATIONS):
            previous = current
            for pass_ in active:
                rewritten = pass_.apply(current, config)
                if telemetry.enabled and rewritten != current:
                    telemetry.metrics.counter(
                        "optsim.pass_rewrites_total", **{"pass": pass_.name}
                    ).inc()
                current = rewritten
            if current == previous:
                span.set("compiled", str(current))
                return current
    raise OptimizationError(
        f"pass pipeline failed to reach a fixed point on {expr!s}"
    )
