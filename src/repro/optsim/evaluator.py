"""Expression evaluation under a machine configuration.

:func:`evaluate` interprets an expression tree with the softfloat engine
in the config's format, rounding mode, and FTZ/DAZ setting, collecting
the sticky exception flags the run raises.  :func:`evaluate_strict` is
the reference semantics every compliance question compares against:
strict IEEE, no tree transformations.

Note the separation of concerns: *this module never rewrites the tree* —
compiler transformations live in :mod:`repro.optsim.passes` and are
applied by :func:`repro.optsim.pipeline.optimize` before evaluation.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

from repro.errors import OptimizationError
from repro.fpenv.env import FPEnv
from repro.fpenv.flags import FPFlag
from repro.optsim.ast import FMA, Binary, BinOp, Const, Expr, Unary, UnOp, Var
from repro.optsim.machine import STRICT, MachineConfig
from repro.softfloat import (
    SoftFloat,
    fp_add,
    fp_div,
    fp_fma,
    fp_max,
    fp_min,
    fp_mul,
    fp_remainder,
    fp_sqrt,
    fp_sub,
    parse_softfloat,
)

__all__ = ["EvalResult", "evaluate", "evaluate_strict", "bind"]


@dataclasses.dataclass(frozen=True)
class EvalResult:
    """The value and the exception footprint of one evaluation."""

    value: SoftFloat
    flags: FPFlag
    config: MachineConfig

    def __str__(self) -> str:
        from repro.fpenv.flags import flag_names

        names = ",".join(flag_names(self.flags)) or "none"
        return f"{self.value!s} [{names}] under {self.config.name}"


def bind(
    config: MachineConfig, **values: object
) -> dict[str, SoftFloat]:
    """Build a binding dict, converting plain numbers to the config's
    format.

    >>> from repro.optsim.machine import STRICT
    >>> bind(STRICT, a=1.5)["a"]
    SoftFloat(binary64, 1.5)
    """
    from repro.softfloat import sf

    return {name: sf(value, config.fmt) for name, value in values.items()}


def evaluate(
    expr: Expr,
    bindings: Mapping[str, SoftFloat],
    config: MachineConfig = STRICT,
    env: FPEnv | None = None,
) -> EvalResult:
    """Interpret ``expr`` under ``config``.

    ``bindings`` maps variable names to SoftFloat values; values in a
    different format are converted (with rounding) on use, modelling a
    load into the destination register width.  A fresh environment is
    created from the config unless ``env`` is supplied (in which case
    flags accumulate there and the config's FTZ/DAZ/rounding are
    *ignored* in favor of the environment's).
    """
    local_env = env if env is not None else config.fresh_env()
    value = _eval(expr, bindings, config, local_env)
    return EvalResult(value=value, flags=local_env.flags, config=config)


def evaluate_strict(
    expr: Expr, bindings: Mapping[str, SoftFloat], fmt=None
) -> EvalResult:
    """Reference semantics: strict IEEE in the given (default binary64)
    format, default rounding, no FTZ/DAZ, no transformations."""
    config = STRICT if fmt is None else STRICT.replace(fmt=fmt)
    return evaluate(expr, bindings, config)


def _eval(
    expr: Expr,
    bindings: Mapping[str, SoftFloat],
    config: MachineConfig,
    env: FPEnv,
) -> SoftFloat:
    if isinstance(expr, Const):
        # Literals are rounded into the destination format quietly:
        # constant conversion happens at compile time, so its inexactness
        # is not a runtime exception (itself a documented subtlety).
        return parse_softfloat(expr.literal, config.fmt)
    if isinstance(expr, Var):
        try:
            value = bindings[expr.name]
        except KeyError:
            raise OptimizationError(f"unbound variable {expr.name!r}")
        if value.fmt != config.fmt:
            from repro.softfloat import convert_format

            value = convert_format(value, config.fmt, env)
        return value
    if isinstance(expr, Unary):
        operand = _eval(expr.operand, bindings, config, env)
        if expr.op is UnOp.NEG:
            return -operand
        if expr.op is UnOp.ABS:
            return abs(operand)
        if expr.op is UnOp.SQRT:
            return fp_sqrt(operand, env)
        raise AssertionError(f"unhandled unary op {expr.op}")  # pragma: no cover
    if isinstance(expr, Binary):
        left = _eval(expr.left, bindings, config, env)
        right = _eval(expr.right, bindings, config, env)
        if expr.op is BinOp.ADD:
            return fp_add(left, right, env)
        if expr.op is BinOp.SUB:
            return fp_sub(left, right, env)
        if expr.op is BinOp.MUL:
            return fp_mul(left, right, env)
        if expr.op is BinOp.DIV:
            return fp_div(left, right, env)
        if expr.op is BinOp.REM:
            return fp_remainder(left, right, env)
        if expr.op is BinOp.MIN:
            return fp_min(left, right, env)
        if expr.op is BinOp.MAX:
            return fp_max(left, right, env)
        raise AssertionError(f"unhandled binary op {expr.op}")  # pragma: no cover
    if isinstance(expr, FMA):
        a = _eval(expr.a, bindings, config, env)
        b = _eval(expr.b, bindings, config, env)
        c = _eval(expr.c, bindings, config, env)
        return fp_fma(a, b, c, env)
    raise OptimizationError(f"cannot evaluate node {type(expr).__name__}")
