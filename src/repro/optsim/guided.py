"""Analysis-guided and exhaustive divergence search strategies.

The random strategy in :mod:`repro.optsim.compliance` samples the whole
encoding space; for the narrow operating ranges real lint corpora bind
(``t ∈ [1e8, 1e9]``, subnormal bands, …) a uniform draw essentially
never lands inside the region where an optimization's hazard can fire.
This module adds the two strategies that close that gap:

- :func:`guided_search` samples from the *feasible divergence regions*
  :func:`repro.staticfp.regions.divergence_goals` derives by backward
  refinement from the abstract analysis — corner-lattice probes first,
  then per-goal region sampling steered by an exception-flow coverage
  map (:class:`FlowCoverage`, in the spirit of FlowFPX's flag-flow
  tracking: which statically-possible per-node flags has the search
  actually exercised on each side?).

- :func:`exhaustive_sweep` enumerates *every* admitted operand
  combination for small formats (TINY8, binary16 with few variables),
  lane-parallel through :func:`repro.optsim.batch_eval.evaluate_many`.
  A clean sweep is a proof over the sampled domain: ``safe`` verdicts
  become witness-free facts, not merely unfalsified claims.

Per-node flag attribution uses a capturing evaluator that runs each
operation in a fresh environment (so the sticky-flag union matches
:func:`repro.optsim.evaluator.evaluate` exactly) and publishes one
event per flag-raising node through the active telemetry stream.
"""

from __future__ import annotations

import dataclasses
import random
from collections.abc import Mapping, Sequence

from repro.errors import OptimizationError
from repro.fpenv.flags import FPFlag
from repro.optsim.ast import (
    FMA,
    Binary,
    BinOp,
    Const,
    Expr,
    Unary,
    UnOp,
    Var,
    expr_variables,
)
from repro.optsim.machine import STRICT, MachineConfig
from repro.softfloat import (
    SoftFloat,
    convert_format,
    fp_add,
    fp_div,
    fp_fma,
    fp_max,
    fp_min,
    fp_mul,
    fp_remainder,
    fp_sqrt,
    fp_sub,
    parse_softfloat,
)
from repro.telemetry import get_telemetry
from repro.telemetry.events import single_flags

__all__ = [
    "FlowCoverage",
    "GuidedResult",
    "SweepResult",
    "exhaustive_sweep",
    "guided_search",
    "sweep_slice",
]

_EVENT_PREFIX = "witness"


# ----------------------------------------------------------------------
# Per-node flag capture
# ----------------------------------------------------------------------
_BINARY_FNS = {
    BinOp.ADD: fp_add,
    BinOp.SUB: fp_sub,
    BinOp.MUL: fp_mul,
    BinOp.DIV: fp_div,
    BinOp.REM: fp_remainder,
    BinOp.MIN: fp_min,
    BinOp.MAX: fp_max,
}


def _eval_capture(
    expr: Expr,
    bindings: Mapping[str, SoftFloat],
    config: MachineConfig,
    emit,
) -> tuple[SoftFloat, FPFlag]:
    """Evaluate like :func:`repro.optsim.evaluator.evaluate` but run
    every operation in a fresh environment, calling ``emit(node,
    flags)`` with each node's own raised flags.  The returned sticky
    union is bit-identical to the plain evaluator's."""
    total = FPFlag.NONE

    def run(node: Expr) -> SoftFloat:
        nonlocal total
        if isinstance(node, Const):
            return parse_softfloat(node.literal, config.fmt)
        if isinstance(node, Var):
            try:
                value = bindings[node.name]
            except KeyError:
                raise OptimizationError(f"unbound variable {node.name!r}")
            if value.fmt != config.fmt:
                env = config.fresh_env()
                value = convert_format(value, config.fmt, env)
                total |= env.flags
                emit(node, env.flags)
            return value
        if isinstance(node, Unary):
            operand = run(node.operand)
            if node.op is UnOp.NEG:
                return -operand
            if node.op is UnOp.ABS:
                return abs(operand)
            env = config.fresh_env()
            result = fp_sqrt(operand, env)
        elif isinstance(node, Binary):
            left = run(node.left)
            right = run(node.right)
            env = config.fresh_env()
            result = _BINARY_FNS[node.op](left, right, env)
        elif isinstance(node, FMA):
            a, b, c = run(node.a), run(node.b), run(node.c)
            env = config.fresh_env()
            result = fp_fma(a, b, c, env)
        else:
            raise OptimizationError(
                f"cannot evaluate node {type(node).__name__}"
            )
        total |= env.flags
        emit(node, env.flags)
        return result

    value = run(expr)
    return value, total


# ----------------------------------------------------------------------
# Exception-flow coverage
# ----------------------------------------------------------------------
@dataclasses.dataclass
class FlowCoverage:
    """Which statically-possible exception flows has the search
    exercised?

    Targets are ``(side, node, flag)`` triples — every per-node may-flag
    the abstract analysis reports, on both the strict evaluation of the
    source expression and the configured evaluation of its compiled
    form.  The search records each candidate's actual per-node flags
    against them (routed through the telemetry event stream when a
    session is active), and uses the unexercised remainder to steer
    goal selection.
    """

    targets: frozenset[tuple[str, str, str]]
    covered: set[tuple[str, str, str]] = dataclasses.field(
        default_factory=set
    )

    @classmethod
    def for_search(
        cls,
        expr: Expr,
        optimized: Expr,
        config: MachineConfig,
        bindings: Mapping[str, object] | None = None,
    ) -> "FlowCoverage":
        from repro.staticfp.analyze import analyze

        strict_config = STRICT.replace(fmt=config.fmt)
        targets: set[tuple[str, str, str]] = set()
        for side, tree, cfg in (
            ("strict", expr, strict_config),
            ("optimized", optimized, config),
        ):
            analysis = analyze(tree, bindings, cfg)
            for node in analysis.order:
                fact = analysis.fact(node)
                if fact.op in ("const", "var"):
                    continue
                for flag in single_flags(fact.may_flags):
                    name = (flag.name or "?").lower()
                    targets.add((side, str(node), name))
        return cls(targets=frozenset(targets))

    # ------------------------------------------------------------------
    def record(self, side: str, node: str, flags: FPFlag) -> None:
        for flag in single_flags(flags):
            key = (side, node, (flag.name or "?").lower())
            if key in self.targets:
                self.covered.add(key)

    def sink(self, event) -> None:
        """Telemetry-stream subscriber: decode the search's
        ``witness.<side>:<node>`` events back into coverage marks."""
        operation = event.operation
        if not operation.startswith(_EVENT_PREFIX + "."):
            return
        side, _, node = operation[len(_EVENT_PREFIX) + 1:].partition(":")
        self.record(side, node, event.flags)

    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        return len(self.targets)

    @property
    def exercised(self) -> int:
        return len(self.covered)

    @property
    def ratio(self) -> float:
        return self.exercised / self.total if self.targets else 1.0

    def unexercised(self) -> tuple[tuple[str, str, str], ...]:
        return tuple(sorted(self.targets - self.covered))

    def to_dict(self) -> dict:
        return {
            "targets": self.total,
            "exercised": self.exercised,
            "ratio": round(self.ratio, 4),
            "unexercised": [list(t) for t in self.unexercised()],
        }

    def describe(self) -> str:
        head = (
            f"flag-flow coverage: {self.exercised}/{self.total}"
            f" ({self.ratio:.0%})"
        )
        missing = self.unexercised()
        if missing:
            shown = ", ".join(
                f"{side}:{node}!{flag}" for side, node, flag in missing[:4]
            )
            more = f" (+{len(missing) - 4} more)" if len(missing) > 4 else ""
            head += f"; unexercised: {shown}{more}"
        return head


# ----------------------------------------------------------------------
# Guided search
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class GuidedResult:
    """Outcome of one guided (or exhaustive) strategy run."""

    witness: dict[str, SoftFloat] | None
    value_diverged: bool
    flags_diverged: bool
    strict_result: object | None
    optimized_result: object | None
    evals: int
    coverage: FlowCoverage | None
    goal: str | None = None


def _candidate_stream(
    names: Sequence[str],
    base: Mapping[str, "object"],
    goals: Sequence["object"],
    coverage: FlowCoverage,
    rng: random.Random,
    extra: Sequence[Mapping[str, SoftFloat]],
):
    """Yield candidate bindings: explicit extras, then per-goal lattice
    combinations, then coverage-prioritized region sampling with a
    periodic unbiased draw from the admitted base regions."""
    fmt = next(iter(base.values())).fmt if base else None

    def build(bits_by_name: Mapping[str, int]) -> dict[str, SoftFloat]:
        return {
            name: SoftFloat(fmt, bits_by_name[name]) for name in names
        }

    for binding in extra:
        if all(
            name in binding and base[name].contains(binding[name].bits)
            for name in names
        ):
            yield binding, "extra"

    if not names:
        # Variable-free expressions have exactly one candidate: the
        # empty binding.  Divergence, if any, is unconditional.
        yield {}, "base"
        return

    # Lattice tier: the deterministic probe points of every goal.
    seen: set[tuple[int, ...]] = set()
    goal_list = [("base", {})] + [(g.name, g.region_map()) for g in goals]
    for goal_name, regions in goal_list:
        lattices = [
            regions.get(name, base[name]).lattice_points() for name in names
        ]
        if len(names) <= 2:
            combos: list[tuple[int, ...]] = [()]
            for points in lattices:
                combos = [c + (p,) for c in combos for p in points]
        else:
            width = max(len(points) for points in lattices)
            combos = [
                tuple(points[i % len(points)] for points in lattices)
                for i in range(width)
            ]
            anchors = tuple(points[0] for points in lattices)
            for axis, points in enumerate(lattices):
                for p in points:
                    combos.append(
                        anchors[:axis] + (p,) + anchors[axis + 1:]
                    )
        for combo in combos[:512]:
            if combo not in seen:
                seen.add(combo)
                yield build(dict(zip(names, combo))), goal_name

    # Sampling tier: chase goals whose flag flows are still unexercised.
    round_index = 0
    while True:
        ordered = sorted(
            goal_list,
            key=lambda item: not any(
                item[0] != "base" and node in item[0]
                for _, node, _ in coverage.unexercised()
            ),
        )
        for goal_name, regions in ordered:
            bits = {
                name: regions.get(name, base[name]).sample(rng)
                for name in names
            }
            yield build(bits), goal_name
        # every round, one unbiased draw keeps the base space live
        yield build(
            {name: base[name].sample(rng) for name in names}
        ), "base"
        round_index += 1


def guided_search(
    expr: Expr,
    optimized: Expr,
    config: MachineConfig,
    *,
    bindings: Mapping[str, object] | None = None,
    goals: Sequence["object"] | None = None,
    safety=None,
    seed: int = 754,
    trials: int = 2000,
    check_flags: bool = True,
    extra_witnesses: Sequence[Mapping[str, SoftFloat]] = (),
) -> GuidedResult:
    """Search for a divergence witness inside the analysis-derived
    feasible regions, tracking exception-flow coverage as it goes.

    Every candidate is evaluated with the capturing evaluator on both
    sides (feeding :class:`FlowCoverage` and the telemetry stream); a
    hit is re-confirmed with the scalar
    :func:`repro.optsim.compliance.check_binding` before it is
    returned, so a guided witness is verified by construction.
    """
    from repro.optsim.compliance import _same_value, check_binding
    from repro.staticfp.regions import divergence_goals, variable_regions

    names = sorted(
        set(expr_variables(expr)) | set(expr_variables(optimized))
    )
    base = variable_regions(expr, config, bindings)
    for name in names:
        if name not in base:
            from repro.staticfp.regions import BitRegion

            base[name] = BitRegion.full(config.fmt)
    if goals is None:
        goals = divergence_goals(expr, config, bindings, safety=safety)
    coverage = FlowCoverage.for_search(expr, optimized, config, bindings)

    telemetry = get_telemetry()
    stream = telemetry.stream if telemetry.enabled else None
    if stream is not None:
        stream.subscribe(coverage.sink)

    def emitter(side: str):
        def emit(node: Expr, flags: FPFlag) -> None:
            if not flags:
                return
            if stream is not None:
                stream.record(f"{_EVENT_PREFIX}.{side}:{node}", flags)
            else:
                coverage.record(side, str(node), flags)

        return emit

    strict_config = STRICT.replace(fmt=config.fmt)
    rng = random.Random(seed)
    evals = 0
    try:
        stream_iter = _candidate_stream(
            names, base, goals, coverage, rng, extra_witnesses
        )
        for binding, goal_name in stream_iter:
            if evals >= trials:
                break
            evals += 1
            strict_value, strict_flags = _eval_capture(
                expr, binding, strict_config, emitter("strict")
            )
            opt_value, opt_flags = _eval_capture(
                optimized, binding, config, emitter("optimized")
            )
            value_diverged = not _same_value(strict_value, opt_value)
            flags_diverged = strict_flags != opt_flags
            if value_diverged or (check_flags and flags_diverged):
                strict, opt, vdiv, fdiv = check_binding(
                    expr, optimized, binding, config
                )
                if vdiv or (check_flags and fdiv):
                    return GuidedResult(
                        witness=dict(binding),
                        value_diverged=vdiv,
                        flags_diverged=fdiv,
                        strict_result=strict,
                        optimized_result=opt,
                        evals=evals,
                        coverage=coverage,
                        goal=goal_name,
                    )
    finally:
        if stream is not None:
            stream.unsubscribe(coverage.sink)
    return GuidedResult(
        witness=None,
        value_diverged=False,
        flags_diverged=False,
        strict_result=None,
        optimized_result=None,
        evals=evals,
        coverage=coverage,
    )


# ----------------------------------------------------------------------
# Exhaustive sweep (small formats)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class SweepResult:
    """Outcome of an exhaustive enumeration over the admitted domain."""

    found_index: int | None
    witness: dict[str, SoftFloat] | None
    value_diverged: bool
    flags_diverged: bool
    states: int
    checked: int

    @property
    def is_proof(self) -> bool:
        """True when the whole domain was swept without a divergence —
        an exhaustive equivalence proof over the admitted inputs."""
        return self.found_index is None and self.checked == self.states


def sweep_regions(
    expr: Expr,
    optimized: Expr,
    config: MachineConfig,
    bindings: Mapping[str, object] | None = None,
) -> dict[str, "object"]:
    """The per-variable enumeration domains for an exhaustive sweep:
    the admitted regions, with every NaN encoding for unbound
    variables (NaN inputs are part of the proof obligation)."""
    from repro.staticfp.regions import BitRegion, variable_regions

    names = sorted(
        set(expr_variables(expr)) | set(expr_variables(optimized))
    )
    regions = variable_regions(expr, config, bindings)
    for name in names:
        if bindings is not None and name in bindings:
            continue
        regions[name] = BitRegion.full(config.fmt, nan="all")
    return {name: regions[name] for name in names}


def exhaustive_sweep(
    expr: Expr,
    optimized: Expr,
    config: MachineConfig,
    *,
    bindings: Mapping[str, object] | None = None,
    regions: Mapping[str, "object"] | None = None,
    check_flags: bool = True,
    max_states: int = 1 << 22,
    chunk: int = 4096,
    backend: str = "auto",
    start: int = 0,
    stop: int | None = None,
) -> SweepResult:
    """Enumerate every admitted operand combination, lane-parallel.

    The index space is the mixed-radix product of the per-variable
    region sizes; ``start``/``stop`` select a slice of it (how the
    sharded engine splits a sweep across workers).  Values are compared
    bit-for-bit with all NaNs identified; the first diverging index is
    re-checked scalar before being reported.
    """
    from repro.optsim.batch_eval import evaluate_many
    from repro.optsim.compliance import _same_value, check_binding

    if regions is None:
        regions = sweep_regions(expr, optimized, config, bindings)
    names = sorted(regions)
    sizes = [regions[name].size for name in names]
    total = 1
    for size in sizes:
        total *= size
    if total > max_states:
        raise ValueError(
            f"exhaustive sweep of {total} states exceeds the"
            f" {max_states}-state budget; shard it or bind tighter"
        )
    stop = total if stop is None else min(stop, total)
    fmt = config.fmt
    strict_config = STRICT.replace(fmt=fmt)

    def binding_at(index: int) -> dict[str, SoftFloat]:
        out: dict[str, SoftFloat] = {}
        for name, size in zip(reversed(names), reversed(sizes)):
            index, digit = divmod(index, size)
            out[name] = SoftFloat(fmt, regions[name].select(digit))
        return out

    checked = 0
    for base_index in range(start, stop, chunk):
        hi = min(base_index + chunk, stop)
        batch = [binding_at(i) for i in range(base_index, hi)]
        strict_results = evaluate_many(
            expr, batch, strict_config, backend
        )
        opt_results = evaluate_many(optimized, batch, config, backend)
        for offset, (s, o) in enumerate(zip(strict_results, opt_results)):
            checked += 1
            diverged = not _same_value(s.value, o.value) or (
                check_flags and s.flags != o.flags
            )
            if diverged:
                index = base_index + offset
                binding = binding_at(index)
                strict, opt, vdiv, fdiv = check_binding(
                    expr, optimized, binding, config
                )
                return SweepResult(
                    found_index=index,
                    witness=binding,
                    value_diverged=vdiv,
                    flags_diverged=fdiv,
                    states=stop - start,
                    checked=checked,
                )
    return SweepResult(
        found_index=None,
        witness=None,
        value_diverged=False,
        flags_diverged=False,
        states=stop - start,
        checked=checked,
    )


def sweep_slice(
    expr_source: str,
    level: str,
    region_dicts: Mapping[str, Mapping],
    start: int,
    stop: int,
    *,
    check_flags: bool = True,
    backend: str = "auto",
    fmt: str | None = None,
) -> dict:
    """Engine-task entry point: sweep one slice of the index space from
    serialized inputs, returning the first diverging index (or None)
    and the number of states checked.  ``fmt`` overrides the level's
    format by name (how a TINY8 proof sweep of a binary64 level
    crosses the process boundary).  Kept here so the task body in
    :mod:`repro.engine.adapters` stays a thin shim."""
    from repro.optsim.parser import parse_expr
    from repro.optsim.pipeline import optimize
    from repro.staticfp.regions import BitRegion

    config = _resolve_level(level)
    if fmt is not None:
        from repro.oracle import FORMATS_BY_NAME

        config = config.replace(fmt=FORMATS_BY_NAME[fmt])
    expr = parse_expr(expr_source)
    optimized = optimize(expr, config)
    regions = {
        name: BitRegion.from_dict(data)
        for name, data in region_dicts.items()
    }
    result = exhaustive_sweep(
        expr,
        optimized,
        config,
        regions=regions,
        check_flags=check_flags,
        backend=backend,
        start=start,
        stop=stop,
        max_states=1 << 62,
    )
    return {"index": result.found_index, "checked": result.checked}


def _resolve_level(level: str) -> MachineConfig:
    from repro.optsim import config_from_flags, optimization_level

    try:
        return optimization_level(level)
    except Exception:
        return config_from_flags(level)
