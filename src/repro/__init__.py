"""repro: a full reproduction of *"Do Developers Understand IEEE
Floating Point?"* (Dinda & Hetland, IPDPS 2018).

The library has four layers, bottom to top:

1. **Substrates** - :mod:`repro.softfloat` (bit-exact IEEE 754 engine),
   :mod:`repro.fpenv` (sticky flags, rounding, FTZ/DAZ, traps), and
   :mod:`repro.optsim` (compiler/hardware optimization simulator).
2. **Instrument** - :mod:`repro.quiz` (the paper's core, optimization,
   and suspicion quizzes with machine-checkable ground truth) and
   :mod:`repro.survey` (background factors and response records).
3. **Study** - :mod:`repro.population` (calibrated synthetic cohorts
   standing in for the paper's 199 developers and 52 students) and
   :mod:`repro.analysis` (regenerates every table and figure).
4. **Tools** - :mod:`repro.fpspy` (runtime exception monitor) and
   :mod:`repro.shadow` (arbitrary-precision shadow execution), the two
   concrete "actions" the paper's conclusions call for.

Quickstart::

    import repro

    study = repro.reproduce_study(seed=754)
    print(study.render())            # every paper table/figure
"""

from repro._version import __version__

__all__ = ["__version__", "reproduce_study"]


def reproduce_study(seed: int = 754, developers: int = 199, students: int = 52):
    """One-call reproduction of the paper's full analysis.

    Samples the developer and student cohorts, administers the simulated
    survey, and returns a :class:`repro.analysis.study.StudyResults`
    whose ``render()`` prints every table and figure.
    """
    from repro.analysis.study import run_study

    return run_study(seed=seed, n_developers=developers, n_students=students)
