"""The floating point environment: mode bits plus sticky status flags.

An :class:`FPEnv` bundles everything that parameterizes softfloat
operations besides their operands:

- the rounding direction,
- FTZ (flush results that would be subnormal to zero) and DAZ (treat
  subnormal inputs as zero) — the non-standard Intel control bits the
  paper's *Flush to Zero* optimization question asks about,
- sticky exception flags, and
- trap enable masks: a trapped flag raises a Python exception instead of
  (in addition to) setting the sticky bit, modelling precise traps.

The active environment is thread-local; softfloat operations call
:func:`get_env` unless given an explicit ``env=``.
"""

from __future__ import annotations

import contextlib
import dataclasses
import threading
from collections.abc import Iterator

from repro.errors import (
    DivisionByZeroTrap,
    FloatingPointTrap,
    InexactTrap,
    InvalidOperationTrap,
    OverflowTrap,
    UnderflowTrap,
)
from repro.fpenv.flags import FPFlag
from repro.fpenv.rounding import RoundingMode
from repro.telemetry.runtime import active_recorder

__all__ = [
    "FPEnv",
    "get_env",
    "set_env",
    "env_context",
    "rounding_context",
    "flush_to_zero_context",
]

_TRAP_CLASSES: dict[FPFlag, type[FloatingPointTrap]] = {
    FPFlag.INVALID: InvalidOperationTrap,
    FPFlag.DIV_BY_ZERO: DivisionByZeroTrap,
    FPFlag.OVERFLOW: OverflowTrap,
    FPFlag.UNDERFLOW: UnderflowTrap,
    FPFlag.INEXACT: InexactTrap,
    FPFlag.DENORMAL_RESULT: FloatingPointTrap,
}


@dataclasses.dataclass
class FPEnv:
    """Mutable floating point environment.

    Attributes
    ----------
    rounding:
        Active rounding direction (default round-to-nearest-even).
    ftz:
        Flush-to-zero: results that would be subnormal are replaced by a
        correctly signed zero.  Non-standard; defaults off.
    daz:
        Denormals-are-zero: subnormal *inputs* are treated as signed
        zeros.  Non-standard; defaults off.
    flags:
        Sticky exception flags accumulated since the last clear.
    traps:
        Flags whose occurrence raises a :class:`FloatingPointTrap`.
    recorder:
        Telemetry hook (see :mod:`repro.telemetry.recorder`).  Defaults
        to the active telemetry session's recorder — ``None`` when
        telemetry is off, so every instrumented site reduces to one
        attribute test.  Metrics hooks live *here*, on the environment,
        rather than inside the softfloat operations: the env already
        flows through every operation, so instrumentation follows it
        for free (including into scoped/copied environments) without
        per-operation branching.
    """

    rounding: RoundingMode = RoundingMode.NEAREST_EVEN
    ftz: bool = False
    daz: bool = False
    flags: FPFlag = FPFlag.NONE
    traps: FPFlag = FPFlag.NONE
    recorder: object | None = dataclasses.field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.recorder is None:
            self.recorder = active_recorder()

    def raise_flags(self, flags: FPFlag, operation: str = "<op>") -> None:
        """Set sticky ``flags``; raise if any of them is trap-enabled.

        The sticky bits are set *before* any trap fires, matching
        hardware where the status word records the exception even when a
        trap handler runs (and the telemetry event is emitted before
        the trap for the same reason — a trapped exception must still
        be observable).
        """
        if flags is FPFlag.NONE:
            return
        self.flags |= flags
        recorder = self.recorder
        if recorder is not None:
            recorder.record_flags(operation, flags)
        trapped = flags & self.traps
        if trapped:
            for member, exc in _TRAP_CLASSES.items():
                if member in trapped:
                    raise exc(member, operation)

    def test_flag(self, flag: FPFlag) -> bool:
        """True if every bit of ``flag`` is set in the sticky flags."""
        return (self.flags & flag) == flag

    def any_flag(self, flags: FPFlag = FPFlag.ALL) -> bool:
        """True if any bit of ``flags`` is set."""
        return bool(self.flags & flags)

    def clear_flags(self, flags: FPFlag = FPFlag.ALL) -> None:
        """Clear the given sticky flags (all of them by default)."""
        self.flags &= ~flags

    def copy(self, *, clear: bool = False) -> "FPEnv":
        """Return an independent copy, optionally with flags cleared."""
        out = FPEnv(
            rounding=self.rounding,
            ftz=self.ftz,
            daz=self.daz,
            flags=FPFlag.NONE if clear else self.flags,
            traps=self.traps,
            recorder=self.recorder,
        )
        return out

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        from repro.fpenv.flags import flag_names

        bits = ",".join(flag_names(self.flags)) or "none"
        mode = self.rounding.value
        extras = "".join(
            f" {name}" for name, on in (("ftz", self.ftz), ("daz", self.daz)) if on
        )
        return f"FPEnv(rounding={mode}{extras}, flags=[{bits}])"


class _EnvState(threading.local):
    def __init__(self) -> None:
        self.stack: list[FPEnv] = [FPEnv()]


_STATE = _EnvState()


def get_env() -> FPEnv:
    """Return the thread's active floating point environment."""
    return _STATE.stack[-1]


def set_env(env: FPEnv) -> FPEnv:
    """Replace the thread's active environment; returns the previous one."""
    previous = _STATE.stack[-1]
    _STATE.stack[-1] = env
    return previous


@contextlib.contextmanager
def env_context(
    env: FPEnv | None = None, *, install: bool = False, **overrides: object
) -> Iterator[FPEnv]:
    """Install ``env`` (or a fresh default) as the active environment.

    Keyword overrides are applied on top, e.g.
    ``env_context(rounding=RoundingMode.TOWARD_ZERO, ftz=True)``.
    The previous environment — including its sticky flags — is restored
    on exit, so monitored code cannot leak state into the caller.

    By default the given env is *copied*; pass ``install=True`` to make
    the block use the exact object (required for FPEnv subclasses such
    as :class:`repro.fpenv.trace.TracingEnv`, whose extra state a copy
    would lose).
    """
    if install and env is not None:
        new_env = env
    else:
        new_env = (env.copy() if env is not None else FPEnv())
    for key, value in overrides.items():
        if not hasattr(new_env, key):
            raise TypeError(f"FPEnv has no attribute {key!r}")
        setattr(new_env, key, value)
    _STATE.stack.append(new_env)
    try:
        yield new_env
    finally:
        _STATE.stack.pop()


@contextlib.contextmanager
def rounding_context(mode: RoundingMode) -> Iterator[FPEnv]:
    """Run a block under a different rounding direction.

    Flags raised inside the block *do* propagate to the enclosing
    environment (only the rounding attribute is scoped), matching
    ``fesetround``-style usage.
    """
    env = get_env()
    previous = env.rounding
    env.rounding = mode
    try:
        yield env
    finally:
        env.rounding = previous


@contextlib.contextmanager
def flush_to_zero_context(*, ftz: bool = True, daz: bool = True) -> Iterator[FPEnv]:
    """Temporarily set the non-standard FTZ/DAZ control bits."""
    env = get_env()
    prev = (env.ftz, env.daz)
    env.ftz, env.daz = ftz, daz
    try:
        yield env
    finally:
        env.ftz, env.daz = prev
