"""IEEE 754 rounding-direction attributes.

The five 754-2008 rounding directions.  The default, and the only mode
most developers ever see, is round-to-nearest-even; several quiz ground
truths (*Operation Precision*, *Associativity*) are consequences of it.
"""

from __future__ import annotations

import enum

__all__ = ["RoundingMode"]


class RoundingMode(enum.Enum):
    """Rounding direction attribute.

    - ``NEAREST_EVEN``: roundTiesToEven, the IEEE default.
    - ``NEAREST_AWAY``: roundTiesToAway (required for decimal, optional
      for binary in 754-2008).
    - ``TOWARD_ZERO``: roundTowardZero (truncation; C's ``FE_TOWARDZERO``).
    - ``TOWARD_POSITIVE``: roundTowardPositive (ceiling).
    - ``TOWARD_NEGATIVE``: roundTowardNegative (floor).
    """

    NEAREST_EVEN = "nearest-even"
    NEAREST_AWAY = "nearest-away"
    TOWARD_ZERO = "toward-zero"
    TOWARD_POSITIVE = "toward-positive"
    TOWARD_NEGATIVE = "toward-negative"

    @property
    def is_nearest(self) -> bool:
        """True for the two round-to-nearest modes."""
        return self in (RoundingMode.NEAREST_EVEN, RoundingMode.NEAREST_AWAY)

    def rounds_away(self, sign: int, lsb: int, round_bit: int, sticky: int) -> bool:
        """Decide whether a truncated magnitude must be incremented.

        Parameters describe the discarded part of an exact result:
        ``sign`` is 1 for negative, ``lsb`` is the least significant kept
        bit, ``round_bit`` is the first discarded bit, and ``sticky`` is
        nonzero when any lower discarded bit is nonzero.

        >>> RoundingMode.NEAREST_EVEN.rounds_away(0, 0, 1, 0)  # tie, even
        False
        >>> RoundingMode.NEAREST_EVEN.rounds_away(0, 1, 1, 0)  # tie, odd
        True
        >>> RoundingMode.TOWARD_POSITIVE.rounds_away(0, 0, 0, 1)
        True
        """
        if round_bit == 0 and sticky == 0:
            return False  # exact: never round
        if self is RoundingMode.NEAREST_EVEN:
            if round_bit == 0:
                return False
            if sticky:
                return True
            return lsb == 1  # tie: round to even
        if self is RoundingMode.NEAREST_AWAY:
            return round_bit == 1
        if self is RoundingMode.TOWARD_ZERO:
            return False
        if self is RoundingMode.TOWARD_POSITIVE:
            return sign == 0
        if self is RoundingMode.TOWARD_NEGATIVE:
            return sign == 1
        raise AssertionError(f"unhandled rounding mode {self!r}")
