"""Per-operation exception tracing.

Sticky flags tell you *whether* a condition occurred; a trace tells you
*where* — the difference between the suspicion quiz's wrapper and an
actual debugging session.  :class:`TracingEnv` is a drop-in
:class:`~repro.fpenv.FPEnv` that additionally records every flag-raise
as a :class:`TraceEvent` (operation name, flags, sequence number), with
a bounded buffer so monitoring a long run cannot exhaust memory.
"""

from __future__ import annotations

import dataclasses

from repro.fpenv.env import FPEnv
from repro.fpenv.flags import FPFlag, flag_names

__all__ = ["TraceEvent", "TracingEnv"]

_DEFAULT_CAPACITY = 10_000


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One recorded flag-raise."""

    sequence: int
    operation: str
    flags: FPFlag

    def render(self) -> str:
        names = ",".join(flag_names(self.flags))
        return f"#{self.sequence} {self.operation}: {names}"


class TracingEnv(FPEnv):
    """An FPEnv that logs every raised flag.

    ``capacity`` bounds the retained events (oldest are dropped, but
    the *first* occurrence of each distinct flag is always kept — the
    piece of evidence a debugger wants most).
    """

    def __init__(self, capacity: int = _DEFAULT_CAPACITY, **kwargs) -> None:
        super().__init__(**kwargs)
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._events: list[TraceEvent] = []
        self._first_by_flag: dict[FPFlag, TraceEvent] = {}
        self._sequence = 0
        self._operations = 0

    # FPEnv is a plain dataclass; keep attribute assignment working.
    def raise_flags(self, flags: FPFlag, operation: str = "<op>") -> None:
        if flags is not FPFlag.NONE:
            self._sequence += 1
            event = TraceEvent(self._sequence, operation, flags)
            if len(self._events) >= self._capacity:
                self._events.pop(0)
            self._events.append(event)
            for member in FPFlag:
                if member in (FPFlag.NONE, FPFlag.ALL, FPFlag.IEEE):
                    continue
                if member in flags and member not in self._first_by_flag:
                    self._first_by_flag[member] = event
        super().raise_flags(flags, operation)

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """Recorded events, oldest first (bounded by capacity)."""
        return tuple(self._events)

    def first_occurrence(self, flag: FPFlag) -> TraceEvent | None:
        """The first event that raised ``flag`` (never evicted)."""
        return self._first_by_flag.get(flag)

    def count(self, flag: FPFlag) -> int:
        """Number of retained events that raised ``flag``."""
        return sum(1 for event in self._events if flag & event.flags)

    def render(self, limit: int = 20) -> str:
        """The first occurrences plus the most recent events."""
        lines = ["first occurrences:"]
        for flag, event in sorted(
            self._first_by_flag.items(), key=lambda kv: kv[1].sequence
        ):
            lines.append(f"  {flag.name.lower():<16} {event.render()}")
        if not self._first_by_flag:
            lines.append("  (none)")
        recent = self._events[-limit:]
        lines.append(f"most recent {len(recent)} event(s):")
        lines.extend(f"  {event.render()}" for event in recent)
        return "\n".join(lines)
