"""Per-operation exception tracing.

Sticky flags tell you *whether* a condition occurred; a trace tells you
*where* — the difference between the suspicion quiz's wrapper and an
actual debugging session.  :class:`TracingEnv` is a drop-in
:class:`~repro.fpenv.FPEnv` that additionally records every flag-raise
as a :class:`TraceEvent` (operation name, flags, sequence number), with
a bounded buffer so monitoring a long run cannot exhaust memory.

Since the telemetry layer landed, this module is a *compatibility
shim*: the recording machinery lives in :mod:`repro.telemetry.events`
(an :class:`~repro.telemetry.events.ExceptionStream` fanning events out
to subscriber sinks; retention is a
:class:`~repro.telemetry.events.BoundedEventLog` — an O(1) deque ring,
replacing the original quadratic ``list.pop(0)`` buffer).
:class:`TracingEnv` keeps its historical surface (``events``,
``first_occurrence``, ``count``, ``render``) by delegating to one such
log, and additionally exposes the stream for extra subscribers.
``TraceEvent`` is the stream's event type under its historical name.
"""

from __future__ import annotations

from repro.fpenv.env import FPEnv
from repro.fpenv.flags import FPFlag
from repro.telemetry.events import (
    BoundedEventLog,
    ExceptionStream,
    FPExceptionEvent,
)

__all__ = ["TraceEvent", "TracingEnv"]

_DEFAULT_CAPACITY = 10_000

#: Historical name for the stream's event record (same field order:
#: ``sequence, operation, flags``; ``render()`` output is unchanged).
TraceEvent = FPExceptionEvent


class TracingEnv(FPEnv):
    """An FPEnv that logs every raised flag.

    ``capacity`` bounds the retained events (oldest are dropped, but
    the *first* occurrence of each distinct flag is always kept — the
    piece of evidence a debugger wants most).

    Every flag-raise is published on :attr:`stream` before the sticky
    bits/traps are processed, so external sinks (counters, JSONL
    writers) can observe exactly what the bounded log observes:
    ``env.subscribe(lambda event: ...)``.
    """

    def __init__(self, capacity: int = _DEFAULT_CAPACITY, **kwargs) -> None:
        super().__init__(**kwargs)
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._stream = ExceptionStream()
        self._log = BoundedEventLog(capacity)
        self._stream.subscribe(self._log)

    # FPEnv is a plain dataclass; keep attribute assignment working.
    def raise_flags(self, flags: FPFlag, operation: str = "<op>") -> None:
        if flags is not FPFlag.NONE:
            self._stream.record(operation, flags)
        super().raise_flags(flags, operation)

    @property
    def stream(self) -> ExceptionStream:
        """The underlying event stream (for extra subscribers)."""
        return self._stream

    def subscribe(self, sink) -> None:
        """Attach ``sink`` (a callable taking one event) to the stream."""
        self._stream.subscribe(sink)

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """Recorded events, oldest first (bounded by capacity)."""
        return self._log.events

    def first_occurrence(self, flag: FPFlag) -> TraceEvent | None:
        """The first event that raised ``flag`` (never evicted)."""
        return self._log.first_occurrence(flag)

    def count(self, flag: FPFlag) -> int:
        """Number of retained events that raised ``flag``."""
        return self._log.count(flag)

    def render(self, limit: int = 20) -> str:
        """The first occurrences plus the most recent events."""
        return self._log.render(limit)
