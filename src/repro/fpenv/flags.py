"""Sticky floating point exception flags.

IEEE 754 defines five exceptions.  We additionally track
``DENORMAL_RESULT`` — the "result of an operation was a denormalized
number" condition from the paper's suspicion quiz (Section II-D), which
real hardware exposes via the denormal/underflow status distinction.
"""

from __future__ import annotations

import enum

__all__ = ["FPFlag", "FLAG_ORDER", "flag_names", "flags_from_names"]


class FPFlag(enum.Flag):
    """Sticky exception flags, combinable with ``|``.

    The five IEEE 754 exceptions plus the denormal-result condition:

    - ``INVALID``: the operation had no usefully defined result and
      produced a (quiet) NaN — e.g. ``0.0/0.0``, ``inf - inf``,
      ``sqrt(-1.0)``, or an ordered comparison involving a NaN.
    - ``DIV_BY_ZERO``: an exact infinite result from finite operands,
      canonically ``1.0/0.0``.  Note the result is an infinity, *not* a
      NaN — the crux of the paper's *Divide By Zero* question.
    - ``OVERFLOW``: the rounded result exceeded the largest finite value
      and saturated to an infinity (or to the largest finite value,
      depending on rounding direction).
    - ``UNDERFLOW``: the result was tiny (subnormal range) *and* inexact.
    - ``INEXACT``: the result required rounding.
    - ``DENORMAL_RESULT``: the delivered result was a nonzero subnormal.
    """

    NONE = 0
    INVALID = enum.auto()
    DIV_BY_ZERO = enum.auto()
    OVERFLOW = enum.auto()
    UNDERFLOW = enum.auto()
    INEXACT = enum.auto()
    DENORMAL_RESULT = enum.auto()

    ALL = INVALID | DIV_BY_ZERO | OVERFLOW | UNDERFLOW | INEXACT | DENORMAL_RESULT
    #: The five exceptions defined by IEEE 754 itself.
    IEEE = INVALID | DIV_BY_ZERO | OVERFLOW | UNDERFLOW | INEXACT


#: Canonical display order for reports (matches the suspicion quiz order:
#: overflow, underflow, precision/inexact, invalid, denorm).
FLAG_ORDER: tuple[FPFlag, ...] = (
    FPFlag.OVERFLOW,
    FPFlag.UNDERFLOW,
    FPFlag.INEXACT,
    FPFlag.INVALID,
    FPFlag.DENORMAL_RESULT,
    FPFlag.DIV_BY_ZERO,
)


def flag_names(flags: FPFlag) -> list[str]:
    """Decompose a flag set into a sorted list of lowercase names.

    >>> flag_names(FPFlag.INVALID | FPFlag.INEXACT)
    ['inexact', 'invalid']
    """
    names = [
        member.name.lower()
        for member in FPFlag
        if member not in (FPFlag.NONE, FPFlag.ALL, FPFlag.IEEE)
        and member.name is not None
        and member in flags
    ]
    return sorted(names)


def flags_from_names(names: list[str] | tuple[str, ...]) -> FPFlag:
    """Rebuild a flag set from :func:`flag_names` output (its inverse).

    >>> flags_from_names(['inexact', 'invalid']) == (
    ...     FPFlag.INVALID | FPFlag.INEXACT)
    True
    """
    flags = FPFlag.NONE
    for name in names:
        flags |= FPFlag[name.upper()]
    return flags
