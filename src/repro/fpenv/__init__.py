"""IEEE-754 floating point environment: sticky flags, rounding, traps.

This package models the part of the floating point system that the paper's
*Exception Signal* question and the entire *suspicion quiz* are about:
hardware tracks exceptions for every operation via **sticky condition
codes**, and by default none of them propagate to the application.

The environment is thread-local.  :func:`get_env` returns the active
environment; :func:`env_context` installs a fresh or derived one for the
duration of a ``with`` block, which is how :mod:`repro.fpspy` observes a
computation without disturbing the caller's flags.

Example
-------
>>> from repro.fpenv import env_context, FPFlag
>>> from repro.softfloat import BINARY64, softfloat_from_float
>>> with env_context() as env:
...     x = softfloat_from_float(1.0, BINARY64)
...     zero = softfloat_from_float(0.0, BINARY64)
...     _ = x / zero
...     env.test_flag(FPFlag.DIV_BY_ZERO)
True
"""

from repro.fpenv.flags import FPFlag, FLAG_ORDER, flag_names, flags_from_names
from repro.fpenv.rounding import RoundingMode
from repro.fpenv.trace import TraceEvent, TracingEnv
from repro.fpenv.env import (
    FPEnv,
    get_env,
    set_env,
    env_context,
    rounding_context,
    flush_to_zero_context,
)

__all__ = [
    "FPFlag",
    "FLAG_ORDER",
    "flag_names",
    "flags_from_names",
    "RoundingMode",
    "FPEnv",
    "TracingEnv",
    "TraceEvent",
    "get_env",
    "set_env",
    "env_context",
    "rounding_context",
    "flush_to_zero_context",
]
