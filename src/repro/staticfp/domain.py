"""The abstract value domain for static FP analysis.

An :class:`AbstractValue` over-approximates the set of machine values a
(sub)expression can take: a correctly rounded interval of non-NaN
endpoints plus explicit possibility bits for ``+0``, ``-0``, NaN, and
signaling NaN.  Transfer functions compute sound post-states using the
softfloat engine itself under directed rounding
(:mod:`repro.softfloat.directed`): every endpoint is an actual
softfloat probe, never a host-float estimate, so the bounds are valid
for the exact format (binary16, bfloat16, ...) being analyzed.

Soundness contract (checked by the property suite): for any concrete
binding admitted by the operand abstractions, the concrete result is
admitted by the transfer result, the concretely raised flags are a
subset of ``may`` flags, and ``must`` flags are a subset of the
concretely raised flags.

Design notes on the three places naive corner evaluation would be
*unsound*, and what this module does instead:

- NaN production (e.g. ``0 * inf`` hiding in the interior of
  ``[-1,1] * [-inf,inf]``) is decided by set predicates on the
  operands, never by probing corners.
- Interior rounding: a non-point operand may round when its endpoints
  do not, so INEXACT/UNDERFLOW/DENORMAL "may" bits come from range
  predicates (does the result hull intersect the subnormal band?) on
  top of whatever the corner probes raised.
- Division by a zero-containing interval widens (with sign
  refinement) instead of raising, unlike :class:`repro.interval.Interval`.
"""

from __future__ import annotations

import dataclasses
from typing import NamedTuple

from repro.fpenv.env import FPEnv
from repro.fpenv.flags import FPFlag
from repro.fpenv.rounding import RoundingMode
from repro.softfloat import fp_le, fp_lt, next_down
from repro.softfloat.directed import down_env, probe_op, up_env
from repro.softfloat.formats import BINARY64, FloatFormat
from repro.softfloat.parse import parse_softfloat
from repro.softfloat.value import SoftFloat

__all__ = [
    "AbstractValue",
    "AnalysisContext",
    "TransferResult",
    "transfer",
    "transfer_literal",
]

_ROUNDING_OPS = frozenset({"add", "sub", "mul", "div", "fma", "sqrt"})


def _lt(a: SoftFloat, b: SoftFloat) -> bool:
    return fp_lt(a, b, FPEnv())


def _le(a: SoftFloat, b: SoftFloat) -> bool:
    return fp_le(a, b, FPEnv())


def _min_sf(values: list[SoftFloat]) -> SoftFloat:
    """Numeric minimum, preferring ``-0`` over ``+0`` on ties."""
    best = values[0]
    for v in values[1:]:
        if _lt(v, best) or (v.is_zero and best.is_zero and v.is_negative):
            best = v
    return best


def _max_sf(values: list[SoftFloat]) -> SoftFloat:
    """Numeric maximum, preferring ``+0`` over ``-0`` on ties."""
    best = values[0]
    for v in values[1:]:
        if _lt(best, v) or (v.is_zero and best.is_zero and not v.is_negative):
            best = v
    return best


@dataclasses.dataclass(frozen=True)
class AbstractValue:
    """A sound over-approximation of a set of softfloat values.

    ``lo``/``hi`` bound the non-NaN portion (``None`` when the value is
    necessarily NaN); ``pos_zero``/``neg_zero`` say which zero *signs*
    are attainable (the interval alone cannot: ``[-1, 1]`` spans zero
    numerically whether or not an actual ``-0`` can occur); and
    ``maybe_nan``/``maybe_snan`` track quiet/signaling NaN possibility.
    """

    fmt: FloatFormat
    lo: SoftFloat | None
    hi: SoftFloat | None
    maybe_nan: bool = False
    maybe_snan: bool = False
    pos_zero: bool = False
    neg_zero: bool = False

    def __post_init__(self) -> None:
        if (self.lo is None) != (self.hi is None):
            raise ValueError("lo/hi must both be set or both be None")
        if self.lo is not None:
            assert self.hi is not None
            if self.lo.fmt != self.fmt or self.hi.fmt != self.fmt:
                raise ValueError("endpoint format mismatch")
            if self.lo.is_nan or self.hi.is_nan:
                raise ValueError("NaN endpoint (use maybe_nan)")
            if not _le(self.lo, self.hi):
                raise ValueError(f"empty range: {self.lo!s} > {self.hi!s}")
        elif not (self.maybe_nan or self.pos_zero or self.neg_zero):
            raise ValueError("abstract value admits nothing")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def point(cls, value: SoftFloat) -> "AbstractValue":
        """The singleton abstraction of one concrete value."""
        if value.is_nan:
            return cls.nan_only(value.fmt, snan=value.is_signaling_nan)
        if value.is_zero:
            return cls(
                value.fmt, value, value,
                pos_zero=not value.is_negative,
                neg_zero=bool(value.is_negative),
            )
        return cls(value.fmt, value, value)

    @classmethod
    def from_range(
        cls,
        lo: SoftFloat,
        hi: SoftFloat,
        *,
        maybe_nan: bool = False,
        maybe_snan: bool = False,
    ) -> "AbstractValue":
        """Range abstraction; a zero-spanning range admits both zero
        signs (bind a point for a single-signed zero)."""
        zero = SoftFloat.zero(lo.fmt)
        spans_zero = _le(lo, zero) and _le(zero, hi)
        return cls(
            lo.fmt, lo, hi,
            maybe_nan=maybe_nan or maybe_snan,
            maybe_snan=maybe_snan,
            pos_zero=spans_zero,
            neg_zero=spans_zero,
        )

    @classmethod
    def top(
        cls, fmt: FloatFormat, *, nan: bool = False, snan: bool = False
    ) -> "AbstractValue":
        """Everything (optionally including NaNs)."""
        return cls(
            fmt,
            SoftFloat.inf(fmt, 1),
            SoftFloat.inf(fmt, 0),
            maybe_nan=nan or snan,
            maybe_snan=snan,
            pos_zero=True,
            neg_zero=True,
        )

    @classmethod
    def nan_only(cls, fmt: FloatFormat, *, snan: bool = False) -> "AbstractValue":
        """Necessarily NaN."""
        return cls(fmt, None, None, maybe_nan=True, maybe_snan=snan)

    @classmethod
    def from_literal(
        cls, text: str, fmt: FloatFormat = BINARY64
    ) -> "AbstractValue":
        """Tightest abstraction of a source literal under any rounding
        direction (both directed conversions; a point when they agree)."""
        lo = parse_softfloat(text, fmt, down_env())
        if lo.is_nan:
            return cls.nan_only(fmt, snan=lo.is_signaling_nan)
        hi = parse_softfloat(text, fmt, up_env())
        if lo.same_bits(hi):
            return cls.point(lo)
        return cls.from_range(lo, hi)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    @property
    def is_point(self) -> bool:
        """Exactly one concrete value (so a concrete probe is exact)."""
        return (
            self.lo is not None
            and self.lo.same_bits(self.hi)
            and not self.maybe_nan
            and not (self.pos_zero and self.neg_zero)
        )

    @property
    def can_zero(self) -> bool:
        return self.pos_zero or self.neg_zero

    @property
    def can_pinf(self) -> bool:
        return self.hi is not None and self.hi.is_inf and not self.hi.is_negative

    @property
    def can_ninf(self) -> bool:
        return self.lo is not None and self.lo.is_inf and bool(self.lo.is_negative)

    @property
    def can_inf(self) -> bool:
        return self.can_pinf or self.can_ninf

    @property
    def can_pos(self) -> bool:
        """A strictly positive (nonzero) member exists."""
        if self.hi is None:
            return False
        return _lt(SoftFloat.zero(self.fmt), self.hi)

    @property
    def can_neg(self) -> bool:
        """A strictly negative (nonzero) member exists."""
        if self.lo is None:
            return False
        return _lt(self.lo, SoftFloat.zero(self.fmt))

    @property
    def can_pos_finite(self) -> bool:
        if self.lo is None:
            return False
        return (
            _le(self.lo, SoftFloat.max_finite(self.fmt))
            and _le(SoftFloat.min_subnormal(self.fmt), self.hi)
        )

    @property
    def can_neg_finite(self) -> bool:
        if self.lo is None:
            return False
        return (
            _le(SoftFloat.max_finite(self.fmt, 1), self.hi)
            and _le(self.lo, SoftFloat.min_subnormal(self.fmt, 1))
        )

    @property
    def can_nonzero_finite(self) -> bool:
        return self.can_pos_finite or self.can_neg_finite

    @property
    def sign_pos_possible(self) -> bool:
        """A value with a clear sign bit (incl. ``+0``, ``+inf``)."""
        return self.can_pos or self.pos_zero

    @property
    def sign_neg_possible(self) -> bool:
        """A value with a set sign bit (incl. ``-0``, ``-inf``)."""
        return self.can_neg or self.neg_zero

    @property
    def can_subnormal(self) -> bool:
        """The range reaches into the subnormal band (either sign)."""
        if self.lo is None:
            return False
        min_sub = SoftFloat.min_subnormal(self.fmt)
        max_sub = next_down(SoftFloat.min_normal(self.fmt), FPEnv())
        pos = _le(self.lo, max_sub) and _le(min_sub, self.hi)
        neg = _le(-max_sub, self.hi) and _le(self.lo, -min_sub)
        return pos or neg

    def admits(self, value: SoftFloat) -> bool:
        """Is the concrete value inside this abstraction?"""
        if value.is_nan:
            return self.maybe_snan if value.is_signaling_nan else self.maybe_nan
        if value.is_zero:
            return self.neg_zero if value.is_negative else self.pos_zero
        return (
            self.lo is not None
            and _le(self.lo, value)
            and _le(value, self.hi)
        )

    # ------------------------------------------------------------------
    # Lattice / helpers
    # ------------------------------------------------------------------
    def join(self, other: "AbstractValue") -> "AbstractValue":
        """Least upper bound (range hull, possibility-bit union)."""
        if self.lo is None:
            lo, hi = other.lo, other.hi
        elif other.lo is None:
            lo, hi = self.lo, self.hi
        else:
            lo = _min_sf([self.lo, other.lo])
            hi = _max_sf([self.hi, other.hi])
        return AbstractValue(
            self.fmt, lo, hi,
            maybe_nan=self.maybe_nan or other.maybe_nan,
            maybe_snan=self.maybe_snan or other.maybe_snan,
            pos_zero=self.pos_zero or other.pos_zero,
            neg_zero=self.neg_zero or other.neg_zero,
        )

    def corner_points(self) -> list[SoftFloat]:
        """Representative concrete members probed by transfer
        functions: the endpoints plus any attainable signed zeros."""
        points: list[SoftFloat] = []
        if self.lo is not None:
            points.append(self.lo)
            if not self.lo.same_bits(self.hi):
                points.append(self.hi)
        if self.pos_zero:
            points.append(SoftFloat.zero(self.fmt, 0))
        if self.neg_zero:
            points.append(SoftFloat.zero(self.fmt, 1))
        seen: set[int] = set()
        unique = []
        for p in points:
            if p.bits not in seen:
                seen.add(p.bits)
                unique.append(p)
        return unique

    def probe_points(self) -> list[SoftFloat]:
        """Corner points plus admitted *interior witnesses* flanking
        the discontinuity sources.

        A corner combo like ``0 x inf`` probes to NaN and is dropped,
        which can hide the finite interior entirely (``+0 x [-inf,
        inf]`` has only NaN corners, yet every finite interior operand
        yields a signed zero).  Probing the same-signed max-finite next
        to each infinite endpoint and the same-signed min-subnormal
        next to each attainable zero restores those witnesses; each is
        added only when the range actually admits it, so a genuine
        point at the discontinuity (e.g. an exactly-infinite operand)
        is not diluted."""
        points = self.corner_points()
        extras: list[SoftFloat] = []
        if self.lo is not None:
            if self.lo.is_inf:
                extras.append(SoftFloat.max_finite(self.fmt, 1))
            if self.hi.is_inf:
                extras.append(SoftFloat.max_finite(self.fmt, 0))
        if self.pos_zero:
            extras.append(SoftFloat.min_subnormal(self.fmt, 0))
        if self.neg_zero:
            extras.append(SoftFloat.min_subnormal(self.fmt, 1))
        seen = {p.bits for p in points}
        for p in extras:
            if p.bits not in seen and self.admits(p):
                seen.add(p.bits)
                points.append(p)
        return points

    def max_magnitude(self) -> SoftFloat:
        """Largest absolute member (``+0`` for a zero-only value)."""
        if self.lo is None:
            return SoftFloat.zero(self.fmt)
        return _max_sf([abs(self.lo), abs(self.hi)])

    def min_magnitude(self) -> SoftFloat:
        """Smallest absolute member (``+0`` when zero is spanned)."""
        zero = SoftFloat.zero(self.fmt)
        if self.can_zero:
            return zero
        if self.lo is None:
            return zero
        if _le(self.lo, zero) and _le(zero, self.hi):
            return zero
        return _min_sf([abs(self.lo), abs(self.hi)])

    def min_nonzero_magnitude(self) -> SoftFloat:
        """Smallest *nonzero* absolute member (min subnormal when the
        range spans zero; meaningless for a zero-only value)."""
        small = self.min_magnitude()
        if small.is_zero:
            return SoftFloat.min_subnormal(self.fmt)
        return small

    def describe(self) -> str:
        """Compact human-readable rendering."""
        parts = []
        if self.lo is not None:
            parts.append(f"[{self.lo!s}, {self.hi!s}]")
        zeros = []
        if self.pos_zero:
            zeros.append("+0")
        if self.neg_zero:
            zeros.append("-0")
        if zeros:
            parts.append("zeros:{" + ",".join(zeros) + "}")
        if self.maybe_nan:
            parts.append("NaN?" if not self.maybe_snan else "sNaN?")
        return " ".join(parts) if parts else "(empty)"

    def __str__(self) -> str:
        return self.describe()


@dataclasses.dataclass(frozen=True)
class AnalysisContext:
    """The machine-relevant slice of a configuration: format, rounding
    direction, and the abrupt-underflow controls."""

    fmt: FloatFormat = BINARY64
    rounding: RoundingMode = RoundingMode.NEAREST_EVEN
    ftz: bool = False
    daz: bool = False

    @classmethod
    def from_config(cls, config) -> "AnalysisContext":
        """Build from an :class:`repro.optsim.machine.MachineConfig`."""
        return cls(
            fmt=config.fmt, rounding=config.rounding,
            ftz=config.ftz, daz=config.daz,
        )

    def concrete_env(self) -> FPEnv:
        """A fresh environment for exact (point) evaluation."""
        return FPEnv(rounding=self.rounding, ftz=self.ftz, daz=self.daz)

    def probe_envs(self) -> tuple[FPEnv, FPEnv]:
        """Directed (down, up) environments carrying this context's
        FTZ/DAZ, for outward-rounded corner probes."""
        return (
            down_env(ftz=self.ftz, daz=self.daz),
            up_env(ftz=self.ftz, daz=self.daz),
        )


class TransferResult(NamedTuple):
    """One node's abstract outcome: value set, flags that *may* be
    raised by this node's operation, flags that *must* be."""

    value: AbstractValue
    may: FPFlag
    must: FPFlag


# ----------------------------------------------------------------------
# Transfer functions
# ----------------------------------------------------------------------
def transfer_literal(text: str, fmt: FloatFormat) -> TransferResult:
    """Constants are stated, not computed: no flags, and always
    round-to-nearest (the evaluator converts literals quietly at
    compile time, ignoring the machine's rounding mode), so the
    abstraction is the exact point the evaluator will use."""
    return TransferResult(
        AbstractValue.point(parse_softfloat(text, fmt)),
        FPFlag.NONE,
        FPFlag.NONE,
    )


def transfer(
    op: str, operands: tuple[AbstractValue, ...], ctx: AnalysisContext
) -> TransferResult:
    """Sound abstract execution of one operation.

    ``op`` is a :data:`repro.softfloat.directed.PROBE_OPS` name plus
    ``"neg"``/``"abs"`` for the quiet sign-bit operations.
    """
    if ctx.daz:
        operands = tuple(_daz_widen(v) for v in operands)
    operands = tuple(_materialize_zeros(v) for v in operands)
    if op == "neg":
        return _transfer_neg(operands[0])
    if op == "abs":
        return _transfer_abs(operands[0])
    if all(v.is_point for v in operands):
        return _transfer_point(op, operands, ctx)
    if op == "sqrt":
        return _transfer_sqrt(operands[0], ctx)
    if op in ("min", "max"):
        return _transfer_minmax(op, operands[0], operands[1], ctx)
    if op == "rem":
        return _transfer_rem(operands[0], operands[1], ctx)
    if op == "div":
        return _transfer_div(operands[0], operands[1], ctx)
    if op in ("add", "sub"):
        return _transfer_addsub(op, operands[0], operands[1], ctx)
    if op == "mul":
        return _transfer_mul(operands[0], operands[1], ctx)
    if op == "fma":
        return _transfer_fma(operands[0], operands[1], operands[2], ctx)
    raise ValueError(f"unknown operation {op!r}")


def _materialize_zeros(v: AbstractValue) -> AbstractValue:
    """Re-express a zero-or-NaN operand (``lo is None`` but a zero bit
    set, e.g. the result of ``sqrt`` on a negative-or-``-0`` range) with
    its attainable zeros as the hull, so every ``lo is None`` test below
    means *necessarily NaN* — the binary transfers would otherwise drop
    the zero members and return an unsound NaN-only result."""
    if v.lo is not None or not v.can_zero:
        return v
    lo = SoftFloat.zero(v.fmt, 1 if v.neg_zero else 0)
    hi = SoftFloat.zero(v.fmt, 0 if v.pos_zero else 1)
    return dataclasses.replace(v, lo=lo, hi=hi)


def _daz_widen(v: AbstractValue) -> AbstractValue:
    """Under DAZ an operand's subnormal members are read as zeros; the
    operand set grows by the corresponding signed zeros (keeping the
    subnormals too is a sound over-approximation)."""
    if v.lo is None or not v.can_subnormal:
        return v
    min_sub = SoftFloat.min_subnormal(v.fmt)
    max_sub = next_down(SoftFloat.min_normal(v.fmt), FPEnv())
    pos = v.pos_zero or (_le(v.lo, max_sub) and _le(min_sub, v.hi))
    neg = v.neg_zero or (_le(-max_sub, v.hi) and _le(v.lo, -min_sub))
    return dataclasses.replace(v, pos_zero=pos, neg_zero=neg)


def _transfer_neg(v: AbstractValue) -> TransferResult:
    value = AbstractValue(
        v.fmt,
        None if v.hi is None else -v.hi,
        None if v.lo is None else -v.lo,
        maybe_nan=v.maybe_nan,
        maybe_snan=v.maybe_snan,
        pos_zero=v.neg_zero,
        neg_zero=v.pos_zero,
    )
    return TransferResult(value, FPFlag.NONE, FPFlag.NONE)


def _transfer_abs(v: AbstractValue) -> TransferResult:
    if v.lo is None:
        lo = hi = None
    elif not v.lo.is_negative or v.lo.is_zero:
        lo, hi = abs(v.lo), abs(v.hi)
    elif v.hi.is_negative and not v.hi.is_zero:
        lo, hi = abs(v.hi), abs(v.lo)
    else:
        lo = SoftFloat.zero(v.fmt)
        hi = _max_sf([abs(v.lo), abs(v.hi)])
    value = AbstractValue(
        v.fmt, lo, hi,
        maybe_nan=v.maybe_nan, maybe_snan=v.maybe_snan,
        pos_zero=v.can_zero, neg_zero=False,
    )
    return TransferResult(value, FPFlag.NONE, FPFlag.NONE)


def _transfer_point(
    op: str, operands: tuple[AbstractValue, ...], ctx: AnalysisContext
) -> TransferResult:
    """All operands are single concrete values: run the engine once
    under the real environment; may = must = the exact flags."""
    args = []
    for v in operands:
        assert v.lo is not None
        if v.lo.is_zero:
            args.append(SoftFloat.zero(v.fmt, 1 if v.neg_zero else 0))
        else:
            args.append(v.lo)
    env = ctx.concrete_env()
    result = probe_op(op, *args, env=env)[0]
    flags = env.flags
    return TransferResult(AbstractValue.point(result), flags, flags)


def _probe_corners(
    op: str,
    corner_sets: list[list[SoftFloat]],
    ctx: AnalysisContext,
) -> tuple[list[SoftFloat], FPFlag]:
    """Probe every corner combination under both directed roundings.

    Returns all non-NaN results (the hull candidates — sound extremes
    for argumentwise-monotone operations) and the union of raised
    flags.  NaN corners are dropped; NaN possibility is decided by the
    callers' set predicates, never here.
    """
    down, up = ctx.probe_envs()
    combos: list[tuple[SoftFloat, ...]] = [()]
    for pts in corner_sets:
        combos = [c + (p,) for c in combos for p in pts]
    results: list[SoftFloat] = []
    flags = FPFlag.NONE
    for combo in combos:
        for env in (down, up):
            r, f = probe_op(op, *combo, env=env)
            flags |= f
            if not r.is_nan:
                results.append(r)
    return results, flags


def _assemble(
    fmt: FloatFormat,
    candidates: list[SoftFloat],
    corner_flags: FPFlag,
    *,
    ctx: AnalysisContext,
    maybe_nan: bool,
    maybe_snan: bool,
    rounding_op: bool,
    extra_may: FPFlag = FPFlag.NONE,
    extra_pos_zero: bool = False,
    extra_neg_zero: bool = False,
) -> TransferResult:
    """Build the final transfer result from hull candidates + rules.

    Applies the interior-soundness rules corner probing alone would
    miss: blanket INEXACT for rounding operations on non-point
    operands, and the tiny-result rule (UNDERFLOW/INEXACT/DENORMAL and
    attainable zeros whenever the hull reaches into ``(0, min_normal)``
    of either sign — under flush-to-zero or directed/odd rounding those
    interior results can land on zero even when no corner does).
    """
    may = corner_flags | extra_may
    if maybe_snan:
        may |= FPFlag.INVALID
    pos_zero = extra_pos_zero
    neg_zero = extra_neg_zero
    if not candidates:
        value = AbstractValue.nan_only(fmt, snan=maybe_snan)
        if pos_zero or neg_zero:
            value = dataclasses.replace(
                value, pos_zero=pos_zero, neg_zero=neg_zero
            )
        return TransferResult(value, may, FPFlag.NONE)
    lo = _min_sf(candidates)
    hi = _max_sf(candidates)
    for c in candidates:
        if c.is_zero:
            if c.is_negative:
                neg_zero = True
            else:
                pos_zero = True
    if rounding_op:
        may |= FPFlag.INEXACT
    zero = SoftFloat.zero(fmt)
    min_normal = SoftFloat.min_normal(fmt)
    tiny_pos = _lt(zero, hi) and _lt(lo, min_normal)
    tiny_neg = _lt(lo, zero) and _lt(-min_normal, hi)
    if tiny_pos or tiny_neg:
        may |= FPFlag.UNDERFLOW | FPFlag.INEXACT | FPFlag.DENORMAL_RESULT
        pos_zero = pos_zero or tiny_pos
        neg_zero = neg_zero or tiny_neg
    value = AbstractValue(
        fmt, lo, hi,
        maybe_nan=maybe_nan or maybe_snan,
        maybe_snan=maybe_snan,
        pos_zero=pos_zero,
        neg_zero=neg_zero,
    )
    return TransferResult(value, may, FPFlag.NONE)


def _negate_abstract(v: AbstractValue) -> AbstractValue:
    return _transfer_neg(v).value


def _cancellation_possible(a: AbstractValue, b: AbstractValue) -> bool:
    """Can ``a + b`` cancel exactly to zero from *nonzero finite*
    operands — i.e. do ``a`` and ``-b`` share a nonzero finite value?"""
    nb = _negate_abstract(b)
    if a.lo is None or nb.lo is None:
        return False
    lo = _max_sf([a.lo, nb.lo])
    hi = _min_sf([a.hi, nb.hi])
    if _lt(hi, lo):
        return False
    overlap = AbstractValue(a.fmt, lo, hi)
    return overlap.can_nonzero_finite


def _transfer_addsub(
    op: str, a: AbstractValue, b: AbstractValue, ctx: AnalysisContext
) -> TransferResult:
    """Addition/subtraction (``a - b`` is bit-identical to
    ``a + (-b)``, so one rule set serves both)."""
    b_eff = _negate_abstract(b) if op == "sub" else b
    maybe_nan = a.maybe_nan or b.maybe_nan
    extra_may = FPFlag.NONE
    if (a.can_pinf and b_eff.can_ninf) or (a.can_ninf and b_eff.can_pinf):
        maybe_nan = True
        extra_may |= FPFlag.INVALID
    if a.lo is None or b.lo is None:
        return TransferResult(
            AbstractValue.nan_only(ctx.fmt, snan=a.maybe_snan or b.maybe_snan),
            extra_may | (FPFlag.INVALID if (a.maybe_snan or b.maybe_snan)
                         else FPFlag.NONE),
            FPFlag.NONE,
        )
    candidates, corner_flags = _probe_corners(
        op, [a.probe_points(), b.probe_points()], ctx
    )
    pos_zero = neg_zero = False
    if _cancellation_possible(a, b_eff):
        if ctx.rounding is RoundingMode.TOWARD_NEGATIVE:
            neg_zero = True
        else:
            pos_zero = True
    return _assemble(
        ctx.fmt, candidates, corner_flags,
        ctx=ctx,
        maybe_nan=maybe_nan,
        maybe_snan=a.maybe_snan or b.maybe_snan,
        rounding_op=True,
        extra_may=extra_may,
        extra_pos_zero=pos_zero,
        extra_neg_zero=neg_zero,
    )


def _transfer_mul(
    a: AbstractValue, b: AbstractValue, ctx: AnalysisContext
) -> TransferResult:
    maybe_nan = a.maybe_nan or b.maybe_nan
    extra_may = FPFlag.NONE
    if (a.can_zero and b.can_inf) or (a.can_inf and b.can_zero):
        maybe_nan = True
        extra_may |= FPFlag.INVALID
    if a.lo is None or b.lo is None:
        return TransferResult(
            AbstractValue.nan_only(ctx.fmt, snan=a.maybe_snan or b.maybe_snan),
            extra_may | (FPFlag.INVALID if (a.maybe_snan or b.maybe_snan)
                         else FPFlag.NONE),
            FPFlag.NONE,
        )
    candidates, corner_flags = _probe_corners(
        "mul", [a.probe_points(), b.probe_points()], ctx
    )
    return _assemble(
        ctx.fmt, candidates, corner_flags,
        ctx=ctx,
        maybe_nan=maybe_nan,
        maybe_snan=a.maybe_snan or b.maybe_snan,
        rounding_op=True,
        extra_may=extra_may,
    )


def _transfer_div(
    a: AbstractValue, b: AbstractValue, ctx: AnalysisContext
) -> TransferResult:
    maybe_snan = a.maybe_snan or b.maybe_snan
    maybe_nan = a.maybe_nan or b.maybe_nan
    extra_may = FPFlag.NONE
    if a.can_zero and b.can_zero:
        maybe_nan = True
        extra_may |= FPFlag.INVALID  # 0/0
    if a.can_inf and b.can_inf:
        maybe_nan = True
        extra_may |= FPFlag.INVALID  # inf/inf
    if a.lo is None or b.lo is None:
        return TransferResult(
            AbstractValue.nan_only(ctx.fmt, snan=maybe_snan),
            extra_may | (FPFlag.INVALID if maybe_snan else FPFlag.NONE),
            FPFlag.NONE,
        )
    if b.can_zero or (_le(b.lo, SoftFloat.zero(ctx.fmt))
                      and _le(SoftFloat.zero(ctx.fmt), b.hi)):
        return _transfer_div_by_zero_span(
            a, b, ctx, maybe_nan, maybe_snan, extra_may
        )
    candidates, corner_flags = _probe_corners(
        "div", [a.probe_points(), b.probe_points()], ctx
    )
    return _assemble(
        ctx.fmt, candidates, corner_flags,
        ctx=ctx,
        maybe_nan=maybe_nan,
        maybe_snan=maybe_snan,
        rounding_op=True,
        extra_may=extra_may,
    )


def _transfer_div_by_zero_span(
    a: AbstractValue,
    b: AbstractValue,
    ctx: AnalysisContext,
    maybe_nan: bool,
    maybe_snan: bool,
    extra_may: FPFlag,
) -> TransferResult:
    """Division where the divisor's range spans (or touches) zero: the
    quotient magnitude is unbounded, so widen to the sign-refined
    half-lines instead of probing corners."""
    may = extra_may
    if b.can_zero and a.can_nonzero_finite:
        may |= FPFlag.DIV_BY_ZERO
    q_pos = (a.sign_pos_possible and b.sign_pos_possible) or (
        a.sign_neg_possible and b.sign_neg_possible
    )
    q_neg = (a.sign_pos_possible and b.sign_neg_possible) or (
        a.sign_neg_possible and b.sign_pos_possible
    )
    fmt = ctx.fmt
    lo = SoftFloat.inf(fmt, 1) if q_neg else SoftFloat.zero(fmt, 1)
    hi = SoftFloat.inf(fmt, 0) if q_pos else SoftFloat.zero(fmt, 0)
    # Can the quotient be (rounded/flushed to) zero?  Magnitude-minimal
    # quotient: smallest |a| over largest |b|.
    down = ctx.probe_envs()[0]
    q_minmag, _ = probe_op("div", a.min_magnitude(), b.max_magnitude(),
                           env=down)
    zero_possible = (
        q_minmag.is_nan  # 0/0 or inf/inf corner: zero still reachable nearby
        or q_minmag.is_zero
        or q_minmag.is_subnormal
        or a.can_zero
        or b.can_inf
    )
    may |= FPFlag.OVERFLOW | FPFlag.INEXACT
    if zero_possible:
        may |= FPFlag.UNDERFLOW | FPFlag.DENORMAL_RESULT
    must = FPFlag.NONE
    if (
        b.lo is not None
        and b.lo.is_zero and b.hi.is_zero
        and not b.maybe_nan
        and not a.maybe_nan
        and not a.can_zero
        and not a.can_inf
    ):
        must |= FPFlag.DIV_BY_ZERO
    value = AbstractValue(
        fmt, lo, hi,
        maybe_nan=maybe_nan or maybe_snan,
        maybe_snan=maybe_snan,
        pos_zero=q_pos and zero_possible,
        neg_zero=q_neg and zero_possible,
    )
    if maybe_snan:
        may |= FPFlag.INVALID
    return TransferResult(value, may, must)


def _transfer_fma(
    a: AbstractValue, b: AbstractValue, c: AbstractValue, ctx: AnalysisContext
) -> TransferResult:
    maybe_snan = a.maybe_snan or b.maybe_snan or c.maybe_snan
    maybe_nan = a.maybe_nan or b.maybe_nan or c.maybe_nan
    extra_may = FPFlag.NONE
    if (a.can_zero and b.can_inf) or (a.can_inf and b.can_zero):
        maybe_nan = True
        extra_may |= FPFlag.INVALID
    if (a.can_inf or b.can_inf) and c.can_inf:
        # The product can be an infinity of either sign when an operand
        # range admits both signs; keep the coarse (sound) condition.
        maybe_nan = True
        extra_may |= FPFlag.INVALID
    if a.lo is None or b.lo is None or c.lo is None:
        return TransferResult(
            AbstractValue.nan_only(ctx.fmt, snan=maybe_snan),
            extra_may | (FPFlag.INVALID if maybe_snan else FPFlag.NONE),
            FPFlag.NONE,
        )
    candidates, corner_flags = _probe_corners(
        "fma",
        [a.probe_points(), b.probe_points(), c.probe_points()],
        ctx,
    )
    # Exact cancellation a*b == -c: approximate the product set with its
    # own (sound) mul hull, then reuse the additive overlap rule.
    product = _transfer_mul(a, b, ctx).value
    pos_zero = neg_zero = False
    if _cancellation_possible(product, c):
        if ctx.rounding is RoundingMode.TOWARD_NEGATIVE:
            neg_zero = True
        else:
            pos_zero = True
    return _assemble(
        ctx.fmt, candidates, corner_flags,
        ctx=ctx,
        maybe_nan=maybe_nan,
        maybe_snan=maybe_snan,
        rounding_op=True,
        extra_may=extra_may,
        extra_pos_zero=pos_zero,
        extra_neg_zero=neg_zero,
    )


def _transfer_sqrt(v: AbstractValue, ctx: AnalysisContext) -> TransferResult:
    maybe_nan = v.maybe_nan
    extra_may = FPFlag.NONE
    must = FPFlag.NONE
    if v.can_neg:
        maybe_nan = True
        extra_may |= FPFlag.INVALID
    if (
        v.hi is not None
        and v.hi.is_negative and not v.hi.is_zero
        and not v.maybe_nan
        and not v.can_zero
    ):
        must |= FPFlag.INVALID  # every member is strictly negative
    if v.lo is None or (v.hi.is_negative and not v.hi.is_zero):
        value = AbstractValue.nan_only(ctx.fmt, snan=v.maybe_snan)
        if v.lo is not None and v.neg_zero:
            value = dataclasses.replace(value, neg_zero=True)
        may = extra_may | (FPFlag.INVALID if v.maybe_snan else FPFlag.NONE)
        return TransferResult(value, may, must)
    lo_clamped = v.lo
    if lo_clamped.is_negative and not lo_clamped.is_zero:
        lo_clamped = SoftFloat.zero(ctx.fmt, 1 if v.neg_zero else 0)
    points = [lo_clamped, v.hi]
    if v.pos_zero:
        points.append(SoftFloat.zero(ctx.fmt, 0))
    if v.neg_zero:
        points.append(SoftFloat.zero(ctx.fmt, 1))
    candidates, corner_flags = _probe_corners("sqrt", [points], ctx)
    result = _assemble(
        ctx.fmt, candidates, corner_flags,
        ctx=ctx,
        maybe_nan=maybe_nan,
        maybe_snan=v.maybe_snan,
        rounding_op=True,
        extra_may=extra_may,
    )
    return TransferResult(result.value, result.may, must)


def _transfer_minmax(
    op: str, a: AbstractValue, b: AbstractValue, ctx: AnalysisContext
) -> TransferResult:
    """754-2008 minNum/maxNum: a single quiet NaN operand yields the
    *other* operand, so a NaN-possible side forces a hull with the
    other side's whole range."""
    maybe_snan = a.maybe_snan or b.maybe_snan
    may = FPFlag.INVALID if maybe_snan else FPFlag.NONE
    maybe_nan = (a.maybe_nan and b.maybe_nan) or maybe_snan
    if a.lo is None and b.lo is None:
        return TransferResult(
            AbstractValue.nan_only(ctx.fmt, snan=maybe_snan), may, FPFlag.NONE
        )
    if a.lo is None or b.lo is None or a.maybe_nan or b.maybe_nan:
        ranged = [v for v in (a, b) if v.lo is not None]
        hull = ranged[0] if len(ranged) == 1 else ranged[0].join(ranged[1])
        value = AbstractValue(
            ctx.fmt, hull.lo, hull.hi,
            maybe_nan=maybe_nan, maybe_snan=maybe_snan,
            pos_zero=a.pos_zero or b.pos_zero,
            neg_zero=a.neg_zero or b.neg_zero,
        )
        return TransferResult(value, may, FPFlag.NONE)
    candidates, corner_flags = _probe_corners(
        op, [a.probe_points(), b.probe_points()], ctx
    )
    return _assemble(
        ctx.fmt, candidates, corner_flags | may,
        ctx=ctx,
        maybe_nan=maybe_nan,
        maybe_snan=maybe_snan,
        rounding_op=False,
    )


def _transfer_rem(
    a: AbstractValue, b: AbstractValue, ctx: AnalysisContext
) -> TransferResult:
    """IEEE remainder is always exact; ``|rem(x, y)| <= |y|/2`` (nearest
    integer quotient) and ``|rem(x, y)| <= |x|`` bound the range."""
    maybe_snan = a.maybe_snan or b.maybe_snan
    maybe_nan = a.maybe_nan or b.maybe_nan
    extra_may = FPFlag.NONE
    if a.can_inf or b.can_zero:
        maybe_nan = True
        extra_may |= FPFlag.INVALID
    if a.lo is None or b.lo is None:
        return TransferResult(
            AbstractValue.nan_only(ctx.fmt, snan=maybe_snan),
            extra_may | (FPFlag.INVALID if maybe_snan else FPFlag.NONE),
            FPFlag.NONE,
        )
    fmt = ctx.fmt
    max_finite = SoftFloat.max_finite(fmt)
    _, up = ctx.probe_envs()
    if b.can_inf:
        m = _min_sf([a.max_magnitude(), max_finite])
    else:
        half_b, _ = probe_op(
            "mul", b.max_magnitude(), parse_softfloat("0.5", fmt), env=up
        )
        m = _min_sf([half_b, a.max_magnitude(), max_finite])
    candidates = [-m, m]
    result = _assemble(
        fmt, candidates, FPFlag.NONE,
        ctx=ctx,
        maybe_nan=maybe_nan,
        maybe_snan=maybe_snan,
        rounding_op=False,
        extra_may=extra_may,
        extra_pos_zero=a.sign_pos_possible,
        extra_neg_zero=a.sign_neg_possible,
    )
    return result
