"""Feasible divergence regions: abstract facts turned into bit spaces.

This is the bridge from PR 3's abstract interpretation to witness
search.  A :class:`BitRegion` is a set of packed encodings of one
format, stored as intervals in *ordered-key* space — a bijection from
the non-NaN encodings onto ``0..total_keys-1`` that sorts by numeric
value (``-inf`` first, ``-0`` then ``+0`` in the middle, ``+inf``
last).  In that space an :class:`~repro.staticfp.domain.AbstractValue`
hull is a contiguous span, region intersection is interval clipping,
uniform sampling is one ``randrange``, and exhaustive enumeration is a
counter — which is exactly what the guided and exhaustive strategies
of :func:`repro.optsim.find_divergence` need.

:func:`refine_toward` runs the interval domain *backward*: given a
desired result set at one node (say "the subtraction lands in the
subnormal band", the precondition for an FTZ flush), it inverts the
arithmetic interval-wise — probing real softfloat operations under
directed rounding, the same discipline the forward transfer functions
use — to compute per-variable sets that can reach it.  Inversion is
steering, not proof: where an inverse is ill-defined (divisor spanning
zero, ``min``/``rem``) the operand keeps its forward value, and every
computed bound is widened outward, so a region never *excludes* a real
witness reachable through the refined path.

:func:`divergence_goals` packages the refinements per hazard: one
:class:`SearchGoal` per candidate pass or exception flow (cancellation
sites for reassociation, subnormal bands for FTZ/DAZ, overflow/
invalid/divide-by-zero preconditions per node), each carrying the
per-variable bit regions a guided search should sample from.
"""

from __future__ import annotations

import dataclasses
import random
from collections.abc import Mapping

from repro.fpenv.env import FPEnv
from repro.fpenv.flags import FPFlag
from repro.optsim.ast import Binary, BinOp, Const, Expr, Var, expr_variables
from repro.optsim.machine import MachineConfig
from repro.softfloat import SoftFloat, next_down, next_up, special_values
from repro.softfloat.directed import probe_op
from repro.softfloat.formats import FloatFormat
from repro.staticfp.analyze import Analysis, analyze, as_abstract
from repro.staticfp.domain import (
    AbstractValue,
    _le,
    _lt,
    _materialize_zeros,
    _max_sf,
    _min_sf,
    _transfer_neg,
)

__all__ = [
    "BitRegion",
    "SearchGoal",
    "bits_of_key",
    "divergence_goals",
    "key_of_bits",
    "refine_toward",
    "total_keys",
    "variable_regions",
]


# ----------------------------------------------------------------------
# Ordered keys: a value-sorted bijection over the non-NaN encodings
# ----------------------------------------------------------------------
def _inf_magnitude(fmt: FloatFormat) -> int:
    """The magnitude field of an infinity (largest non-NaN magnitude)."""
    return fmt.max_biased_exp << fmt.frac_bits


def total_keys(fmt: FloatFormat) -> int:
    """Number of non-NaN encodings of ``fmt``."""
    return 2 * _inf_magnitude(fmt) + 2


def key_of_bits(fmt: FloatFormat, bits: int) -> int:
    """Map a non-NaN encoding to its ordered key.

    Keys ascend in numeric value: ``-inf`` is 0, ``-0`` is
    ``total/2 - 1``, ``+0`` is ``total/2``, ``+inf`` is ``total - 1``.
    """
    inf_m = _inf_magnitude(fmt)
    sign = bits >> (fmt.width - 1)
    magnitude = bits & (inf_m | fmt.sig_mask)
    if magnitude > inf_m:
        raise ValueError(f"NaN encoding {bits:#x} has no ordered key")
    return inf_m - magnitude if sign else inf_m + 1 + magnitude


def bits_of_key(fmt: FloatFormat, key: int) -> int:
    """Inverse of :func:`key_of_bits`."""
    inf_m = _inf_magnitude(fmt)
    if not 0 <= key <= 2 * inf_m + 1:
        raise ValueError(f"key {key} out of range for {fmt.name}")
    if key <= inf_m:
        return (1 << (fmt.width - 1)) | (inf_m - key)
    return key - inf_m - 1


def _key_of_value(x: SoftFloat) -> int:
    return key_of_bits(x.fmt, x.bits)


def _all_nan_bits(fmt: FloatFormat) -> tuple[int, ...]:
    """Every NaN encoding (small formats only — exhaustive sweeps)."""
    if fmt.frac_bits > 12:
        raise ValueError(
            f"{fmt.name}: refusing to enumerate 2^{fmt.frac_bits + 1} NaNs"
        )
    out = []
    for sign in (0, 1):
        for frac in range(1, fmt.sig_mask + 1):
            out.append(fmt.pack(sign, fmt.max_biased_exp, frac))
    return tuple(sorted(out))


def _canonical_nan_bits(fmt: FloatFormat, *, snan: bool) -> tuple[int, ...]:
    bits = [SoftFloat.nan(fmt).bits, fmt.quiet_nan_bits(1, 0)]
    if snan:
        bits.append(SoftFloat.signaling_nan(fmt).bits)
    return tuple(sorted(set(bits)))


@dataclasses.dataclass(frozen=True)
class BitRegion:
    """A set of packed encodings: value-ordered key spans plus an
    explicit (small) list of NaN encodings.

    Spans are inclusive ``(lo_key, hi_key)`` pairs, normalized to be
    sorted, disjoint, and non-adjacent; all set operations and the
    index-addressable :meth:`select` run directly on them.
    """

    fmt: FloatFormat
    spans: tuple[tuple[int, int], ...]
    nan_bits: tuple[int, ...] = ()

    # ------------------------------------------------------------------
    @classmethod
    def from_spans(
        cls,
        fmt: FloatFormat,
        spans: list[tuple[int, int]] | tuple[tuple[int, int], ...],
        nan_bits: tuple[int, ...] | list[int] = (),
    ) -> "BitRegion":
        limit = total_keys(fmt) - 1
        clipped = sorted(
            (max(0, lo), min(hi, limit)) for lo, hi in spans if lo <= hi
        )
        merged: list[tuple[int, int]] = []
        for lo, hi in clipped:
            if merged and lo <= merged[-1][1] + 1:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        return cls(fmt, tuple(merged), tuple(sorted(set(nan_bits))))

    @classmethod
    def empty(cls, fmt: FloatFormat) -> "BitRegion":
        return cls(fmt, ())

    @classmethod
    def full(
        cls, fmt: FloatFormat, *, nan: str | bool = False
    ) -> "BitRegion":
        """All non-NaN encodings; ``nan="canonical"`` adds the canonical
        quiet/signaling NaNs, ``nan="all"`` every NaN encoding (small
        formats only — the exhaustive-proof domain)."""
        if nan == "all":
            nans: tuple[int, ...] = _all_nan_bits(fmt)
        elif nan == "canonical" or nan is True:
            nans = _canonical_nan_bits(fmt, snan=True)
        else:
            nans = ()
        return cls(fmt, ((0, total_keys(fmt) - 1),), nans)

    @classmethod
    def from_abstract(
        cls, value: AbstractValue, *, nan: bool = True
    ) -> "BitRegion":
        """The encodings an abstract value admits (its hull, attainable
        signed zeros, and — when ``nan`` — canonical NaNs)."""
        value = _materialize_zeros(value)
        fmt = value.fmt
        spans: list[tuple[int, int]] = []
        if value.lo is not None:
            spans.append((_key_of_value(value.lo), _key_of_value(value.hi)))
        if value.pos_zero:
            k = _key_of_value(SoftFloat.zero(fmt, 0))
            spans.append((k, k))
        if value.neg_zero:
            k = _key_of_value(SoftFloat.zero(fmt, 1))
            spans.append((k, k))
        nans: tuple[int, ...] = ()
        if nan and value.maybe_nan:
            nans = _canonical_nan_bits(fmt, snan=value.maybe_snan)
        return cls.from_spans(fmt, spans, nans)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return sum(hi - lo + 1 for lo, hi in self.spans) + len(self.nan_bits)

    @property
    def is_empty(self) -> bool:
        return not self.spans and not self.nan_bits

    def contains(self, bits: int) -> bool:
        if bits in self.nan_bits:
            return True
        try:
            key = key_of_bits(self.fmt, bits)
        except ValueError:
            return False
        return any(lo <= key <= hi for lo, hi in self.spans)

    def select(self, index: int) -> int:
        """The ``index``-th member encoding (spans in key order, then
        NaN encodings) — the exhaustive sweep's address decoder."""
        if index < 0:
            raise IndexError(index)
        for lo, hi in self.spans:
            width = hi - lo + 1
            if index < width:
                return bits_of_key(self.fmt, lo + index)
            index -= width
        if index < len(self.nan_bits):
            return self.nan_bits[index]
        raise IndexError("region index out of range")

    def sample(self, rng: random.Random) -> int:
        return self.select(rng.randrange(self.size))

    def intersect(self, other: "BitRegion") -> "BitRegion":
        out: list[tuple[int, int]] = []
        for alo, ahi in self.spans:
            for blo, bhi in other.spans:
                lo, hi = max(alo, blo), min(ahi, bhi)
                if lo <= hi:
                    out.append((lo, hi))
        nans = tuple(b for b in self.nan_bits if b in other.nan_bits)
        return BitRegion.from_spans(self.fmt, out, nans)

    def union(self, other: "BitRegion") -> "BitRegion":
        return BitRegion.from_spans(
            self.fmt,
            list(self.spans) + list(other.spans),
            self.nan_bits + other.nan_bits,
        )

    def to_dict(self) -> dict:
        return {
            "fmt": self.fmt.name,
            "spans": [list(s) for s in self.spans],
            "nan_bits": list(self.nan_bits),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "BitRegion":
        from repro.oracle import FORMATS_BY_NAME

        fmt = FORMATS_BY_NAME[data["fmt"]]
        return cls.from_spans(
            fmt,
            [tuple(s) for s in data["spans"]],
            tuple(data["nan_bits"]),
        )

    def describe(self) -> str:
        parts = []
        for lo, hi in self.spans:
            a = SoftFloat(self.fmt, bits_of_key(self.fmt, lo))
            b = SoftFloat(self.fmt, bits_of_key(self.fmt, hi))
            parts.append(f"[{a!s}, {b!s}]" if lo != hi else f"{{{a!s}}}")
        if self.nan_bits:
            parts.append(f"{len(self.nan_bits)} NaN")
        return " ∪ ".join(parts) if parts else "(empty)"

    def lattice_points(self, *, max_interior: int = 3) -> list[int]:
        """The deterministic probe tier of this region: landmark corpus
        members it admits, every span endpoint, and span midpoints."""
        out: list[int] = []
        seen: set[int] = set()

        def add(bits: int) -> None:
            if bits not in seen:
                seen.add(bits)
                out.append(bits)

        for value in special_values(self.fmt):
            if self.contains(value.bits):
                add(value.bits)
        for lo, hi in self.spans:
            add(bits_of_key(self.fmt, lo))
            add(bits_of_key(self.fmt, hi))
            width = hi - lo + 1
            for i in range(1, min(max_interior, width - 1) + 1):
                add(bits_of_key(self.fmt, lo + width * i // (max_interior + 1)))
        for bits in self.nan_bits:
            add(bits)
        return out


# ----------------------------------------------------------------------
# Backward refinement over the interval domain
# ----------------------------------------------------------------------
_ENV = FPEnv()


def _widen_outward(
    lo: SoftFloat, hi: SoftFloat, steps: int = 2
) -> tuple[SoftFloat, SoftFloat]:
    """Pad an inverted hull by a few ulps so inversion slop never
    excludes a reachable witness."""
    for _ in range(steps):
        if not (lo.is_inf and lo.is_negative):
            lo = next_down(lo, _ENV)
        if not (hi.is_inf and not hi.is_negative):
            hi = next_up(hi, _ENV)
    return lo, hi


def _hull_from_probes(
    op: str, point_sets: list[list[SoftFloat]]
) -> tuple[SoftFloat, SoftFloat] | None:
    """Probe ``op`` over every corner combination under both directed
    roundings; the non-NaN extremes are the inverted hull."""
    from repro.softfloat.directed import down_env, up_env

    combos: list[tuple[SoftFloat, ...]] = [()]
    for pts in point_sets:
        combos = [c + (p,) for c in combos for p in pts]
    results: list[SoftFloat] = []
    for combo in combos:
        for env in (down_env(), up_env()):
            r, _ = probe_op(op, *combo, env=env)
            if not r.is_nan:
                results.append(r)
    if not results:
        return None
    return _min_sf(results), _max_sf(results)


def _points(value: AbstractValue) -> list[SoftFloat]:
    pts = _materialize_zeros(value).corner_points()
    return pts if pts else [SoftFloat.zero(value.fmt)]


def _spans_zero(value: AbstractValue) -> bool:
    value = _materialize_zeros(value)
    if value.lo is None:
        return False
    zero = SoftFloat.zero(value.fmt)
    return _le(value.lo, zero) and _le(zero, value.hi)


def _ranged(
    fmt: FloatFormat,
    hull: tuple[SoftFloat, SoftFloat] | None,
    *,
    maybe_nan: bool = False,
) -> AbstractValue | None:
    if hull is None:
        return None
    lo, hi = _widen_outward(*hull)
    return AbstractValue.from_range(lo, hi, maybe_nan=maybe_nan)


def _inverse_operand(
    op: str,
    index: int,
    desired: AbstractValue,
    operand_values: list[AbstractValue],
) -> AbstractValue | None:
    """The set of values operand ``index`` should take for ``op`` to
    land in ``desired``, given the other operands' forward sets — or
    ``None`` when no sound steering inversion exists."""
    fmt = desired.fmt
    y = _points(desired)
    if op == "neg":
        return _transfer_neg(desired).value
    if op == "abs":
        hull = _hull_from_probes("sub", [[SoftFloat.zero(fmt)], y])
        if hull is None:
            return None
        lo, hi = hull
        lo = _min_sf([lo] + y)
        hi = _max_sf([hi] + y)
        return _ranged(fmt, (lo, hi), maybe_nan=desired.maybe_nan)
    if op == "sqrt":
        # x = y*y, plus the sign carried by sqrt(±0) = ±0.
        out = _ranged(fmt, _hull_from_probes("mul", [y, y]),
                      maybe_nan=desired.maybe_nan)
        if out is not None and desired.neg_zero:
            out = dataclasses.replace(out, neg_zero=True)
        return out
    if op in ("add", "sub"):
        other = operand_values[1 - index]
        s = _points(other)
        if op == "add":
            return _ranged(fmt, _hull_from_probes("sub", [y, s]))
        if index == 0:  # x - s = y  =>  x = y + s
            return _ranged(fmt, _hull_from_probes("add", [y, s]))
        return _ranged(fmt, _hull_from_probes("sub", [s, y]))
    if op == "mul":
        other = operand_values[1 - index]
        if _spans_zero(other) or other.can_zero:
            return None  # unbounded inverse: no refinement
        return _ranged(fmt, _hull_from_probes("div", [y, _points(other)]))
    if op == "div":
        if index == 0:  # x / b = y  =>  x = y * b
            return _ranged(
                fmt, _hull_from_probes("mul", [y, _points(operand_values[1])])
            )
        if _spans_zero(desired) or desired.can_zero:
            return None
        return _ranged(
            fmt, _hull_from_probes("div", [_points(operand_values[0]), y])
        )
    if op == "fma":
        a, b, c = operand_values
        if index == 2:  # c = y - a*b
            product = _hull_from_probes("mul", [_points(a), _points(b)])
            if product is None:
                return None
            plo, phi = product
            return _ranged(fmt, _hull_from_probes("sub", [y, [plo, phi]]))
        other = b if index == 0 else a
        if _spans_zero(other) or other.can_zero:
            return None
        diff = _hull_from_probes("sub", [y, _points(c)])
        if diff is None:
            return None
        dlo, dhi = diff
        return _ranged(fmt, _hull_from_probes("div", [[dlo, dhi],
                                                      _points(other)]))
    return None  # min/max/rem and anything else: forward value only


def _intersect_abstract(
    a: AbstractValue, b: AbstractValue
) -> AbstractValue | None:
    """Set intersection of two abstractions (``None`` when empty)."""
    a = _materialize_zeros(a)
    b = _materialize_zeros(b)
    lo = hi = None
    if a.lo is not None and b.lo is not None:
        lo = _max_sf([a.lo, b.lo])
        hi = _min_sf([a.hi, b.hi])
        if _lt(hi, lo):
            lo = hi = None
    pos_zero = a.pos_zero and b.pos_zero
    neg_zero = a.neg_zero and b.neg_zero
    maybe_nan = a.maybe_nan and b.maybe_nan
    maybe_snan = a.maybe_snan and b.maybe_snan
    if lo is None and not (pos_zero or neg_zero or maybe_nan):
        return None
    if lo is not None:
        zero = SoftFloat.zero(a.fmt)
        spans = _le(lo, zero) and _le(zero, hi)
        pos_zero = pos_zero or (spans and a.pos_zero and b.pos_zero)
    return AbstractValue(
        a.fmt, lo, hi,
        maybe_nan=maybe_nan or maybe_snan, maybe_snan=maybe_snan,
        pos_zero=pos_zero, neg_zero=neg_zero,
    )


def refine_toward(
    analysis: Analysis, node: Expr, desired: AbstractValue
) -> dict[str, AbstractValue]:
    """Per-variable value sets that can steer ``node`` into ``desired``.

    Walks from ``node`` to its leaves, inverting each operation
    interval-wise against the forward facts; a variable reached through
    several paths keeps the intersection of its constraints (falling
    back to the less-refined one when they conflict — refinement is
    steering, so a sound fallback beats an empty region).
    """
    out: dict[str, AbstractValue] = {}

    def walk(node: Expr, desired: AbstractValue) -> None:
        fact = analysis.fact(node)
        met = _intersect_abstract(desired, fact.value)
        if met is None:
            met = fact.value
        if isinstance(node, Var):
            prev = out.get(node.name)
            if prev is None:
                out[node.name] = met
            else:
                both = _intersect_abstract(prev, met)
                if both is not None:
                    out[node.name] = both
            return
        if isinstance(node, Const):
            return
        children = node.children()
        child_values = [analysis.fact(c).value for c in children]
        for index, child in enumerate(children):
            inverted = _inverse_operand(fact.op, index, met, child_values)
            walk(child, inverted if inverted is not None
                 else child_values[index])

    walk(node, desired)
    return out


# ----------------------------------------------------------------------
# Search goals: one per candidate hazard
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class SearchGoal:
    """One hazard a guided search should chase: a name (for coverage
    reporting), the per-variable bit regions to sample, and a human
    explanation of why these regions."""

    name: str
    regions: tuple[tuple[str, BitRegion], ...]
    detail: str = ""

    def region_map(self) -> dict[str, BitRegion]:
        return dict(self.regions)

    def describe(self) -> str:
        parts = ", ".join(
            f"{name} ∈ {region.describe()}" for name, region in self.regions
        )
        return f"{self.name}: {parts or 'admitted ranges'}"


def variable_regions(
    expr: Expr,
    config: MachineConfig,
    bindings: Mapping[str, object] | None = None,
    *,
    nan: bool = False,
) -> dict[str, BitRegion]:
    """The admitted sampling space per variable: the binding's abstract
    hull when bound, the whole format otherwise."""
    fmt = config.fmt
    out: dict[str, BitRegion] = {}
    for name in expr_variables(expr):
        if bindings is not None and name in bindings:
            av = as_abstract(bindings[name], fmt)
            out[name] = BitRegion.from_abstract(av, nan=nan)
        else:
            out[name] = BitRegion.full(
                fmt, nan="canonical" if nan else False
            )
    return out


def _pow2(fmt: FloatFormat, k: int) -> SoftFloat:
    """``2^k`` clamped into ``fmt`` (steering scale factor)."""
    biased = k + fmt.bias
    if biased >= fmt.max_biased_exp:
        return SoftFloat.max_finite(fmt)
    if biased < 1:
        return SoftFloat.min_subnormal(fmt)
    return SoftFloat(fmt, fmt.pack(0, biased, 0))


def _subnormal_band(fmt: FloatFormat) -> AbstractValue:
    edge = next_down(SoftFloat.min_normal(fmt), _ENV)
    return AbstractValue.from_range(-edge, edge)


def _zero_band(fmt: FloatFormat) -> AbstractValue:
    tiny = SoftFloat.min_subnormal(fmt)
    return AbstractValue.from_range(-tiny, tiny)


def _overflow_bands(fmt: FloatFormat) -> list[AbstractValue]:
    from repro.softfloat.directed import down_env

    half, _ = probe_op(
        "mul", SoftFloat.max_finite(fmt), _pow2(fmt, -1), env=down_env()
    )
    return [
        AbstractValue.from_range(half, SoftFloat.inf(fmt, 0)),
        AbstractValue.from_range(SoftFloat.inf(fmt, 1), -half),
    ]


def _goal_regions(
    var_map: Mapping[str, AbstractValue],
    base: Mapping[str, BitRegion],
) -> tuple[tuple[str, BitRegion], ...] | None:
    """Intersect refined per-variable sets with the admitted base
    regions; drop vacuous constraints, reject infeasible goals."""
    out: list[tuple[str, BitRegion]] = []
    for name, value in sorted(var_map.items()):
        if name not in base:
            continue
        region = BitRegion.from_abstract(value, nan=False).intersect(
            base[name]
        )
        if region.is_empty:
            return None  # this hazard cannot fire on admitted inputs
        if region.size < base[name].size:
            out.append((name, region))
    return tuple(out)


def divergence_goals(
    expr: Expr,
    config: MachineConfig,
    bindings: Mapping[str, object] | None = None,
    *,
    safety=None,
    max_goals: int = 32,
) -> tuple[SearchGoal, ...]:
    """Derive the guided search's goal list for one expression/config.

    Goals come from three analyses: the environment (FTZ flush and DAZ
    preconditions — results or inputs in the subnormal band), the
    applied value-changing passes (cancellation/absorption sites for
    reassociation, the whole admitted space for contraction — any
    inexact product exposes the removed rounding), and the exception
    flows (per-node OVERFLOW / UNDERFLOW / DIV_BY_ZERO / INVALID
    preconditions, backward-refined to the variables).
    """
    from repro.staticfp.safety import predict_pass_safety

    if safety is None:
        safety = predict_pass_safety(expr, config, bindings)
    fmt = config.fmt
    base = variable_regions(expr, config, bindings)
    analysis = analyze(expr, bindings, config)
    goals: list[SearchGoal] = []
    seen: set[str] = set()

    def add(name: str, regions, detail: str) -> None:
        if regions is None or name in seen or len(goals) >= max_goals:
            return
        seen.add(name)
        goals.append(SearchGoal(name=name, regions=regions, detail=detail))

    # --- environment hazards -----------------------------------------
    if config.daz:
        band = _subnormal_band(fmt)
        for name in sorted(base):
            fact_value = analysis.bindings.get(name)
            if fact_value is not None and not fact_value.can_subnormal:
                continue
            regions = _goal_regions({name: band}, base)
            add(f"daz:{name}", regions,
                f"DAZ reads a subnormal {name} as zero")
    if config.ftz:
        tiny = FPFlag.UNDERFLOW | FPFlag.DENORMAL_RESULT
        for node in analysis.order:
            fact = analysis.fact(node)
            if fact.op in ("const", "var") or not (fact.may_flags & tiny):
                continue
            refined = refine_toward(analysis, node, _subnormal_band(fmt))
            add(f"ftz:{node}", _goal_regions(refined, base),
                f"FTZ flushes a subnormal result of '{node}'")

    # --- value-changing pass applications ----------------------------
    for verdict in safety.value_changing_applied:
        if verdict.pass_name == "fma-contraction":
            add(f"contract:{verdict.before}", (),
                "contraction removes the product rounding; any inexact"
                " admitted product exposes it")
            continue
        before_analysis = analyze(verdict.before, bindings, config)
        for node in before_analysis.order:
            fact = before_analysis.fact(node)
            info = fact.cancellation
            if info is not None and info.possible:
                scale = _pow2(fmt, -(fmt.precision - 1))
                mag = fact.value.max_magnitude()
                if mag.is_zero or mag.is_inf:
                    band = _zero_band(fmt)
                else:
                    from repro.softfloat.directed import up_env

                    t, _ = probe_op("mul", mag, scale, env=up_env())
                    band = AbstractValue.from_range(-t, t)
                refined = refine_toward(before_analysis, node, band)
                add(f"cancel:{verdict.pass_name}:{node}",
                    _goal_regions(refined, base),
                    f"{verdict.pass_name} reorders a cancellation-prone"
                    f" sum at '{node}'")
            if fact.absorption is not None and fact.absorption.possible:
                add(f"absorb:{verdict.pass_name}:{node}", (),
                    f"{verdict.pass_name} reorders an absorption-prone"
                    f" sum at '{node}'")

    # --- exception flows ----------------------------------------------
    for node in analysis.order:
        fact = analysis.fact(node)
        if fact.op in ("const", "var"):
            continue
        if fact.may_flags & FPFlag.OVERFLOW:
            for i, band in enumerate(_overflow_bands(fmt)):
                refined = refine_toward(analysis, node, band)
                add(f"overflow{'-+'[1 - i]}:{node}",
                    _goal_regions(refined, base),
                    f"'{node}' can overflow")
        if fact.may_flags & FPFlag.UNDERFLOW:
            refined = refine_toward(analysis, node, _subnormal_band(fmt))
            add(f"underflow:{node}", _goal_regions(refined, base),
                f"'{node}' can underflow")
        if fact.may_flags & FPFlag.DIV_BY_ZERO and isinstance(node, Binary) \
                and node.op is BinOp.DIV:
            refined = refine_toward(analysis, node.right, _zero_band(fmt))
            add(f"divzero:{node}", _goal_regions(refined, base),
                f"the divisor of '{node}' can be zero")
        if fact.may_flags & FPFlag.INVALID:
            var_map = _invalid_preconditions(analysis, node, fmt)
            if var_map:
                add(f"invalid:{node}", _goal_regions(var_map, base),
                    f"'{node}' can raise INVALID")
    return tuple(goals)


def _invalid_preconditions(
    analysis: Analysis, node: Expr, fmt: FloatFormat
) -> dict[str, AbstractValue]:
    """Steer toward the operand combination that makes ``node`` raise
    INVALID (0×inf, 0/0, inf−inf, sqrt of negative)."""
    from repro.optsim.ast import FMA, Unary, UnOp

    fact = analysis.fact(node)
    zero = _zero_band(fmt)
    inf_pos = AbstractValue.from_range(
        SoftFloat.max_finite(fmt), SoftFloat.inf(fmt, 0)
    )
    inf_neg = _transfer_neg(inf_pos).value
    out: dict[str, AbstractValue] = {}

    def merge(refined: Mapping[str, AbstractValue]) -> None:
        for name, value in refined.items():
            prev = out.get(name)
            if prev is None:
                out[name] = value
            else:
                both = _intersect_abstract(prev, value)
                if both is not None:
                    out[name] = both

    if isinstance(node, Unary) and node.op is UnOp.SQRT:
        operand = analysis.fact(node.operand).value
        if operand.lo is not None and operand.can_neg:
            band = AbstractValue.from_range(
                SoftFloat.inf(fmt, 1), -SoftFloat.min_subnormal(fmt)
            )
            merge(refine_toward(analysis, node.operand, band))
    elif isinstance(node, Binary) and node.op is BinOp.DIV:
        merge(refine_toward(analysis, node.left, zero))
        merge(refine_toward(analysis, node.right, zero))
    elif isinstance(node, Binary) and node.op is BinOp.MUL:
        left = analysis.fact(node.left).value
        right = analysis.fact(node.right).value
        if left.can_zero or _spans_zero(left):
            merge(refine_toward(analysis, node.left, zero))
            band = inf_pos if right.can_pinf else inf_neg
            merge(refine_toward(analysis, node.right, band))
        elif right.can_zero or _spans_zero(right):
            merge(refine_toward(analysis, node.right, zero))
            band = inf_pos if left.can_pinf else inf_neg
            merge(refine_toward(analysis, node.left, band))
    elif isinstance(node, Binary) and node.op in (BinOp.ADD, BinOp.SUB):
        left = analysis.fact(node.left).value
        merge(refine_toward(
            analysis, node.left, inf_pos if left.can_pinf else inf_neg
        ))
        want = inf_neg if left.can_pinf else inf_pos
        if node.op is BinOp.SUB:
            want = _transfer_neg(want).value
        merge(refine_toward(analysis, node.right, want))
    elif isinstance(node, FMA):
        a = analysis.fact(node.a).value
        if a.can_zero or _spans_zero(a):
            merge(refine_toward(analysis, node.a, zero))
    return out
