"""The lint corpus: one expression per lintable gotcha, plus a clean
set that must produce no warnings.

Every Figure-14/15 gotcha the analyzer can see statically gets an
entry pinning the expression, the optimization level, and the variable
ranges under which ``repro lint`` must report the matching quiz id.
The clean corpus pins the other direction: well-conditioned
expressions on benign ranges must raise *zero* warnings (info
diagnostics are allowed — "results round" is true of almost
everything).  A golden file records the exact diagnostic sets so CI
can fail on drift.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.optsim.machine import MachineConfig, optimization_level
from repro.staticfp.lints import LintReport, lint

__all__ = [
    "CorpusEntry",
    "GOTCHA_CORPUS",
    "CLEAN_CORPUS",
    "GOLDEN_PATH",
    "entry_by_key",
    "entry_outcome",
    "run_entry",
    "run_corpus",
    "corpus_outcomes",
    "precision_summary",
    "check_golden",
    "write_golden",
]

GOLDEN_PATH = Path(__file__).with_name("golden_lints.json")


@dataclasses.dataclass(frozen=True)
class CorpusEntry:
    """One pinned lint scenario."""

    key: str
    expr: str
    level: str = "strict"
    bindings: tuple[tuple[str, tuple[str, str]], ...] = ()
    expect_id: str | None = None  # gotcha id that must appear (None: clean)

    def config(self) -> MachineConfig:
        return optimization_level(self.level)

    def binding_map(self) -> dict[str, tuple[str, str]]:
        return dict(self.bindings)


def _entry(key, expr, level="strict", expect=None, **ranges):
    return CorpusEntry(
        key=key,
        expr=expr,
        level=level,
        bindings=tuple(sorted(ranges.items())),
        expect_id=expect,
    )


#: Figure-14 and Figure-15 gotchas the analyzer must detect, each with
#: the quiz id its diagnostic must carry.
GOTCHA_CORPUS: tuple[CorpusEntry, ...] = (
    # --- Figure 14 ------------------------------------------------
    _entry("identity", "sqrt(a)", expect="identity"),
    _entry("associativity", "a + b + c", expect="associativity",
           a=("1", "4"), b=("1", "4"), c=("1", "4")),
    _entry("ordering", "(a + b) - a", expect="ordering",
           a=("1", "1e30"), b=("1", "2")),
    _entry("overflow", "a * b", expect="overflow",
           a=("1e300", "1e308"), b=("10", "100")),
    _entry("divide_by_zero", "1.0 / a", expect="divide_by_zero",
           a=("-1", "1")),
    _entry("zero_divide_by_zero", "a / b", expect="zero_divide_by_zero",
           a=("0", "1"), b=("0", "1")),
    _entry("saturation_plus", "a + 1.0", expect="saturation_plus",
           a=("1e17", "1e60")),
    _entry("saturation_minus", "a - 1.0", expect="saturation_minus",
           a=("1e17", "1e60")),
    _entry("denormal_precision", "a * b", expect="denormal_precision",
           a=("1e-300", "1e-290"), b=("1e-20", "1")),
    _entry("operation_precision", "0.1 + 0.2", expect="operation_precision"),
    _entry("exception_signal", "1.0 / a", expect="exception_signal",
           a=("-1", "1")),
    _entry("negative_zero", "a * b", expect="negative_zero",
           a=("-1", "1"), b=("-1", "1")),
    # --- Figure 15 ------------------------------------------------
    _entry("madd", "a*b + c", level="-O3", expect="madd",
           a=("1", "2"), b=("1", "2"), c=("1", "2")),
    _entry("flush_to_zero", "a - b", level="--ffast-math",
           expect="flush_to_zero",
           a=("2e-308", "3e-308"), b=("1e-308", "2e-308")),
    _entry("opt_level", "a*b + c", level="-O3", expect="opt_level",
           a=("1", "2"), b=("1", "2"), c=("1", "2")),
    _entry("fast_math", "((t + y) - t) - y", level="--ffast-math",
           expect="fast_math", t=("1e8", "1e9"), y=("1e-8", "1e-7")),
)

#: Benign expressions on benign ranges: must emit no warnings at all.
CLEAN_CORPUS: tuple[CorpusEntry, ...] = (
    _entry("clean_mean", "(a + b) * 0.5", a=("1", "2"), b=("1", "2")),
    _entry("clean_hypot", "sqrt(a*a + b*b)", a=("1", "2"), b=("1", "2")),
    _entry("clean_fma", "fma(a, b, c)",
           a=("1", "2"), b=("1", "2"), c=("1", "2")),
    _entry("clean_scaled_diff", "(a - b) / 2.0", a=("4", "8"), b=("1", "2")),
    _entry("clean_ratio", "a / b", a=("1", "2"), b=("1", "2")),
    _entry("clean_minmax", "min(a, b)", a=("1", "2"), b=("3", "4")),
)


def entry_by_key(key: str) -> CorpusEntry:
    """Look a corpus entry up by key (gotcha and clean sets)."""
    for entry in GOTCHA_CORPUS + CLEAN_CORPUS:
        if entry.key == key:
            return entry
    raise KeyError(f"no corpus entry named {key!r}")


def run_entry(entry: CorpusEntry) -> LintReport:
    """Lint one corpus entry."""
    return lint(entry.expr, entry.config(), entry.binding_map())


def entry_outcome(entry: CorpusEntry) -> dict:
    """Lint one entry down to its JSON-able verdict.

    This is the per-entry unit of work a sharded corpus sweep ships
    back: everything :func:`precision_summary` and :func:`check_golden`
    need, nothing engine-specific.
    """
    report = run_entry(entry)
    return {
        "key": entry.key,
        "snapshot": sorted(
            f"{d.severity}:{d.gotcha_id}" for d in report.diagnostics
        ),
        "has_findings": report.has_findings,
        "gotcha_ids": sorted(report.gotcha_ids),
    }


def run_corpus() -> dict[str, LintReport]:
    """Lint the full corpus (gotchas + clean), keyed by entry key."""
    return {
        e.key: run_entry(e) for e in GOTCHA_CORPUS + CLEAN_CORPUS
    }


def corpus_outcomes() -> dict[str, dict]:
    """Serial equivalent of a sharded sweep: every entry's outcome."""
    return {
        e.key: entry_outcome(e) for e in GOTCHA_CORPUS + CLEAN_CORPUS
    }


def precision_summary(outcomes: dict[str, dict] | None = None) -> dict:
    """Analyzer precision over the corpus: the EXPERIMENTS metric.

    ``detected``: gotcha entries whose expected quiz id appears in the
    diagnostics.  ``false_positives``: clean entries that raised any
    warning-or-worse diagnostic.  Pass precomputed ``outcomes`` (from
    :func:`corpus_outcomes` or a sharded sweep) to summarize without
    re-linting.
    """
    if outcomes is None:
        outcomes = corpus_outcomes()
    detected = [
        e.key for e in GOTCHA_CORPUS
        if e.expect_id in outcomes[e.key]["gotcha_ids"]
    ]
    missed = [e.key for e in GOTCHA_CORPUS if e.key not in detected]
    false_positives = [
        e.key for e in CLEAN_CORPUS if outcomes[e.key]["has_findings"]
    ]
    return {
        "gotchas_total": len(GOTCHA_CORPUS),
        "gotchas_detected": len(detected),
        "missed": missed,
        "clean_total": len(CLEAN_CORPUS),
        "false_positives": false_positives,
    }


def _snapshot(outcomes: dict[str, dict]) -> dict:
    return {
        key: list(outcome["snapshot"])
        for key, outcome in sorted(outcomes.items())
    }


def write_golden(path: Path = GOLDEN_PATH) -> dict:
    """Regenerate the golden diagnostic sets (returns the snapshot)."""
    snapshot = _snapshot(corpus_outcomes())
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return snapshot


def check_golden(path: Path = GOLDEN_PATH,
                 outcomes: dict[str, dict] | None = None) -> list[str]:
    """Diff current diagnostics against the golden file.

    Returns human-readable drift lines (empty == no drift).  Pass
    precomputed ``outcomes`` to diff without re-linting.
    """
    golden = json.loads(path.read_text())
    current = _snapshot(outcomes if outcomes is not None
                        else corpus_outcomes())
    drift: list[str] = []
    for key in sorted(set(golden) | set(current)):
        want = golden.get(key)
        got = current.get(key)
        if want is None:
            drift.append(f"{key}: new entry not in golden file")
        elif got is None:
            drift.append(f"{key}: entry missing (in golden file only)")
        elif want != got:
            drift.append(f"{key}: golden {want} != current {got}")
    return drift
