"""The lint corpus: one expression per lintable gotcha, plus a clean
set that must produce no warnings.

Every Figure-14/15 gotcha the analyzer can see statically gets an
entry pinning the expression, the optimization level, and the variable
ranges under which ``repro lint`` must report the matching quiz id.
The clean corpus pins the other direction: well-conditioned
expressions on benign ranges must raise *zero* warnings (info
diagnostics are allowed — "results round" is true of almost
everything).  A golden file records the exact diagnostic sets so CI
can fail on drift.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.optsim.machine import MachineConfig, optimization_level
from repro.staticfp.lints import LintReport, lint

__all__ = [
    "CorpusEntry",
    "GOTCHA_CORPUS",
    "CLEAN_CORPUS",
    "GOLDEN_PATH",
    "WITNESS_PROOF_FORMAT",
    "entry_by_key",
    "entry_outcome",
    "entry_witness_outcome",
    "run_entry",
    "run_corpus",
    "corpus_outcomes",
    "precision_summary",
    "witness_outcomes",
    "witness_summary",
    "check_golden",
    "check_golden_witnesses",
    "write_golden",
]

GOLDEN_PATH = Path(__file__).with_name("golden_lints.json")


@dataclasses.dataclass(frozen=True)
class CorpusEntry:
    """One pinned lint scenario."""

    key: str
    expr: str
    level: str = "strict"
    bindings: tuple[tuple[str, tuple[str, str]], ...] = ()
    expect_id: str | None = None  # gotcha id that must appear (None: clean)

    def config(self) -> MachineConfig:
        return optimization_level(self.level)

    def binding_map(self) -> dict[str, tuple[str, str]]:
        return dict(self.bindings)


def _entry(key, expr, level="strict", expect=None, **ranges):
    return CorpusEntry(
        key=key,
        expr=expr,
        level=level,
        bindings=tuple(sorted(ranges.items())),
        expect_id=expect,
    )


#: Figure-14 and Figure-15 gotchas the analyzer must detect, each with
#: the quiz id its diagnostic must carry.
GOTCHA_CORPUS: tuple[CorpusEntry, ...] = (
    # --- Figure 14 ------------------------------------------------
    _entry("identity", "sqrt(a)", expect="identity"),
    _entry("associativity", "a + b + c", expect="associativity",
           a=("1", "4"), b=("1", "4"), c=("1", "4")),
    _entry("ordering", "(a + b) - a", expect="ordering",
           a=("1", "1e30"), b=("1", "2")),
    _entry("overflow", "a * b", expect="overflow",
           a=("1e300", "1e308"), b=("10", "100")),
    _entry("divide_by_zero", "1.0 / a", expect="divide_by_zero",
           a=("-1", "1")),
    _entry("zero_divide_by_zero", "a / b", expect="zero_divide_by_zero",
           a=("0", "1"), b=("0", "1")),
    _entry("saturation_plus", "a + 1.0", expect="saturation_plus",
           a=("1e17", "1e60")),
    _entry("saturation_minus", "a - 1.0", expect="saturation_minus",
           a=("1e17", "1e60")),
    _entry("denormal_precision", "a * b", expect="denormal_precision",
           a=("1e-300", "1e-290"), b=("1e-20", "1")),
    _entry("operation_precision", "0.1 + 0.2", expect="operation_precision"),
    _entry("exception_signal", "1.0 / a", expect="exception_signal",
           a=("-1", "1")),
    _entry("negative_zero", "a * b", expect="negative_zero",
           a=("-1", "1"), b=("-1", "1")),
    # --- Figure 15 ------------------------------------------------
    _entry("madd", "a*b + c", level="-O3", expect="madd",
           a=("1", "2"), b=("1", "2"), c=("1", "2")),
    _entry("flush_to_zero", "a - b", level="--ffast-math",
           expect="flush_to_zero",
           a=("2e-308", "3e-308"), b=("1e-308", "2e-308")),
    _entry("opt_level", "a*b + c", level="-O3", expect="opt_level",
           a=("1", "2"), b=("1", "2"), c=("1", "2")),
    _entry("fast_math", "((t + y) - t) - y", level="--ffast-math",
           expect="fast_math", t=("1e8", "1e9"), y=("1e-8", "1e-7")),
)

#: Benign expressions on benign ranges: must emit no warnings at all.
CLEAN_CORPUS: tuple[CorpusEntry, ...] = (
    _entry("clean_mean", "(a + b) * 0.5", a=("1", "2"), b=("1", "2")),
    _entry("clean_hypot", "sqrt(a*a + b*b)", a=("1", "2"), b=("1", "2")),
    _entry("clean_fma", "fma(a, b, c)",
           a=("1", "2"), b=("1", "2"), c=("1", "2")),
    _entry("clean_scaled_diff", "(a - b) / 2.0", a=("4", "8"), b=("1", "2")),
    _entry("clean_ratio", "a / b", a=("1", "2"), b=("1", "2")),
    _entry("clean_minmax", "min(a, b)", a=("1", "2"), b=("3", "4")),
)


def entry_by_key(key: str) -> CorpusEntry:
    """Look a corpus entry up by key (gotcha and clean sets)."""
    for entry in GOTCHA_CORPUS + CLEAN_CORPUS:
        if entry.key == key:
            return entry
    raise KeyError(f"no corpus entry named {key!r}")


def run_entry(entry: CorpusEntry) -> LintReport:
    """Lint one corpus entry."""
    return lint(entry.expr, entry.config(), entry.binding_map())


def entry_outcome(entry: CorpusEntry) -> dict:
    """Lint one entry down to its JSON-able verdict.

    This is the per-entry unit of work a sharded corpus sweep ships
    back: everything :func:`precision_summary` and :func:`check_golden`
    need, nothing engine-specific.
    """
    report = run_entry(entry)
    return {
        "key": entry.key,
        "snapshot": sorted(
            f"{d.severity}:{d.gotcha_id}" for d in report.diagnostics
        ),
        "has_findings": report.has_findings,
        "gotcha_ids": sorted(report.gotcha_ids),
    }


def run_corpus() -> dict[str, LintReport]:
    """Lint the full corpus (gotchas + clean), keyed by entry key."""
    return {
        e.key: run_entry(e) for e in GOTCHA_CORPUS + CLEAN_CORPUS
    }


def corpus_outcomes() -> dict[str, dict]:
    """Serial equivalent of a sharded sweep: every entry's outcome."""
    return {
        e.key: entry_outcome(e) for e in GOTCHA_CORPUS + CLEAN_CORPUS
    }


def precision_summary(outcomes: dict[str, dict] | None = None) -> dict:
    """Analyzer precision over the corpus: the EXPERIMENTS metric.

    ``detected``: gotcha entries whose expected quiz id appears in the
    diagnostics.  ``false_positives``: clean entries that raised any
    warning-or-worse diagnostic.  Pass precomputed ``outcomes`` (from
    :func:`corpus_outcomes` or a sharded sweep) to summarize without
    re-linting.
    """
    if outcomes is None:
        outcomes = corpus_outcomes()
    detected = [
        e.key for e in GOTCHA_CORPUS
        if e.expect_id in outcomes[e.key]["gotcha_ids"]
    ]
    missed = [e.key for e in GOTCHA_CORPUS if e.key not in detected]
    false_positives = [
        e.key for e in CLEAN_CORPUS if outcomes[e.key]["has_findings"]
    ]
    return {
        "gotchas_total": len(GOTCHA_CORPUS),
        "gotchas_detected": len(detected),
        "missed": missed,
        "clean_total": len(CLEAN_CORPUS),
        "false_positives": false_positives,
    }


#: Format used for exhaustive refutations and safety proofs: small
#: enough that a sweep over every representable binding terminates in
#: seconds, rich enough (subnormals, infinities, NaNs, signed zeros)
#: that the gotchas it is asked about still exist.
WITNESS_PROOF_FORMAT = "tiny8"


def entry_witness_outcome(entry: CorpusEntry, *,
                          trials: int = 4000) -> dict:
    """Resolve one entry's dynamic witness obligation.

    Every statically flags-unsafe verdict must ship a
    ``check_binding``-verified counterexample (guided search first);
    when none exists the static verdict is an over-approximation, and
    the entry is instead *refuted* by an exhaustive sweep of the tiny
    format.  Statically safe entries get the same exhaustive sweep as
    a ``proved-safe`` certificate — a safe verdict that yields a
    witness is analyzer unsoundness and shows up as ``witnessed``.
    """
    from repro.optsim.parser import parse_expr
    from repro.oracle import FORMATS_BY_NAME
    from repro.staticfp.safety import predict_pass_safety
    from repro.staticfp.witness import find_witness

    config = entry.config()
    bindings = entry.binding_map() or None
    expr = parse_expr(entry.expr)
    safety = predict_pass_safety(expr, config, bindings)
    tiny = config.replace(fmt=FORMATS_BY_NAME[WITNESS_PROOF_FORMAT])
    if safety.flags_safe:
        report = find_witness(
            expr, tiny, bindings, strategy="exhaustive", expect_safe=True,
        )
    else:
        report = find_witness(
            expr, config, bindings, strategy="guided", trials=trials,
            safety=safety, expect_safe=False,
        )
        if not report.witnessed:
            # No witness in the native format within budget: decide the
            # question exhaustively on the tiny format instead.
            report = find_witness(
                expr, tiny, bindings, strategy="exhaustive",
                expect_safe=False,
            )
    out = {
        "key": entry.key,
        "verdict": "safe" if safety.flags_safe else "unsafe",
        "outcome": report.outcome,
        "strategy": report.strategy,
        "verified": report.witness.verified if report.witness else None,
        "evals": report.evals,
        "states": report.states,
        "resolved": report.outcome != "unresolved",
    }
    if report.witness is not None:
        out["witness"] = report.witness.to_dict()
    if report.coverage is not None:
        out["coverage"] = report.coverage.to_dict()
    return out


def witness_outcomes(*, trials: int = 4000) -> dict[str, dict]:
    """Witness resolution for every corpus entry (the CI witness gate)."""
    return {
        e.key: entry_witness_outcome(e, trials=trials)
        for e in GOTCHA_CORPUS + CLEAN_CORPUS
    }


def witness_summary(outcomes: dict[str, dict] | None = None) -> dict:
    """Aggregate witness resolution: every entry must land in
    ``witnessed`` (unsafe, counterexample verified), ``refuted``
    (statically unsafe, exhaustively shown equivalent), or
    ``proved-safe``; anything in ``unresolved`` fails the gate."""
    if outcomes is None:
        outcomes = witness_outcomes()
    by_outcome: dict[str, list[str]] = {
        "witnessed": [], "refuted": [], "proved-safe": [], "unresolved": [],
    }
    for key in sorted(outcomes):
        by_outcome.setdefault(outcomes[key]["outcome"], []).append(key)
    return {
        "total": len(outcomes),
        "resolved": sum(
            1 for o in outcomes.values() if o["outcome"] != "unresolved"
        ),
        **by_outcome,
    }


def _snapshot(outcomes: dict[str, dict]) -> dict:
    return {
        key: list(outcome["snapshot"])
        for key, outcome in sorted(outcomes.items())
    }


def _witness_snapshot(outcomes: dict[str, dict]) -> dict:
    """The drift-stable slice of witness outcomes: resolution kind and
    strategy only — search-effort counters and binding bits may move
    with heuristic tuning without the *verdict* changing."""
    return {
        key: {
            "verdict": outcome["verdict"],
            "outcome": outcome["outcome"],
            "strategy": outcome["strategy"],
            "verified": outcome["verified"],
        }
        for key, outcome in sorted(outcomes.items())
    }


def write_golden(path: Path = GOLDEN_PATH,
                 witnesses: dict[str, dict] | None = None) -> dict:
    """Regenerate the golden file (returns the document written).

    The v2 document pins both the diagnostic sets and the witness
    resolutions: ``{"entries": {key: [sev:id, ...]},
    "witnesses": {key: {verdict, outcome, strategy, verified}}}``.
    Pass precomputed ``witnesses`` (from :func:`witness_outcomes`) to
    avoid re-running the searches.
    """
    document = {
        "entries": _snapshot(corpus_outcomes()),
        "witnesses": _witness_snapshot(
            witnesses if witnesses is not None else witness_outcomes()
        ),
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def _golden_entries(golden: dict) -> dict:
    # v1 golden files were the flat {key: snapshot} map; v2 nests it.
    if "entries" in golden and isinstance(golden["entries"], dict):
        return golden["entries"]
    return golden


def check_golden(path: Path = GOLDEN_PATH,
                 outcomes: dict[str, dict] | None = None) -> list[str]:
    """Diff current diagnostics against the golden file.

    Returns human-readable drift lines (empty == no drift).  Pass
    precomputed ``outcomes`` to diff without re-linting.
    """
    golden = _golden_entries(json.loads(path.read_text()))
    current = _snapshot(outcomes if outcomes is not None
                        else corpus_outcomes())
    drift: list[str] = []
    for key in sorted(set(golden) | set(current)):
        want = golden.get(key)
        got = current.get(key)
        if want is None:
            drift.append(f"{key}: new entry not in golden file")
        elif got is None:
            drift.append(f"{key}: entry missing (in golden file only)")
        elif want != got:
            drift.append(f"{key}: golden {want} != current {got}")
    return drift


def check_golden_witnesses(
    path: Path = GOLDEN_PATH,
    outcomes: dict[str, dict] | None = None,
) -> list[str]:
    """Diff current witness resolutions against the golden file.

    Complements :func:`check_golden` for the witness section of the v2
    document.  A v1 golden file (no witness section) drifts on every
    entry, prompting regeneration.
    """
    golden = json.loads(path.read_text()).get("witnesses", {})
    current = _witness_snapshot(
        outcomes if outcomes is not None else witness_outcomes()
    )
    drift: list[str] = []
    for key in sorted(set(golden) | set(current)):
        want = golden.get(key)
        got = current.get(key)
        if want is None:
            drift.append(f"{key}: witness outcome not in golden file")
        elif got is None:
            drift.append(f"{key}: witness outcome in golden file only")
        elif want != got:
            drift.append(f"{key}: golden {want} != current {got}")
    return drift
