"""Static floating-point hazard analysis over the optsim IR.

Three cooperating abstract domains —

- **intervals** with directed-rounding endpoints and explicit
  ±0/±inf/NaN possibility tracking (:mod:`repro.staticfp.domain`),
- **exception reachability**: which sticky flags each node *may* /
  *must* raise (:mod:`repro.staticfp.analyze`),
- **condition numbers**: catastrophic-cancellation and absorption
  sites (:mod:`repro.staticfp.analyze`),

— feed a **lint engine** (:mod:`repro.staticfp.lints`) whose
diagnostics carry the paper's quiz ids, and a **pass-safety
predictor** (:mod:`repro.staticfp.safety`) that classifies optimizer
rewrites as value-preserving or possibly-value-changing before any
dynamic search runs.  The property suite holds every verdict against
the softfloat engine; the differential suite holds the predictor
against :func:`repro.optsim.compliance.find_divergence`.

Quick use::

    from repro.staticfp import lint
    report = lint("(a + b) - a", bindings={"a": ("1", "1e30"), "b": ("1", "2")})
    assert "ordering" in report.gotcha_ids
"""

from repro.staticfp.analyze import (
    AbsorptionInfo,
    Analysis,
    CancellationInfo,
    NodeFact,
    analyze,
    as_abstract,
)
from repro.staticfp.domain import (
    AbstractValue,
    AnalysisContext,
    TransferResult,
    transfer,
    transfer_literal,
)
from repro.staticfp.lints import Diagnostic, LintReport, lint
from repro.staticfp.regions import (
    BitRegion,
    SearchGoal,
    divergence_goals,
    refine_toward,
    variable_regions,
)
from repro.staticfp.safety import (
    PassVerdict,
    SafetyReport,
    predict_pass_safety,
)
from repro.staticfp.witness import (
    Localization,
    Witness,
    WitnessReport,
    find_witness,
    localize_divergence,
    verify_witness,
)

__all__ = [
    "AbstractValue",
    "AnalysisContext",
    "TransferResult",
    "transfer",
    "transfer_literal",
    "Analysis",
    "NodeFact",
    "CancellationInfo",
    "AbsorptionInfo",
    "analyze",
    "as_abstract",
    "Diagnostic",
    "LintReport",
    "lint",
    "PassVerdict",
    "SafetyReport",
    "predict_pass_safety",
    "BitRegion",
    "SearchGoal",
    "variable_regions",
    "refine_toward",
    "divergence_goals",
    "Localization",
    "Witness",
    "WitnessReport",
    "find_witness",
    "localize_divergence",
    "verify_witness",
]
