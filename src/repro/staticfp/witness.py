"""Concrete, re-checkable witnesses for static safety verdicts.

A lint that says "this optimization may change your result" earns far
more trust when it can show an *input* on which the change actually
happens.  This module turns the static verdicts of
:mod:`repro.staticfp.safety` into exactly that:

- :class:`Witness` — a fully serialized counterexample: the operand
  bits, both evaluations (value and sticky flags), the complete machine
  configuration, and a Herbgrind-style :class:`Localization` naming
  where the two evaluations first part ways (which rewrite, at which
  subexpression, or which environment control).  Everything round-trips
  through JSON, and :func:`verify_witness` re-derives the divergence
  from the serialized form alone — a witness is evidence precisely
  because anyone can re-run it.

- :func:`find_witness` — the driver: guided search inside the
  analysis-derived feasible regions (strategy ``"guided"``), the
  historical uniform sampler (``"random"``), or full enumeration on
  small formats (``"exhaustive"``).  Its :class:`WitnessReport`
  distinguishes *witnessed* (verified counterexample in hand),
  *proved-safe* / *refuted* (exhaustive sweep found the domain clean —
  for a ``safe`` verdict that's confirmation, for an ``unsafe`` one a
  refutation of the static over-approximation), and *unresolved* (no
  witness within budget; the verdict stands as an admission of
  ignorance).
"""

from __future__ import annotations

import dataclasses
import json
from collections.abc import Mapping, Sequence

from repro.fpenv.flags import FPFlag, flag_names
from repro.fpenv.rounding import RoundingMode
from repro.optsim.ast import Expr, unique_size, walk_unique
from repro.optsim.evaluator import EvalResult, evaluate
from repro.optsim.machine import STRICT, MachineConfig
from repro.optsim.pipeline import enabled_passes, optimize
from repro.softfloat import SoftFloat, format_hex
from repro.softfloat.formats import FloatFormat

__all__ = [
    "Localization",
    "Witness",
    "WitnessReport",
    "find_witness",
    "localize_divergence",
    "verify_witness",
]


# ----------------------------------------------------------------------
# Localization: name where the divergence comes from
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Localization:
    """Where the strict and optimized evaluations first part ways.

    ``kind`` is ``"rewrite"`` (a pass transformation alone explains the
    divergence), ``"environment"`` (the config's rounding/FTZ/DAZ alone
    does), ``"rewrite+environment"`` (both layers contribute), or
    ``"unlocalized"`` (the divergence is real but neither bisection
    isolated a site — e.g. it only appears in the composition).
    """

    kind: str
    pass_name: str | None = None
    site_before: str | None = None
    site_after: str | None = None
    env_site: str | None = None
    detail: str = ""

    def describe(self) -> str:
        parts = [f"localized: {self.kind}"]
        if self.pass_name:
            parts.append(
                f"pass '{self.pass_name}' rewrote '{self.site_before}'"
                f" -> '{self.site_after}'"
            )
        if self.env_site:
            parts.append(f"environment first bites at '{self.env_site}'")
        if self.detail:
            parts.append(self.detail)
        return "; ".join(parts)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "pass": self.pass_name,
            "site_before": self.site_before,
            "site_after": self.site_after,
            "env_site": self.env_site,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Localization":
        return cls(
            kind=data["kind"],
            pass_name=data.get("pass"),
            site_before=data.get("site_before"),
            site_after=data.get("site_after"),
            env_site=data.get("env_site"),
            detail=data.get("detail", ""),
        )


def _evals_differ(
    a: EvalResult, b: EvalResult, *, check_flags: bool = True
) -> bool:
    from repro.optsim.compliance import _same_value

    return not _same_value(a.value, b.value) or (
        check_flags and a.flags != b.flags
    )


def _env_site(
    optimized: Expr,
    binding: Mapping[str, SoftFloat],
    config: MachineConfig,
) -> str | None:
    """The smallest compiled subtree whose evaluation already differs
    between the strict environment and the config's environment."""
    strict_config = STRICT.replace(fmt=config.fmt)
    smallest: Expr | None = None
    for node in walk_unique(optimized):
        if node.children() == () and not _node_reads_env(node):
            continue
        strict = evaluate(node, binding, strict_config)
        under = evaluate(node, binding, config)
        if _evals_differ(strict, under):
            if smallest is None or unique_size(node) < unique_size(smallest):
                smallest = node
    return str(smallest) if smallest is not None else None


def _node_reads_env(node: Expr) -> bool:
    from repro.optsim.ast import Var

    return isinstance(node, Var)


def _minimal_rewrite_pair(
    before: Expr,
    after: Expr,
    binding: Mapping[str, SoftFloat],
    config: MachineConfig,
) -> tuple[Expr, Expr]:
    """Descend a differing before/after tree pair to the smallest
    corresponding subtrees whose strict evaluations still differ —
    the Herbgrind-style bisection of the expression DAG."""
    strict_config = STRICT.replace(fmt=config.fmt)
    b_children = before.children()
    a_children = after.children()
    if len(b_children) == len(a_children):
        for b_child, a_child in zip(b_children, a_children):
            if b_child == a_child:
                continue
            try:
                eb = evaluate(b_child, binding, strict_config)
                ea = evaluate(a_child, binding, strict_config)
            except Exception:
                continue
            if _evals_differ(eb, ea):
                return _minimal_rewrite_pair(
                    b_child, a_child, binding, config
                )
    return before, after


def localize_divergence(
    expr: Expr,
    optimized: Expr,
    binding: Mapping[str, SoftFloat],
    config: MachineConfig,
) -> Localization:
    """Attribute a verified divergence to its source layer(s).

    Replays the pass pipeline under the *strict* environment to find
    the first pass application that changes the evaluation at this
    binding (isolating the rewrite layer from the environment layer),
    then bisects that application down to the smallest rewritten
    subtree pair; independently finds the smallest compiled subtree
    where the configured environment alone changes the evaluation.
    """
    strict_config = STRICT.replace(fmt=config.fmt)

    # Rewrite layer: replay the pipeline pass by pass, strict env.
    pass_name = site_before = site_after = None
    current = expr
    for _ in range(8):
        previous = current
        for pass_ in enabled_passes(config):
            rewritten = pass_.apply(current, config)
            if rewritten != current:
                before_eval = evaluate(current, binding, strict_config)
                after_eval = evaluate(rewritten, binding, strict_config)
                if _evals_differ(before_eval, after_eval):
                    b, a = _minimal_rewrite_pair(
                        current, rewritten, binding, config
                    )
                    pass_name = pass_.name
                    site_before, site_after = str(b), str(a)
                    break
            current = rewritten
        if pass_name is not None or current == previous:
            break

    env_site = None
    if (config.rounding, config.ftz, config.daz) != (
        STRICT.rounding, STRICT.ftz, STRICT.daz
    ):
        env_site = _env_site(optimized, binding, config)

    if pass_name and env_site:
        kind = "rewrite+environment"
    elif pass_name:
        kind = "rewrite"
    elif env_site:
        kind = "environment"
    else:
        kind = "unlocalized"
    return Localization(
        kind=kind,
        pass_name=pass_name,
        site_before=site_before,
        site_after=site_after,
        env_site=env_site,
    )


# ----------------------------------------------------------------------
# The witness record
# ----------------------------------------------------------------------
def _config_to_dict(config: MachineConfig) -> dict:
    return {
        "name": config.name,
        "fmt": config.fmt.name,
        "rounding": config.rounding.name,
        "ftz": config.ftz,
        "daz": config.daz,
        "fp_contract": config.fp_contract,
        "allow_reassoc": config.allow_reassoc,
        "no_signed_zeros": config.no_signed_zeros,
        "finite_math_only": config.finite_math_only,
        "reciprocal_math": config.reciprocal_math,
        "tininess": "before",  # the engine's fixed detection convention
    }


def _config_from_dict(data: Mapping) -> MachineConfig:
    from repro.oracle import FORMATS_BY_NAME

    return MachineConfig(
        name=data["name"],
        fmt=FORMATS_BY_NAME[data["fmt"]],
        rounding=RoundingMode[data["rounding"]],
        ftz=data["ftz"],
        daz=data["daz"],
        fp_contract=data["fp_contract"],
        allow_reassoc=data["allow_reassoc"],
        no_signed_zeros=data["no_signed_zeros"],
        finite_math_only=data["finite_math_only"],
        reciprocal_math=data["reciprocal_math"],
    )


def _result_to_dict(result: EvalResult) -> dict:
    return {
        "bits": f"{result.value.bits:#x}",
        "value": str(result.value),
        "hex": format_hex(result.value),
        "flags": sorted(flag_names(result.flags)),
    }


def _flags_from_names(names: Sequence[str]) -> FPFlag:
    flags = FPFlag.NONE
    for name in names:
        flags |= FPFlag[name.upper()]
    return flags


@dataclasses.dataclass(frozen=True)
class Witness:
    """One verified counterexample, fully serialized.

    Every field is a JSON-safe primitive: the witness is the *artifact*
    a lint report ships, and :func:`verify_witness` must be able to
    re-derive the divergence from this record alone.
    """

    expr: str
    compiled: str
    config: dict
    binding: dict  # name -> {"bits": hex str, "value": str, "hex": str}
    strict: dict
    optimized: dict
    value_diverged: bool
    flags_diverged: bool
    strategy: str
    evals: int
    verified: bool = False
    localization: Localization | None = None

    @classmethod
    def from_search(
        cls,
        expr: Expr,
        optimized: Expr,
        config: MachineConfig,
        binding: Mapping[str, SoftFloat],
        strict_result: EvalResult,
        optimized_result: EvalResult,
        *,
        value_diverged: bool,
        flags_diverged: bool,
        strategy: str,
        evals: int,
        localization: Localization | None = None,
    ) -> "Witness":
        return cls(
            expr=str(expr),
            compiled=str(optimized),
            config=_config_to_dict(config),
            binding={
                name: {
                    "bits": f"{value.bits:#x}",
                    "value": str(value),
                    "hex": format_hex(value),
                }
                for name, value in sorted(binding.items())
            },
            strict=_result_to_dict(strict_result),
            optimized=_result_to_dict(optimized_result),
            value_diverged=value_diverged,
            flags_diverged=flags_diverged,
            strategy=strategy,
            evals=evals,
            localization=localization,
        )

    # ------------------------------------------------------------------
    def machine_config(self) -> MachineConfig:
        return _config_from_dict(self.config)

    def binding_values(self) -> dict[str, SoftFloat]:
        fmt = self.machine_config().fmt
        return {
            name: SoftFloat(fmt, int(entry["bits"], 16))
            for name, entry in self.binding.items()
        }

    def describe(self) -> str:
        shown = ", ".join(
            f"{name} = {entry['value']} ({entry['hex']})"
            for name, entry in self.binding.items()
        ) or "(no free variables)"
        what = []
        if self.value_diverged:
            what.append(
                f"value {self.strict['value']} -> {self.optimized['value']}"
            )
        if self.flags_diverged:
            what.append(
                f"flags [{','.join(self.strict['flags']) or 'none'}] ->"
                f" [{','.join(self.optimized['flags']) or 'none'}]"
            )
        lines = [
            f"witness ({self.strategy}, {self.evals} evals,"
            f" {'verified' if self.verified else 'unverified'}): {shown}",
            f"  diverges: {'; '.join(what)}",
        ]
        if self.localization is not None:
            lines.append(f"  {self.localization.describe()}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "expr": self.expr,
            "compiled": self.compiled,
            "config": dict(self.config),
            "binding": {k: dict(v) for k, v in self.binding.items()},
            "strict": dict(self.strict),
            "optimized": dict(self.optimized),
            "value_diverged": self.value_diverged,
            "flags_diverged": self.flags_diverged,
            "strategy": self.strategy,
            "evals": self.evals,
            "verified": self.verified,
            "localization": (
                self.localization.to_dict() if self.localization else None
            ),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping) -> "Witness":
        loc = data.get("localization")
        return cls(
            expr=data["expr"],
            compiled=data["compiled"],
            config=dict(data["config"]),
            binding={k: dict(v) for k, v in data["binding"].items()},
            strict=dict(data["strict"]),
            optimized=dict(data["optimized"]),
            value_diverged=data["value_diverged"],
            flags_diverged=data["flags_diverged"],
            strategy=data["strategy"],
            evals=data["evals"],
            verified=data.get("verified", False),
            localization=Localization.from_dict(loc) if loc else None,
        )

    @classmethod
    def from_json(cls, text: str) -> "Witness":
        return cls.from_dict(json.loads(text))


def verify_witness(witness: Witness) -> Witness:
    """Re-derive the divergence from the serialized record alone.

    Parses the expression, re-runs the pass pipeline, evaluates both
    sides at the recorded bits, and checks that the divergence kind
    *and both recorded results* reproduce.  Returns a copy with
    ``verified`` set accordingly — the check_binding-backed seal every
    corpus witness must carry.
    """
    from repro.optsim.compliance import check_binding
    from repro.optsim.parser import parse_expr

    config = witness.machine_config()
    expr = parse_expr(witness.expr)
    optimized = optimize(expr, config)
    binding = witness.binding_values()
    strict, opt, value_diverged, flags_diverged = check_binding(
        expr, optimized, binding, config
    )
    ok = (
        str(optimized) == witness.compiled
        and value_diverged == witness.value_diverged
        and flags_diverged == witness.flags_diverged
        and (value_diverged or flags_diverged)
        and f"{strict.value.bits:#x}" == witness.strict["bits"]
        and f"{opt.value.bits:#x}" == witness.optimized["bits"]
        and sorted(flag_names(strict.flags)) == witness.strict["flags"]
        and sorted(flag_names(opt.flags)) == witness.optimized["flags"]
    )
    return dataclasses.replace(witness, verified=ok)


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------
#: Formats small enough to enumerate exhaustively per variable.
_EXHAUSTIVE_MAX_STATES = 1 << 22


@dataclasses.dataclass(frozen=True)
class WitnessReport:
    """What the witness engine concluded for one expression/config.

    ``outcome`` is one of:

    - ``"witnessed"`` — a verified counterexample is attached;
    - ``"proved-safe"`` — exhaustive enumeration swept the whole
      admitted domain without divergence (equivalence proof over it);
    - ``"refuted"`` — same clean sweep, but against an *unsafe* static
      verdict: the over-approximation cried wolf on this domain;
    - ``"unresolved"`` — no witness within budget, no proof either.
    """

    outcome: str
    witness: Witness | None
    coverage: object | None
    evals: int
    states: int
    strategy: str
    detail: str = ""

    @property
    def witnessed(self) -> bool:
        return self.outcome == "witnessed"

    def describe(self) -> str:
        lines = [f"witness search ({self.strategy}): {self.outcome}"]
        if self.detail:
            lines[0] += f" — {self.detail}"
        if self.witness is not None:
            lines.append(self.witness.describe())
        if self.coverage is not None:
            lines.append("  " + self.coverage.describe())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "outcome": self.outcome,
            "strategy": self.strategy,
            "evals": self.evals,
            "states": self.states,
            "witness": self.witness.to_dict() if self.witness else None,
            "coverage": (
                self.coverage.to_dict() if self.coverage is not None
                else None
            ),
            "detail": self.detail,
        }


def find_witness(
    expr: Expr,
    config: MachineConfig,
    bindings: Mapping[str, object] | None = None,
    *,
    strategy: str = "guided",
    seed: int = 754,
    trials: int = 2000,
    check_flags: bool = True,
    localize: bool = True,
    safety=None,
    expect_safe: bool | None = None,
    max_states: int = _EXHAUSTIVE_MAX_STATES,
) -> WitnessReport:
    """Search for (or exhaustively rule out) a divergence witness.

    ``strategy`` selects ``"guided"`` (region- and coverage-steered),
    ``"random"`` (the historical uniform candidate stream), or
    ``"exhaustive"`` (full enumeration — small formats only).
    ``expect_safe`` tells an exhaustive clean sweep how to label
    itself: confirmation of a safe verdict (``proved-safe``) or
    refutation of an unsafe one (``refuted``).
    """
    from repro.optsim.guided import exhaustive_sweep, guided_search

    optimized = optimize(expr, config)

    if strategy == "exhaustive":
        result = exhaustive_sweep(
            expr, optimized, config,
            bindings=bindings, check_flags=check_flags,
            max_states=max_states,
        )
        if result.found_index is None:
            outcome = "refuted" if expect_safe is False else "proved-safe"
            return WitnessReport(
                outcome=outcome, witness=None, coverage=None,
                evals=result.checked, states=result.states,
                strategy=strategy,
                detail=(
                    f"all {result.states} admitted operand combinations"
                    f" of {config.fmt.name} evaluate identically"
                ),
            )
        witness = _seal(
            expr, optimized, config, result.witness,
            value_diverged=result.value_diverged,
            flags_diverged=result.flags_diverged,
            strategy=strategy, evals=result.checked, localize=localize,
        )
        return WitnessReport(
            outcome="witnessed", witness=witness, coverage=None,
            evals=result.checked, states=result.states, strategy=strategy,
        )

    if strategy == "guided":
        result = guided_search(
            expr, optimized, config, bindings=bindings, safety=safety,
            seed=seed, trials=trials, check_flags=check_flags,
        )
        if result.witness is not None:
            witness = _seal(
                expr, optimized, config, result.witness,
                value_diverged=result.value_diverged,
                flags_diverged=result.flags_diverged,
                strategy=strategy, evals=result.evals, localize=localize,
            )
            return WitnessReport(
                outcome="witnessed", witness=witness,
                coverage=result.coverage, evals=result.evals, states=0,
                strategy=strategy,
                detail=f"goal '{result.goal}'" if result.goal else "",
            )
        return WitnessReport(
            outcome="unresolved", witness=None, coverage=result.coverage,
            evals=result.evals, states=0, strategy=strategy,
            detail=f"no divergence in {result.evals} guided candidates",
        )

    if strategy == "random":
        return _random_witness(
            expr, optimized, config, bindings,
            seed=seed, trials=trials, check_flags=check_flags,
            localize=localize,
        )

    raise ValueError(f"unknown witness strategy {strategy!r}")


def _random_witness(
    expr: Expr,
    optimized: Expr,
    config: MachineConfig,
    bindings: Mapping[str, object] | None,
    *,
    seed: int,
    trials: int,
    check_flags: bool,
    localize: bool,
) -> WitnessReport:
    """The baseline: the historical uniform candidate stream, filtered
    to the admitted bindings.  The metric both strategies share is
    candidates *consumed* — admission-rejected draws cost the random
    baseline budget exactly as they would cost it wall-clock."""
    from repro.optsim.compliance import check_binding, divergence_candidates
    from repro.staticfp.analyze import as_abstract

    admitted = {}
    if bindings:
        admitted = {
            name: as_abstract(value, config.fmt)
            for name, value in bindings.items()
        }
    count = 0
    for binding in divergence_candidates(
        expr, config, seed=seed, trials=trials
    ):
        count += 1
        if any(
            name in admitted and not admitted[name].admits(value)
            for name, value in binding.items()
        ):
            continue
        strict, opt, value_diverged, flags_diverged = check_binding(
            expr, optimized, binding, config
        )
        if value_diverged or (check_flags and flags_diverged):
            witness = _seal(
                expr, optimized, config, binding,
                value_diverged=value_diverged,
                flags_diverged=flags_diverged,
                strategy="random", evals=count, localize=localize,
            )
            return WitnessReport(
                outcome="witnessed", witness=witness, coverage=None,
                evals=count, states=0, strategy="random",
            )
    return WitnessReport(
        outcome="unresolved", witness=None, coverage=None,
        evals=count, states=0, strategy="random",
        detail=f"no divergence in {count} random candidates",
    )


def _seal(
    expr: Expr,
    optimized: Expr,
    config: MachineConfig,
    binding: Mapping[str, SoftFloat],
    *,
    value_diverged: bool,
    flags_diverged: bool,
    strategy: str,
    evals: int,
    localize: bool,
) -> Witness:
    """Build, optionally localize, and verify a witness record."""
    from repro.optsim.compliance import check_binding

    strict, opt, _, _ = check_binding(expr, optimized, binding, config)
    localization = (
        localize_divergence(expr, optimized, binding, config)
        if localize else None
    )
    witness = Witness.from_search(
        expr, optimized, config, binding, strict, opt,
        value_diverged=value_diverged, flags_diverged=flags_diverged,
        strategy=strategy, evals=evals, localization=localization,
    )
    return verify_witness(witness)
