"""Abstract interpretation of optsim expressions.

:func:`analyze` runs the three cooperating domains of
:mod:`repro.staticfp` over an expression in one memoized pass:

- the interval domain (:class:`repro.staticfp.domain.AbstractValue`)
  bounds each node's value set with directed-rounding probes;
- the exception-reachability domain collects, per node and for the
  whole expression, which sticky flags *may* and *must* be raised;
- the condition-number domain annotates additive nodes with
  catastrophic-cancellation and absorption possibilities.

Traversal uses :func:`repro.optsim.ast.walk_unique`, so a subtree
shared between several parents (a DAG produced by the rewrite passes)
is analyzed — and later diagnosed — exactly once.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping
from fractions import Fraction

from repro.errors import OptimizationError
from repro.fpenv.flags import FPFlag, flag_names
from repro.optsim.ast import (
    FMA,
    Binary,
    BinOp,
    Const,
    Expr,
    Unary,
    UnOp,
    Var,
    walk_unique,
)
from repro.optsim.machine import STRICT, MachineConfig
from repro.softfloat import SoftFloat, sf
from repro.softfloat.formats import FloatFormat
from repro.staticfp.domain import (
    AbstractValue,
    AnalysisContext,
    TransferResult,
    transfer,
    transfer_literal,
)
from repro.telemetry import get_telemetry

__all__ = [
    "Analysis",
    "NodeFact",
    "CancellationInfo",
    "AbsorptionInfo",
    "analyze",
    "as_abstract",
]

_BINOP_NAMES = {
    BinOp.ADD: "add",
    BinOp.SUB: "sub",
    BinOp.MUL: "mul",
    BinOp.DIV: "div",
    BinOp.REM: "rem",
    BinOp.MIN: "min",
    BinOp.MAX: "max",
}
_UNOP_NAMES = {UnOp.NEG: "neg", UnOp.ABS: "abs", UnOp.SQRT: "sqrt"}


@dataclasses.dataclass(frozen=True)
class CancellationInfo:
    """Subtractive-cancellation verdict for an additive node."""

    possible: bool
    bits_lost: int  # worst-case significant bits lost (<= precision)
    precision: int  # the format's significand width, for the threshold

    @property
    def catastrophic(self) -> bool:
        """At least half the significand can vanish."""
        return self.possible and 2 * self.bits_lost >= self.precision


@dataclasses.dataclass(frozen=True)
class AbsorptionInfo:
    """Can one addend be entirely absorbed by the other (``x + y == x``
    with ``y`` nonzero)?"""

    left_absorbs_right: bool
    right_absorbs_left: bool

    @property
    def possible(self) -> bool:
        return self.left_absorbs_right or self.right_absorbs_left


@dataclasses.dataclass(frozen=True)
class NodeFact:
    """Everything the domains concluded about one IR node."""

    node: Expr
    op: str  # "const", "var", or a transfer-function name
    value: AbstractValue
    may_flags: FPFlag
    must_flags: FPFlag
    cancellation: CancellationInfo | None = None
    absorption: AbsorptionInfo | None = None


@dataclasses.dataclass(frozen=True)
class Analysis:
    """The result of abstractly interpreting one expression."""

    expr: Expr
    config: MachineConfig
    context: AnalysisContext
    order: tuple[Expr, ...]  # unique nodes, pre-order
    _facts: dict[int, NodeFact]
    bindings: Mapping[str, AbstractValue]

    def fact(self, node: Expr) -> NodeFact:
        """The fact computed for a node object of this expression."""
        return self._facts[id(node)]

    @property
    def root(self) -> NodeFact:
        return self._facts[id(self.expr)]

    @property
    def may_flags(self) -> FPFlag:
        """Flags the whole evaluation may leave set (sticky union)."""
        out = FPFlag.NONE
        for node in self.order:
            out |= self._facts[id(node)].may_flags
        return out

    @property
    def must_flags(self) -> FPFlag:
        """Flags every admitted evaluation is guaranteed to raise."""
        out = FPFlag.NONE
        for node in self.order:
            out |= self._facts[id(node)].must_flags
        return out

    def describe(self) -> str:
        """Multi-line per-node report (pre-order)."""
        lines = [
            f"analysis of '{self.expr}' under {self.config.name}"
            f" ({self.config.fmt.name})"
        ]
        for node in self.order:
            fact = self._facts[id(node)]
            flags = ",".join(flag_names(fact.may_flags)) or "none"
            must = ",".join(flag_names(fact.must_flags))
            line = f"  {node!s}: {fact.value.describe()}  may[{flags}]"
            if must:
                line += f" must[{must}]"
            if fact.cancellation and fact.cancellation.catastrophic:
                line += f" cancel[{fact.cancellation.bits_lost}b]"
            if fact.absorption and fact.absorption.possible:
                line += " absorb"
            lines.append(line)
        may = ",".join(flag_names(self.may_flags)) or "none"
        must = ",".join(flag_names(self.must_flags)) or "none"
        lines.append(f"  overall: may[{may}] must[{must}]")
        return "\n".join(lines)


def as_abstract(value: object, fmt: FloatFormat) -> AbstractValue:
    """Coerce a binding into an :class:`AbstractValue` in ``fmt``.

    Accepts an AbstractValue, an :class:`~repro.interval.Interval`, a
    ``(lo, hi)`` pair, or any single value :func:`repro.softfloat.sf`
    accepts (a point).
    """
    if isinstance(value, AbstractValue):
        if value.fmt != fmt:
            raise OptimizationError(
                f"binding format {value.fmt.name} != analysis {fmt.name}"
            )
        return value
    from repro.interval import Interval

    if isinstance(value, Interval):
        return AbstractValue.from_range(sf(value.lo, fmt), sf(value.hi, fmt))
    if isinstance(value, tuple):
        lo, hi = value
        return AbstractValue.from_range(sf(lo, fmt), sf(hi, fmt))
    return AbstractValue.point(sf(value, fmt))


def analyze(
    expr: Expr,
    bindings: Mapping[str, object] | None = None,
    config: MachineConfig = STRICT,
    *,
    assume_nan_inputs: bool = False,
) -> Analysis:
    """Abstractly interpret ``expr`` under ``config``.

    Unbound variables default to "any real of the format": the full
    finite range plus both infinities and both signed zeros, but *no*
    NaN (set ``assume_nan_inputs`` to include NaN inputs) — so a
    NaN-possible verdict on the default bindings always points at the
    node that *introduces* NaN, not at a NaN that was fed in.
    """
    telemetry = get_telemetry()
    ctx = AnalysisContext.from_config(config)
    abstract_bindings = {
        name: as_abstract(value, ctx.fmt)
        for name, value in (bindings or {}).items()
    }
    with telemetry.tracer.span(
        "staticfp.analyze", expr=str(expr), config=config.name
    ) as span:
        analysis = _run(expr, abstract_bindings, config, ctx,
                        assume_nan_inputs)
        span.set("nodes", len(analysis.order))
        telemetry.metrics.counter(
            "staticfp.nodes_analyzed_total", config=config.name
        ).inc(len(analysis.order))
        return analysis


def _run(
    expr: Expr,
    bindings: Mapping[str, AbstractValue],
    config: MachineConfig,
    ctx: AnalysisContext,
    assume_nan_inputs: bool,
) -> Analysis:
    default = AbstractValue.top(ctx.fmt, nan=assume_nan_inputs)
    facts: dict[int, NodeFact] = {}

    def visit(node: Expr) -> NodeFact:
        known = facts.get(id(node))
        if known is not None:
            return known
        cancellation = None
        absorption = None
        if isinstance(node, Const):
            op = "const"
            result = transfer_literal(node.literal, ctx.fmt)
        elif isinstance(node, Var):
            op = "var"
            value = bindings.get(node.name, default)
            result = TransferResult(value, FPFlag.NONE, FPFlag.NONE)
        elif isinstance(node, Unary):
            op = _UNOP_NAMES[node.op]
            operand = visit(node.operand).value
            result = transfer(op, (operand,), ctx)
        elif isinstance(node, Binary):
            op = _BINOP_NAMES[node.op]
            left = visit(node.left).value
            right = visit(node.right).value
            result = transfer(op, (left, right), ctx)
            if node.op in (BinOp.ADD, BinOp.SUB):
                cancellation = _cancellation_info(
                    left, right, subtract=node.op is BinOp.SUB
                )
                absorption = _absorption_info(left, right, ctx.fmt)
        elif isinstance(node, FMA):
            op = "fma"
            a = visit(node.a).value
            b = visit(node.b).value
            c = visit(node.c).value
            result = transfer(op, (a, b, c), ctx)
        else:  # pragma: no cover - exhaustive over the IR
            raise OptimizationError(
                f"cannot analyze node {type(node).__name__}"
            )
        fact = NodeFact(
            node=node,
            op=op,
            value=result.value,
            may_flags=result.may,
            must_flags=result.must,
            cancellation=cancellation,
            absorption=absorption,
        )
        facts[id(node)] = fact
        return fact

    visit(expr)
    order = tuple(walk_unique(expr))
    return Analysis(
        expr=expr,
        config=config,
        context=ctx,
        order=order,
        _facts=facts,
        bindings=bindings,
    )


# ----------------------------------------------------------------------
# Condition-number / cancellation domain
# ----------------------------------------------------------------------
def _finite_fraction(x: SoftFloat) -> Fraction | None:
    if x.is_inf or x.is_nan:
        return None
    return x.to_fraction()


def _cancellation_info(
    left: AbstractValue, right: AbstractValue, *, subtract: bool
) -> CancellationInfo:
    """Worst-case significant-bit loss for ``left ± right``.

    Cancellation needs effectively-opposite addends: when the value
    sets overlap (after negating the addend for subtraction), the
    difference can be arbitrarily small next to the operands and the
    full precision is lost; when they are separated by a gap, the loss
    is bounded by ``log2(magnitude / gap)``.
    """
    fmt = left.fmt
    neg_right = right if subtract else _negate(right)
    if left.lo is None or neg_right.lo is None:
        return CancellationInfo(False, 0, fmt.precision)
    if _overlaps_nonzero_finite(left, neg_right):
        return CancellationInfo(True, fmt.precision, fmt.precision)
    lo_l, hi_l = _finite_fraction(left.lo), _finite_fraction(left.hi)
    lo_r, hi_r = _finite_fraction(neg_right.lo), _finite_fraction(neg_right.hi)
    if None in (lo_l, hi_l, lo_r, hi_r):
        return CancellationInfo(False, 0, fmt.precision)
    # Disjoint ranges: loss peaks where the intervals come closest
    # (moving either operand away from the gap grows the difference as
    # fast as the magnitude), so compare the gap against the magnitude
    # at the near edges, not the intervals' global extremes.
    if hi_l < lo_r:
        gap = lo_r - hi_l
        magnitude = max(abs(hi_l), abs(lo_r))
    elif hi_r < lo_l:
        gap = lo_l - hi_r
        magnitude = max(abs(lo_l), abs(hi_r))
    else:
        return CancellationInfo(True, fmt.precision, fmt.precision)
    if magnitude == 0:
        return CancellationInfo(False, 0, fmt.precision)
    ratio = magnitude / gap
    bits = 0
    while ratio >= 2 and bits < fmt.precision:
        ratio /= 2
        bits += 1
    return CancellationInfo(bits > 0, bits, fmt.precision)


def _negate(v: AbstractValue) -> AbstractValue:
    from repro.staticfp.domain import _transfer_neg

    return _transfer_neg(v).value


def _overlaps_nonzero_finite(a: AbstractValue, b: AbstractValue) -> bool:
    from repro.staticfp.domain import _cancellation_possible

    return _cancellation_possible(a, _negate(b))


def _absorption_info(
    left: AbstractValue, right: AbstractValue, fmt: FloatFormat
) -> AbsorptionInfo:
    return AbsorptionInfo(
        left_absorbs_right=_can_absorb(left, right, fmt),
        right_absorbs_left=_can_absorb(right, left, fmt),
    )


def _can_absorb(
    big: AbstractValue, small: AbstractValue, fmt: FloatFormat
) -> bool:
    """Can some nonzero ``small`` member vanish entirely when added to
    some ``big`` member (``big + small == big``)?"""
    if not small.can_nonzero_finite:
        return False
    if big.can_inf:
        return True  # inf + x == inf for any finite x
    if big.lo is None:
        return False
    big_mag = _finite_fraction(big.max_magnitude())
    small_mag = _finite_fraction(small.min_nonzero_magnitude())
    if big_mag is None or small_mag is None or small_mag == 0:
        return False
    # |small| < ulp(|big|)/2 guarantees round-to-nearest absorbs it;
    # ratio >= 2^(p+1) is a sufficient (format-exact) condition.
    return big_mag >= small_mag * (1 << (fmt.precision + 1))
