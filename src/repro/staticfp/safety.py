"""Static pass-safety prediction.

For a given expression, machine configuration, and (optional) variable
ranges, classify every optsim pass application as value-preserving or
possibly-value-changing *without running a divergence search* — then
let the differential tests hold the verdicts against
:func:`repro.optsim.compliance.find_divergence`.

The contract is one-directional by design: a ``value_safe`` verdict is
a *proof sketch* (dynamic search must find no value divergence), while
"possibly-value-changing" is an admission of ignorance, not a
guarantee of divergence.  The same split applies to ``flags_safe`` for
the sticky-flag footprint, which rewrites can change even when values
are identical (folding ``0.1 + 0.2`` erases its INEXACT).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

from repro.fpenv.flags import FPFlag
from repro.optsim.ast import Binary, BinOp, Expr, Unary, UnOp
from repro.optsim.compliance import _same_value
from repro.optsim.evaluator import evaluate
from repro.optsim.machine import STRICT, MachineConfig
from repro.optsim.pipeline import _MAX_ITERATIONS, enabled_passes
from repro.softfloat import SoftFloat
from repro.staticfp.analyze import Analysis, analyze

__all__ = [
    "PassVerdict",
    "SafetyReport",
    "predict_pass_safety",
]


@dataclasses.dataclass(frozen=True)
class PassVerdict:
    """Static classification of one pass (merged over pipeline
    iterations)."""

    pass_name: str
    applied: bool
    value_safe: bool
    flags_safe: bool
    reason: str
    before: Expr
    after: Expr

    def describe(self) -> str:
        if not self.applied:
            return f"{self.pass_name}: not applied"
        value = "value-preserving" if self.value_safe \
            else "possibly-value-changing"
        flags = "" if self.flags_safe else ", may change sticky flags"
        return (
            f"{self.pass_name}: '{self.before}' -> '{self.after}'"
            f" [{value}{flags}] ({self.reason})"
        )


@dataclasses.dataclass(frozen=True)
class SafetyReport:
    """All pass verdicts plus the environment verdict for one
    expression/config pair."""

    expr: Expr
    compiled: Expr
    config: MachineConfig
    verdicts: tuple[PassVerdict, ...]
    env_value_safe: bool
    env_flags_safe: bool
    env_reason: str
    analysis: Analysis
    #: Attached by the witness engine (see
    #: :func:`repro.staticfp.witness.find_witness` and
    #: :meth:`with_witness`): the dynamic follow-up to this static
    #: verdict — a verified counterexample, an exhaustive-sweep proof,
    #: or an unresolved search, with localization and flag-flow
    #: coverage inside.
    witness_report: object | None = None

    @property
    def value_safe(self) -> bool:
        """Statically proven: the configured evaluation of the compiled
        form equals strict IEEE evaluation of the source, bit for bit,
        on every admitted binding."""
        return self.env_value_safe and all(v.value_safe for v in self.verdicts)

    @property
    def flags_safe(self) -> bool:
        """As ``value_safe``, but for the sticky-flag footprint too."""
        return (
            self.value_safe
            and self.env_flags_safe
            and all(v.flags_safe for v in self.verdicts)
        )

    @property
    def applied(self) -> tuple[PassVerdict, ...]:
        return tuple(v for v in self.verdicts if v.applied)

    @property
    def value_changing_applied(self) -> tuple[PassVerdict, ...]:
        return tuple(
            v for v in self.verdicts if v.applied and not v.value_safe
        )

    def describe(self) -> str:
        lines = [
            f"pass safety for '{self.expr}' under {self.config.name}:"
            f" compiled to '{self.compiled}'"
        ]
        for verdict in self.verdicts:
            lines.append(f"  {verdict.describe()}")
        env = "bit-identical to strict IEEE" if self.env_value_safe \
            else f"may diverge ({self.env_reason})"
        lines.append(f"  environment: {env}")
        overall = "value-preserving" if self.value_safe \
            else "possibly-value-changing"
        lines.append(f"  overall: {overall}")
        if self.witness_report is not None:
            for line in self.witness_report.describe().splitlines():
                lines.append(f"  {line}")
        return "\n".join(lines)

    def with_witness(self, witness_report) -> "SafetyReport":
        """A copy carrying the witness engine's dynamic follow-up."""
        return dataclasses.replace(self, witness_report=witness_report)


def predict_pass_safety(
    expr: Expr,
    config: MachineConfig,
    bindings: Mapping[str, object] | None = None,
) -> SafetyReport:
    """Statically classify every licensed pass application on ``expr``.

    Replays the pipeline's fixed-point loop pass by pass, classifying
    each application; verdicts for a pass that fired in several
    iterations are merged conservatively (any unsafe application makes
    the pass unsafe).
    """
    active = enabled_passes(config)
    merged: dict[str, PassVerdict] = {
        p.name: PassVerdict(
            pass_name=p.name, applied=False, value_safe=True,
            flags_safe=True, reason="not applied", before=expr, after=expr,
        )
        for p in active
    }
    point_bindings = _as_point_bindings(expr, config, bindings)
    current = expr
    for _ in range(_MAX_ITERATIONS):
        previous = current
        for pass_ in active:
            rewritten = pass_.apply(current, config)
            if rewritten != current:
                verdict = _classify(
                    pass_, current, rewritten, config, point_bindings
                )
                merged[pass_.name] = _merge(merged[pass_.name], verdict)
            current = rewritten
        if current == previous:
            break
    analysis = analyze(current, bindings, config)
    env_value, env_flags, env_reason = _env_verdict(analysis, config)
    return SafetyReport(
        expr=expr,
        compiled=current,
        config=config,
        verdicts=tuple(merged[p.name] for p in active),
        env_value_safe=env_value,
        env_flags_safe=env_flags,
        env_reason=env_reason,
        analysis=analysis,
    )


def _merge(old: PassVerdict, new: PassVerdict) -> PassVerdict:
    if not old.applied:
        return new
    return PassVerdict(
        pass_name=old.pass_name,
        applied=True,
        value_safe=old.value_safe and new.value_safe,
        flags_safe=old.flags_safe and new.flags_safe,
        reason=old.reason if not old.value_safe else new.reason,
        before=old.before,
        after=new.after,
    )


def _as_point_bindings(
    expr: Expr,
    config: MachineConfig,
    bindings: Mapping[str, object] | None,
) -> dict[str, SoftFloat] | None:
    """Concrete bindings when every variable is pinned to one non-NaN
    value (enabling exact per-pass evaluation), else None."""
    from repro.optsim.ast import expr_variables
    from repro.staticfp.analyze import as_abstract

    names = expr_variables(expr)
    if not names:
        return {}
    if bindings is None:
        return None
    out: dict[str, SoftFloat] = {}
    for name in names:
        if name not in bindings:
            return None
        av = as_abstract(bindings[name], config.fmt)
        if not av.is_point:
            return None
        assert av.lo is not None
        value = av.lo
        if value.is_zero:
            value = SoftFloat.zero(config.fmt, 1 if av.neg_zero else 0)
        out[name] = value
    return out


def _classify(
    pass_,
    before: Expr,
    after: Expr,
    config: MachineConfig,
    point_bindings: dict[str, SoftFloat] | None,
) -> PassVerdict:
    strict = STRICT.replace(fmt=config.fmt)
    if pass_.value_preserving:
        # Value-preservation is the pass's contract; flag preservation
        # is not (folding or deleting an operation erases its sticky
        # contribution), so flags are safe only when the rewritten
        # expression provably raises no flags at all.
        may = analyze(before, None, strict).may_flags
        flags_safe = may == FPFlag.NONE
        reason = "value-preserving rewrite"
        if not flags_safe:
            reason += "; removed operations may have raised sticky flags"
        return PassVerdict(
            pass_name=pass_.name, applied=True, value_safe=True,
            flags_safe=flags_safe, reason=reason,
            before=before, after=after,
        )
    if _canonical_subs(before) == _canonical_subs(after):
        return PassVerdict(
            pass_name=pass_.name, applied=True, value_safe=True,
            flags_safe=True,
            reason="a-b == a+(-b) canonicalization only (bit-exact)",
            before=before, after=after,
        )
    if point_bindings is not None:
        lhs = evaluate(before, point_bindings, strict)
        rhs = evaluate(after, point_bindings, strict)
        value_safe = _same_value(lhs.value, rhs.value)
        flags_safe = value_safe and lhs.flags == rhs.flags
        reason = (
            "concretely equal at the bound point" if value_safe
            else f"concrete counterexample: {lhs.value!s} vs {rhs.value!s}"
        )
        return PassVerdict(
            pass_name=pass_.name, applied=True, value_safe=value_safe,
            flags_safe=flags_safe, reason=reason,
            before=before, after=after,
        )
    return PassVerdict(
        pass_name=pass_.name, applied=True, value_safe=False,
        flags_safe=False,
        reason=pass_.description or "rewrite is not value-preserving",
        before=before, after=after,
    )


def _canonical_subs(expr: Expr) -> Expr:
    """Normalize ``a - b`` to ``a + (-b)`` (bit-identical by the IEEE
    definition of subtraction) so a pass that only performs this
    canonicalization is not misreported as value-changing."""
    children = expr.children()
    if children:
        expr = expr.with_children(*(_canonical_subs(c) for c in children))
    if isinstance(expr, Binary) and expr.op is BinOp.SUB:
        return Binary(BinOp.ADD, expr.left, Unary(UnOp.NEG, expr.right))
    return expr


def _env_verdict(
    analysis: Analysis, config: MachineConfig
) -> tuple[bool, bool, str]:
    """Does the configured *environment* (not the rewrites) preserve
    strict results for the compiled expression on these ranges?

    FTZ/DAZ only bite when subnormals are reachable; the abstract
    verdicts decide that statically.
    """
    if config.rounding is not STRICT.rounding:
        return False, False, f"non-default rounding {config.rounding.name}"
    reasons = []
    if config.daz:
        subnormal_inputs = any(
            analysis.fact(node).value.can_subnormal
            for node in analysis.order
            if analysis.fact(node).op == "var"
        )
        if subnormal_inputs:
            reasons.append("DAZ with subnormal-possible inputs")
    if config.ftz:
        tiny = FPFlag.UNDERFLOW | FPFlag.DENORMAL_RESULT
        if analysis.may_flags & tiny:
            reasons.append("FTZ with subnormal-possible results")
    if reasons:
        return False, False, "; ".join(reasons)
    return True, True, "environment cannot change results on these ranges"
