"""Gotcha lints: structured diagnostics keyed to quiz ids.

Each rule reads the abstract facts (:mod:`repro.staticfp.analyze`) and
the pass-safety verdicts (:mod:`repro.staticfp.safety`) and emits
:class:`Diagnostic` records whose ``gotcha_id`` matches the GOTCHAS.md
/ quiz catalog (``identity``, ``associativity``, ``flush_to_zero``,
``fast_math``, ...), so a diagnostic is always traceable to the survey
misconception it statically predicts.

Severity policy: ``error`` means the hazard is *guaranteed* on the
given ranges (a must-flag), ``warning`` means it is reachable, and
``info`` marks background facts (results round; flags are sticky) that
are true of nearly every expression and should not fail a lint gate.
"""

from __future__ import annotations

import dataclasses

from repro.fpenv.flags import FPFlag, flag_names
from repro.optsim.ast import Binary, BinOp, Const, Expr, Var
from repro.optsim.compliance import is_standard_compliant
from repro.optsim.machine import STRICT, MachineConfig
from repro.optsim.parser import parse_expr
from repro.staticfp.analyze import Analysis, NodeFact, analyze
from repro.staticfp.safety import SafetyReport, predict_pass_safety
from repro.telemetry import get_telemetry

__all__ = ["Diagnostic", "LintReport", "lint", "SEVERITIES"]

SEVERITIES = ("info", "warning", "error")
_RANK = {name: i for i, name in enumerate(SEVERITIES)}

_FASTMATH_PASSES = frozenset({"reassociate", "fast-math-algebra"})


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One structured finding, keyed to a quiz/gotcha id."""

    gotcha_id: str
    severity: str
    node: str  # source rendering of the offending node
    message: str

    def render(self) -> str:
        return f"[{self.severity}] {self.gotcha_id} @ {self.node}: {self.message}"

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class LintReport:
    """All diagnostics for one expression/config pair."""

    expr: Expr
    config: MachineConfig
    diagnostics: tuple[Diagnostic, ...]
    analysis: Analysis
    safety: SafetyReport
    #: The witness engine's dynamic follow-up (a
    #: :class:`repro.staticfp.witness.WitnessReport`), when the lint
    #: ran with witness search enabled.
    witness_report: object | None = None

    @property
    def has_findings(self) -> bool:
        """True when any diagnostic is warning-or-worse (the lint-gate
        criterion; info diagnostics never fail a build)."""
        return any(d.severity != "info" for d in self.diagnostics)

    @property
    def gotcha_ids(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for d in self.diagnostics:
            seen.setdefault(d.gotcha_id, None)
        return tuple(seen)

    def by_id(self, gotcha_id: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.gotcha_id == gotcha_id)

    def render(self) -> str:
        count = len(self.diagnostics)
        lines = [
            f"lint '{self.expr}' under {self.config.name}"
            f" ({self.config.fmt.name}): {count} diagnostic"
            f"{'s' if count != 1 else ''}"
        ]
        for d in self.diagnostics:
            lines.append(f"  {d.render()}")
        if str(self.safety.compiled) != str(self.expr):
            lines.append(f"  compiled: '{self.safety.compiled}'")
        if self.witness_report is not None:
            for line in self.witness_report.describe().splitlines():
                lines.append(f"  {line}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        out = {
            "expr": str(self.expr),
            "config": self.config.name,
            "format": self.config.fmt.name,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "may_flags": list(flag_names(self.analysis.may_flags)),
            "must_flags": list(flag_names(self.analysis.must_flags)),
            "compiled": str(self.safety.compiled),
            "value_safe": self.safety.value_safe,
            "flags_safe": self.safety.flags_safe,
            "has_findings": self.has_findings,
        }
        if self.witness_report is not None:
            out["witness"] = self.witness_report.to_dict()
        return out

    def to_json(self) -> str:
        import json

        return json.dumps(self.to_dict(), indent=2)


def lint(
    expr: Expr | str,
    config: MachineConfig = STRICT,
    bindings=None,
    *,
    assume_nan_inputs: bool = False,
    witness: bool = False,
    witness_strategy: str = "guided",
    witness_trials: int = 2000,
) -> LintReport:
    """Run every gotcha rule over ``expr`` under ``config``.

    ``bindings`` may constrain variables to ranges (see
    :func:`repro.staticfp.analyze.as_abstract`); unbound variables
    default to any non-NaN value of the format.

    With ``witness`` the static verdict gets its dynamic follow-up: a
    verified counterexample (or an exhaustive proof / an unresolved
    search) from :func:`repro.staticfp.witness.find_witness`, attached
    to the report and to its safety verdict.  A witness search only
    runs when the static verdict is unsafe (value or flags) — a safe
    verdict promises there is nothing to find.
    """
    if isinstance(expr, str):
        expr = parse_expr(expr)
    telemetry = get_telemetry()
    with telemetry.tracer.span(
        "staticfp.lint", expr=str(expr), config=config.name
    ) as span:
        analysis = analyze(
            expr, bindings, config, assume_nan_inputs=assume_nan_inputs
        )
        safety = predict_pass_safety(expr, config, bindings)
        witness_report = None
        if witness and not safety.flags_safe:
            from repro.staticfp.witness import find_witness

            witness_report = find_witness(
                expr, config, bindings,
                strategy=witness_strategy, trials=witness_trials,
                safety=safety, expect_safe=False,
            )
            safety = safety.with_witness(witness_report)
            span.set("witness_outcome", witness_report.outcome)
        diagnostics = _run_rules(analysis, safety, config)
        span.set("diagnostics", len(diagnostics))
        for d in diagnostics:
            telemetry.metrics.counter(
                "staticfp.diagnostics_total", id=d.gotcha_id
            ).inc()
        return LintReport(
            expr=expr,
            config=config,
            diagnostics=diagnostics,
            analysis=analysis,
            safety=safety,
            witness_report=witness_report,
        )


def _run_rules(
    analysis: Analysis, safety: SafetyReport, config: MachineConfig
) -> tuple[Diagnostic, ...]:
    found: list[tuple[int, Diagnostic]] = []
    seen: set[tuple[str, str]] = set()
    order_index = {id(node): i for i, node in enumerate(analysis.order)}

    def emit(node: Expr, gotcha_id: str, severity: str, message: str) -> None:
        key = (gotcha_id, str(node))
        if key in seen:
            return
        seen.add(key)
        found.append((
            order_index.get(id(node), 0),
            Diagnostic(gotcha_id, severity, str(node), message),
        ))

    for node in analysis.order:
        fact = analysis.fact(node)
        _rule_nan_introduction(analysis, node, fact, emit)
        _rule_division(analysis, node, fact, emit)
        _rule_overflow(node, fact, emit)
        _rule_denormal(node, fact, config, emit)
        _rule_saturation(node, fact, emit)
        _rule_ordering(analysis, node, fact, emit)
        _rule_cancellation(analysis, node, fact, emit)
        _rule_madd(node, config, safety, emit)
    _rule_associativity(analysis, emit)
    _rule_root_facts(analysis, emit)
    _rule_flush_to_zero(analysis, config, emit)
    _rule_opt_level(analysis, safety, config, emit)
    _rule_fast_math(safety, config, emit)

    found.sort(key=lambda pair: (-_RANK[pair[1].severity],
                                 pair[1].gotcha_id, pair[0]))
    return tuple(d for _, d in found)


# ----------------------------------------------------------------------
# Per-node rules
# ----------------------------------------------------------------------
def _rule_nan_introduction(
    analysis: Analysis, node: Expr, fact: NodeFact, emit
) -> None:
    """`identity`: the node where NaN enters the computation."""
    if not fact.value.maybe_nan:
        return
    if any(
        analysis.fact(child).value.maybe_nan for child in node.children()
    ):
        return  # propagation, not introduction
    always = fact.value.lo is None
    emit(
        node, "identity",
        "error" if always else "warning",
        ("always produces NaN" if always else "may produce NaN")
        + " — and NaN breaks reflexivity: 'x == x' is false (identity)",
    )


def _rule_division(
    analysis: Analysis, node: Expr, fact: NodeFact, emit
) -> None:
    if not (isinstance(node, Binary) and node.op is BinOp.DIV):
        return
    left = analysis.fact(node.left).value
    right = analysis.fact(node.right).value
    if fact.may_flags & FPFlag.DIV_BY_ZERO:
        must = bool(fact.must_flags & FPFlag.DIV_BY_ZERO)
        emit(
            node, "divide_by_zero",
            "error" if must else "warning",
            ("always divides" if must else "may divide")
            + " a nonzero value by zero: the result is ±inf, NOT NaN"
            " (and only the div-by-zero flag records it)",
        )
    if left.can_zero and right.can_zero:
        emit(
            node, "zero_divide_by_zero", "warning",
            "0.0/0.0 is reachable: THAT one is NaN (invalid operation)",
        )


def _rule_overflow(node: Expr, fact: NodeFact, emit) -> None:
    if fact.may_flags & FPFlag.OVERFLOW and not isinstance(node, (Var, Const)):
        emit(
            node, "overflow", "warning",
            "may overflow: float overflow saturates at ±inf,"
            " it never wraps like integers",
        )


def _rule_denormal(
    node: Expr, fact: NodeFact, config: MachineConfig, emit
) -> None:
    if isinstance(node, (Var, Const)):
        return
    if fact.may_flags & FPFlag.DENORMAL_RESULT and not (
        config.ftz or config.daz
    ):
        emit(
            node, "denormal_precision", "warning",
            "may produce a subnormal: gradual underflow keeps it nonzero"
            " but with fewer significant bits than a normal result",
        )


def _rule_saturation(node: Expr, fact: NodeFact, emit) -> None:
    if fact.absorption is None or not fact.absorption.possible:
        return
    assert isinstance(node, Binary)
    if node.op is BinOp.ADD:
        emit(
            node, "saturation_plus", "warning",
            "the smaller addend can be absorbed completely:"
            " (a + small) == a is reachable on these ranges",
        )
    else:
        emit(
            node, "saturation_minus", "warning",
            "the smaller operand can be absorbed completely:"
            " (a - small) == a is reachable on these ranges",
        )


def _rule_ordering(
    analysis: Analysis, node: Expr, fact: NodeFact, emit
) -> None:
    """`ordering`: ((a+b) - a) is not b when the inner sum absorbed."""
    if not (isinstance(node, Binary) and node.op is BinOp.SUB):
        return
    left = node.left
    if not (isinstance(left, Binary) and left.op is BinOp.ADD):
        return
    left_fact = analysis.fact(left)
    if left_fact.absorption is None or not left_fact.absorption.possible:
        return
    terms = _flatten(left, {BinOp.ADD})
    if any(term == node.right for term in terms):
        emit(
            node, "ordering", "warning",
            "((a + b) - a) != b when the inner sum rounds the smaller"
            " addend away — operation order is observable",
        )


def _rule_cancellation(
    analysis: Analysis, node: Expr, fact: NodeFact, emit
) -> None:
    info = fact.cancellation
    if info is None or not info.catastrophic:
        return
    emit(
        node, "cancellation", "warning",
        f"catastrophic cancellation: operands can nearly cancel, losing"
        f" up to {info.bits_lost} of {analysis.context.fmt.precision}"
        " significant bits",
    )


def _rule_madd(
    node: Expr, config: MachineConfig, safety: SafetyReport, emit
) -> None:
    if not (isinstance(node, Binary) and node.op in (BinOp.ADD, BinOp.SUB)):
        return
    has_mul = any(
        isinstance(child, Binary) and child.op is BinOp.MUL
        for child in node.children()
    )
    if not has_mul:
        return
    if config.fp_contract:
        emit(
            node, "madd", "warning",
            "this level contracts mul+add into fma (one rounding instead"
            " of two): 754-2008 semantics, result differs from mul-then-add",
        )
    else:
        emit(
            node, "madd", "info",
            "contractible mul+add site: at -O3 (fp-contract) this fuses"
            " into an fma with a single rounding",
        )


# ----------------------------------------------------------------------
# Whole-expression rules
# ----------------------------------------------------------------------
def _flatten(node: Expr, ops: set) -> list[Expr]:
    if isinstance(node, Binary) and node.op in ops:
        return _flatten(node.left, ops) + _flatten(node.right, ops)
    return [node]


def _rule_associativity(analysis: Analysis, emit) -> None:
    """Chains of three or more roundings reassociate observably."""
    covered: set[int] = set()
    for node in analysis.order:
        if id(node) in covered or not isinstance(node, Binary):
            continue
        if node.op in (BinOp.ADD, BinOp.SUB):
            family = {BinOp.ADD, BinOp.SUB}
            kind = "addition"
        elif node.op is BinOp.MUL:
            family = {BinOp.MUL}
            kind = "multiplication"
        else:
            continue
        terms = _flatten(node, family)
        if len(terms) < 3:
            continue
        # Mark every same-family Binary inside this chain as covered so
        # one maximal chain emits one diagnostic.
        stack = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, Binary) and current.op in family:
                covered.add(id(current))
                stack.extend(current.children())
        emit(
            node, "associativity", "warning",
            f"{kind} chain of {len(terms)} terms: every step rounds, so"
            " (a+b)+c != a+(b+c) in general and reassociation changes"
            " the result",
        )


def _rule_root_facts(analysis: Analysis, emit) -> None:
    root = analysis.expr
    may = analysis.may_flags
    if may & FPFlag.INEXACT:
        emit(
            root, "operation_precision", "info",
            "results round: intermediate values are correctly rounded to"
            " the format, so decimal expectations like 0.1 + 0.2 == 0.3"
            " fail",
        )
    if may & (FPFlag.INVALID | FPFlag.DIV_BY_ZERO | FPFlag.OVERFLOW
              | FPFlag.UNDERFLOW):
        emit(
            root, "exception_signal", "info",
            "exceptional outcomes here would NOT signal: IEEE default"
            " handling just sets sticky flags and substitutes NaN/inf",
        )
    fact = analysis.root
    if fact.value.neg_zero and fact.value.pos_zero:
        emit(
            root, "negative_zero", "info",
            "both zero encodings are reachable: -0.0 == 0.0 compares"
            " equal, but 1/-0.0 = -inf distinguishes them",
        )


def _rule_flush_to_zero(
    analysis: Analysis, config: MachineConfig, emit
) -> None:
    tiny = FPFlag.UNDERFLOW | FPFlag.DENORMAL_RESULT
    subnormal_inputs = any(
        analysis.fact(node).value.can_subnormal
        for node in analysis.order
        if analysis.fact(node).op == "var"
    )
    reachable = bool(analysis.may_flags & tiny) or subnormal_inputs
    if not reachable:
        return
    if config.ftz or config.daz:
        emit(
            analysis.expr, "flush_to_zero", "warning",
            "FTZ/DAZ is on and subnormals are reachable: tiny results"
            " flush to zero, so x != y no longer implies x - y != 0",
        )
    else:
        emit(
            analysis.expr, "flush_to_zero", "info",
            "subnormals are reachable: under FTZ/DAZ hardware (or"
            " -ffast-math) these would flush to zero",
        )


def _rule_opt_level(
    analysis: Analysis, safety: SafetyReport, config: MachineConfig, emit
) -> None:
    changing = safety.value_changing_applied
    if changing:
        names = ", ".join(v.pass_name for v in changing)
        emit(
            analysis.expr, "opt_level", "warning",
            f"this optimization level rewrites the expression"
            f" value-changingly ({names}): -O2 is the highest"
            " standard-compliant level",
        )
    elif not is_standard_compliant(config):
        emit(
            analysis.expr, "opt_level", "info",
            "level licenses value-changing rewrites, but none applies to"
            " this expression (still: -O2 is the highest level that is"
            " compliant by construction)",
        )
    elif safety.applied:
        emit(
            analysis.expr, "opt_level", "info",
            "only value-preserving rewrites applied: this level stays"
            " bit-identical to strict IEEE (as any level up to -O2 must)",
        )


def _rule_fast_math(safety: SafetyReport, config: MachineConfig, emit) -> None:
    licensed = (
        config.allow_reassoc or config.no_signed_zeros
        or config.finite_math_only or config.reciprocal_math
    )
    if not licensed:
        return
    unsafe = [
        v for v in safety.value_changing_applied
        if v.pass_name in _FASTMATH_PASSES
    ]
    if unsafe:
        collapsed = isinstance(safety.compiled, Const) and not isinstance(
            safety.expr, Const
        )
        detail = (
            " — here the whole expression folds away (compensation-style"
            " terms are deleted, the Kahan-summation failure mode)"
            if collapsed else ""
        )
        names = ", ".join(v.pass_name for v in unsafe)
        emit(
            safety.expr, "fast_math", "warning",
            f"fast-math rewrites changed the expression ({names}):"
            f" algebra that is only true of reals was applied{detail}",
        )
    else:
        emit(
            safety.expr, "fast_math", "info",
            "fast-math algebra is licensed for this expression but no"
            " rewrite fires on it",
        )
