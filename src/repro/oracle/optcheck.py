"""Oracle evaluation of optsim expression trees.

:func:`oracle_evaluate` interprets an expression the way
:func:`repro.optsim.evaluator.evaluate` does, but computes every
``+ - * / sqrt fma`` node through the exact-rounding oracle instead of
the softfloat engine, accumulating the oracle's flag sets.  Compliance
verdicts can then be *cross-validated*: the strict-IEEE side of a
:class:`~repro.optsim.compliance.DivergenceReport` is recomputed
against exact rounding, so a verdict can no longer be an artifact of a
shared engine bug.

``min``/``max``/``%`` nodes have no oracle implementation (they are
exact selections / exact remainders with no rounding step to verify)
and fall back to the engine; flag accumulation still goes through the
shared environment so footprints stay comparable.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import OptimizationError
from repro.fpenv.env import FPEnv
from repro.fpenv.flags import FPFlag
from repro.oracle.exact import OracleConfig, oracle_operation
from repro.optsim.ast import FMA, Binary, BinOp, Const, Expr, Unary, UnOp, Var
from repro.optsim.machine import STRICT, MachineConfig
from repro.softfloat import (
    SoftFloat,
    convert_format,
    fp_max,
    fp_min,
    fp_remainder,
    parse_softfloat,
)

__all__ = ["oracle_evaluate", "OracleEvalResult"]

_BINOP_NAMES = {BinOp.ADD: "add", BinOp.SUB: "sub",
                BinOp.MUL: "mul", BinOp.DIV: "div"}


class OracleEvalResult:
    """Value and flag footprint of an oracle evaluation."""

    __slots__ = ("value", "flags")

    def __init__(self, value: SoftFloat, flags: FPFlag) -> None:
        self.value = value
        self.flags = flags


def oracle_evaluate(
    expr: Expr,
    bindings: Mapping[str, SoftFloat],
    config: MachineConfig = STRICT,
) -> OracleEvalResult:
    """Evaluate ``expr`` with every rounding performed by the oracle."""
    cfg = OracleConfig(rounding=config.rounding, ftz=config.ftz,
                       daz=config.daz)
    env = config.fresh_env()  # flag accumulator (and engine fallback env)
    value = _eval(expr, bindings, config, cfg, env)
    return OracleEvalResult(value, env.flags)


def _oracle_node(
    op: str, cfg: OracleConfig, env: FPEnv, *operands: SoftFloat
) -> SoftFloat:
    result = oracle_operation(op, cfg, *operands)
    env.raise_flags(result.flags, op)
    return result.value(operands[0].fmt)


def _eval(
    expr: Expr,
    bindings: Mapping[str, SoftFloat],
    config: MachineConfig,
    cfg: OracleConfig,
    env: FPEnv,
) -> SoftFloat:
    if isinstance(expr, Const):
        return parse_softfloat(expr.literal, config.fmt)
    if isinstance(expr, Var):
        try:
            value = bindings[expr.name]
        except KeyError:
            raise OptimizationError(f"unbound variable {expr.name!r}")
        if value.fmt != config.fmt:
            value = convert_format(value, config.fmt, env)
        return value
    if isinstance(expr, Unary):
        operand = _eval(expr.operand, bindings, config, cfg, env)
        if expr.op is UnOp.NEG:
            return -operand
        if expr.op is UnOp.ABS:
            return abs(operand)
        if expr.op is UnOp.SQRT:
            return _oracle_node("sqrt", cfg, env, operand)
        raise AssertionError(f"unhandled unary op {expr.op}")
    if isinstance(expr, Binary):
        left = _eval(expr.left, bindings, config, cfg, env)
        right = _eval(expr.right, bindings, config, cfg, env)
        name = _BINOP_NAMES.get(expr.op)
        if name is not None:
            return _oracle_node(name, cfg, env, left, right)
        if expr.op is BinOp.REM:
            return fp_remainder(left, right, env)
        if expr.op is BinOp.MIN:
            return fp_min(left, right, env)
        if expr.op is BinOp.MAX:
            return fp_max(left, right, env)
        raise AssertionError(f"unhandled binary op {expr.op}")
    if isinstance(expr, FMA):
        a = _eval(expr.a, bindings, config, cfg, env)
        b = _eval(expr.b, bindings, config, cfg, env)
        c = _eval(expr.c, bindings, config, cfg, env)
        return _oracle_node("fma", cfg, env, a, b, c)
    raise OptimizationError(f"cannot evaluate node {type(expr).__name__}")
