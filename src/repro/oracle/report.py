"""Structured conformance results: discrepancies, per-op stats, JSON.

The JSON layout is stable and flat on purpose — it is meant to be
diffed across runs and archived next to EXPERIMENTS.md entries, so a
regression shows up as a one-line change in a counter, not as a prose
paragraph.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

from repro.fpenv.flags import FPFlag, flag_names, flags_from_names

__all__ = ["Discrepancy", "OpStats", "ConformanceReport"]


@dataclasses.dataclass(frozen=True)
class Discrepancy:
    """One case where the engine and the exact oracle disagreed."""

    op: str
    fmt_name: str
    operands: tuple[int, ...]
    rounding: str
    ftz: bool
    daz: bool
    tininess: str
    engine_bits: int
    oracle_bits: int
    engine_flags: FPFlag
    oracle_flags: FPFlag
    kind: str  # "value" | "flags" | "both"
    shrunk_operands: tuple[int, ...] | None = None

    def to_dict(self) -> dict[str, Any]:
        width = max(len(f"{b:x}") for b in (self.operands + (0,)))
        return {
            "op": self.op,
            "format": self.fmt_name,
            "operands": [f"0x{b:0{width}x}" for b in self.operands],
            "rounding": self.rounding,
            "ftz": self.ftz,
            "daz": self.daz,
            "tininess": self.tininess,
            "engine": f"0x{self.engine_bits:x}",
            "oracle": f"0x{self.oracle_bits:x}",
            "engine_flags": flag_names(self.engine_flags),
            "oracle_flags": flag_names(self.oracle_flags),
            "kind": self.kind,
            "shrunk_operands": (
                None if self.shrunk_operands is None
                else [f"0x{b:x}" for b in self.shrunk_operands]
            ),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Discrepancy":
        """Inverse of :meth:`to_dict` (the engine's shard transport)."""
        shrunk = data.get("shrunk_operands")
        return cls(
            op=data["op"],
            fmt_name=data["format"],
            operands=tuple(int(b, 16) for b in data["operands"]),
            rounding=data["rounding"],
            ftz=data["ftz"],
            daz=data["daz"],
            tininess=data["tininess"],
            engine_bits=int(data["engine"], 16),
            oracle_bits=int(data["oracle"], 16),
            engine_flags=flags_from_names(data["engine_flags"]),
            oracle_flags=flags_from_names(data["oracle_flags"]),
            kind=data["kind"],
            shrunk_operands=(
                None if shrunk is None
                else tuple(int(b, 16) for b in shrunk)
            ),
        )

    def describe(self) -> str:
        ops = ", ".join(f"0x{b:x}" for b in self.operands)
        return (
            f"{self.op}({ops}) [{self.rounding}"
            f"{' ftz' if self.ftz else ''}{' daz' if self.daz else ''}]:"
            f" engine 0x{self.engine_bits:x}"
            f" {flag_names(self.engine_flags)} vs oracle"
            f" 0x{self.oracle_bits:x} {flag_names(self.oracle_flags)}"
            f" ({self.kind})"
        )


@dataclasses.dataclass
class OpStats:
    """Per-operation tallies across every (mode, FTZ/DAZ) combination.

    ``wall_seconds`` is the measured wall time of the operation's whole
    differential loop, so recorded runs double as throughput baselines
    (``evals_per_sec``) and BENCH trajectories can be derived from
    archived JSON reports instead of re-benchmarking.
    """

    op: str
    cases: int = 0
    evals: int = 0
    value_agree: int = 0
    flag_agree: int = 0
    discrepancies: int = 0
    native_evals: int = 0
    native_agree: int = 0
    wall_seconds: float = 0.0

    @property
    def flag_agreement_rate(self) -> float:
        return self.flag_agree / self.evals if self.evals else 1.0

    @property
    def value_agreement_rate(self) -> float:
        return self.value_agree / self.evals if self.evals else 1.0

    @property
    def evals_per_sec(self) -> float:
        return self.evals / self.wall_seconds if self.wall_seconds else 0.0

    def to_dict(self, *, timing: bool = True) -> dict[str, Any]:
        data = {
            "op": self.op,
            "cases": self.cases,
            "evals": self.evals,
            "value_agree": self.value_agree,
            "value_agreement_rate": round(self.value_agreement_rate, 6),
            "flag_agree": self.flag_agree,
            "flag_agreement_rate": round(self.flag_agreement_rate, 6),
            "discrepancies": self.discrepancies,
            "native_evals": self.native_evals,
            "native_agree": self.native_agree,
        }
        if timing:
            data["wall_seconds"] = round(self.wall_seconds, 6)
            data["evals_per_sec"] = round(self.evals_per_sec, 1)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "OpStats":
        """Inverse of :meth:`to_dict` (derived rate fields ignored)."""
        return cls(
            op=data["op"],
            cases=data["cases"],
            evals=data["evals"],
            value_agree=data["value_agree"],
            flag_agree=data["flag_agree"],
            discrepancies=data["discrepancies"],
            native_evals=data["native_evals"],
            native_agree=data["native_agree"],
            wall_seconds=data.get("wall_seconds", 0.0),
        )

    def absorb(self, other: "OpStats") -> None:
        """Fold another slice of the same op's sweep into this one.

        Counters add; ``wall_seconds`` adds too, which for parallel
        runs makes it *aggregate worker seconds* rather than elapsed
        wall time (the engine reports elapsed time separately).
        """
        if other.op != self.op:
            raise ValueError(f"cannot merge {other.op!r} into {self.op!r}")
        self.cases += other.cases
        self.evals += other.evals
        self.value_agree += other.value_agree
        self.flag_agree += other.flag_agree
        self.discrepancies += other.discrepancies
        self.native_evals += other.native_evals
        self.native_agree += other.native_agree
        self.wall_seconds += other.wall_seconds


@dataclasses.dataclass
class ConformanceReport:
    """Everything one ``oracle run`` produced."""

    fmt_name: str
    seed: int
    budget: int
    tininess: str
    rounding_modes: tuple[str, ...]
    env_combos: tuple[tuple[bool, bool], ...]  # (ftz, daz)
    op_stats: dict[str, OpStats] = dataclasses.field(default_factory=dict)
    discrepancies: list[Discrepancy] = dataclasses.field(default_factory=list)

    @property
    def total_evals(self) -> int:
        return sum(s.evals for s in self.op_stats.values())

    @property
    def clean(self) -> bool:
        """True when the engine matched the oracle on every case."""
        return not self.discrepancies

    def to_dict(self, *, timing: bool = True) -> dict[str, Any]:
        return {
            "format": self.fmt_name,
            "seed": self.seed,
            "budget": self.budget,
            "tininess": self.tininess,
            "rounding_modes": list(self.rounding_modes),
            "env_combos": [
                {"ftz": ftz, "daz": daz} for ftz, daz in self.env_combos
            ],
            "total_evals": self.total_evals,
            "clean": self.clean,
            "ops": {name: stats.to_dict(timing=timing)
                    for name, stats in sorted(self.op_stats.items())},
            "discrepancies": [d.to_dict() for d in self.discrepancies],
        }

    def to_json(self, indent: int = 2, *, timing: bool = True) -> str:
        return json.dumps(self.to_dict(timing=timing), indent=indent)

    def canonical_json(self) -> str:
        """The deterministic report: everything except wall-clock
        fields, which are the only values that legitimately differ
        between two runs of the same sweep.  Serial and engine-sharded
        runs of one spec must produce byte-identical canonical JSON —
        the conformance artifact the EXPERIMENTS log archives.
        """
        return self.to_json(timing=False)

    def write_json(self, path: str, *, timing: bool = True) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json(timing=timing))
            handle.write("\n")

    def summary(self) -> str:
        """Human-readable run summary (what the CLI prints)."""
        lines = [
            f"oracle conformance: {self.fmt_name}, seed={self.seed},"
            f" budget={self.budget}/op, tininess={self.tininess}",
            f"modes: {', '.join(self.rounding_modes)};"
            f" envs: " + ", ".join(
                f"ftz={'on' if f else 'off'}/daz={'on' if d else 'off'}"
                for f, d in self.env_combos
            ),
            "",
            f"{'op':<6} {'cases':>9} {'evals':>9} {'value-agree':>12}"
            f" {'flag-agree':>11} {'native':>13} {'discrep':>8}"
            f" {'evals/s':>9}",
        ]
        for name in sorted(self.op_stats):
            s = self.op_stats[name]
            native = (f"{s.native_agree}/{s.native_evals}"
                      if s.native_evals else "-")
            rate = f"{s.evals_per_sec:.0f}" if s.wall_seconds else "-"
            lines.append(
                f"{name:<6} {s.cases:>9} {s.evals:>9}"
                f" {s.value_agree:>12} {s.flag_agree:>11}"
                f" {native:>13} {s.discrepancies:>8} {rate:>9}"
            )
        lines.append("")
        if self.clean:
            lines.append(
                f"RESULT: conformant — {self.total_evals} evaluations,"
                f" zero discrepancies"
            )
        else:
            lines.append(
                f"RESULT: {len(self.discrepancies)} discrepancies"
            )
            for d in self.discrepancies[:20]:
                lines.append("  " + d.describe())
            if len(self.discrepancies) > 20:
                lines.append(f"  ... and {len(self.discrepancies) - 20} more")
        return "\n".join(lines)
