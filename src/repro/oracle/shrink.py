"""Input shrinking: reduce a failing case toward a minimal bit pattern.

When the runner finds a discrepancy it usually finds it on a random
64-bit pattern with dozens of set bits.  The shrinker greedily rewrites
one operand at a time toward "simpler" encodings — fewer set bits,
exponent closer to bias, landmark values — re-running the failure
predicate after each rewrite, so the reported witness is as close to a
human-readable counterexample as greedy descent can get.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.softfloat.formats import FloatFormat

__all__ = ["shrink_case", "simplicity_key"]

#: Hard cap on predicate evaluations per shrink, so a pathological
#: failure cannot stall the whole conformance run.
_MAX_PROBES = 400


def simplicity_key(bits: int) -> tuple[int, int]:
    """Ordering used by the greedy descent: fewer set bits first, then
    smaller encoding."""
    return (bits.bit_count(), bits)


def _candidates(fmt: FloatFormat, bits: int) -> list[int]:
    """Simpler rewrites of one operand, most aggressive first."""
    sign, biased_exp, frac = fmt.unpack(bits)
    out = [
        fmt.zero_bits(0),
        fmt.one_bits(0),
        fmt.min_subnormal_bits(0),
        fmt.min_normal_bits(0),
    ]
    if sign:
        out.append(fmt.pack(0, biased_exp, frac))  # drop the sign
    if frac:
        out.append(fmt.pack(sign, biased_exp, 0))          # clear the frac
        out.append(fmt.pack(sign, biased_exp, frac & (frac - 1)))  # drop a bit
        out.append(fmt.pack(sign, biased_exp, frac >> 1))  # halve it
    if 0 < biased_exp < fmt.max_biased_exp and biased_exp != fmt.bias:
        # Walk the exponent halfway toward bias (value toward ~1.0).
        towards = biased_exp + (fmt.bias - biased_exp + (
            1 if biased_exp < fmt.bias else -1)) // 2
        if towards != biased_exp and 0 < towards < fmt.max_biased_exp:
            out.append(fmt.pack(sign, towards, frac))
    return out


def shrink_case(
    fails: Callable[[tuple[int, ...]], bool],
    operands: Sequence[int],
    fmt: FloatFormat,
) -> tuple[int, ...]:
    """Greedily minimize ``operands`` while ``fails`` stays true.

    ``fails`` re-runs the differential check; it must be true for the
    input case (otherwise the case is returned unchanged).
    """
    current = tuple(operands)
    probes = 0
    improved = True
    while improved and probes < _MAX_PROBES:
        improved = False
        for index in range(len(current)):
            for candidate in _candidates(fmt, current[index]):
                if simplicity_key(candidate) >= simplicity_key(current[index]):
                    continue
                trial = current[:index] + (candidate,) + current[index + 1:]
                probes += 1
                if fails(trial):
                    current = trial
                    improved = True
                    break
                if probes >= _MAX_PROBES:
                    return current
    return current
