"""The differential conformance runner.

For every generated case the runner executes the operation three ways —

1. the softfloat **engine** under a fresh :class:`FPEnv`,
2. the exact-rounding **oracle** (:mod:`repro.oracle.exact`),
3. where the host natively implements the format and the environment
   is the hardware default, **native** floats via numpy —

and demands bit-for-bit value agreement plus exact sticky-flag
agreement between engine and oracle.  Disagreements are shrunk toward
minimal failing bit patterns and recorded as structured
:class:`~repro.oracle.report.Discrepancy` records.

Every environment combination the quiz references is driven: all five
rounding directions crossed with FTZ/DAZ off and on.  Boundary-lattice
cases are checked under *every* combination; random-stream cases cycle
through the matrix round-robin so a budget buys breadth first.
"""

from __future__ import annotations

import dataclasses
import itertools
import time
import zlib
from collections.abc import Sequence

from repro.errors import ReproError
from repro.fpenv.env import FPEnv
from repro.fpenv.rounding import RoundingMode
from repro.oracle.cases import (
    EXHAUSTIVE_WIDTH_LIMIT,
    boundary_operands,
    generate_cases,
)
from repro.oracle.exact import OP_ARITY, OracleConfig, oracle_operation
from repro.oracle.native import (
    native_agrees,
    native_result_bits,
    native_supported,
)
from repro.oracle.report import ConformanceReport, Discrepancy, OpStats
from repro.oracle.shrink import shrink_case
from repro.softfloat.arith import fp_add, fp_div, fp_mul, fp_sub
from repro.softfloat.fma import fp_fma
from repro.softfloat.formats import (
    BFLOAT16,
    BINARY16,
    BINARY32,
    BINARY64,
    BINARY128,
    E4M3,
    E5M2,
    TINY8,
    FloatFormat,
)
from repro.softfloat.sqrt import fp_sqrt
from repro.softfloat.value import SoftFloat
from repro.telemetry import get_telemetry

__all__ = [
    "ENGINE_OPS",
    "FORMATS_BY_NAME",
    "MODE_ALIASES",
    "OracleMismatch",
    "run_conformance",
    "check_case",
]

ENGINE_OPS = {
    "add": fp_add,
    "sub": fp_sub,
    "mul": fp_mul,
    "div": fp_div,
    "sqrt": fp_sqrt,
    "fma": fp_fma,
}

FORMATS_BY_NAME: dict[str, FloatFormat] = {
    f.name: f
    for f in (TINY8, E4M3, E5M2, BFLOAT16, BINARY16, BINARY32, BINARY64,
              BINARY128)
}

#: CLI spellings for rounding modes.
MODE_ALIASES = {
    "rne": RoundingMode.NEAREST_EVEN,
    "rna": RoundingMode.NEAREST_AWAY,
    "rtz": RoundingMode.TOWARD_ZERO,
    "rtp": RoundingMode.TOWARD_POSITIVE,
    "rtn": RoundingMode.TOWARD_NEGATIVE,
}


class OracleMismatch(ReproError):
    """Raised by callers that demand conformance (e.g. the optsim
    cross-validation path) when the engine and oracle disagree."""


def _engine_run(
    op: str,
    fmt: FloatFormat,
    operands: tuple[int, ...],
    mode: RoundingMode,
    ftz: bool,
    daz: bool,
) -> tuple[int, object]:
    """Execute one case on the softfloat engine; returns (bits, flags)."""
    env = FPEnv(rounding=mode, ftz=ftz, daz=daz)
    values = tuple(SoftFloat(fmt, bits) for bits in operands)
    result = ENGINE_OPS[op](*values, env)
    return result.bits, env.flags


def _check(
    op: str,
    fmt: FloatFormat,
    operands: tuple[int, ...],
    mode: RoundingMode,
    ftz: bool,
    daz: bool,
    tininess: str,
) -> tuple[int, Discrepancy | None]:
    """One differential evaluation; returns (engine_bits, discrepancy)."""
    engine_bits, engine_flags = _engine_run(op, fmt, operands, mode, ftz, daz)
    cfg = OracleConfig(rounding=mode, ftz=ftz, daz=daz, tininess=tininess)
    oracle = oracle_operation(
        op, cfg, *(SoftFloat(fmt, bits) for bits in operands))
    value_ok = engine_bits == oracle.bits
    flags_ok = engine_flags == oracle.flags
    if value_ok and flags_ok:
        return engine_bits, None
    kind = ("both" if not value_ok and not flags_ok
            else "value" if not value_ok else "flags")
    return engine_bits, Discrepancy(
        op=op,
        fmt_name=fmt.name,
        operands=operands,
        rounding=mode.value,
        ftz=ftz,
        daz=daz,
        tininess=tininess,
        engine_bits=engine_bits,
        oracle_bits=oracle.bits,
        engine_flags=engine_flags,
        oracle_flags=oracle.flags,
        kind=kind,
    )


def check_case(
    op: str,
    fmt: FloatFormat,
    operands: tuple[int, ...],
    mode: RoundingMode,
    *,
    ftz: bool = False,
    daz: bool = False,
    tininess: str = "before",
) -> Discrepancy | None:
    """Run one case differentially; ``None`` means engine == oracle."""
    _, disc = _check(op, fmt, operands, mode, ftz, daz, tininess)
    return disc


def _shrunk(disc: Discrepancy, fmt: FloatFormat) -> Discrepancy:
    """Attach a minimized witness to a discrepancy."""
    mode = RoundingMode(disc.rounding)
    shrink_evals = get_telemetry().metrics.counter(
        "oracle.shrink_evals_total", op=disc.op
    )

    def fails(operands: tuple[int, ...]) -> bool:
        shrink_evals.inc()
        return check_case(
            disc.op, fmt, operands, mode,
            ftz=disc.ftz, daz=disc.daz, tininess=disc.tininess,
        ) is not None

    minimal = shrink_case(fails, disc.operands, fmt)
    return dataclasses.replace(disc, shrunk_operands=minimal)


def run_conformance(
    fmt: FloatFormat,
    ops: Sequence[str],
    *,
    budget: int = 10000,
    seed: int = 754,
    modes: Sequence[RoundingMode] | None = None,
    env_combos: Sequence[tuple[bool, bool]] = ((False, False), (True, True)),
    tininess: str = "before",
    native: bool = True,
    max_discrepancies: int = 100,
) -> ConformanceReport:
    """Run the full differential sweep and build the report.

    ``budget`` bounds the number of *evaluations* per operation (one
    evaluation = one case under one rounding/FTZ combination).  Boundary
    cases are driven under every combination in the matrix; the random
    stream then cycles combinations round-robin until the budget is
    spent.  Shrinking stops after ``max_discrepancies`` so a broken
    engine still terminates quickly.
    """
    modes = tuple(modes) if modes else tuple(RoundingMode)
    env_combos = tuple(env_combos)
    unknown = sorted(set(ops) - set(ENGINE_OPS))
    if unknown:
        raise ValueError(f"unknown ops {unknown}; choose from"
                         f" {sorted(ENGINE_OPS)}")

    report = ConformanceReport(
        fmt_name=fmt.name,
        seed=seed,
        budget=budget,
        tininess=tininess,
        rounding_modes=tuple(m.value for m in modes),
        env_combos=env_combos,
    )
    matrix = tuple(itertools.product(modes, env_combos))

    telemetry = get_telemetry()
    run_span = telemetry.tracer.span(
        "oracle.run", format=fmt.name, budget=budget, seed=seed,
        ops=",".join(ops),
    )
    with run_span:
        for op in ops:
            _run_op(report, telemetry, op, fmt, budget, seed, matrix, tininess,
                    native, max_discrepancies)
    return report


def _run_op(
    report: ConformanceReport,
    telemetry,
    op: str,
    fmt: FloatFormat,
    budget: int,
    seed: int,
    matrix: tuple,
    tininess: str,
    native: bool,
    max_discrepancies: int,
) -> None:
    """Drive one operation's differential loop (one ``oracle.op`` span).

    When telemetry is enabled every evaluation is individually timed
    into a latency histogram; disabled, the only cost over the original
    loop is two clock reads per *operation* (for the JSON report's
    wall-time/evals-per-sec fields).
    """
    instrumented = telemetry.enabled
    metrics = telemetry.metrics
    evals_total = metrics.counter("oracle.evals_total", op=op)
    discrepancies_total = metrics.counter("oracle.discrepancies_total", op=op)
    latency = metrics.histogram("oracle.eval_seconds", op=op)

    with telemetry.tracer.span("oracle.op", op=op, format=fmt.name) as span:
        op_started = time.perf_counter()
        stats = OpStats(op=op)
        report.op_stats[op] = stats
        arity = OP_ARITY[op]
        combo_cycle = itertools.cycle(matrix)

        # Boundary cases (and exhaustive tiny formats) get the full
        # matrix; how many cases that allows within budget:
        full_matrix_cases = max(1, budget // (4 * len(matrix)))
        if fmt.width <= EXHAUSTIVE_WIDTH_LIMIT:
            space = (1 << fmt.width) ** arity
            if space * len(matrix) <= budget:
                full_matrix_cases = space
        else:
            n_corners = len(boundary_operands(fmt))
            full_matrix_cases = min(full_matrix_cases, n_corners ** min(arity, 2))

        case_seed = seed ^ (zlib.crc32(op.encode()) & 0xFFFF)
        for index, operands in enumerate(
            generate_cases(fmt, arity, budget, case_seed)
        ):
            if stats.evals >= budget:
                break
            if index < full_matrix_cases:
                combos = matrix
            else:
                combos = (next(combo_cycle),)
            stats.cases += 1
            for mode, (ftz, daz) in combos:
                if stats.evals >= budget:
                    break
                stats.evals += 1
                if instrumented:
                    check_started = time.perf_counter()
                engine_bits, disc = _check(
                    op, fmt, operands, mode, ftz, daz, tininess)
                if instrumented:
                    latency.observe(time.perf_counter() - check_started)
                    evals_total.inc()
                if disc is None:
                    stats.value_agree += 1
                    stats.flag_agree += 1
                else:
                    stats.discrepancies += 1
                    discrepancies_total.inc()
                    if disc.kind == "flags":
                        stats.value_agree += 1
                    elif disc.kind == "value":
                        stats.flag_agree += 1
                    if len(report.discrepancies) < max_discrepancies:
                        report.discrepancies.append(_shrunk(disc, fmt))
                # Native third opinion under the hardware-default env.
                if (native and not ftz and not daz
                        and mode is RoundingMode.NEAREST_EVEN
                        and native_supported(op, fmt)):
                    native_bits = native_result_bits(op, fmt, operands)
                    if native_bits is not None:
                        stats.native_evals += 1
                        if native_agrees(fmt, native_bits, engine_bits):
                            stats.native_agree += 1

        stats.wall_seconds = time.perf_counter() - op_started
        span.set("evals", stats.evals)
        span.set("discrepancies", stats.discrepancies)
        if instrumented:
            metrics.gauge("oracle.evals_per_sec", op=op).set(
                stats.evals_per_sec
            )
