"""The differential conformance runner.

For every generated case the runner executes the operation three ways —

1. the softfloat **engine** under a fresh :class:`FPEnv`,
2. the exact-rounding **oracle** (:mod:`repro.oracle.exact`),
3. where the host natively implements the format and the environment
   is the hardware default, **native** floats via numpy —

and demands bit-for-bit value agreement plus exact sticky-flag
agreement between engine and oracle.  Disagreements are shrunk toward
minimal failing bit patterns and recorded as structured
:class:`~repro.oracle.report.Discrepancy` records.

Every environment combination the quiz references is driven: all five
rounding directions crossed with FTZ/DAZ off and on.  Boundary-lattice
cases are checked under *every* combination; random-stream cases cycle
through the matrix round-robin so a budget buys breadth first.
"""

from __future__ import annotations

import dataclasses
import itertools
import time
import zlib
from collections.abc import Sequence

from repro.errors import ReproError
from repro.fpenv.env import FPEnv
from repro.fpenv.rounding import RoundingMode
from repro.oracle.cases import (
    EXHAUSTIVE_WIDTH_LIMIT,
    boundary_operands,
    generate_cases,
)
from repro.oracle.exact import OP_ARITY, OracleConfig, oracle_operation
from repro.oracle.native import (
    native_agrees,
    native_result_bits,
    native_supported,
)
from repro.oracle.report import ConformanceReport, Discrepancy, OpStats
from repro.oracle.shrink import shrink_case
from repro.softfloat.arith import fp_add, fp_div, fp_mul, fp_sub
from repro.softfloat.fma import fp_fma
from repro.softfloat.formats import (
    BFLOAT16,
    BINARY16,
    BINARY32,
    BINARY64,
    BINARY128,
    E4M3,
    E5M2,
    TINY8,
    FloatFormat,
)
from repro.softfloat.sqrt import fp_sqrt
from repro.softfloat.value import SoftFloat
from repro.telemetry import get_telemetry

__all__ = [
    "ENGINE_OPS",
    "FORMATS_BY_NAME",
    "MODE_ALIASES",
    "OracleMismatch",
    "run_conformance",
    "check_case",
    "op_case_count",
    "eval_offset",
    "plan_op_slices",
    "run_op_slice",
]

ENGINE_OPS = {
    "add": fp_add,
    "sub": fp_sub,
    "mul": fp_mul,
    "div": fp_div,
    "sqrt": fp_sqrt,
    "fma": fp_fma,
}

FORMATS_BY_NAME: dict[str, FloatFormat] = {
    f.name: f
    for f in (TINY8, E4M3, E5M2, BFLOAT16, BINARY16, BINARY32, BINARY64,
              BINARY128)
}

#: CLI spellings for rounding modes.
MODE_ALIASES = {
    "rne": RoundingMode.NEAREST_EVEN,
    "rna": RoundingMode.NEAREST_AWAY,
    "rtz": RoundingMode.TOWARD_ZERO,
    "rtp": RoundingMode.TOWARD_POSITIVE,
    "rtn": RoundingMode.TOWARD_NEGATIVE,
}


class OracleMismatch(ReproError):
    """Raised by callers that demand conformance (e.g. the optsim
    cross-validation path) when the engine and oracle disagree."""


def _engine_run(
    op: str,
    fmt: FloatFormat,
    operands: tuple[int, ...],
    mode: RoundingMode,
    ftz: bool,
    daz: bool,
) -> tuple[int, object]:
    """Execute one case on the softfloat engine; returns (bits, flags)."""
    env = FPEnv(rounding=mode, ftz=ftz, daz=daz)
    values = tuple(SoftFloat(fmt, bits) for bits in operands)
    result = ENGINE_OPS[op](*values, env)
    return result.bits, env.flags


#: Batch granularity for backend-driven engine evaluation.  Large enough
#: to amortize numpy dispatch, small enough to keep the working set in
#: cache for wide formats.
_ENGINE_CHUNK = 4096


def _batched_engine_results(
    op: str,
    fmt: FloatFormat,
    plan: list[tuple[int, tuple[int, ...], RoundingMode, bool, bool]],
    backend,
) -> list[tuple[int, object]]:
    """Run a slice's evaluation plan through a softfloat backend.

    ``plan`` rows are ``(case_index, operands, mode, ftz, daz)``.
    Evaluations are grouped by environment — one ``run_packed`` call
    handles a whole (mode, FTZ, DAZ) cell at a time — and results come
    back aligned with the plan, as the same ``(bits, FPFlag)`` pairs
    :func:`_engine_run` would have produced.  Cells the backend does
    not support (e.g. binary128 on the integer-lane batch kernels)
    fall back to the scalar engine lane by lane, so the plan always
    completes and the differential verdict never depends on backend
    coverage.
    """
    import numpy as np

    from repro.fpenv.flags import FPFlag

    results: list[tuple[int, object] | None] = [None] * len(plan)
    groups: dict[tuple, list[int]] = {}
    for pos, (_, _, mode, ftz, daz) in enumerate(plan):
        groups.setdefault((mode, ftz, daz), []).append(pos)
    for (mode, ftz, daz), positions in groups.items():
        if not backend.supports(op, fmt, mode, ftz, daz):
            for pos in positions:
                operands = plan[pos][1]
                results[pos] = _engine_run(op, fmt, operands, mode, ftz, daz)
            continue
        for start in range(0, len(positions), _ENGINE_CHUNK):
            chunk = positions[start:start + _ENGINE_CHUNK]
            arity = len(plan[chunk[0]][1])
            lanes = [
                np.array([plan[pos][1][slot] for pos in chunk],
                         dtype=np.uint64)
                for slot in range(arity)
            ]
            batch = backend.run_packed(op, fmt, lanes, mode, ftz, daz)
            for lane, pos in enumerate(chunk):
                results[pos] = (
                    int(batch.bits[lane]), FPFlag(int(batch.flags[lane]))
                )
    return results  # type: ignore[return-value]


def _check(
    op: str,
    fmt: FloatFormat,
    operands: tuple[int, ...],
    mode: RoundingMode,
    ftz: bool,
    daz: bool,
    tininess: str,
) -> tuple[int, Discrepancy | None]:
    """One differential evaluation; returns (engine_bits, discrepancy)."""
    engine_bits, engine_flags = _engine_run(op, fmt, operands, mode, ftz, daz)
    return _check_with_engine(
        op, fmt, operands, mode, ftz, daz, tininess,
        engine_bits, engine_flags,
    )


def _check_with_engine(
    op: str,
    fmt: FloatFormat,
    operands: tuple[int, ...],
    mode: RoundingMode,
    ftz: bool,
    daz: bool,
    tininess: str,
    engine_bits: int,
    engine_flags: object,
) -> tuple[int, Discrepancy | None]:
    """The oracle half of :func:`_check`, for precomputed engine results
    (the batched-backend path computes the engine side in bulk)."""
    cfg = OracleConfig(rounding=mode, ftz=ftz, daz=daz, tininess=tininess)
    oracle = oracle_operation(
        op, cfg, *(SoftFloat(fmt, bits) for bits in operands))
    value_ok = engine_bits == oracle.bits
    flags_ok = engine_flags == oracle.flags
    if value_ok and flags_ok:
        return engine_bits, None
    kind = ("both" if not value_ok and not flags_ok
            else "value" if not value_ok else "flags")
    return engine_bits, Discrepancy(
        op=op,
        fmt_name=fmt.name,
        operands=operands,
        rounding=mode.value,
        ftz=ftz,
        daz=daz,
        tininess=tininess,
        engine_bits=engine_bits,
        oracle_bits=oracle.bits,
        engine_flags=engine_flags,
        oracle_flags=oracle.flags,
        kind=kind,
    )


def check_case(
    op: str,
    fmt: FloatFormat,
    operands: tuple[int, ...],
    mode: RoundingMode,
    *,
    ftz: bool = False,
    daz: bool = False,
    tininess: str = "before",
) -> Discrepancy | None:
    """Run one case differentially; ``None`` means engine == oracle."""
    _, disc = _check(op, fmt, operands, mode, ftz, daz, tininess)
    return disc


def _shrunk(disc: Discrepancy, fmt: FloatFormat) -> Discrepancy:
    """Attach a minimized witness to a discrepancy."""
    mode = RoundingMode(disc.rounding)
    shrink_evals = get_telemetry().metrics.counter(
        "oracle.shrink_evals_total", op=disc.op
    )

    def fails(operands: tuple[int, ...]) -> bool:
        shrink_evals.inc()
        return check_case(
            disc.op, fmt, operands, mode,
            ftz=disc.ftz, daz=disc.daz, tininess=disc.tininess,
        ) is not None

    minimal = shrink_case(fails, disc.operands, fmt)
    return dataclasses.replace(disc, shrunk_operands=minimal)


def run_conformance(
    fmt: FloatFormat,
    ops: Sequence[str],
    *,
    budget: int = 10000,
    seed: int = 754,
    modes: Sequence[RoundingMode] | None = None,
    env_combos: Sequence[tuple[bool, bool]] = ((False, False), (True, True)),
    tininess: str = "before",
    native: bool = True,
    max_discrepancies: int = 100,
    engine_backend: str = "scalar",
) -> ConformanceReport:
    """Run the full differential sweep and build the report.

    ``budget`` bounds the number of *evaluations* per operation (one
    evaluation = one case under one rounding/FTZ combination).  Boundary
    cases are driven under every combination in the matrix; the random
    stream then cycles combinations round-robin until the budget is
    spent.  Shrinking stops after ``max_discrepancies`` so a broken
    engine still terminates quickly.

    ``engine_backend`` selects how the engine side of every evaluation
    is computed (see :func:`repro.softfloat.get_backend`): ``"scalar"``
    is the historical one-case-at-a-time path; ``"batch"``, ``"native"``
    and ``"auto"`` compute the engine results in vectorized blocks and
    then replay the same per-case differential verdicts.  The verdicts
    are bit-identical across backends — that identity is itself covered
    by the cross-backend differential suite.
    """
    modes = tuple(modes) if modes else tuple(RoundingMode)
    env_combos = tuple(env_combos)
    unknown = sorted(set(ops) - set(ENGINE_OPS))
    if unknown:
        raise ValueError(f"unknown ops {unknown}; choose from"
                         f" {sorted(ENGINE_OPS)}")

    report = ConformanceReport(
        fmt_name=fmt.name,
        seed=seed,
        budget=budget,
        tininess=tininess,
        rounding_modes=tuple(m.value for m in modes),
        env_combos=env_combos,
    )
    matrix = tuple(itertools.product(modes, env_combos))

    telemetry = get_telemetry()
    run_span = telemetry.tracer.span(
        "oracle.run", format=fmt.name, budget=budget, seed=seed,
        ops=",".join(ops),
    )
    with run_span:
        for op in ops:
            _run_op(report, telemetry, op, fmt, budget, seed, matrix, tininess,
                    native, max_discrepancies, engine_backend)
    return report


def _run_op(
    report: ConformanceReport,
    telemetry,
    op: str,
    fmt: FloatFormat,
    budget: int,
    seed: int,
    matrix: tuple,
    tininess: str,
    native: bool,
    max_discrepancies: int,
    engine_backend: str = "scalar",
) -> None:
    """Drive one operation's differential loop (one ``oracle.op`` span).

    When telemetry is enabled every evaluation is individually timed
    into a latency histogram; disabled, the only cost over the original
    loop is two clock reads per *operation* (for the JSON report's
    wall-time/evals-per-sec fields).
    """
    with telemetry.tracer.span("oracle.op", op=op, format=fmt.name) as span:
        op_started = time.perf_counter()
        stats = OpStats(op=op)
        report.op_stats[op] = stats
        _drive_op_cases(
            op, fmt, budget, seed, matrix, tininess, native,
            stats=stats, sink=report.discrepancies,
            sink_cap=max_discrepancies,
            engine_backend=engine_backend,
        )
        stats.wall_seconds = time.perf_counter() - op_started
        span.set("evals", stats.evals)
        span.set("discrepancies", stats.discrepancies)
        if telemetry.enabled:
            telemetry.metrics.gauge("oracle.evals_per_sec", op=op).set(
                stats.evals_per_sec
            )


def _full_matrix_cases(
    fmt: FloatFormat, arity: int, budget: int, matrix_len: int
) -> int:
    """How many leading cases are driven under *every* matrix combo.

    Boundary cases (and exhaustive tiny formats) get the full matrix;
    this is the budget split the serial loop has always used, factored
    out so shard planning computes the identical number.
    """
    full_matrix_cases = max(1, budget // (4 * matrix_len))
    if fmt.width <= EXHAUSTIVE_WIDTH_LIMIT:
        space = (1 << fmt.width) ** arity
        if space * matrix_len <= budget:
            full_matrix_cases = space
    else:
        n_corners = len(boundary_operands(fmt))
        full_matrix_cases = min(full_matrix_cases, n_corners ** min(arity, 2))
    return full_matrix_cases


def _generated_case_count(fmt: FloatFormat, arity: int, budget: int) -> int:
    """How many cases :func:`generate_cases` yields for these params."""
    if fmt.width <= EXHAUSTIVE_WIDTH_LIMIT:
        space = (1 << fmt.width) ** arity
        if space <= budget:
            return space
    return budget


def eval_offset(
    case_index: int, full_matrix_cases: int, matrix_len: int, budget: int
) -> int:
    """Evaluations the serial loop has spent before ``case_index``.

    Closed-form: the first ``full_matrix_cases`` cases cost
    ``matrix_len`` evaluations each, every later case costs one, and
    the loop never exceeds ``budget``.  This is what lets a shard know
    its position in the op's global budget without replaying the
    prefix.
    """
    ideal = (matrix_len * min(case_index, full_matrix_cases)
             + max(0, case_index - full_matrix_cases))
    return min(ideal, budget)


def op_case_count(
    fmt: FloatFormat, op: str, budget: int, matrix_len: int
) -> int:
    """The number of cases the serial loop processes for one op."""
    arity = OP_ARITY[op]
    fmc = _full_matrix_cases(fmt, arity, budget, matrix_len)
    generated = _generated_case_count(fmt, arity, budget)
    if budget <= fmc * matrix_len:
        exhausted_at = -(-budget // matrix_len)  # ceil division
    else:
        exhausted_at = fmc + (budget - fmc * matrix_len)
    return min(generated, exhausted_at)


def plan_op_slices(
    fmt: FloatFormat, op: str, budget: int, matrix_len: int, n_slices: int
) -> list[tuple[int, int]]:
    """Split one op's case stream into up to ``n_slices`` contiguous
    ``(case_lo, case_hi)`` ranges, balanced by *evaluation* count (the
    leading full-matrix cases are ``matrix_len`` times heavier than the
    round-robin tail).  Concatenating the slices reproduces the serial
    sweep exactly; the split only chooses where the seams fall.
    """
    n_cases = op_case_count(fmt, op, budget, matrix_len)
    if n_cases == 0:
        return []
    arity = OP_ARITY[op]
    fmc = _full_matrix_cases(fmt, arity, budget, matrix_len)
    total_evals = eval_offset(n_cases, fmc, matrix_len, budget)
    boundaries = [0]
    for j in range(1, n_slices):
        target = j * total_evals // n_slices
        if target <= fmc * matrix_len:
            case = target // matrix_len
        else:
            case = fmc + (target - fmc * matrix_len)
        boundaries.append(min(max(case, boundaries[-1]), n_cases))
    boundaries.append(n_cases)
    return [
        (lo, hi)
        for lo, hi in zip(boundaries, boundaries[1:])
        if hi > lo
    ]


def run_op_slice(
    fmt: FloatFormat,
    op: str,
    budget: int,
    seed: int,
    matrix: tuple,
    tininess: str,
    native: bool,
    max_discrepancies: int,
    case_lo: int,
    case_hi: int,
    engine_backend: str = "scalar",
) -> tuple[OpStats, list[Discrepancy]]:
    """Run cases ``[case_lo, case_hi)`` of one op's differential sweep.

    A pure function of its arguments: the case stream is regenerated
    from the seed and fast-forwarded, and the shard's position in the
    op's evaluation budget is computed in closed form — so the union
    of disjoint slices is bit-identical to the serial sweep.  Because
    ``engine_backend`` never changes *which* evaluations a slice
    performs (only how the engine side is computed), batched shards
    compose with the worker pool exactly as scalar ones do.
    """
    stats = OpStats(op=op)
    sink: list[Discrepancy] = []
    started = time.perf_counter()
    _drive_op_cases(
        op, fmt, budget, seed, matrix, tininess, native,
        stats=stats, sink=sink, sink_cap=max_discrepancies,
        case_lo=case_lo, case_hi=case_hi,
        engine_backend=engine_backend,
    )
    stats.wall_seconds = time.perf_counter() - started
    return stats, sink


def _iter_evals(
    op: str,
    fmt: FloatFormat,
    budget: int,
    seed: int,
    matrix: tuple,
    case_lo: int,
    case_hi: int | None,
):
    """Yield one op's evaluation stream (or a slice of it).

    Each item is ``(index, first_of_case, operands, mode, ftz, daz)``
    where ``first_of_case`` marks the first evaluation of a new case
    (the per-case statistics hook).  This generator is the single
    source of truth for combo selection and budget cutoff — the scalar
    loop and the batched plan both consume it, which is what makes
    their evaluation streams identical by construction.
    """
    arity = OP_ARITY[op]
    matrix_len = len(matrix)
    fmc = _full_matrix_cases(fmt, arity, budget, matrix_len)
    case_seed = seed ^ (zlib.crc32(op.encode()) & 0xFFFF)
    evals_spent = eval_offset(case_lo, fmc, matrix_len, budget)

    cases = generate_cases(fmt, arity, budget, case_seed)
    if case_lo:
        cases = itertools.islice(cases, case_lo, None)
    for index, operands in enumerate(cases, start=case_lo):
        if case_hi is not None and index >= case_hi:
            return
        if evals_spent >= budget:
            return
        if index < fmc:
            combos = matrix
        else:
            combos = (matrix[(index - fmc) % matrix_len],)
        first = True
        for mode, (ftz, daz) in combos:
            if evals_spent >= budget:
                break
            evals_spent += 1
            yield index, first, operands, mode, ftz, daz
            first = False


def _drive_op_cases(
    op: str,
    fmt: FloatFormat,
    budget: int,
    seed: int,
    matrix: tuple,
    tininess: str,
    native: bool,
    *,
    stats: OpStats,
    sink: list[Discrepancy],
    sink_cap: int,
    case_lo: int = 0,
    case_hi: int | None = None,
    engine_backend: str = "scalar",
) -> None:
    """The differential loop over one op's case stream (or a slice).

    Serial runs drive ``[0, None)`` with the report's shared
    discrepancy list as ``sink``; engine shards drive ``[lo, hi)``
    with a private sink.  Either way the per-case behavior — combo
    selection, budget cutoff, shrinking — depends only on the case
    index, never on which process is executing.

    With a non-scalar ``engine_backend`` the engine side of every
    evaluation is computed up front in vectorized blocks (grouped by
    rounding/FTZ/DAZ cell), and the oracle comparison replays over the
    precomputed results in stream order; the per-evaluation latency
    histogram then times the oracle half only.
    """
    telemetry = get_telemetry()
    instrumented = telemetry.enabled
    metrics = telemetry.metrics
    evals_total = metrics.counter("oracle.evals_total", op=op)
    discrepancies_total = metrics.counter("oracle.discrepancies_total", op=op)
    # mergeable: per-shard deltas from engine workers must fold into
    # the parent's distribution with order-independent quantiles
    latency = metrics.log_histogram("oracle.eval_seconds", op=op)

    stream = _iter_evals(op, fmt, budget, seed, matrix, case_lo, case_hi)
    engine_results = None
    if engine_backend != "scalar":
        from repro.softfloat.backend import get_backend

        backend = get_backend(engine_backend)
        plan = [
            (index, operands, mode, ftz, daz)
            for index, _, operands, mode, ftz, daz in stream
        ]
        engine_results = _batched_engine_results(op, fmt, plan, backend)
        stream = _iter_evals(op, fmt, budget, seed, matrix, case_lo, case_hi)

    # Hot-loop bindings: the per-eval instrumented cost is two clock
    # reads and one histogram observation; the eval counter is a local
    # integer flushed once after the loop (the registry value is only
    # read at snapshot/capture time, so batching is invisible).
    clock = time.perf_counter
    observe_latency = latency.observe
    evals_done = 0
    for pos, (index, first, operands, mode, ftz, daz) in enumerate(stream):
        if first:
            stats.cases += 1
        stats.evals += 1
        if instrumented:
            check_started = clock()
        if engine_results is None:
            engine_bits, disc = _check(
                op, fmt, operands, mode, ftz, daz, tininess)
        else:
            engine_bits, engine_flags = engine_results[pos]
            engine_bits, disc = _check_with_engine(
                op, fmt, operands, mode, ftz, daz, tininess,
                engine_bits, engine_flags)
        if instrumented:
            observe_latency(clock() - check_started)
            evals_done += 1
        if disc is None:
            stats.value_agree += 1
            stats.flag_agree += 1
        else:
            stats.discrepancies += 1
            discrepancies_total.inc()
            if disc.kind == "flags":
                stats.value_agree += 1
            elif disc.kind == "value":
                stats.flag_agree += 1
            if len(sink) < sink_cap:
                sink.append(_shrunk(disc, fmt))
        # Native third opinion under the hardware-default env.
        if (native and not ftz and not daz
                and mode is RoundingMode.NEAREST_EVEN
                and native_supported(op, fmt)):
            native_bits = native_result_bits(op, fmt, operands)
            if native_bits is not None:
                stats.native_evals += 1
                if native_agrees(fmt, native_bits, engine_bits):
                    stats.native_agree += 1
    if evals_done:
        evals_total.inc(evals_done)
