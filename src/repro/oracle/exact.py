"""The exact-rounding reference: IEEE 754 computed over exact rationals.

This module is the *oracle* half of the conformance subsystem: every
operation is computed exactly on :class:`fractions.Fraction` (or, for
square root, by integer-square-root with exact square comparisons) and
then correctly rounded into the destination format by comparing the
exact remainder against the halfway point.  Nothing here shares code
with the engine's round-and-pack path — the engine works on shifted
integer mantissas with guard/sticky markers, the oracle on rational
remainder comparisons — so a bug has to appear *twice, independently*
to escape the differential runner.

The oracle reproduces the engine's *documented* latitude choices so
that agreement can be demanded bit-for-bit:

- NaN propagation returns the first NaN operand, quieted, raising
  *invalid* iff some operand was signaling;
- ``fma(0, inf, c)`` is invalid with the default NaN even for quiet
  NaN ``c`` (the x86 FMA3 rule);
- exact zeros from cancellation are ``+0`` except under
  roundTowardNegative;
- tininess is detected before rounding by default (the x86/SSE choice);
  pass ``tininess="after"`` for the other 754-sanctioned convention.
"""

from __future__ import annotations

import dataclasses
import math
from fractions import Fraction

from repro.fpenv.flags import FPFlag
from repro.fpenv.rounding import RoundingMode
from repro.softfloat.formats import FloatFormat
from repro.softfloat.value import SoftFloat

__all__ = [
    "OracleConfig",
    "OracleResult",
    "ORACLE_OPS",
    "OP_ARITY",
    "oracle_add",
    "oracle_sub",
    "oracle_mul",
    "oracle_div",
    "oracle_sqrt",
    "oracle_fma",
    "oracle_operation",
    "round_fraction_exact",
]

# How the discarded part of an exact value compares to half a ULP.
_EXACT, _BELOW_HALF, _HALF, _ABOVE_HALF = range(4)


@dataclasses.dataclass(frozen=True)
class OracleConfig:
    """Environment parameters the oracle evaluates under.

    ``tininess`` selects the underflow-detection convention: ``"before"``
    (tiny iff the exact value is below the smallest normal; x86/SSE) or
    ``"after"`` (tiny iff the result rounded as if the exponent range
    were unbounded is below it; PowerPC/ARM FPSCR).
    """

    rounding: RoundingMode = RoundingMode.NEAREST_EVEN
    ftz: bool = False
    daz: bool = False
    tininess: str = "before"

    def __post_init__(self) -> None:
        if self.tininess not in ("before", "after"):
            raise ValueError(f"tininess must be 'before' or 'after', got"
                             f" {self.tininess!r}")


@dataclasses.dataclass(frozen=True)
class OracleResult:
    """What the oracle says an operation must deliver: the exact result
    encoding and the exact sticky-flag set."""

    bits: int
    flags: FPFlag

    def value(self, fmt: FloatFormat) -> SoftFloat:
        """The result as a SoftFloat in ``fmt``."""
        return SoftFloat(fmt, self.bits)


# ----------------------------------------------------------------------
# Correct rounding of an exact rational magnitude
# ----------------------------------------------------------------------
def _ilog2(num: int, den: int) -> int:
    """``floor(log2(num/den))`` for positive integers, exactly."""
    k = num.bit_length() - den.bit_length()
    # 2**k <= num/den  iff  num >= den * 2**k
    if k >= 0:
        return k if num >= (den << k) else k - 1
    return k if (num << -k) >= den else k - 1


def _rounds_up(mode: RoundingMode, sign: int, odd: bool, state: int) -> bool:
    """Independent reimplementation of the five rounding decisions."""
    if state == _EXACT:
        return False
    if mode is RoundingMode.NEAREST_EVEN:
        return state == _ABOVE_HALF or (state == _HALF and odd)
    if mode is RoundingMode.NEAREST_AWAY:
        return state in (_HALF, _ABOVE_HALF)
    if mode is RoundingMode.TOWARD_ZERO:
        return False
    if mode is RoundingMode.TOWARD_POSITIVE:
        return sign == 0
    if mode is RoundingMode.TOWARD_NEGATIVE:
        return sign == 1
    raise AssertionError(f"unhandled rounding mode {mode!r}")


def _overflow_bits(fmt: FloatFormat, mode: RoundingMode, sign: int) -> int:
    """Result encoding on overflow (inf or max-finite per direction)."""
    if mode in (RoundingMode.NEAREST_EVEN, RoundingMode.NEAREST_AWAY):
        return fmt.inf_bits(sign)
    if mode is RoundingMode.TOWARD_ZERO:
        return fmt.max_finite_bits(sign)
    if mode is RoundingMode.TOWARD_POSITIVE:
        return fmt.inf_bits(0) if sign == 0 else fmt.max_finite_bits(1)
    return fmt.inf_bits(1) if sign == 1 else fmt.max_finite_bits(0)


def _finish(
    fmt: FloatFormat,
    cfg: OracleConfig,
    sign: int,
    n: int,
    q: int,
    state: int,
    tiny_before: bool,
) -> OracleResult:
    """Deliver the truncated significand ``n`` at granularity ``2**q``
    whose discarded part compares to half a ULP as ``state``."""
    precision = fmt.precision
    inexact = state != _EXACT
    if _rounds_up(cfg.rounding, sign, bool(n & 1), state):
        n += 1
        if n == (1 << precision):  # carry out of the significand
            n >>= 1
            q += 1

    if n == 0:
        # A tiny value rounded all the way down to zero.
        return OracleResult(fmt.zero_bits(sign),
                            FPFlag.INEXACT | FPFlag.UNDERFLOW)

    msb_exp = q + n.bit_length() - 1
    if msb_exp > fmt.emax:
        return OracleResult(_overflow_bits(fmt, cfg.rounding, sign),
                            FPFlag.OVERFLOW | FPFlag.INEXACT)

    subnormal = n.bit_length() < precision
    if cfg.tininess == "before":
        tiny = tiny_before
    else:
        tiny = tiny_before and subnormal
    flags = FPFlag.NONE
    if inexact:
        flags |= FPFlag.INEXACT
        if tiny:
            flags |= FPFlag.UNDERFLOW

    if not subnormal:
        return OracleResult(fmt.pack(sign, msb_exp + fmt.bias,
                                     n & fmt.sig_mask), flags)

    if q != fmt.emin - (precision - 1):  # pragma: no cover - invariant
        raise AssertionError("subnormal delivered at the wrong granularity")
    if cfg.ftz:
        return OracleResult(fmt.zero_bits(sign),
                            flags | FPFlag.UNDERFLOW | FPFlag.INEXACT)
    return OracleResult(fmt.pack(sign, 0, n), flags | FPFlag.DENORMAL_RESULT)


def round_fraction_exact(
    fmt: FloatFormat, magnitude: Fraction, cfg: OracleConfig, sign: int = 0
) -> OracleResult:
    """Correctly round the positive rational ``magnitude`` into ``fmt``
    with the exact flag set.  This is the oracle's core primitive."""
    if magnitude <= 0:
        raise ValueError("round_fraction_exact needs a positive magnitude")
    num, den = magnitude.numerator, magnitude.denominator
    e = _ilog2(num, den)
    tiny_before = e < fmt.emin
    q = (fmt.emin if tiny_before else e) - (fmt.precision - 1)
    # n = floor(magnitude / 2**q), remainder compared against half a ULP.
    if q >= 0:
        den <<= q
    else:
        num <<= -q
    n, rem = divmod(num, den)
    if rem == 0:
        state = _EXACT
    else:
        doubled = 2 * rem
        state = (_BELOW_HALF if doubled < den
                 else _HALF if doubled == den else _ABOVE_HALF)
    return _finish(fmt, cfg, sign, n, q, state, tiny_before)


def _sqrt_exact(fmt: FloatFormat, magnitude: Fraction,
                cfg: OracleConfig) -> OracleResult:
    """Correctly round ``sqrt(magnitude)``: integer square root plus
    exact square comparisons against the halfway point."""
    num, den = magnitude.numerator, magnitude.denominator
    e_r = _ilog2(num, den) // 2  # floor exponent of the square root
    tiny_before = e_r < fmt.emin
    q = (fmt.emin if tiny_before else e_r) - (fmt.precision - 1)
    # sqrt(magnitude)/2**q = sqrt(M) with M = magnitude * 4**(-q).
    if q >= 0:
        den <<= 2 * q
    else:
        num <<= -2 * q
    # floor(sqrt(num/den)) = floor(isqrt(num*den) / den).
    n = math.isqrt(num * den) // den
    if n * n * den == num:
        state = _EXACT
    else:
        # Compare M against (n + 1/2)**2 = (2n+1)**2 / 4.
        lhs, rhs = 4 * num, (2 * n + 1) ** 2 * den
        state = (_BELOW_HALF if lhs < rhs
                 else _HALF if lhs == rhs else _ABOVE_HALF)
    return _finish(fmt, cfg, 0, n, q, state, tiny_before)


# ----------------------------------------------------------------------
# Special-operand policy (independent restatement of the engine's rules)
# ----------------------------------------------------------------------
def _propagated_nan(fmt: FloatFormat, *operands: SoftFloat) -> OracleResult:
    flags = (FPFlag.INVALID
             if any(x.is_signaling_nan for x in operands) else FPFlag.NONE)
    for x in operands:
        if x.is_nan:
            return OracleResult(x.bits | fmt.quiet_bit, flags)
    raise AssertionError("no NaN operand to propagate")


def _default_nan(fmt: FloatFormat) -> OracleResult:
    return OracleResult(fmt.quiet_nan_bits(), FPFlag.INVALID)


def _daz(cfg: OracleConfig, x: SoftFloat) -> SoftFloat:
    if cfg.daz and x.is_subnormal:
        return SoftFloat.zero(x.fmt, x.sign)
    return x


def _cancel_zero_sign(cfg: OracleConfig) -> int:
    return 1 if cfg.rounding is RoundingMode.TOWARD_NEGATIVE else 0


def _passthrough(x: SoftFloat) -> OracleResult:
    return OracleResult(x.bits, FPFlag.NONE)


# ----------------------------------------------------------------------
# Operations
# ----------------------------------------------------------------------
def oracle_add(cfg: OracleConfig, a: SoftFloat, b: SoftFloat) -> OracleResult:
    """Exact-rounding reference for IEEE addition."""
    fmt = a.fmt
    if a.is_nan or b.is_nan:
        return _propagated_nan(fmt, a, b)
    a, b = _daz(cfg, a), _daz(cfg, b)
    if a.is_inf or b.is_inf:
        if a.is_inf and b.is_inf:
            if a.sign != b.sign:
                return _default_nan(fmt)
            return _passthrough(a)
        return _passthrough(a if a.is_inf else b)
    if a.is_zero and b.is_zero:
        if a.sign == b.sign:
            return _passthrough(a)
        return OracleResult(fmt.zero_bits(_cancel_zero_sign(cfg)), FPFlag.NONE)
    if a.is_zero:
        return _passthrough(b)
    if b.is_zero:
        return _passthrough(a)
    exact = a.to_fraction() + b.to_fraction()
    if exact == 0:
        return OracleResult(fmt.zero_bits(_cancel_zero_sign(cfg)), FPFlag.NONE)
    sign = 1 if exact < 0 else 0
    return round_fraction_exact(fmt, abs(exact), cfg, sign)


def oracle_sub(cfg: OracleConfig, a: SoftFloat, b: SoftFloat) -> OracleResult:
    """Exact-rounding reference for IEEE subtraction (NaN payloads come
    from the *original* operands, then ``a + (-b)``)."""
    if a.is_nan or b.is_nan:
        return _propagated_nan(a.fmt, a, b)
    return oracle_add(cfg, a, -b)


def oracle_mul(cfg: OracleConfig, a: SoftFloat, b: SoftFloat) -> OracleResult:
    """Exact-rounding reference for IEEE multiplication."""
    fmt = a.fmt
    if a.is_nan or b.is_nan:
        return _propagated_nan(fmt, a, b)
    a, b = _daz(cfg, a), _daz(cfg, b)
    sign = a.sign ^ b.sign
    if a.is_inf or b.is_inf:
        if a.is_zero or b.is_zero:
            return _default_nan(fmt)
        return OracleResult(fmt.inf_bits(sign), FPFlag.NONE)
    if a.is_zero or b.is_zero:
        return OracleResult(fmt.zero_bits(sign), FPFlag.NONE)
    exact = a.to_fraction() * b.to_fraction()
    return round_fraction_exact(fmt, abs(exact), cfg, sign)


def oracle_div(cfg: OracleConfig, a: SoftFloat, b: SoftFloat) -> OracleResult:
    """Exact-rounding reference for IEEE division."""
    fmt = a.fmt
    if a.is_nan or b.is_nan:
        return _propagated_nan(fmt, a, b)
    a, b = _daz(cfg, a), _daz(cfg, b)
    sign = a.sign ^ b.sign
    if a.is_inf:
        if b.is_inf:
            return _default_nan(fmt)
        return OracleResult(fmt.inf_bits(sign), FPFlag.NONE)
    if b.is_inf:
        return OracleResult(fmt.zero_bits(sign), FPFlag.NONE)
    if b.is_zero:
        if a.is_zero:
            return _default_nan(fmt)
        return OracleResult(fmt.inf_bits(sign), FPFlag.DIV_BY_ZERO)
    if a.is_zero:
        return OracleResult(fmt.zero_bits(sign), FPFlag.NONE)
    exact = a.to_fraction() / b.to_fraction()
    return round_fraction_exact(fmt, abs(exact), cfg, sign)


def oracle_sqrt(cfg: OracleConfig, a: SoftFloat) -> OracleResult:
    """Exact-rounding reference for IEEE square root."""
    fmt = a.fmt
    if a.is_nan:
        return _propagated_nan(fmt, a)
    a = _daz(cfg, a)
    if a.is_zero:
        return _passthrough(a)  # sqrt(±0) = ±0
    if a.sign:
        return _default_nan(fmt)
    if a.is_inf:
        return _passthrough(a)
    return _sqrt_exact(fmt, a.to_fraction(), cfg)


def oracle_fma(
    cfg: OracleConfig, a: SoftFloat, b: SoftFloat, c: SoftFloat
) -> OracleResult:
    """Exact-rounding reference for fused multiply-add (one rounding)."""
    fmt = a.fmt
    if a.is_signaling_nan or b.is_signaling_nan or c.is_signaling_nan:
        return _propagated_nan(fmt, a, b, c)
    product_invalid = (a.is_inf and b.is_zero) or (a.is_zero and b.is_inf)
    if product_invalid and not (a.is_nan or b.is_nan):
        return _default_nan(fmt)
    if a.is_nan or b.is_nan or c.is_nan:
        return _propagated_nan(fmt, a, b, c)
    a, b, c = _daz(cfg, a), _daz(cfg, b), _daz(cfg, c)
    psign = a.sign ^ b.sign
    if a.is_inf or b.is_inf:
        if c.is_inf and c.sign != psign:
            return _default_nan(fmt)
        return OracleResult(fmt.inf_bits(psign), FPFlag.NONE)
    if c.is_inf:
        return _passthrough(c)
    if a.is_zero or b.is_zero:
        if c.is_zero:
            sign = psign if psign == c.sign else _cancel_zero_sign(cfg)
            return OracleResult(fmt.zero_bits(sign), FPFlag.NONE)
        return _passthrough(c)
    exact = a.to_fraction() * b.to_fraction() + c.to_fraction()
    if exact == 0:
        return OracleResult(fmt.zero_bits(_cancel_zero_sign(cfg)), FPFlag.NONE)
    sign = 1 if exact < 0 else 0
    return round_fraction_exact(fmt, abs(exact), cfg, sign)


#: Oracle dispatch by operation name.
ORACLE_OPS = {
    "add": oracle_add,
    "sub": oracle_sub,
    "mul": oracle_mul,
    "div": oracle_div,
    "sqrt": oracle_sqrt,
    "fma": oracle_fma,
}

#: Operand count by operation name.
OP_ARITY = {"add": 2, "sub": 2, "mul": 2, "div": 2, "sqrt": 1, "fma": 3}


def oracle_operation(
    op: str, cfg: OracleConfig, *operands: SoftFloat
) -> OracleResult:
    """Run the named operation through the exact-rounding reference."""
    try:
        fn = ORACLE_OPS[op]
    except KeyError:
        raise ValueError(f"oracle has no operation {op!r};"
                         f" knows {sorted(ORACLE_OPS)}") from None
    if len(operands) != OP_ARITY[op]:
        raise ValueError(f"{op} takes {OP_ARITY[op]} operands,"
                         f" got {len(operands)}")
    return fn(cfg, *operands)
