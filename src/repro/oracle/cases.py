"""Test-case generation for the conformance runner.

Three sources, combined per operation:

- **exhaustive**: every bit pattern (only sane for tiny formats);
- **boundary lattice**: the deterministic corner set every floating
  point bug report eventually names — signed zeros, the subnormal
  range's edges, the normal range's edges, infinities, NaN payloads,
  and the halfway-ulp neighbors around each landmark where rounding
  decisions flip;
- **random stream**: seeded uniform bit patterns, so binary32/64 runs
  are reproducible from ``--seed`` alone.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Iterator

from repro.softfloat.formats import FloatFormat

__all__ = [
    "exhaustive_operands",
    "boundary_operands",
    "random_operands",
    "generate_cases",
    "EXHAUSTIVE_WIDTH_LIMIT",
]

#: Formats at most this wide get exhaustive operand enumeration.
EXHAUSTIVE_WIDTH_LIMIT = 8


def exhaustive_operands(fmt: FloatFormat) -> list[int]:
    """Every encoding of the format, as raw bit patterns."""
    return list(range(1 << fmt.width))


def _neighbors(fmt: FloatFormat, bits: int) -> list[int]:
    """The encodings one ulp either side of a finite landmark — where
    every halfway case lives."""
    out = []
    sign, biased_exp, frac = fmt.unpack(bits)
    if biased_exp >= fmt.max_biased_exp:
        return out
    if bits & ((1 << (fmt.width - 1)) - 1):  # magnitude > 0: step down
        out.append(bits - 1)
    up = bits + 1
    _, up_exp, _ = fmt.unpack(up & ((1 << fmt.width) - 1))
    if up < (1 << fmt.width) and up_exp < fmt.max_biased_exp:
        out.append(up)
    return out


def boundary_operands(fmt: FloatFormat) -> list[int]:
    """The deterministic corner lattice (deduplicated, stable order)."""
    landmarks = []
    for sign in (0, 1):
        landmarks.extend([
            fmt.zero_bits(sign),
            fmt.min_subnormal_bits(sign),
            fmt.pack(sign, 0, fmt.sig_mask),       # max subnormal
            fmt.min_normal_bits(sign),
            fmt.one_bits(sign),
            fmt.max_finite_bits(sign),
            fmt.inf_bits(sign),
        ])
    seen: dict[int, None] = {}
    for bits in landmarks:
        seen.setdefault(bits, None)
        for nb in _neighbors(fmt, bits):
            seen.setdefault(nb, None)
    # NaNs: default quiet, quiet with payload, signaling (both signs).
    for sign in (0, 1):
        seen.setdefault(fmt.quiet_nan_bits(sign), None)
        if fmt.quiet_bit > 1:
            seen.setdefault(fmt.quiet_nan_bits(sign, 1), None)
            seen.setdefault(fmt.signaling_nan_bits(sign, 1), None)
            if fmt.frac_bits > 2:
                seen.setdefault(
                    fmt.signaling_nan_bits(sign, fmt.quiet_bit >> 1), None)
    return list(seen)


def random_operands(fmt: FloatFormat, rng: random.Random) -> Iterator[int]:
    """An endless seeded stream of uniform bit patterns."""
    width = fmt.width
    while True:
        yield rng.getrandbits(width)


def generate_cases(
    fmt: FloatFormat, arity: int, budget: int, seed: int,
    *, rng: random.Random | None = None,
) -> Iterator[tuple[int, ...]]:
    """Yield up to ``budget`` operand tuples for an operation of the
    given arity: boundary-lattice combinations first (exhaustively for
    unary/binary ops, seeded samples for ternary), then random fill.

    For formats within :data:`EXHAUSTIVE_WIDTH_LIMIT` the boundary phase
    is replaced by full enumeration when it fits the budget.

    All randomness comes from the injectable ``rng`` (freshly seeded
    from ``seed`` when omitted, and never shared module state), so the
    stream for a given ``(fmt, arity, budget, seed)`` is reproducible
    anywhere — including inside engine worker processes replaying a
    slice of the same stream.
    """
    produced = 0
    rng = rng or random.Random(seed)

    if fmt.width <= EXHAUSTIVE_WIDTH_LIMIT:
        space = (1 << fmt.width) ** arity
        if space <= budget:
            yield from itertools.product(
                exhaustive_operands(fmt), repeat=arity)
            return

    corners = boundary_operands(fmt)
    if arity <= 2:
        lattice: Iterator[tuple[int, ...]] = itertools.product(
            corners, repeat=arity)
    else:
        pairs = itertools.product(corners, repeat=2)
        lattice = ((a, b, rng.choice(corners)) for a, b in pairs)
    for case in lattice:
        if produced >= budget:
            return
        yield case
        produced += 1

    stream = random_operands(fmt, rng)
    while produced < budget:
        yield tuple(next(stream) for _ in range(arity))
        produced += 1
