"""Third opinion: the host hardware's IEEE implementation via numpy.

Where the format is one the host natively implements (binary32 and
binary64) and the environment is the hardware default (round to nearest
even, no FTZ/DAZ), the runner also computes each case on native floats
and compares result *bits*.  Exception flags are not observable from
Python, and NaN payload propagation is hardware-specific, so the native
check compares values only and treats all NaNs as one value — it is a
sanity cross-check on both the engine and the oracle, not a full
conformance judge.

``fma`` has no native implementation available here (``math.fma``
arrived in Python 3.13 and numpy exposes none), so it is skipped.
"""

from __future__ import annotations

import numpy as np

from repro.softfloat.formats import BINARY32, BINARY64, FloatFormat

__all__ = ["native_supported", "native_result_bits", "native_agrees"]

_DTYPES = {
    BINARY32.name: (np.float32, np.uint32),
    BINARY64.name: (np.float64, np.uint64),
}

_BINARY = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a / b,
}


def native_supported(op: str, fmt: FloatFormat) -> bool:
    """True when the host can render a verdict for this op/format."""
    return fmt.name in _DTYPES and (op in _BINARY or op == "sqrt")


def native_result_bits(op: str, fmt: FloatFormat,
                       operands: tuple[int, ...]) -> int | None:
    """Compute the case on host hardware; returns result bits, or
    ``None`` when unsupported."""
    if not native_supported(op, fmt):
        return None
    float_t, uint_t = _DTYPES[fmt.name]
    values = [np.array(bits, dtype=uint_t).view(float_t)
              for bits in operands]
    with np.errstate(all="ignore"):
        if op == "sqrt":
            result = np.sqrt(values[0])
        else:
            result = _BINARY[op](values[0], values[1])
    return int(np.asarray(result, dtype=float_t).view(uint_t))


def native_agrees(fmt: FloatFormat, native_bits: int, engine_bits: int) -> bool:
    """Value agreement: bit identity, with every NaN one value."""
    if native_bits == engine_bits:
        return True
    exp_mask = fmt.max_biased_exp << fmt.frac_bits
    sig_mask = fmt.sig_mask

    def _is_nan(bits: int) -> bool:
        return (bits & exp_mask) == exp_mask and (bits & sig_mask) != 0

    return _is_nan(native_bits) and _is_nan(engine_bits)
