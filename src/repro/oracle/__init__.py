"""Exact-rounding conformance oracle for the softfloat engine.

TestFloat-style differential testing subsystem.  The parts:

- :mod:`repro.oracle.exact` — the **oracle** itself: IEEE 754 add,
  sub, mul, div, sqrt, and fma computed over exact rationals and
  correctly rounded into any format under all five rounding modes,
  with the exact sticky-flag set (including both tininess-detection
  conventions and FTZ/DAZ);
- :mod:`repro.oracle.cases` — exhaustive / boundary-lattice / seeded
  random case generation;
- :mod:`repro.oracle.runner` — the differential runner comparing
  engine vs oracle vs (where available) the host's native floats;
- :mod:`repro.oracle.shrink` — minimization of failing cases;
- :mod:`repro.oracle.report` — structured discrepancy records and the
  JSON conformance report;
- :mod:`repro.oracle.optcheck` — oracle evaluation of optsim
  expression trees, powering ``oracle_checked`` compliance verdicts.

CLI: ``python -m repro oracle run --format binary16 --ops add,fma
--budget 100000 --seed 42``.
"""

from repro.oracle.cases import (
    boundary_operands,
    exhaustive_operands,
    generate_cases,
    random_operands,
)
from repro.oracle.exact import (
    OP_ARITY,
    ORACLE_OPS,
    OracleConfig,
    OracleResult,
    oracle_add,
    oracle_div,
    oracle_fma,
    oracle_mul,
    oracle_operation,
    oracle_sqrt,
    oracle_sub,
    round_fraction_exact,
)
from repro.oracle.optcheck import OracleEvalResult, oracle_evaluate
from repro.oracle.report import ConformanceReport, Discrepancy, OpStats
from repro.oracle.runner import (
    FORMATS_BY_NAME,
    MODE_ALIASES,
    OracleMismatch,
    check_case,
    run_conformance,
)
from repro.oracle.shrink import shrink_case

__all__ = [
    "OracleConfig",
    "OracleResult",
    "ORACLE_OPS",
    "OP_ARITY",
    "oracle_add",
    "oracle_sub",
    "oracle_mul",
    "oracle_div",
    "oracle_sqrt",
    "oracle_fma",
    "oracle_operation",
    "round_fraction_exact",
    "boundary_operands",
    "exhaustive_operands",
    "random_operands",
    "generate_cases",
    "shrink_case",
    "check_case",
    "run_conformance",
    "ConformanceReport",
    "Discrepancy",
    "OpStats",
    "OracleMismatch",
    "FORMATS_BY_NAME",
    "MODE_ALIASES",
    "oracle_evaluate",
    "OracleEvalResult",
]
