"""Sharded parallel execution for the repo's heavyweight sweeps.

The engine re-expresses the expensive computations — the oracle's
differential conformance sweep, the study simulation, divergence
searches, the lint-corpus sweep — as **jobs**: ordered lists of pure,
JSON-serializable **shards** executed on a fault-tolerant
multiprocessing worker pool, fronted by a content-addressed result
cache.

The non-negotiable contract is *bit-identity*: a job's merged result
is byte-for-byte the serial code path's result, at any worker count,
with any shard served from cache.  Three mechanisms carry it:

- per-shard randomness is **derived from position**, never drawn from
  a shared sequential stream (:func:`~repro.engine.tasks.derive_seed`,
  :func:`~repro.population.response_model.respondent_rng`);
- shard boundaries are computed in **closed form** so a shard knows
  its slice of a global budget without replaying the prefix
  (:func:`~repro.oracle.runner.plan_op_slices`);
- merges run in **shard-index order** regardless of completion order.

Layering::

    tasks.py     job model, task registry, seed derivation
    cache.py     content-addressed result cache (LRU + JSONL disk)
    events.py    EngineFlag fault events on the telemetry stream
    worker.py    worker-process entry point
    pool.py      multiprocessing pool: batching, heartbeats, retries
    engine.py    the facade: cache -> pool/serial -> ordered merge
    shutdown.py  drain-first SIGINT/SIGTERM handling
    adapters.py  sharded twins of oracle/study/optsim/staticfp runs
    testing.py   fault-injection tasks (crash/hang/fail probes)
"""

from repro.engine.cache import (
    MISS,
    CacheStats,
    ResultCache,
    cache_key,
    default_cache_path,
    machine_fingerprint,
)
from repro.engine.engine import Engine, EngineConfig, RunReport
from repro.engine.events import EngineFlag, PoolStats, emit_engine_event
from repro.engine.pool import (
    PoolConfig,
    WorkerPool,
    active_pools,
    request_stop_all,
)
from repro.engine.shutdown import graceful_shutdown
from repro.engine.tasks import (
    Job,
    Shard,
    ShardContext,
    TaskSpec,
    derive_seed,
    ensure_tasks_loaded,
    execute_task,
    get_task,
    make_job,
    registered_tasks,
    task,
)

__all__ = [
    "Engine",
    "EngineConfig",
    "EngineFlag",
    "RunReport",
    "PoolConfig",
    "PoolStats",
    "WorkerPool",
    "active_pools",
    "request_stop_all",
    "graceful_shutdown",
    "Job",
    "Shard",
    "ShardContext",
    "TaskSpec",
    "derive_seed",
    "make_job",
    "task",
    "get_task",
    "registered_tasks",
    "execute_task",
    "ensure_tasks_loaded",
    "emit_engine_event",
    "MISS",
    "CacheStats",
    "ResultCache",
    "cache_key",
    "machine_fingerprint",
    "default_cache_path",
]
