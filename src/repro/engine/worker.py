"""Worker-process entry point.

Kept to a module-level function so it survives both ``fork`` and
``spawn`` start methods.  The bootstrap order matters:

1. :func:`repro.telemetry.reset_for_process` — a forked child inherits
   the parent's ambient telemetry session as thread-local state;
   recording into it would be silent data loss (the objects are dead
   copies).  Workers start from an explicit NULL session.
2. :func:`repro.engine.tasks.ensure_tasks_loaded` — materialize the
   task registry in this process (a no-op under ``fork``, essential
   under ``spawn``).

The message protocol (worker side):

- pull ``("batch", units)`` from this worker's private task queue;
  each unit is ``(shard_index, n_shards, task, params, seed, attempt,
  traceparent)`` — ``traceparent`` is ``None`` when the dispatching
  run has telemetry off, or the parent trace's context string when on;
- per unit: ``("start", ...)`` then ``("done", ..., result, payload)``
  or ``("task_error", ..., repr, traceback)``.  ``payload`` is the
  unit's harvested telemetry (a
  :func:`~repro.telemetry.merge.capture_payload` dict) when a
  traceparent was supplied, else ``None`` — telemetry rides beside the
  result, never inside it, so result bytes are identical either way;
- send ``("hb", worker_id)`` whenever the task queue is idle past the
  heartbeat interval, so a silent worker is distinguishable from a
  starved one;
- exit on ``("stop",)``.

Workers never acknowledge receipt: outbound messages ride an async
feeder thread that a dying process may never flush, so the parent
tracks assignment on its own side and treats everything it assigned
to a dead worker as lost.  ``done`` messages that *did* flush before
a death are deduplicated by the parent.
"""

from __future__ import annotations

import queue as queue_module
import time
import traceback

__all__ = ["worker_main"]

#: Worker sessions are short-lived (one unit each); a modest span cap
#: bounds the payload a chatty task can ship back per shard.
_WORKER_MAX_SPANS = 10_000


def worker_main(worker_id: int, task_queue, result_queue,
                heartbeat_interval: float) -> None:
    """Run the worker loop until a stop sentinel (or a fatal signal)."""
    from repro.telemetry import reset_for_process

    reset_for_process()

    from repro.engine.tasks import ShardContext, ensure_tasks_loaded, \
        execute_task

    ensure_tasks_loaded()

    while True:
        try:
            message = task_queue.get(timeout=heartbeat_interval)
        except queue_module.Empty:
            result_queue.put(("hb", worker_id))
            continue
        if message[0] == "stop":
            return
        for unit in message[1]:
            shard_index, n_shards, task_name, params, seed, attempt = unit[:6]
            traceparent = unit[6] if len(unit) > 6 else None
            result_queue.put(("start", worker_id, shard_index, attempt))
            ctx = ShardContext(
                index=shard_index, n_shards=n_shards, seed=seed,
                attempt=attempt,
            )
            try:
                if traceparent is None:
                    result = execute_task(task_name, params, ctx)
                    payload = None
                else:
                    result, payload = _execute_traced(
                        execute_task, task_name, params, ctx,
                        traceparent, worker_id,
                    )
            except Exception as exc:
                result_queue.put((
                    "task_error", worker_id, shard_index, attempt,
                    repr(exc), traceback.format_exc(),
                ))
            else:
                result_queue.put((
                    "done", worker_id, shard_index, attempt, result,
                    payload,
                ))


def _execute_traced(execute_task, task_name, params, ctx, traceparent,
                    worker_id):
    """Run one unit under a worker-local session adopting the parent
    trace; returns ``(result, payload)``.

    The session is per-unit: its metrics are exactly this shard's
    delta, so the parent can fold them in associatively.  The task body
    runs under one ``worker.execute`` root span — anything the task
    itself traces nests below it, and the whole subtree is re-homed
    under the dispatching shard span at merge time.
    """
    from repro.telemetry import (Telemetry, capture_payload,
                                 parse_traceparent, telemetry_session)

    context = parse_traceparent(traceparent)
    session = Telemetry.create(
        trace_id=context.trace_id if context else None,
        max_spans=_WORKER_MAX_SPANS,
    )
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    with telemetry_session(session):
        with session.tracer.span(
            "worker.execute", task=task_name, shard=ctx.index,
            attempt=ctx.attempt, worker=worker_id,
        ):
            result = execute_task(task_name, params, ctx)
    payload = capture_payload(
        session,
        wall=time.perf_counter() - wall0,
        cpu=time.process_time() - cpu0,
    )
    return result, payload
