"""Worker-process entry point.

Kept to a module-level function so it survives both ``fork`` and
``spawn`` start methods.  The bootstrap order matters:

1. :func:`repro.telemetry.reset_for_process` — a forked child inherits
   the parent's ambient telemetry session as thread-local state;
   recording into it would be silent data loss (the objects are dead
   copies).  Workers start from an explicit NULL session.
2. :func:`repro.engine.tasks.ensure_tasks_loaded` — materialize the
   task registry in this process (a no-op under ``fork``, essential
   under ``spawn``).

The message protocol (worker side):

- pull ``("batch", units)`` from this worker's private task queue;
  each unit is ``(shard_index, n_shards, task, params, seed,
  attempt)``;
- per unit: ``("start", ...)`` then ``("done", ..., result)`` or
  ``("task_error", ..., repr, traceback)``;
- send ``("hb", worker_id)`` whenever the task queue is idle past the
  heartbeat interval, so a silent worker is distinguishable from a
  starved one;
- exit on ``("stop",)``.

Workers never acknowledge receipt: outbound messages ride an async
feeder thread that a dying process may never flush, so the parent
tracks assignment on its own side and treats everything it assigned
to a dead worker as lost.  ``done`` messages that *did* flush before
a death are deduplicated by the parent.
"""

from __future__ import annotations

import queue as queue_module
import traceback

__all__ = ["worker_main"]


def worker_main(worker_id: int, task_queue, result_queue,
                heartbeat_interval: float) -> None:
    """Run the worker loop until a stop sentinel (or a fatal signal)."""
    from repro.telemetry import reset_for_process

    reset_for_process()

    from repro.engine.tasks import ShardContext, ensure_tasks_loaded, \
        execute_task

    ensure_tasks_loaded()

    while True:
        try:
            message = task_queue.get(timeout=heartbeat_interval)
        except queue_module.Empty:
            result_queue.put(("hb", worker_id))
            continue
        if message[0] == "stop":
            return
        for shard_index, n_shards, task_name, params, seed, attempt \
                in message[1]:
            result_queue.put(("start", worker_id, shard_index, attempt))
            ctx = ShardContext(
                index=shard_index, n_shards=n_shards, seed=seed,
                attempt=attempt,
            )
            try:
                result = execute_task(task_name, params, ctx)
            except Exception as exc:
                result_queue.put((
                    "task_error", worker_id, shard_index, attempt,
                    repr(exc), traceback.format_exc(),
                ))
            else:
                result_queue.put((
                    "done", worker_id, shard_index, attempt, result,
                ))
