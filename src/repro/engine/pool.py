"""Multiprocessing worker pool: batching, backpressure, fault tolerance.

The pool owns the process lifecycle so callers never see a dead
worker.  The supervision loop is a single-threaded event pump, and its
central design decision is that **assignment lives in the parent**:
each worker has its own bounded task queue, and the parent records
which units it handed to which worker.  A worker's messages ride an
async feeder thread, so anything a dying worker *says* can be lost
mid-flush — but what the parent *assigned* cannot.  Recovery therefore
never depends on worker-side bookkeeping:

- **batching** — ready shards are dispatched in up-to-``batch_size``
  batches to amortize queue IPC;
- **backpressure** — each worker's queue holds at most ``queue_depth``
  batches (and the parent caps outstanding units per worker), so a
  million-shard job never materializes a million queue entries; the
  remainder waits in the parent's pending deque;
- **heartbeats** — idle workers beat every ``heartbeat_interval``
  seconds; the beat is bookkeeping (liveness + stats), the real death
  check is ``Process.is_alive`` on every pump;
- **worker death** — every unit assigned-but-unfinished is requeued,
  the dead process is reaped and a replacement spawned, and a
  :data:`~repro.engine.events.EngineFlag.WORKER_DEATH` event lands in
  the telemetry stream.  Only a unit *known* to have been executing
  (last observed ``start``, or a sole assignment) is charged a retry
  with ``attempt + 1`` and backoff; the rest are quarantined — rerun
  one-per-idle-worker so a repeat death charges the true crasher, and
  innocent bystanders can never exhaust their retry budget riding
  behind one.  Duplicate completions (a ``done`` already in
  the pipe when its worker died) are deduplicated by shard index;
- **per-shard timeouts** — a unit running longer than
  ``shard_timeout`` gets its worker terminated, which funnels into the
  same requeue path with a
  :data:`~repro.engine.events.EngineFlag.TIMEOUT` event;
- **retry exhaustion** — after ``max_retries`` infrastructure
  failures a shard is either run serially in the parent
  (``fallback_serial``, the graceful-degradation path) or raised as a
  :class:`~repro.errors.ShardError`;
- **task errors** — an exception raised *by the task itself* is never
  retried: tasks are pure, so a second attempt would fail identically.
  It raises :class:`~repro.errors.ShardError` immediately with the
  worker-side traceback.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import queue as queue_module
import threading
import time
import weakref
from collections import deque
from typing import Any

from repro.errors import EngineError, EngineInterrupted, ShardError
from repro.engine.events import EngineFlag, PoolStats, emit_engine_event
from repro.engine.tasks import Shard, ShardContext, execute_task
from repro.engine.worker import worker_main
from repro.telemetry import get_telemetry

__all__ = [
    "PoolConfig",
    "WorkerPool",
    "active_pools",
    "request_stop_all",
]

#: Pools currently inside :meth:`WorkerPool.run`, for signal handlers
#: that must reach a pool they hold no reference to.  Guarded by
#: ``_ACTIVE_LOCK`` — signal handlers run between bytecodes of the
#: pump itself.
_ACTIVE_POOLS: "weakref.WeakSet[WorkerPool]" = weakref.WeakSet()
_ACTIVE_LOCK = threading.Lock()


def active_pools() -> "list[WorkerPool]":
    """Pools currently executing a run."""
    with _ACTIVE_LOCK:
        return list(_ACTIVE_POOLS)


def request_stop_all(drain_timeout: float = 2.0) -> int:
    """Ask every active pool to drain and stop; returns how many."""
    pools = active_pools()
    for pool in pools:
        pool.request_stop(drain_timeout=drain_timeout)
    return len(pools)


@dataclasses.dataclass(frozen=True)
class PoolConfig:
    """Tunables for one :class:`WorkerPool`.

    ``start_method=None`` uses the platform default (``fork`` on
    Linux); ``shard_timeout=None`` disables the per-shard watchdog.
    """

    workers: int = 2
    batch_size: int = 1
    queue_depth: int = 2
    shard_timeout: float | None = None
    heartbeat_interval: float = 1.0
    max_retries: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    start_method: str | None = None
    poll_interval: float = 0.05
    fallback_serial: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise EngineError("pool needs at least one worker")
        if self.batch_size < 1:
            raise EngineError("batch_size must be positive")
        if self.queue_depth < 1:
            raise EngineError("queue_depth must be positive")


@dataclasses.dataclass
class _Unit:
    """One shard's in-flight scheduling state (parent side only)."""

    shard: Shard
    n_shards: int
    attempt: int = 0
    not_before: float = 0.0
    #: survived a worker death: rerun alone on an idle worker so a
    #: repeat death identifies the culprit unambiguously
    isolate: bool = False

    def wire(self, traceparent: str | None = None) -> tuple:
        """The tuple shipped to workers (JSON-able scalars only).

        ``traceparent`` rides the wire, never the spec: it must stay
        out of ``TaskSpec.params`` so cache keys — and therefore
        result bytes — are identical with telemetry on or off.
        """
        spec = self.shard.spec
        return (
            self.shard.index, self.n_shards, spec.task, dict(spec.params),
            self.shard.seed, self.attempt, traceparent,
        )


class _WorkerHandle:
    """A worker process, its private queue, and what the parent
    assigned to it."""

    def __init__(self, worker_id: int, process, task_queue) -> None:
        self.worker_id = worker_id
        self.process = process
        self.task_queue = task_queue
        #: units handed over but not yet reported done, by shard index
        self.assigned: dict[int, _Unit] = {}
        #: (shard_index, started_at) of the unit currently executing
        self.running: tuple[int, float] | None = None

    @property
    def capacity(self) -> int:
        return len(self.assigned)


class WorkerPool:
    """Run shards across worker processes; survive their deaths.

    One-shot by design: build, :meth:`run`, discard.  ``run`` returns
    ``{shard_index: result}`` for every shard and fills ``self.stats``.
    """

    def __init__(self, config: PoolConfig) -> None:
        self.config = config
        self.stats = PoolStats()
        #: harvested worker telemetry, ``{shard_index: (worker_id,
        #: payload dict)}`` — only populated when the dispatching run
        #: had an enabled telemetry session (see :meth:`run`)
        self.payloads: dict[int, tuple[int, dict]] = {}
        self._traceparent: str | None = None
        ctx_name = config.start_method
        self._mp = (
            multiprocessing.get_context(ctx_name)
            if ctx_name else multiprocessing.get_context()
        )
        self._next_worker_id = 0
        self._result_queue = None
        self._stop = threading.Event()
        self._stop_deadline = 0.0
        #: set when :meth:`run` has fully unwound (workers reaped);
        #: what :meth:`repro.engine.engine.Engine.close` waits on.
        self.finished = threading.Event()

    def request_stop(self, *, drain_timeout: float = 2.0) -> None:
        """Ask the pump to stop gracefully: dispatch nothing new, let
        in-flight shards finish (up to ``drain_timeout``), reap every
        worker, then raise :class:`~repro.errors.EngineInterrupted`.

        Safe to call from any thread or from a signal handler; the
        pump picks the flag up on its next iteration.  Calling it on a
        pool that is not running is a no-op.
        """
        self._stop_deadline = time.monotonic() + drain_timeout
        self._stop.set()

    # -- lifecycle -----------------------------------------------------

    def _spawn_worker(self) -> _WorkerHandle:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        task_queue = self._mp.Queue(maxsize=self.config.queue_depth)
        process = self._mp.Process(
            target=worker_main,
            args=(worker_id, task_queue, self._result_queue,
                  self.config.heartbeat_interval),
            daemon=True,
            name=f"repro-engine-worker-{worker_id}",
        )
        process.start()
        self.stats.workers_spawned += 1
        return _WorkerHandle(worker_id, process, task_queue)

    # -- supervision helpers -------------------------------------------

    def _requeue(self, unit: _Unit, pending: deque, flag: EngineFlag,
                 failures: dict[int, int]) -> None:
        """Put a unit back on the ready list after an infra failure."""
        failures[unit.shard.index] = failures.get(unit.shard.index, 0) + 1
        emit_engine_event(
            flag | EngineFlag.RETRY,
            f"engine.shard[{unit.shard.index}]",
        )
        get_telemetry().metrics.counter("engine.retries_total").inc()
        self.stats.retries += 1
        delay = min(
            self.config.backoff_cap,
            self.config.backoff_base * (2 ** unit.attempt),
        )
        unit.attempt += 1
        unit.not_before = time.monotonic() + delay
        pending.append(unit)

    def _reap(self, handle: _WorkerHandle, pending: deque,
              failures: dict[int, int], flag: EngineFlag) -> None:
        """Recover every unit a dead/killed worker was assigned.

        Exactly one unit was executing when the worker died, and only a
        unit *known* to be the one is charged a retry: the last
        ``start`` the parent saw, or a sole assignment.  A dying
        worker's feeder thread can lose every message it ever queued,
        so when several units are assigned and no ``start`` survived,
        the culprit is unknowable — charging bystanders would let a
        shard co-queued behind a crasher exhaust its retry budget
        without ever having run (and send the parent serially running
        shards it could have pooled).  Instead, every reaped unit is
        *quarantined*: requeued to run alone on an idle worker, where
        the next death is a sole assignment and charges the true
        crasher.  Quarantine converges — bystanders complete on their
        solo run, repeat crashers accumulate real failures until retry
        exhaustion."""
        running_index = handle.running[0] if handle.running else None
        if running_index not in handle.assigned and len(handle.assigned) == 1:
            running_index = next(iter(handle.assigned))
        for unit in handle.assigned.values():
            unit.isolate = True
            if unit.shard.index == running_index:
                self._requeue(unit, pending, flag, failures)
            else:
                unit.not_before = time.monotonic()
                pending.append(unit)
        handle.assigned.clear()
        handle.running = None
        handle.process.join(timeout=1.0)
        if handle.process.is_alive():  # pragma: no cover - defensive
            handle.process.kill()
            handle.process.join(timeout=1.0)
        handle.process.close()
        handle.task_queue.cancel_join_thread()
        handle.task_queue.close()

    def _run_exhausted(self, unit: _Unit, results: dict[int, Any]) -> None:
        """Last resort for a shard the pool keeps losing."""
        emit_engine_event(
            EngineFlag.RETRIES_EXHAUSTED,
            f"engine.shard[{unit.shard.index}]",
        )
        if not self.config.fallback_serial:
            raise ShardError(
                unit.shard.index,
                f"retries exhausted after {unit.attempt} attempts",
            )
        emit_engine_event(
            EngineFlag.SERIAL_FALLBACK,
            f"engine.shard[{unit.shard.index}]",
        )
        self.stats.serial_fallbacks += 1
        spec = unit.shard.spec
        ctx = ShardContext(
            index=unit.shard.index, n_shards=unit.n_shards,
            seed=unit.shard.seed, attempt=unit.attempt,
        )
        results[unit.shard.index] = execute_task(spec.task, spec.params, ctx)
        self.stats.completed += 1

    # -- the pump ------------------------------------------------------

    def run(self, shards: list[Shard]) -> dict[int, Any]:
        """Execute every shard, in any order, surviving worker faults."""
        config = self.config
        started = time.monotonic()
        n_shards = len(shards)
        self.stats.shards = n_shards
        if not shards:
            return {}

        pending: deque[_Unit] = deque(
            _Unit(shard=shard, n_shards=n_shards) for shard in shards
        )
        results: dict[int, Any] = {}
        failures: dict[int, int] = {}
        telemetry = get_telemetry()
        metrics = telemetry.metrics
        if telemetry.enabled:
            context = telemetry.tracer.current_context()
            if context is not None:
                self._traceparent = context.to_traceparent()
        max_outstanding = config.batch_size * config.queue_depth

        self._result_queue = self._mp.Queue()
        workers = {
            handle.worker_id: handle
            for handle in (
                self._spawn_worker() for _ in range(config.workers)
            )
        }
        with _ACTIVE_LOCK:
            _ACTIVE_POOLS.add(self)

        try:
            while len(results) < n_shards:
                now = time.monotonic()

                # 0. graceful stop: drain in-flight, dispatch nothing.
                if self._stop.is_set():
                    in_flight = sum(h.capacity for h in workers.values())
                    if in_flight == 0 or now > self._stop_deadline:
                        raise EngineInterrupted(len(results), n_shards)

                # 1. dispatch ready units to workers with headroom.
                #    Quarantined units ride alone: one per batch, only
                #    onto an idle worker, with nothing batched behind
                #    them (see _reap).  A stopping pool dispatches
                #    nothing — it only drains what is already out.
                for handle in () if self._stop.is_set() else workers.values():
                    if any(u.isolate for u in handle.assigned.values()):
                        continue
                    while (pending and pending[0].not_before <= now
                           and handle.capacity < max_outstanding):
                        if pending[0].isolate and handle.capacity > 0:
                            break
                        if pending[0].isolate:
                            batch = [pending.popleft()]
                        else:
                            batch = []
                            while (pending and pending[0].not_before <= now
                                   and len(batch) < config.batch_size
                                   and not pending[0].isolate):
                                batch.append(pending.popleft())
                        try:
                            handle.task_queue.put_nowait(
                                ("batch", [u.wire(self._traceparent)
                                           for u in batch])
                            )
                        except queue_module.Full:
                            pending.extendleft(reversed(batch))
                            break
                        for unit in batch:
                            handle.assigned[unit.shard.index] = unit
                        self.stats.batches += 1
                        if batch[0].isolate:
                            break
                outstanding = sum(h.capacity for h in workers.values())
                self.stats.max_queue_depth = max(
                    self.stats.max_queue_depth, outstanding
                )
                metrics.gauge("engine.queue_depth").set(outstanding)

                # 2. drain worker reports.
                try:
                    message = self._result_queue.get(
                        timeout=config.poll_interval
                    )
                except queue_module.Empty:
                    message = None
                while message is not None:
                    self._handle_message(message, workers, results, metrics)
                    try:
                        message = self._result_queue.get_nowait()
                    except queue_module.Empty:
                        message = None

                # 3. liveness + watchdog.
                now = time.monotonic()
                for worker_id, handle in list(workers.items()):
                    if not handle.process.is_alive():
                        self.stats.worker_deaths += 1
                        emit_engine_event(
                            EngineFlag.WORKER_DEATH,
                            f"engine.worker[{worker_id}]",
                        )
                        self._reap(
                            handle, pending, failures,
                            EngineFlag.WORKER_DEATH,
                        )
                        del workers[worker_id]
                        replacement = self._spawn_worker()
                        workers[replacement.worker_id] = replacement
                    elif (config.shard_timeout is not None
                          and handle.running is not None
                          and now - handle.running[1]
                          > config.shard_timeout):
                        self.stats.timeouts += 1
                        emit_engine_event(
                            EngineFlag.TIMEOUT,
                            f"engine.shard[{handle.running[0]}]",
                        )
                        handle.process.terminate()
                        # next pump sees it dead and requeues its units

                # 4. shards that exhausted their retries.
                for index in [
                    i for i, count in failures.items()
                    if count > config.max_retries
                ]:
                    del failures[index]
                    unit = self._steal_unit(index, pending, workers)
                    if unit is not None and index not in results:
                        self._run_exhausted(unit, results)
        finally:
            with _ACTIVE_LOCK:
                _ACTIVE_POOLS.discard(self)
            self._shutdown(workers)
            self.stats.elapsed_seconds = time.monotonic() - started
            self.finished.set()

        return results

    def _handle_message(self, message, workers, results, metrics) -> None:
        kind = message[0]
        if kind == "hb":
            self.stats.heartbeats += 1
            return
        worker_id, shard_index, attempt = message[1], message[2], message[3]
        handle = workers.get(worker_id)
        if kind == "start":
            if handle is not None and shard_index in handle.assigned:
                handle.running = (shard_index, time.monotonic())
            return
        if kind == "done":
            unit = handle.assigned.pop(shard_index, None) if handle else None
            if handle is not None and handle.running \
                    and handle.running[0] == shard_index:
                if unit is not None:
                    metrics.log_histogram("engine.shard_seconds").observe(
                        time.monotonic() - handle.running[1]
                    )
                handle.running = None
            # Dedupe: a retried unit can complete twice (a `done`
            # already in the pipe when its worker was declared dead).
            if shard_index not in results:
                results[shard_index] = message[4]
                payload = message[5] if len(message) > 5 else None
                if payload is not None:
                    self.payloads[shard_index] = (worker_id, payload)
                self.stats.completed += 1
                metrics.counter("engine.shards_completed_total").inc()
            return
        if kind == "task_error":
            # Pure tasks fail deterministically: no retry, fail the job.
            if handle is not None:
                handle.assigned.pop(shard_index, None)
                if handle.running and handle.running[0] == shard_index:
                    handle.running = None
            raise ShardError(
                shard_index,
                f"task raised on attempt {attempt}: {message[4]}",
                details=message[5],
            )

    @staticmethod
    def _steal_unit(index: int, pending: deque, workers) -> _Unit | None:
        """Remove shard ``index`` from wherever it is queued/assigned."""
        for unit in list(pending):
            if unit.shard.index == index:
                pending.remove(unit)
                return unit
        for handle in workers.values():
            if index in handle.assigned:
                return handle.assigned.pop(index)
        return None

    def _shutdown(self, workers) -> None:
        for handle in workers.values():
            try:
                handle.task_queue.put_nowait(("stop",))
            except queue_module.Full:
                pass  # terminated below
        deadline = time.monotonic() + 2.0
        for handle in workers.values():
            try:
                handle.process.join(
                    timeout=max(0.0, deadline - time.monotonic())
                )
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=1.0)
                if handle.process.is_alive():  # pragma: no cover
                    handle.process.kill()
                    handle.process.join(timeout=1.0)
                handle.process.close()
            except ValueError:  # pragma: no cover - already closed
                pass
            handle.task_queue.cancel_join_thread()
            handle.task_queue.close()
        if self._result_queue is not None:
            self._result_queue.cancel_join_thread()
            self._result_queue.close()
