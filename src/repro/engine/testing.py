"""Fault-injection tasks: the engine's own test instruments.

These tasks deliberately violate the things real tasks must never do
(die, hang, depend on the retry attempt) so the pool's fault paths can
be exercised deterministically.  Jobs built from them must set
``cacheable=False`` — their results are functions of execution
history, not of their spec.
"""

from __future__ import annotations

import os
import random
import time

from repro.engine.tasks import task

__all__ = ["crash_job_params"]


@task("engine.test.echo")
def _echo(params: dict, ctx) -> dict:
    """Return the shard's own coordinates (scheduling probe)."""
    return {
        "payload": params.get("payload"),
        "index": ctx.index,
        "n_shards": ctx.n_shards,
        "pid": os.getpid(),
    }


@task("engine.test.sleep")
def _sleep(params: dict, ctx) -> float:
    """Sleep ``seconds`` and return it (timeout/throughput probe)."""
    seconds = float(params.get("seconds", 0.01))
    time.sleep(seconds)
    return seconds


@task("engine.test.crash_once")
def _crash_once(params: dict, ctx) -> dict:
    """Kill the whole worker process on the first ``crashes`` attempts.

    ``os._exit`` bypasses every handler — from the parent's point of
    view this is indistinguishable from an OOM kill or a segfault,
    which is the point.
    """
    if ctx.attempt < int(params.get("crashes", 1)):
        os._exit(13)
    return {"index": ctx.index, "survived_attempt": ctx.attempt}


@task("engine.test.hang_once")
def _hang_once(params: dict, ctx) -> dict:
    """Hang far past any sane shard timeout on the first attempt."""
    if ctx.attempt == 0:
        time.sleep(float(params.get("hang_seconds", 3600.0)))
    return {"index": ctx.index, "survived_attempt": ctx.attempt}


@task("engine.test.fail")
def _fail(params: dict, ctx) -> None:
    """Raise a deterministic task error (the no-retry path)."""
    raise ValueError(params.get("message", "engine.test.fail"))


@task("engine.test.rng_draw")
def _rng_draw(params: dict, ctx) -> list[int]:
    """Draw from the shard's derived seed (determinism probe)."""
    rng = random.Random(ctx.seed)
    return [rng.randrange(1 << 30) for _ in range(int(params.get("n", 3)))]


def crash_job_params(n_shards: int, crash_index: int,
                     crashes: int = 1) -> list[dict]:
    """Params for a job where exactly one shard kills its worker."""
    return [
        {"crashes": crashes if index == crash_index else 0}
        for index in range(n_shards)
    ]
