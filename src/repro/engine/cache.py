"""Content-addressed result cache: LRU memory tier + JSONL disk tier.

Keys are SHA-256 digests of the canonical task spec *plus* the
environment fingerprint (code version, Python version, platform), so a
cached result is served only when the same code on the same kind of
machine would recompute the same bits.  Anything that could change a
result must be in the key; anything that couldn't (worker count,
batch size, telemetry) must not be — that is what makes repeated
oracle/lint/study runs incremental across processes and sessions.

Tiers:

- **memory**: an ``OrderedDict`` LRU holding the most recent
  ``capacity`` results, always on;
- **disk** (optional): an append-only JSONL file, one
  ``{"key", "task", "result"}`` record per line.  The file is indexed
  by byte offset on first touch and appended on every put, so a
  process inherits every previous run's results for free.  Duplicate
  keys are harmless (last record wins), which keeps writes lock-free
  for the single-writer engine.
"""

from __future__ import annotations

import collections
import dataclasses
import hashlib
import json
import os
import platform
from pathlib import Path
from typing import Any

from repro._version import __version__

__all__ = [
    "MISS",
    "CacheStats",
    "ResultCache",
    "cache_key",
    "machine_fingerprint",
    "default_cache_path",
]

#: Sentinel distinguishing "not cached" from a cached ``None``.
MISS = object()


def machine_fingerprint() -> dict[str, str]:
    """The environment facts a result's bits may legitimately depend on."""
    return {
        "code_version": __version__,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.system(),
        "machine": platform.machine(),
    }


def cache_key(spec_canonical: str, seed: int) -> str:
    """The content address of one shard's result."""
    payload = json.dumps(
        {
            "spec": spec_canonical,
            "seed": seed,
            "env": machine_fingerprint(),
        },
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def default_cache_path() -> Path:
    """Where the CLI's disk tier lives unless overridden.

    ``REPRO_ENGINE_CACHE`` wins; otherwise the XDG cache home.
    """
    override = os.environ.get("REPRO_ENGINE_CACHE")
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(base) / "repro-fp" / "engine-cache.jsonl"


@dataclasses.dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance's lifetime."""

    hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return (self.hits + self.disk_hits) / lookups if lookups else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


class ResultCache:
    """Two-tier cache for shard results (JSON-able values only)."""

    def __init__(self, capacity: int = 512,
                 disk_path: str | Path | None = None) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.disk_path = Path(disk_path) if disk_path is not None else None
        self.stats = CacheStats()
        self._memory: collections.OrderedDict[str, Any] = \
            collections.OrderedDict()
        self._disk_index: dict[str, int] | None = None

    # -- memory tier ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._memory)

    def _remember(self, key: str, result: Any) -> None:
        memory = self._memory
        memory[key] = result
        memory.move_to_end(key)
        if len(memory) > self.capacity:
            memory.popitem(last=False)
            self.stats.evictions += 1

    # -- disk tier -----------------------------------------------------

    def _index_disk(self) -> dict[str, int]:
        """Byte offsets of each key's latest record (built once)."""
        if self._disk_index is None:
            index: dict[str, int] = {}
            if self.disk_path is not None and self.disk_path.exists():
                with open(self.disk_path, "rb") as handle:
                    offset = 0
                    for line in handle:
                        try:
                            record = json.loads(line)
                            index[record["key"]] = offset
                        except (ValueError, KeyError, TypeError):
                            pass  # torn write from a killed run: skip
                        offset += len(line)
            self._disk_index = index
        return self._disk_index

    def _disk_get(self, key: str) -> Any:
        index = self._index_disk()
        if self.disk_path is None or key not in index:
            return MISS
        try:
            with open(self.disk_path, "rb") as handle:
                handle.seek(index[key])
                record = json.loads(handle.readline())
        except (OSError, ValueError, KeyError):
            return MISS
        return record.get("result")

    @property
    def disk_entries(self) -> int:
        return len(self._index_disk()) if self.disk_path is not None else 0

    # -- public API ----------------------------------------------------

    def get(self, key: str) -> Any:
        """The cached result for ``key``, or :data:`MISS`."""
        if key in self._memory:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            return self._memory[key]
        result = self._disk_get(key)
        if result is not MISS:
            self.stats.disk_hits += 1
            self._remember(key, result)
            return result
        self.stats.misses += 1
        return MISS

    def put(self, key: str, task_name: str, result: Any) -> None:
        """Store a result in memory and (when configured) on disk."""
        self.stats.puts += 1
        self._remember(key, result)
        if self.disk_path is None:
            return
        index = self._index_disk()
        line = json.dumps(
            {"key": key, "task": task_name, "result": result},
            sort_keys=True, separators=(",", ":"), default=str,
        ) + "\n"
        self.disk_path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.disk_path, "ab") as handle:
            offset = handle.tell()
            handle.write(line.encode())
        index[key] = offset

    def clear(self) -> None:
        """Drop both tiers (the disk file is truncated, not deleted)."""
        self._memory.clear()
        self._disk_index = {}
        if self.disk_path is not None and self.disk_path.exists():
            self.disk_path.write_text("")

    def describe(self) -> str:
        parts = [
            f"memory: {len(self)}/{self.capacity} entries",
            f"disk: {self.disk_entries} entries"
            + (f" at {self.disk_path}" if self.disk_path else " (off)"),
            f"stats: {self.stats.to_dict()}",
        ]
        return "\n".join(parts)
