"""Sharded re-expressions of the repo's heavyweight computations.

Each adapter is two halves:

- a registered **task** — a pure, JSON-in/JSON-out function executed
  in worker processes;
- a parent-side ``run_*_sharded`` entry point that plans shards,
  submits the job to an :class:`~repro.engine.engine.Engine`, and
  merges shard results into *exactly* the object the serial code path
  produces.

The merge step is where the bit-identity contract lives, and each
adapter discharges it differently:

- **oracle** — shard boundaries come from
  :func:`~repro.oracle.runner.plan_op_slices` (closed-form budget
  accounting), and :meth:`~repro.oracle.report.OpStats.absorb` plus
  in-order discrepancy concatenation reconstruct the serial report;
- **study** — respondents are pure functions of their cohort position
  (:func:`~repro.population.response_model.respondent_rng`), so
  cohort ranges concatenate into the serial response list and the
  figures are recomputed in the parent from identical records;
- **optsim** — every shard regenerates the same deterministic
  candidate list and walks a disjoint slice; the merged verdict is
  the *minimum* diverging index, the same "first hit wins" the serial
  walk implements;
- **staticfp** — corpus entries are independent; outcomes are merged
  by key.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from typing import Any

from repro.engine.tasks import Job, TaskSpec, Shard, derive_seed, task
from repro.fpenv.rounding import RoundingMode

__all__ = [
    "run_conformance_sharded",
    "run_study_sharded",
    "find_divergence_sharded",
    "witness_sweep_sharded",
    "run_corpus_sharded",
]


# ----------------------------------------------------------------------
# oracle: differential conformance sweep
# ----------------------------------------------------------------------

@task("oracle.op_slice")
def _oracle_op_slice(params: dict, ctx) -> dict:
    """Cases ``[case_lo, case_hi)`` of one op's differential sweep."""
    from repro.oracle.runner import FORMATS_BY_NAME, run_op_slice

    fmt = FORMATS_BY_NAME[params["format"]]
    modes = tuple(RoundingMode(v) for v in params["modes"])
    env_combos = tuple((ftz, daz) for ftz, daz in params["env_combos"])
    matrix = tuple(itertools.product(modes, env_combos))
    stats, discrepancies = run_op_slice(
        fmt,
        params["op"],
        params["budget"],
        params["seed"],
        matrix,
        params["tininess"],
        params["native"],
        params["max_discrepancies"],
        params["case_lo"],
        params["case_hi"],
        engine_backend=params.get("engine_backend", "scalar"),
    )
    return {
        "stats": stats.to_dict(),
        "discrepancies": [d.to_dict() for d in discrepancies],
    }


def run_conformance_sharded(
    fmt,
    ops: Sequence[str],
    engine,
    *,
    budget: int = 10000,
    seed: int = 754,
    modes=None,
    env_combos: Sequence[tuple[bool, bool]] = ((False, False), (True, True)),
    tininess: str = "before",
    native: bool = True,
    max_discrepancies: int = 100,
    slices_per_op: int | None = None,
    engine_backend: str = "scalar",
):
    """The sharded twin of :func:`repro.oracle.runner.run_conformance`.

    Returns a :class:`~repro.oracle.report.ConformanceReport` whose
    :meth:`~repro.oracle.report.ConformanceReport.canonical_json` is
    byte-identical to the serial runner's — per-op stats are absorbed
    slice by slice and discrepancies concatenated in (op, slice) order
    then truncated to the serial sweep's global cap.  Only the
    wall-clock fields differ (they sum worker seconds).
    """
    from repro.oracle.report import ConformanceReport, Discrepancy, OpStats
    from repro.oracle.runner import ENGINE_OPS, plan_op_slices

    modes = tuple(modes) if modes else tuple(RoundingMode)
    env_combos = tuple(tuple(combo) for combo in env_combos)
    unknown = sorted(set(ops) - set(ENGINE_OPS))
    if unknown:
        raise ValueError(f"unknown ops {unknown}; choose from"
                         f" {sorted(ENGINE_OPS)}")
    if slices_per_op is None:
        slices_per_op = max(1, engine.config.workers) * 2

    matrix_len = len(modes) * len(env_combos)
    base_params = {
        "format": fmt.name,
        "budget": budget,
        "seed": seed,
        "modes": [m.value for m in modes],
        "env_combos": [list(combo) for combo in env_combos],
        "tininess": tininess,
        "native": native,
        "max_discrepancies": max_discrepancies,
        "engine_backend": engine_backend,
    }
    param_list = []
    op_slice_counts = []
    for op in ops:
        slices = plan_op_slices(fmt, op, budget, matrix_len, slices_per_op)
        op_slice_counts.append((op, len(slices)))
        for lo, hi in slices:
            param_list.append(
                {**base_params, "op": op, "case_lo": lo, "case_hi": hi}
            )

    def merge(results: list[dict]) -> ConformanceReport:
        report = ConformanceReport(
            fmt_name=fmt.name,
            seed=seed,
            budget=budget,
            tininess=tininess,
            rounding_modes=tuple(m.value for m in modes),
            env_combos=env_combos,
        )
        cursor = 0
        for op, n_slices in op_slice_counts:
            stats = OpStats(op=op)
            for result in results[cursor:cursor + n_slices]:
                stats.absorb(OpStats.from_dict(result["stats"]))
                for payload in result["discrepancies"]:
                    if len(report.discrepancies) < max_discrepancies:
                        report.discrepancies.append(
                            Discrepancy.from_dict(payload)
                        )
            cursor += n_slices
            report.op_stats[op] = stats
        return report

    job = _spec_seeded_job(
        f"oracle.{fmt.name}", "oracle.op_slice", param_list,
        seed=seed, merge=merge,
    )
    return engine.run(job)


# ----------------------------------------------------------------------
# study: cohort simulation + figure regeneration
# ----------------------------------------------------------------------

@task("study.simulate_slice")
def _study_simulate_slice(params: dict, ctx) -> list[dict]:
    """Respondents ``[start, stop)`` of one cohort, as records."""
    from repro.population.response_model import (
        simulate_developers,
        simulate_students,
    )

    simulate = {
        "developer": simulate_developers,
        "student": simulate_students,
    }[params["cohort"]]
    responses = simulate(
        params["n"], params["seed"],
        start=params["start"], stop=params["stop"],
    )
    return [r.to_dict() for r in responses]


def run_study_sharded(
    engine,
    *,
    seed: int = 754,
    n_developers: int = 199,
    n_students: int = 52,
    shard_size: int = 25,
):
    """The sharded twin of :func:`repro.analysis.study.run_study`.

    Simulation (the expensive phase) is sharded into cohort ranges;
    the figures are regenerated in the parent from the merged records.
    Because respondents are pure functions of their cohort position,
    the merged :class:`~repro.analysis.study.StudyResults` renders and
    serializes byte-identically to the serial run at any worker count.
    """
    from repro.analysis.study import analyze
    from repro.survey.records import SurveyResponse
    from repro.telemetry import get_telemetry

    param_list = []
    for cohort, n in (("developer", n_developers), ("student", n_students)):
        for start in range(0, n, shard_size):
            param_list.append({
                "cohort": cohort,
                "n": n,
                "seed": seed,
                "start": start,
                "stop": min(start + shard_size, n),
            })

    def merge(results: list[list[dict]]):
        responses = [
            SurveyResponse.from_dict(record)
            for slice_records in results
            for record in slice_records
        ]
        return analyze(responses)

    with get_telemetry().tracer.span(
        "study.run", seed=seed, developers=n_developers, students=n_students
    ):
        job = _spec_seeded_job(
            "study", "study.simulate_slice", param_list,
            seed=seed, merge=merge,
        )
        return engine.run(job)


# ----------------------------------------------------------------------
# optsim: divergence search
# ----------------------------------------------------------------------

@task("optsim.divergence_slice")
def _optsim_divergence_slice(params: dict, ctx) -> dict:
    """Walk candidates ``[lo, hi)`` of a divergence search.

    An optional ``backend`` param evaluates the whole slice in
    vectorized softfloat-backend lanes (both the strict and the
    optimized side) instead of candidate by candidate; the verdict —
    the first diverging index — is unchanged, and the parent re-checks
    that single binding scalar when it builds the report.
    """
    from repro.optsim import optimize, parse_expr
    from repro.optsim.compliance import check_binding, divergence_candidates

    config = _resolve_level(params["level"])
    expr = parse_expr(params["expr"])
    optimized = optimize(expr, config)
    candidates = divergence_candidates(
        expr, config, seed=params["seed"], trials=params["trials"],
    )
    lo, hi = params["lo"], params["hi"]
    hi = min(hi, len(candidates))
    backend = params.get("backend")
    if backend is not None and hi > lo:
        from repro.optsim.batch_eval import evaluate_many
        from repro.optsim.compliance import _same_value
        from repro.optsim.machine import STRICT

        chunk = candidates[lo:hi]
        strict_config = STRICT.replace(fmt=config.fmt)
        strict_results = evaluate_many(expr, chunk, strict_config, backend)
        optimized_results = evaluate_many(optimized, chunk, config, backend)
        for offset, (s, o) in enumerate(zip(strict_results,
                                            optimized_results)):
            value_diverged = not _same_value(s.value, o.value)
            flags_diverged = s.flags != o.flags
            if value_diverged or (params["check_flags"] and flags_diverged):
                return {"index": lo + offset, "checked": offset + 1}
        return {"index": None, "checked": hi - lo}
    for index in range(lo, hi):
        _, _, value_diverged, flags_diverged = check_binding(
            expr, optimized, candidates[index], config
        )
        if value_diverged or (params["check_flags"] and flags_diverged):
            return {"index": index, "checked": index - lo + 1}
    return {"index": None, "checked": max(0, hi - lo)}


def _resolve_level(level: str):
    from repro.optsim import config_from_flags, optimization_level

    try:
        return optimization_level(level)
    except ValueError:
        return config_from_flags(level)


def find_divergence_sharded(
    expr_text: str,
    level: str,
    engine,
    *,
    seed: int = 754,
    trials: int = 400,
    check_flags: bool = True,
    n_slices: int | None = None,
    backend: str | None = None,
):
    """The sharded twin of :func:`repro.optsim.find_divergence`.

    Shards walk disjoint slices of the same deterministic candidate
    list; the merged verdict takes the minimum diverging index, and
    the parent re-evaluates that one binding to build the identical
    :class:`~repro.optsim.compliance.DivergenceReport` (``trials`` is
    the serial walk's stop count, index + 1).  Accepts the expression
    and optimization level as strings because that is what crosses the
    process boundary.
    """
    import dataclasses as _dataclasses

    from repro.optsim import optimize, parse_expr
    from repro.optsim.compliance import (
        DivergenceReport,
        check_binding,
        divergence_candidates,
    )
    from repro.telemetry import get_telemetry

    config = _resolve_level(level)
    expr = parse_expr(expr_text)
    candidates = divergence_candidates(
        expr, config, seed=seed, trials=trials
    )
    total = len(candidates)
    if n_slices is None:
        n_slices = max(1, engine.config.workers) * 2
    n_slices = max(1, min(n_slices, total)) if total else 1
    boundaries = [total * j // n_slices for j in range(n_slices + 1)]
    param_list = [
        {
            "expr": expr_text,
            "level": level,
            "seed": seed,
            "trials": trials,
            "check_flags": check_flags,
            "lo": lo,
            "hi": hi,
            "backend": backend,
        }
        for lo, hi in zip(boundaries, boundaries[1:])
        if hi > lo
    ]

    def merge(results: list[dict]) -> DivergenceReport:
        hits = [r["index"] for r in results if r["index"] is not None]
        optimized = optimize(expr, config)
        if not hits:
            return DivergenceReport(
                expr=expr, optimized_expr=optimized, config=config,
                diverged=False, value_diverged=False, flags_diverged=False,
                witness=None, strict_result=None, optimized_result=None,
                trials=total,
            )
        index = min(hits)
        binding = candidates[index]
        strict_result, optimized_result, value_diverged, flags_diverged = \
            check_binding(expr, optimized, binding, config)
        return DivergenceReport(
            expr=expr, optimized_expr=optimized, config=config,
            diverged=True, value_diverged=value_diverged,
            flags_diverged=flags_diverged, witness=binding,
            strict_result=strict_result, optimized_result=optimized_result,
            trials=index + 1,
        )

    telemetry = get_telemetry()
    with telemetry.tracer.span(
        "optsim.find_divergence", config=config.name, expr=str(expr)
    ) as span:
        job = _spec_seeded_job(
            f"optsim.{config.name}", "optsim.divergence_slice", param_list,
            seed=seed, merge=merge,
        )
        report = engine.run(job)
        span.set("diverged", report.diverged)
        span.set("trials", report.trials)
        return report


# ----------------------------------------------------------------------
# optsim: exhaustive witness sweep
# ----------------------------------------------------------------------

@task("optsim.witness_slice")
def _optsim_witness_slice(params: dict, ctx) -> dict:
    """Sweep index slice ``[start, stop)`` of an exhaustive witness
    search over serialized bit regions."""
    from repro.optsim.guided import sweep_slice

    return sweep_slice(
        params["expr"],
        params["level"],
        params["regions"],
        params["start"],
        params["stop"],
        check_flags=params["check_flags"],
        backend=params.get("backend", "auto"),
        fmt=params.get("fmt"),
    )


def witness_sweep_sharded(
    expr_text: str,
    level: str,
    engine,
    *,
    bindings=None,
    check_flags: bool = True,
    n_slices: int | None = None,
    backend: str = "auto",
    fmt: str | None = None,
):
    """The sharded twin of :func:`repro.optsim.guided.exhaustive_sweep`.

    The parent plans the per-variable bit regions once, serializes
    them into every shard, and splits the mixed-radix index space into
    contiguous slices; the merged verdict is the minimum diverging
    index (first-hit-wins, like the serial sweep), re-checked scalar
    in the parent to build the identical
    :class:`~repro.optsim.guided.SweepResult`.  ``fmt`` optionally
    overrides the level's format by name (TINY8 proof sweeps of
    wide-format levels).
    """
    from repro.optsim import optimize, parse_expr
    from repro.optsim.guided import SweepResult, sweep_regions
    from repro.telemetry import get_telemetry

    config = _resolve_level(level)
    if fmt is not None:
        from repro.oracle import FORMATS_BY_NAME

        config = config.replace(fmt=FORMATS_BY_NAME[fmt])
    expr = parse_expr(expr_text)
    optimized = optimize(expr, config)
    regions = sweep_regions(expr, optimized, config, bindings)
    region_dicts = {name: r.to_dict() for name, r in regions.items()}
    total = 1
    for region in regions.values():
        total *= region.size
    if n_slices is None:
        n_slices = max(1, engine.config.workers) * 2
    n_slices = max(1, min(n_slices, total)) if total else 1
    boundaries = [total * j // n_slices for j in range(n_slices + 1)]
    param_list = [
        {
            "expr": expr_text,
            "level": level,
            "regions": region_dicts,
            "start": lo,
            "stop": hi,
            "check_flags": check_flags,
            "backend": backend,
            "fmt": fmt,
        }
        for lo, hi in zip(boundaries, boundaries[1:])
        if hi > lo
    ]

    def merge(results: list[dict]) -> SweepResult:
        from repro.optsim.compliance import check_binding
        from repro.optsim.guided import exhaustive_sweep

        checked = sum(r["checked"] for r in results)
        hits = [r["index"] for r in results if r["index"] is not None]
        if not hits:
            return SweepResult(
                found_index=None, witness=None, value_diverged=False,
                flags_diverged=False, states=total, checked=checked,
            )
        index = min(hits)
        # Re-materialize the diverging binding by sweeping the
        # single-state slice [index, index + 1) in the parent.
        single = exhaustive_sweep(
            expr, optimized, config, regions=regions,
            check_flags=check_flags, backend=backend,
            start=index, stop=index + 1, max_states=1 << 62,
        )
        binding = single.witness
        assert binding is not None
        _, _, vdiv, fdiv = check_binding(expr, optimized, binding, config)
        return SweepResult(
            found_index=index, witness=binding, value_diverged=vdiv,
            flags_diverged=fdiv, states=total, checked=checked,
        )

    telemetry = get_telemetry()
    with telemetry.tracer.span(
        "optsim.witness_sweep", config=config.name, expr=str(expr),
        states=total,
    ) as span:
        job = _spec_seeded_job(
            f"witness.{config.name}", "optsim.witness_slice", param_list,
            seed=0, merge=merge,
        )
        result = engine.run(job)
        span.set("found", result.found_index is not None)
        span.set("checked", result.checked)
        return result


# ----------------------------------------------------------------------
# staticfp: lint-corpus sweep
# ----------------------------------------------------------------------

@task("staticfp.lint_entries")
def _staticfp_lint_entries(params: dict, ctx) -> dict:
    """Lint a batch of corpus entries down to JSON-able outcomes."""
    from repro.staticfp.corpus import entry_by_key, entry_outcome

    return {
        key: entry_outcome(entry_by_key(key)) for key in params["keys"]
    }


def run_corpus_sharded(engine, *, shard_size: int = 4) -> dict[str, dict]:
    """The sharded twin of :func:`repro.staticfp.corpus.corpus_outcomes`.

    Feed the merged outcomes to ``precision_summary``/``check_golden``
    — entries are independent, so the merge is a keyed union.
    """
    from repro.staticfp.corpus import CLEAN_CORPUS, GOTCHA_CORPUS

    keys = [e.key for e in GOTCHA_CORPUS + CLEAN_CORPUS]
    param_list = [
        {"keys": keys[start:start + shard_size]}
        for start in range(0, len(keys), shard_size)
    ]

    def merge(results: list[dict]) -> dict[str, dict]:
        outcomes: dict[str, dict] = {}
        for batch in results:
            outcomes.update(batch)
        return outcomes

    job = _spec_seeded_job(
        "staticfp.corpus", "staticfp.lint_entries", param_list,
        seed=0, merge=merge,
    )
    return engine.run(job)


# ----------------------------------------------------------------------
# shared
# ----------------------------------------------------------------------

def _spec_seeded_job(name, task_name, param_list, *, seed, merge) -> Job:
    """A job whose shard seeds depend on the *spec*, not the position.

    :func:`~repro.engine.tasks.make_job` seeds by shard index, which is
    right for tasks that draw on ``ctx.seed``.  Adapter tasks carry
    their own seeds in their params (the serial code path's seeds), so
    the shard seed only feeds the cache key — deriving it from the
    canonical spec means re-slicing a sweep leaves unchanged shards'
    cache entries valid.
    """
    shards = tuple(
        Shard(
            index=index,
            spec=TaskSpec(task=task_name, params=dict(params)),
            seed=derive_seed(
                seed, TaskSpec(task=task_name, params=dict(params)).canonical()
            ),
        )
        for index, params in enumerate(param_list)
    )
    return Job(name=name, shards=shards, merge=merge)
