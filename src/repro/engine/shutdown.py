"""Graceful SIGTERM/SIGINT shutdown for pool-running processes.

Ctrl-C used to interrupt the supervision pump at an arbitrary
bytecode: the ``KeyboardInterrupt`` unwound through ``finally`` fast
enough in the common case, but a signal landing inside the shutdown
path itself (or inside a queue drain) could leave worker processes
orphaned behind a dead parent.  :func:`graceful_shutdown` turns the
first signal into a *drain request* instead: every active pool stops
dispatching, lets in-flight shards finish, reaps its workers, and the
interrupted ``run`` raises :class:`~repro.errors.EngineInterrupted`
from a known point.  A second signal falls through to the default
(impatient) behavior.

Signal handlers can only be installed from the main thread; from any
other thread :func:`graceful_shutdown` is a documented no-op — the
embedding layer (e.g. the asyncio service, which owns its own signal
wiring) calls :func:`repro.engine.pool.request_stop_all` /
:meth:`~repro.engine.engine.Engine.close` directly.
"""

from __future__ import annotations

import contextlib
import signal
import threading
from collections.abc import Iterator

from repro.engine.pool import request_stop_all

__all__ = ["graceful_shutdown"]

_SIGNALS = (signal.SIGINT, signal.SIGTERM)


@contextlib.contextmanager
def graceful_shutdown(*, drain_timeout: float = 2.0) -> Iterator[bool]:
    """Install drain-first SIGINT/SIGTERM handlers for a block.

    Yields True when handlers were installed (main thread), False
    otherwise.  Within the block, the first signal requests a graceful
    stop on every active worker pool; with no pool active — or on a
    second signal — the default KeyboardInterrupt/SystemExit behavior
    applies, so plain serial runs still die promptly.
    """
    if threading.current_thread() is not threading.main_thread():
        yield False
        return

    state = {"fired": False}

    def _handler(signum: int, frame: object) -> None:
        if state["fired"]:  # second signal: stop being polite
            _restore()
            raise KeyboardInterrupt if signum == signal.SIGINT \
                else SystemExit(128 + signum)
        state["fired"] = True
        stopped = request_stop_all(drain_timeout)
        if stopped == 0:
            # Nothing to drain: behave like the default handler.
            _restore()
            if signum == signal.SIGINT:
                raise KeyboardInterrupt
            raise SystemExit(128 + signum)

    previous = {sig: signal.signal(sig, _handler) for sig in _SIGNALS}

    def _restore() -> None:
        for sig, prev in previous.items():
            try:
                signal.signal(sig, prev)
            except (ValueError, TypeError):  # pragma: no cover
                pass

    try:
        yield True
    finally:
        _restore()
